"""Quickstart: simulate a waveguide bend and inverse-design it in ~30 seconds.

Run with::

    python examples/quickstart.py

The script walks through the three MAPS components at their smallest scale:
build a benchmark device, simulate it with the FDFD solver, run a short
adjoint optimization (``engine="recycled"``, the optimization-loop solver
tier) and print the optimization trajectory.  Other tiers — ``"iterative"``,
``"direct"``, or a promoted surrogate ``"neural:<checkpoint.npz>"`` — are a
one-line swap.

Set ``REPRO_EXAMPLES_QUICK=1`` for a seconds-scale smoke run (used by CI).
"""

import os

import numpy as np

from repro.devices import make_device
from repro.invdes import AdjointOptimizer, InverseDesignProblem
from repro.parametrization.analysis import binarization_level

QUICK = os.environ.get("REPRO_EXAMPLES_QUICK", "") not in ("", "0")


def main() -> None:
    # 1. Build a benchmark device (low fidelity = coarse mesh, fast solves).
    size = dict(domain=3.0, design_size=1.4) if QUICK else dict(domain=3.5, design_size=1.8)
    device = make_device("bending", fidelity="low", **size)
    print(f"device: {device.name}, grid {device.grid.shape}, design {device.design_shape}")

    # 2. Simulate an initial guess and inspect the rich outputs.
    density = device.initial_density("waveguide")
    spec = device.specs[0]
    result = device.simulate_spec(density, spec)
    print(f"initial transmission to 'out': {result.transmissions['out']:.3f}")
    print(f"radiation loss: {result.radiation:.3f}")

    # 3. Inverse design: maximize transmission with the adjoint method.
    #    engine="recycled" is the optimization-loop solver tier: instead of
    #    re-factorizing the Maxwell operator every Adam step, it recycles the
    #    previous factorization (plus warm-started solves) for ~2x faster
    #    iterations at identical gradients.  Drop the argument (or pass
    #    engine="iterative"/"neural") to pick another fidelity tier.
    problem = InverseDesignProblem(device, engine="recycled")
    optimizer = AdjointOptimizer(
        problem, learning_rate=0.2, beta_schedule={0: 4.0, 10: 8.0, 20: 16.0}
    )
    trajectory = optimizer.run(
        theta0=problem.initial_theta("waveguide"),
        iterations=4 if QUICK else 25,
        verbose=True,
    )

    best = trajectory.best()
    print(f"\nbest figure of merit:    {best.fom:.3f} (iteration {best.iteration})")
    print(f"final binarization:      {binarization_level(trajectory[-1].density):.3f}")
    verified = device.figure_of_merit(best.density)
    print(f"FDFD-verified final FoM: {verified:.3f}")

    # 4. The optimized density is a plain NumPy array — save it for later use.
    np.save("bend_optimized_density.npy", best.density)
    print("saved optimized design to bend_optimized_density.npy")


if __name__ == "__main__":
    main()
