"""AI-driven inverse design: replace the FDFD solver with a trained surrogate.

Run with::

    python examples/neural_inverse_design.py

Reproduces the workflow of the paper's final case study (Fig. 6): a field
surrogate is trained on perturbed optimization-trajectory data, plugged into
the adjoint loop as the forward/adjoint solver, and the resulting optimization
trajectory is verified against FDFD at every iteration.  (The equivalent by
*name*: save the model with ``repro.surrogate.save_checkpoint`` and pass
``engine="neural:<checkpoint.npz>"`` anywhere an engine is accepted; dataset
generation accepts ``workers=``/``shard_dir=``/``resume`` as usual.)

Set ``REPRO_EXAMPLES_QUICK=1`` for a seconds-scale smoke run (used by CI).
"""

import os

from repro.data.dataset import split_dataset
from repro.data.generator import generate_dataset
from repro.devices import make_device
from repro.invdes import AdjointOptimizer, InverseDesignProblem
from repro.surrogate import NeuralFieldBackend
from repro.train.models import make_model
from repro.train.trainer import Trainer

QUICK = os.environ.get("REPRO_EXAMPLES_QUICK", "") not in ("", "0")
DEVICE_KWARGS = (
    dict(domain=3.0, design_size=1.4) if QUICK else dict(domain=3.5, design_size=1.8)
)


def main() -> None:
    device = make_device("bending", fidelity="low", **DEVICE_KWARGS)

    # 1. Train a surrogate on optimization-trajectory data for this device.
    dataset = generate_dataset(
        "bending",
        "perturbed_opt_traj",
        num_designs=6 if QUICK else 24,
        seed=0,
        with_gradient=False,
        strategy_kwargs=dict(iterations=4 if QUICK else 15),
        device_kwargs=DEVICE_KWARGS,
    )
    train, test = split_dataset(dataset, 0.8, rng=0)
    if QUICK:
        model = make_model("neurolight", width=8, modes=(3, 3), depth=2, rng=0)
    else:
        model = make_model("neurolight", width=16, modes=(6, 6), depth=3, rng=0)
    trainer = Trainer(
        model, train, test, epochs=3 if QUICK else 20, batch_size=6,
        learning_rate=3e-3, seed=0,
    )
    trainer.train(verbose=True)
    print(f"surrogate test N-L2: {trainer.history.final()['test_n_l2']:.3f}")

    # 2. Plug the surrogate into the adjoint loop as the field backend.
    backend = NeuralFieldBackend(model, dataset.field_scale)
    problem = InverseDesignProblem(device, backend=backend)
    optimizer = AdjointOptimizer(problem, learning_rate=0.2, beta_schedule={0: 4.0, 10: 8.0})

    # 3. Run NN-driven optimization, verifying each iterate with FDFD.
    verification = []

    def verify(iteration, evaluation):
        true_fom = device.figure_of_merit(evaluation.density)
        verification.append((iteration, evaluation.fom, true_fom))

    optimizer.run(
        theta0=problem.initial_theta("waveguide"),
        iterations=3 if QUICK else 15,
        callback=verify,
    )

    print("\niter   NN-estimated FoM   FDFD-verified FoM")
    for iteration, nn_fom, true_fom in verification:
        print(f"{iteration:4d} {nn_fom:18.3f} {true_fom:19.3f}")
    print(f"\nfinal FDFD-verified transmission: {verification[-1][2]:.3f}")


if __name__ == "__main__":
    main()
