"""Designing a Kerr all-optical switch on the nonlinear tier.

Run with::

    python examples/nonlinear_switch.py

A Kerr medium's refractive index depends on the local intensity
(``eps_eff = eps + chi3 |E|^2``), so the same structure can route light to
*different* ports depending on how hard it is driven — the all-optical switch.
This script walks the whole nonlinear tier end to end:

1. solve the Kerr fixed point of the ``kerr_switch`` zoo device and sweep its
   power-dependent transfer curve;
2. compare direct vs recycled inner solves — every outer iteration changes
   only the operator diagonal, so the recycled engine's reference-LU
   refinement path serves it without refactorizing;
3. optimize the device with the implicit-function adjoint
   (``InverseDesignProblem(..., nonlinearity=...)``) so low power exits one
   port and high power the other;
4. generate a small intensity-swept nonlinear dataset (the same ``chi3`` /
   ``intensities`` knobs ride the sharded generator CLI).

Set ``REPRO_EXAMPLES_QUICK=1`` for a seconds-scale smoke run (used by CI).
"""

import os

import numpy as np

from repro.data.generator import generate_dataset
from repro.devices import make_device
from repro.fdfd.engine import make_engine
from repro.fdfd.nonlinear import KerrNonlinearity, NonlinearSimulation
from repro.invdes import AdjointOptimizer, InverseDesignProblem

QUICK = os.environ.get("REPRO_EXAMPLES_QUICK", "") not in ("", "0")


def transfer_curve(device, density, label: str) -> None:
    """Print transmissions vs injected power over the device's sweep."""
    eps = device.eps_with_design(density)
    spec = device.specs[0]
    ports = sorted(spec.port_weights)
    print(f"\n{label}:")
    print(f"{'power':>7}  " + "  ".join(f"{p:>8}" for p in ports) + "  iterations")
    for power in device.power_sweep:
        sim = NonlinearSimulation(
            device.grid,
            eps,
            spec.wavelength,
            device.geometry.ports,
            chi3=device.chi3_map(),
            source_scale=float(power),
        )
        result = sim.solve(spec.source_port, monitor_ports=spec.monitored_ports())
        stats = sim.last_stats[0]
        row = "  ".join(f"{result.transmissions[p]:>8.4f}" for p in ports)
        print(f"{power:>7.2f}  {row}  {stats.iterations:>10d}")


def main() -> None:
    if QUICK:
        device = make_device("kerr_switch", domain=3.0, design_size=1.4, dl=0.1)
        iterations = 2
    else:
        device = make_device("kerr_switch", dl=0.08)
        iterations = 12
    print(f"device: {device.name}, grid {device.grid.shape}, chi3 {device.chi3:.2e}")

    # 1. The unoptimized (uniform) design already shows intensity dependence:
    #    the Kerr term detunes the structure as the drive goes up.
    uniform = np.full(device.design_shape, 0.5)
    transfer_curve(device, uniform, "uniform design, transmissions vs power")

    # 2. The recycling seam: each outer iteration presents a diagonal-only
    #    operator update, so the recycled tier factorizes once and refines.
    spec = device.specs[-1]
    eps = device.eps_with_design(uniform)
    for engine_name in ("direct", "recycled"):
        sim = NonlinearSimulation(
            device.grid,
            eps,
            spec.wavelength,
            device.geometry.ports,
            chi3=device.chi3_map(),
            engine=make_engine(engine_name),
            source_scale=float(spec.state.get("power", 1.0)),
            method="born",
        )
        sim.solve(spec.source_port)
        stats = sim.last_stats[0]
        inner = stats.engine_stats.get(engine_name, {})
        detail = (
            f", factorizations {inner.get('factorizations')}, "
            f"recycled {inner.get('recycled_solves')}"
            if engine_name == "recycled"
            else ""
        )
        print(
            f"{engine_name:>9} inner: {stats.iterations} outer iterations, "
            f"{stats.inner_solves} inner solves{detail}"
        )

    # 3. Optimize: the adjoint differentiates *through* the converged fixed
    #    point (implicit-function formulation), so the optimizer shapes the
    #    nonlinear response itself — low power to out1, high power to out2.
    problem = InverseDesignProblem(
        device,
        engine=make_engine("recycled"),
        nonlinearity=KerrNonlinearity(),
    )
    optimizer = AdjointOptimizer(problem, learning_rate=0.05)
    trajectory = optimizer.run(
        theta0=problem.initial_theta("uniform"), iterations=iterations
    )
    print(
        f"\noptimized {iterations} Adam steps: FoM "
        f"{trajectory[0].fom:.4f} -> {trajectory[-1].fom:.4f}"
    )
    transfer_curve(
        device,
        problem.density_from_theta(trajectory[-1].theta),
        "optimized design, transmissions vs power",
    )

    # 4. Nonlinear datasets: ``chi3`` switches the sharded generator onto the
    #    Kerr tier and ``intensities`` sweeps the drive per design (CLI:
    #    ``--chi3 1.3e8 --intensities 0.5 1 2``).
    dataset = generate_dataset(
        "kerr_switch",
        "random",
        num_designs=2,
        fidelities=("low",),
        with_gradient=False,
        chi3=device.chi3,
        intensities=(0.5, 1.0),
        device_kwargs=dict(domain=3.0, design_size=1.4),
        shard_dir="kerr_shards",
    )
    print(
        f"\ngenerated {len(dataset)} nonlinear samples into kerr_shards/ "
        f"(chi3 {dataset.metadata['chi3']:.2e}, "
        f"intensities {dataset.metadata['intensities']})"
    )


if __name__ == "__main__":
    main()
