"""The full generate→train→serve loop: shards → curriculum → neural engine.

Run with::

    python examples/streaming_training.py

1. Generate a paired multi-fidelity dataset through the sharded generator,
   persisting resumable shard artifacts (re-running the script reuses them).
2. Stream the shards into training with :class:`ShardDataLoader` — bounded
   memory, background prefetch, and loss curves bit-identical to in-memory
   training for the same seed.
3. Train an FNO under a low→high warmup curriculum with high-fidelity labels
   weighted double.
4. Promote the trained model to a checkpoint and serve it by *name*:
   ``engine="neural:<checkpoint.npz>"`` works anywhere an engine is accepted —
   ``Simulation``, ``DatasetGenerator`` (including ``workers=`` runs, where
   live engine instances cannot travel), ``InverseDesignProblem``.

Set ``REPRO_EXAMPLES_QUICK=1`` for a seconds-scale smoke run (used by CI).
"""

import os
from pathlib import Path

import numpy as np

from repro.data.generator import DatasetGenerator, GeneratorConfig
from repro.data.loader import ShardDataLoader
from repro.devices.factory import make_device
from repro.surrogate import CheckpointMeta, dataset_fingerprint, save_checkpoint
from repro.train import Trainer, make_curriculum, make_model

QUICK = os.environ.get("REPRO_EXAMPLES_QUICK", "") not in ("", "0")
SHARD_DIR = Path("streaming_shards_quick" if QUICK else "streaming_shards")
CHECKPOINT = Path("bend_surrogate.npz")
# One grid for both fidelity tiers: the tiers differ by solver engine
# (cheap iterative vs exact direct), so low/high samples pair per design.
DEVICE_KWARGS = (
    dict(domain=3.0, design_size=1.4, dl=0.1)
    if QUICK
    else dict(domain=3.5, design_size=1.8, dl=0.1)
)


def main() -> None:
    # 1. Sharded multi-fidelity generation (resumable: rerunning the script
    #    loads finished shards instead of re-simulating them).
    config = GeneratorConfig(
        device_name="bending",
        strategy="random",
        num_designs=4 if QUICK else 12,
        fidelities=("low", "high"),
        with_gradient=False,
        seed=0,
        device_kwargs=DEVICE_KWARGS,
        engine={"low": "iterative", "high": "direct"},
        shard_size=2,
        shard_dir=str(SHARD_DIR),
    )
    dataset = DatasetGenerator(config).generate()
    print(f"generated {len(dataset)} samples into {SHARD_DIR}/")

    # 2. Stream the artifacts: O(shard) memory, prefetch hides the disk I/O.
    loader = ShardDataLoader.from_directory(
        SHARD_DIR, fidelities=config.fidelities, cache_shards=3, prefetch=2
    )
    train_loader, test_loader = loader.split(train_fraction=0.75, rng=0)

    # 3. Warmup curriculum: cheap tier first, then everything with the exact
    #    tier's labels weighted double.
    curriculum = make_curriculum(
        "warmup", fidelities=config.fidelities, loss_weights={"high": 2.0}
    )
    if QUICK:
        model_kwargs = dict(width=8, modes=(3, 3), depth=2, rng=0)
    else:
        model_kwargs = dict(width=16, modes=(6, 6), depth=3, rng=0)
    model = make_model("fno", **model_kwargs)
    trainer = Trainer(
        model,
        data=train_loader,
        test_set=test_loader,
        epochs=4 if QUICK else 20,
        batch_size=6,
        learning_rate=3e-3,
        seed=0,
        curriculum=curriculum,
    )
    history = trainer.train(verbose=True)
    print(f"final test N-L2: {history.final().get('test_n_l2', float('nan')):.4f}")

    # 4. Promote: weights + normalization statistics + data provenance in one
    #    portable file, servable by name.
    save_checkpoint(
        CHECKPOINT,
        model,
        CheckpointMeta(
            model_name="fno",
            model_kwargs=model_kwargs,
            field_scale=loader.field_scale,
            dataset_fingerprint=dataset_fingerprint(train_loader),
            extras={"curriculum": curriculum.describe()},
        ),
    )
    engine_name = f"neural:{CHECKPOINT}"
    device = make_device("bending", **DEVICE_KWARGS)
    density = np.full(device.design_shape, 0.5)
    served = device.simulation(density, engine=engine_name).solve("in")
    exact = device.simulation(density).solve("in")
    print(
        f"served as {engine_name}: T(neural)={served.total_transmission():.4f} "
        f"vs T(direct)={exact.total_transmission():.4f}"
    )
    print(
        "(demo scale: a dozen designs and a few epochs exercise the plumbing; "
        "surrogate accuracy needs paper-scale data/epochs — see "
        "benchmarks/bench_training.py)"
    )


if __name__ == "__main__":
    main()
