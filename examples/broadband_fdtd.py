"""Broadband labels from one pulsed FDTD run.

Run with::

    python examples/broadband_fdtd.py

The frequency-domain tiers pay one factorization + solve per wavelength; the
time-domain tier (``engine="fdtd"``) drives a band-covering pulse through the
source port once and extracts fields at *every* requested wavelength with
running DFTs.  This script evaluates the WDM demultiplexer across the
1.53-1.57 um band both ways, prints the per-wavelength transmissions side by
side (they agree to ~0.2%), compares wall-clock, and finishes by generating a
small broadband-labelled shard dataset — the same ``wavelengths=`` knob,
plumbed through the sharded generator (CLI: ``--wavelengths``).

Set ``REPRO_EXAMPLES_QUICK=1`` for a seconds-scale smoke run (used by CI).
"""

import os
import time

import numpy as np

from repro.data.generator import generate_dataset
from repro.devices import make_device
from repro.fdfd.engine import make_engine
from repro.invdes.adjoint import NumericalFieldBackend, evaluate_specs

QUICK = os.environ.get("REPRO_EXAMPLES_QUICK", "") not in ("", "0")


def main() -> None:
    # 1. A WDM demultiplexer: the device whose job *is* wavelength splitting,
    #    so broadband labels are what you actually want for it.
    if QUICK:
        device = make_device("wdm", fidelity="low")
        wavelengths = [1.53, 1.55, 1.57]
    else:
        device = make_device("wdm", fidelity="high", dl=0.06)
        wavelengths = list(np.round(np.linspace(1.53, 1.57, 7), 6))
    density = np.random.default_rng(3).random(device.design_shape)
    print(f"device: {device.name}, grid {device.grid.shape}, "
          f"{len(wavelengths)} wavelengths in [{wavelengths[0]}, {wavelengths[-1]}] um")

    # 2. One pulsed time-domain run labels the whole band at once.  The first
    #    call also integrates the straight-waveguide normalization reference
    #    (as a second batch item of the same run); it is cached process-wide
    #    afterwards, so later designs pay a single integration each.
    fdtd = NumericalFieldBackend(engine=make_engine("fdtd", precision="single"))
    start = time.perf_counter()
    broadband = evaluate_specs(
        device, density, backend=fdtd, compute_gradient=False, wavelengths=wavelengths
    )
    fdtd_s = time.perf_counter() - start

    # 3. The same labels from the frequency domain: any non-FDTD engine falls
    #    back to one solve per wavelength behind the identical API.
    direct = NumericalFieldBackend(engine=make_engine("direct"))
    start = time.perf_counter()
    reference = evaluate_specs(
        device, density, backend=direct, compute_gradient=False, wavelengths=wavelengths
    )
    fdfd_s = time.perf_counter() - start

    # 4. Side-by-side transmissions, wavelength-major (w0 x specs, w1 x ...).
    ports = sorted(reference[0].transmissions)
    print(f"\n{'lambda [um]':>11}  {'port':>6}  {'FDTD':>8}  {'FDFD':>8}  {'diff':>8}")
    for index, (got, ref) in enumerate(zip(broadband, reference)):
        if index % len(device.specs) != 0:
            continue  # one excitation per wavelength is enough for the table
        for port in ports:
            print(
                f"{got.spec.wavelength:>11.4f}  {port:>6}  "
                f"{got.transmissions[port]:>8.4f}  {ref.transmissions[port]:>8.4f}  "
                f"{abs(got.transmissions[port] - ref.transmissions[port]):>8.1e}"
            )
    worst = max(
        abs(g.transmissions[p] - r.transmissions[p])
        for g, r in zip(broadband, reference)
        for p in r.transmissions
    )
    print(f"\nworst transmission disagreement: {worst:.4f}")
    print(f"FDTD (one pulsed run): {fdtd_s:.2f}s   "
          f"FDFD ({len(wavelengths)} solves): {fdfd_s:.2f}s")

    # 5. Broadband shards: the same knob rides through the sharded generator
    #    (forward-only — gradients stay single-wavelength), giving datasets
    #    with one sample per (design, fidelity, wavelength, excitation).
    dataset = generate_dataset(
        "wdm",
        "random",
        num_designs=2,
        fidelities=("low",),
        with_gradient=False,
        engine="fdtd",
        wavelengths=tuple(wavelengths),
        shard_dir="broadband_shards",
    )
    sampled = sorted({float(s.wavelength) for s in (dataset[i] for i in range(len(dataset)))})
    print(f"\ngenerated {len(dataset)} broadband samples into broadband_shards/ "
          f"at wavelengths {sampled}")


if __name__ == "__main__":
    main()
