"""MAPS-Data + MAPS-Train: generate a multi-fidelity dataset and train a surrogate.

Run with::

    python examples/dataset_and_training.py

The script compares the random and the perturbed optimization-trajectory
sampling strategies on the waveguide-bend device, trains an FNO surrogate on
the better dataset and reports the standardized evaluation metrics (normalized
L2 field error and adjoint-gradient similarity).

Generation is sharded: ``workers=`` fans designs out across processes (the
result is bit-identical to the serial path for the same seed), ``shard_dir=``
persists resumable artifacts (``resume=True`` reuses finished shards on
rerun), and ``engine=`` selects the solver fidelity tier end-to-end — a
registry name, a promoted surrogate ``"neural:<checkpoint.npz>"``, or a
per-fidelity mapping such as ``{"low": "iterative", "high": "direct"}``.
The same knobs are available on the command line via
``python -m repro.data.generator``.

Set ``REPRO_EXAMPLES_QUICK=1`` for a seconds-scale smoke run (used by CI).
"""

import os

from repro.data.analysis import distribution_balance, transmission_histogram
from repro.data.dataset import split_dataset
from repro.data.generator import generate_dataset
from repro.train.evaluation import evaluate_model
from repro.train.models import make_model
from repro.train.trainer import Trainer

QUICK = os.environ.get("REPRO_EXAMPLES_QUICK", "") not in ("", "0")
DEVICE_KWARGS = (
    dict(domain=3.0, design_size=1.4, dl=0.1) if QUICK else dict(domain=3.5, design_size=1.8)
)


def histogram_row(dataset, bins=10) -> str:
    fractions, _ = transmission_histogram(dataset, bins=bins)
    return " ".join(f"{f:4.2f}" for f in fractions)


def main() -> None:
    # 1. Generate two datasets with different sampling strategies.  Labelling
    #    shards fan out over worker processes (workers=0 would use every
    #    core), and the solver tier is picked per run with engine=; both are
    #    throughput/fidelity knobs that never change the labels.
    datasets = {}
    for strategy in ("random", "perturbed_opt_traj"):
        datasets[strategy] = generate_dataset(
            "bending",
            strategy,
            num_designs=4 if QUICK else 16,
            seed=0,
            with_gradient=False,
            strategy_kwargs=dict(iterations=4 if QUICK else 10) if strategy != "random" else None,
            device_kwargs=DEVICE_KWARGS,
            # or "iterative", "neural:<checkpoint.npz>", or a per-fidelity
            # mapping like {"low": "iterative", "high": "direct"}
            engine="direct",
            workers=2,
        )
        print(f"{strategy:20s} FoM histogram: {histogram_row(datasets[strategy])}"
              f"   balance={distribution_balance(datasets[strategy]):.2f}")

    # 2. Train an FNO surrogate on the perturbed-trajectory dataset.
    dataset = datasets["perturbed_opt_traj"]
    dataset.save("bend_dataset.npz")
    train, test = split_dataset(dataset, train_fraction=0.75, rng=0)
    if QUICK:
        model = make_model("fno", width=8, modes=(3, 3), depth=2, rng=0)
    else:
        model = make_model("fno", width=16, modes=(6, 6), depth=3, rng=0)
    trainer = Trainer(
        model, train, test, epochs=2 if QUICK else 15, batch_size=6,
        learning_rate=3e-3, seed=0,
    )
    trainer.train(verbose=True)

    # 3. Standardized evaluation: field error + gradient similarity.
    metrics = evaluate_model(
        model, train, test, num_gradient_samples=1 if QUICK else 3, rng=0
    )
    print("\nstandardized metrics:")
    for key, value in metrics.items():
        print(f"  {key:16s} {value:.4f}")

    model.save("bend_fno.npz")
    print("saved dataset to bend_dataset.npz and model to bend_fno.npz")


if __name__ == "__main__":
    main()
