"""Serving solves: request coalescing and the cross-process cache fabric.

Run with::

    python examples/solve_service.py

Two serving-layer ideas, demonstrated on one bend device:

1. **Request coalescing** — several client threads ask for solves of the
   *same* operator at once (the steady state of a label server or a batched
   inverse-design evaluator).  Hitting the engine directly, the cold
   factorization cache sees a thundering herd and each racing thread builds
   its own LU.  Routed through a :class:`~repro.service.SolveService`, the
   requests group by ``(engine, grid, omega, eps fingerprint)`` inside a
   few-millisecond micro-batching window and flush as one batched
   ``solve_batch`` call: one factorization, stacked back-substitutions, and
   results bit-identical to serial per-request solves.

2. **Cache fabric** — a :class:`~repro.service.FileFactorizationStore`
   persists every factorization as a memory-mapped artifact keyed by content
   fingerprint.  A *fresh* process (here: a fresh
   :class:`~repro.fdfd.engine.FactorizationCache`) falls through to the
   store and starts solving without ever factorizing — this is what
   ``GeneratorConfig(factorization_store=...)`` gives every worker of a
   sharded generation run, and what lets factorizations survive process
   death.

``benchmarks/bench_service.py`` measures both effects (tail latencies,
throughput, cold-start speedup); this script just walks them at demo scale.

Set ``REPRO_EXAMPLES_QUICK=1`` for a seconds-scale smoke run (used by CI).
"""

import os
import tempfile
import threading
import time

import numpy as np

from repro.constants import wavelength_to_omega
from repro.devices.factory import make_device
from repro.fdfd.engine import DirectEngine, FactorizationCache, eps_fingerprint
from repro.service import FileFactorizationStore, SolveService

QUICK = os.environ.get("REPRO_EXAMPLES_QUICK", "") not in ("", "0")
DEVICE_KWARGS = (
    dict(domain=2.4, design_size=1.2, dl=0.1)
    if QUICK
    else dict(domain=3.5, design_size=1.8, dl=0.05)
)
NUM_CLIENTS = 3 if QUICK else 6


def build_problem():
    device = make_device("bending", fidelity="low", **DEVICE_KWARGS)
    rng = np.random.default_rng(0)
    eps = device.eps_with_design(np.clip(0.5 + 0.2 * rng.normal(size=device.design_shape), 0, 1))
    omega = wavelength_to_omega(device.specs[0].wavelength)
    grid = device.grid
    rhs = np.zeros((NUM_CLIENTS, *grid.shape), dtype=complex)
    for i in range(NUM_CLIENTS):
        ix = rng.integers(grid.npml + 2, grid.nx - grid.npml - 2)
        iy = rng.integers(grid.npml + 2, grid.ny - grid.npml - 2)
        rhs[i, ix, iy] = 1j * omega
    return grid, omega, eps, rhs


def demo_coalescing(grid, omega, eps, rhs) -> None:
    fingerprint = eps_fingerprint(eps)
    serial_engine = DirectEngine(cache=FactorizationCache())
    serial = [
        serial_engine.solve_batch(grid, omega, eps, rhs[i][None], fingerprint=fingerprint)[0]
        for i in range(NUM_CLIENTS)
    ]

    with SolveService(engine=DirectEngine(cache=FactorizationCache()), window=0.01) as service:
        results = [None] * NUM_CLIENTS
        barrier = threading.Barrier(NUM_CLIENTS)

        def client(index: int) -> None:
            barrier.wait()  # everyone fires at once: the thundering herd
            results[index] = service.solve(grid, omega, eps, rhs[index], fingerprint=fingerprint)

        threads = [threading.Thread(target=client, args=(i,)) for i in range(NUM_CLIENTS)]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - start
        stats = service.stats.as_dict()
        factorizations = service.engine.cache.stats.factorizations

    identical = all(np.array_equal(results[i], serial[i]) for i in range(NUM_CLIENTS))
    print(f"coalescing: {NUM_CLIENTS} concurrent clients in {elapsed:.3f}s")
    print(
        f"  {stats['requests']} requests -> {stats['batches']} batched engine call(s), "
        f"{factorizations} factorization(s)"
    )
    print(f"  bit-identical to serial per-request solves: {identical}")
    assert identical and factorizations == 1


def demo_cache_fabric(grid, omega, eps, rhs) -> None:
    fingerprint = eps_fingerprint(eps)
    with tempfile.TemporaryDirectory(prefix="solve_service_store_") as tmp:
        store = FileFactorizationStore(tmp)

        # "Process one" factorizes and publishes as a side effect of solving.
        publisher = DirectEngine(cache=FactorizationCache(store=store))
        start = time.perf_counter()
        publisher.solve_batch(grid, omega, eps, rhs, fingerprint=fingerprint)
        cold = time.perf_counter() - start

        # "Process two": a fresh cache + the shared store. The LU is
        # memory-mapped from disk; no factorization happens here.
        fresh_cache = FactorizationCache(store=store)
        warm_engine = DirectEngine(cache=fresh_cache)
        start = time.perf_counter()
        warm_engine.solve_batch(grid, omega, eps, rhs, fingerprint=fingerprint)
        warm = time.perf_counter() - start

        print(f"cache fabric: {len(store)} artifact(s) in {tmp}")
        print(f"  cold first solve (factorize + publish): {cold:.3f}s")
        print(f"  fresh-cache first solve via warm store: {warm:.3f}s")
        print(f"  store counters: {store.stats.as_dict()}")
        assert fresh_cache.stats.factorizations == 0
        assert fresh_cache.stats.store_hits == 1


def main() -> None:
    grid, omega, eps, rhs = build_problem()
    print(f"bend device, grid {grid.nx}x{grid.ny}")
    demo_coalescing(grid, omega, eps, rhs)
    demo_cache_fabric(grid, omega, eps, rhs)


if __name__ == "__main__":
    main()
