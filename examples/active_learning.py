"""Closed-loop active learning: let the surrogate choose its own labels.

Run with::

    python examples/active_learning.py

The loop alternates train → evaluate → acquire → regenerate: each round the
current surrogate is promoted to a checkpoint-backed ``neural:<checkpoint.npz>``
engine, a pool of candidate designs is scored by how much the surrogate
disagrees with the cheap ``iterative`` tier, and only the top-k designs are
labelled at the exact tier (``workers=``/``resume`` work here like in any
generation run — the seed shards are reused on rerun).  New shards append to
the same directory; ``ShardDataLoader.refresh()`` folds them in without
touching existing samples, and the acquisition scores ride along as
per-sample loss weights.

``benchmarks/bench_active.py`` measures the payoff against random
acquisition; this script just walks the loop at demo scale.

Set ``REPRO_EXAMPLES_QUICK=1`` for a seconds-scale smoke run (used by CI).
"""

import os

from repro.data.generator import DatasetGenerator, GeneratorConfig
from repro.train import ActiveLearningConfig, ActiveLearningLoop, make_model

QUICK = os.environ.get("REPRO_EXAMPLES_QUICK", "") not in ("", "0")
SHARD_DIR = "active_shards_quick" if QUICK else "active_shards"
DEVICE_KWARGS = dict(domain=3.0, design_size=1.4, dl=0.1)
STRATEGY_KWARGS = dict(iterations=3 if QUICK else 8)
MODEL_KWARGS = (
    dict(width=8, modes=(3, 3), depth=2, rng=0)
    if QUICK
    else dict(width=12, modes=(4, 4), depth=2, rng=0)
)


def main() -> None:
    # A fixed exact-labelled hold-out the loop is judged on (never trained on).
    val_set = DatasetGenerator(
        GeneratorConfig(
            device_name="bending",
            strategy="perturbed_opt_traj",
            num_designs=3 if QUICK else 8,
            fidelities=("high",),
            engine="direct",
            with_gradient=False,
            seed=1234,
            strategy_kwargs=STRATEGY_KWARGS,
            device_kwargs=DEVICE_KWARGS,
        )
    ).generate()

    loop = ActiveLearningLoop(
        model=make_model("ffno", **MODEL_KWARGS),
        model_name="ffno",
        model_kwargs=MODEL_KWARGS,
        # The seed run: a handful of exact labels in a growing shard_dir.
        generator_config=GeneratorConfig(
            device_name="bending",
            strategy="perturbed_opt_traj",
            num_designs=3 if QUICK else 6,
            fidelities=("high",),
            engine="direct",
            with_gradient=False,
            seed=0,
            strategy_kwargs=STRATEGY_KWARGS,
            device_kwargs=DEVICE_KWARGS,
            shard_size=3,
            shard_dir=SHARD_DIR,
        ),
        val_set=val_set,
        config=ActiveLearningConfig(
            rounds=2 if QUICK else 4,
            candidates_per_round=4 if QUICK else 16,
            acquire_per_round=2 if QUICK else 3,
            epochs_per_round=2 if QUICK else 12,
            acquisition="disagreement",
            seed=0,
        ),
        trainer_kwargs=dict(batch_size=4, learning_rate=3e-3),
    )
    records = loop.run()

    print(f"\n{'round':>5s} {'exact labels':>12s} {'val N-L2':>9s}  acquired (weight)")
    for record in records:
        acquired = ", ".join(
            f"#{i} ({w:.2f})"
            for i, w in zip(record.acquired_design_ids, record.sample_weights)
        )
        print(
            f"{record.round_index:5d} {record.exact_labels:12d} "
            f"{record.val_n_l2:9.4f}  {acquired or '-'}"
        )
    print(f"\nfinal servable engine: {loop.checkpoint}")
    print(f"shards in {SHARD_DIR}/ (rerunning resumes them)")


if __name__ == "__main__":
    main()
