"""Variation-aware inverse design of a waveguide crossing.

Run with::

    python examples/fabrication_aware_design.py

The script optimizes the same device twice — once nominally and once with the
variation-aware (robust) objective that averages the figure of merit over
lithography/etch/operating corners — and compares how both designs hold up
across the corner set.  (Both problems accept ``engine=`` like everything
else: ``"recycled"`` for faster iterations, ``"neural:<checkpoint.npz>"`` for
a surrogate-driven loop.)

Set ``REPRO_EXAMPLES_QUICK=1`` for a seconds-scale smoke run (used by CI).
"""

import os

import numpy as np

from repro.devices import make_device
from repro.fabrication import EtchModel, FabricationCorner, LithographyModel, WavelengthDrift
from repro.invdes import AdjointOptimizer, InverseDesignProblem, RobustInverseDesignProblem

QUICK = os.environ.get("REPRO_EXAMPLES_QUICK", "") not in ("", "0")


def make_corners() -> list[FabricationCorner]:
    litho = LithographyModel(blur_sigma_cells=1.2)
    return [
        FabricationCorner(name="nominal", pattern_transforms=[litho], weight=2.0),
        FabricationCorner(name="over_etch", pattern_transforms=[litho, EtchModel(+1.0)]),
        FabricationCorner(name="under_etch", pattern_transforms=[litho, EtchModel(-1.0)]),
        FabricationCorner(
            name="wavelength_drift",
            pattern_transforms=[litho],
            wavelength_drift=WavelengthDrift(0.01),
        ),
    ]


def main() -> None:
    size = dict(domain=3.0, design_size=1.4) if QUICK else dict(domain=3.5, design_size=1.8)
    device = make_device("crossing", fidelity="low", **size)
    iterations = 2 if QUICK else 15

    # Nominal optimization (no corner awareness).
    nominal_problem = InverseDesignProblem(device)
    nominal_traj = AdjointOptimizer(nominal_problem, learning_rate=0.2).run(
        theta0=nominal_problem.initial_theta("waveguide"), iterations=iterations
    )
    nominal_theta = nominal_traj.best().theta

    # Variation-aware optimization over the corner set.
    corners = make_corners()
    robust_problem = RobustInverseDesignProblem(InverseDesignProblem(device), corners=corners)
    robust_traj = AdjointOptimizer(robust_problem, learning_rate=0.2).run(
        theta0=robust_problem.initial_theta("waveguide"), iterations=iterations
    )
    robust_theta = robust_traj.best().theta

    # Compare both designs across every corner.
    checker = RobustInverseDesignProblem(InverseDesignProblem(device), corners=corners)
    nominal_corners = checker.corner_foms(nominal_theta)
    robust_corners = checker.corner_foms(robust_theta)

    print(f"{'corner':20s} {'nominal design':>15s} {'robust design':>15s}")
    for name in nominal_corners:
        print(f"{name:20s} {nominal_corners[name]:15.3f} {robust_corners[name]:15.3f}")
    worst_nominal = min(nominal_corners.values())
    worst_robust = min(robust_corners.values())
    print(f"\nworst-corner FoM: nominal {worst_nominal:.3f}  vs  robust {worst_robust:.3f}")
    np.save("crossing_robust_density.npy", robust_traj.best().density)


if __name__ == "__main__":
    main()
