"""Documentation-rot gates: the docs must stay executable and complete.

The README quickstart is *executed* (not just rendered), README links must
resolve, the engine-registry table must cover every registered engine, and
every example script must be documented and quick-mode capable (CI runs them
all with ``REPRO_EXAMPLES_QUICK=1``).
"""

import re
from pathlib import Path

import numpy as np

REPO = Path(__file__).resolve().parents[1]
README = REPO / "README.md"


def test_readme_quickstart_runs(tmp_path, monkeypatch):
    """The ten-line quickstart is executable documentation — run it."""
    blocks = re.findall(r"```python\n(.*?)```", README.read_text(), re.S)
    assert blocks, "README.md lost its quickstart code block"
    monkeypatch.chdir(tmp_path)
    namespace: dict = {}
    exec(compile(blocks[0], "README-quickstart", "exec"), namespace)
    # The snippet's artifacts and final served result are real.
    assert (tmp_path / "shards").is_dir()
    assert (tmp_path / "surrogate.npz").is_file()
    assert np.isfinite(namespace["served"].ez).all()


def test_readme_links_resolve():
    for link in re.findall(r"\]\(([^)#]+)\)", README.read_text()):
        if not link.startswith(("http://", "https://")):
            assert (REPO / link).exists(), f"README links to missing {link}"
    for doc in (REPO / "docs" / "architecture.md", REPO / "docs" / "examples.md"):
        assert doc.is_file(), f"missing {doc}"


def test_readme_engine_table_covers_registry():
    import repro.surrogate  # noqa: F401 - registers the "neural" tier

    from repro.fdfd.engine import available_engines

    text = README.read_text()
    for name in available_engines():
        assert f"`{name}`" in text, f"engine {name!r} missing from README table"


def test_examples_documented_and_quick_capable():
    examples_doc = (REPO / "docs" / "examples.md").read_text()
    scripts = sorted((REPO / "examples").glob("*.py"))
    assert scripts, "examples/ is empty?"
    for path in scripts:
        assert f"`{path.name}`" in examples_doc, (
            f"{path.name} has no walkthrough in docs/examples.md"
        )
        assert "REPRO_EXAMPLES_QUICK" in path.read_text(), (
            f"{path.name} does not support quick mode (CI runs all examples "
            "with REPRO_EXAMPLES_QUICK=1)"
        )


def test_benchmark_records_readme_mentions_exist():
    """Every BENCH_*.json named in the README is actually committed."""
    text = README.read_text()
    for name in re.findall(r"`(BENCH_\w+\.json)`", text):
        assert (REPO / "benchmarks" / name).is_file(), f"{name} not committed"
