"""End-to-end integration tests tying the three MAPS components together."""

import numpy as np
import pytest

from repro.data.dataset import split_dataset
from repro.data.generator import generate_dataset
from repro.invdes import AdjointOptimizer, InverseDesignProblem
from repro.parametrization.analysis import binarization_level
from repro.surrogate import NeuralFieldBackend
from repro.train.evaluation import evaluate_model
from repro.train.models import make_model
from repro.train.trainer import Trainer

from tests.conftest import TINY_DEVICE_KWARGS


@pytest.mark.parametrize("strategy", ["random", "perturbed_opt_traj"])
def test_data_generation_to_training_pipeline(strategy):
    """MAPS-Data -> MAPS-Train: generate, split, train, evaluate."""
    dataset = generate_dataset(
        "bending",
        strategy,
        num_designs=6,
        seed=0,
        with_gradient=False,
        strategy_kwargs=dict(iterations=4) if strategy != "random" else None,
        device_kwargs=TINY_DEVICE_KWARGS,
    )
    train, test = split_dataset(dataset, 0.7, rng=0)
    model = make_model("fno", width=8, modes=(4, 4), depth=2, rng=0)
    trainer = Trainer(model, train, test, epochs=2, batch_size=3, seed=0)
    history = trainer.train()
    metrics = evaluate_model(model, train, test, num_gradient_samples=1, rng=0)
    assert np.isfinite(metrics["train_n_l2"])
    assert np.isfinite(metrics["test_n_l2"])
    assert len(history) == 2


def test_inverse_design_produces_manufacturable_high_performance_bend(tiny_bend):
    """MAPS-InvDes: the optimized bend transmits well and is mostly binary."""
    problem = InverseDesignProblem(tiny_bend)
    optimizer = AdjointOptimizer(
        problem, learning_rate=0.25, beta_schedule={0: 4.0, 6: 12.0}
    )
    trajectory = optimizer.run(theta0=problem.initial_theta("waveguide"), iterations=12)
    best = trajectory.best()
    assert best.fom > 0.5
    assert binarization_level(trajectory[-1].density) > 0.5
    # The figure of merit reported by the trajectory is consistent with a fresh
    # FDFD evaluation of the recorded density.
    assert tiny_bend.figure_of_merit(best.density) == pytest.approx(
        best.transmissions[f"in->out"], abs=0.05
    )


def test_neural_backend_plugs_into_inverse_design(tiny_bend, tiny_splits):
    """MAPS-Train -> MAPS-InvDes: an (undertrained) surrogate drives the loop."""
    train, _ = tiny_splits
    model = make_model("fno", width=8, modes=(4, 4), depth=2, rng=0)
    Trainer(model, train, epochs=1, batch_size=3, seed=0).train()
    backend = NeuralFieldBackend(model, train.field_scale)
    problem = InverseDesignProblem(tiny_bend, backend=backend)
    theta = problem.initial_theta("waveguide")
    fom, grad = problem.value_and_grad(theta)
    assert np.isfinite(fom)
    assert grad.shape == theta.shape
    assert np.all(np.isfinite(grad))
