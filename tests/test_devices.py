"""Tests for the benchmark device library."""

import numpy as np
import pytest

from repro import constants
from repro.devices import (
    ModeDemultiplexer,
    ThermoOpticSwitch,
    WaveguideBend,
    available_devices,
    make_device,
)
from repro.devices.base import FIDELITY_DL, TargetSpec

from tests.conftest import TINY_DEVICE_KWARGS


class TestFactory:
    def test_available_devices_match_paper(self):
        assert set(available_devices()) == {
            "bending",
            "crossing",
            "optical_diode",
            "mdm",
            "wdm",
            "tos",
            "kerr_switch",
            "kerr_limiter",
        }

    @pytest.mark.parametrize("name", available_devices())
    def test_all_devices_construct(self, name):
        device = make_device(name, fidelity="low")
        assert device.grid.n_points > 0
        assert len(device.specs) >= 1
        assert len(device.geometry.ports) >= 2

    def test_aliases(self):
        assert isinstance(make_device("bend"), WaveguideBend)

    def test_unknown_device_rejected(self):
        with pytest.raises(ValueError):
            make_device("ring_resonator")

    def test_unknown_fidelity_rejected(self):
        with pytest.raises(ValueError):
            make_device("bending", fidelity="ultra")


class TestGeometry:
    @pytest.mark.parametrize("name", available_devices())
    def test_ports_reference_real_waveguides(self, name):
        """Every port cross-section must guide at least one mode."""
        device = make_device(name, fidelity="low")
        eps = device.eps_with_design(np.zeros(device.design_shape))
        omega = constants.wavelength_to_omega(device.specs[0].wavelength)
        for port in device.geometry.ports:
            modes = port.solve_modes(eps, device.grid, omega, num_modes=1)
            assert modes, f"port {port.name} of {name} guides no mode"

    @pytest.mark.parametrize("name", available_devices())
    def test_spec_ports_exist(self, name):
        device = make_device(name, fidelity="low")
        port_names = {p.name for p in device.geometry.ports}
        for spec in device.specs:
            assert spec.source_port in port_names
            assert set(spec.port_weights) <= port_names

    def test_fidelity_changes_resolution(self):
        low = make_device("bending", fidelity="low")
        high = make_device("bending", fidelity="high")
        assert low.dl == FIDELITY_DL["low"]
        assert high.dl == FIDELITY_DL["high"]
        assert high.grid.n_points > low.grid.n_points

    def test_explicit_dl_overrides_fidelity(self):
        device = make_device("bending", dl=0.08)
        assert device.dl == pytest.approx(0.08)

    def test_design_region_inside_interior(self):
        device = make_device("crossing", fidelity="low")
        mask = device.geometry.design_mask()
        assert mask.any()
        assert not (mask & ~device.grid.interior_mask()).any()

    def test_eps_with_design_bounds(self):
        device = make_device("bending", fidelity="low")
        eps = device.eps_with_design(np.ones(device.design_shape))
        sx, sy = device.geometry.design_slice
        np.testing.assert_allclose(eps[sx, sy], device.geometry.eps_core)
        eps0 = device.eps_with_design(np.zeros(device.design_shape))
        np.testing.assert_allclose(eps0[sx, sy], device.geometry.eps_clad)

    def test_eps_with_design_shape_check(self):
        device = make_device("bending", fidelity="low")
        with pytest.raises(ValueError):
            device.eps_with_design(np.zeros((3, 3)))

    def test_eps_with_design_range_check(self):
        device = make_device("bending", fidelity="low")
        with pytest.raises(ValueError):
            device.eps_with_design(np.full(device.design_shape, 1.5))

    def test_passive_device_rejects_state(self):
        device = make_device("bending", fidelity="low")
        with pytest.raises(ValueError):
            device.apply_state(device.geometry.eps_background, {"heater": 1.0})


class TestMultiplexedDevices:
    def test_wdm_specs_use_two_wavelengths(self):
        device = make_device("wdm", fidelity="low")
        assert len(device.wavelengths) == 2
        targets = {spec.wavelength: max(spec.port_weights, key=spec.port_weights.get) for spec in device.specs}
        assert len(set(targets.values())) == 2

    def test_mdm_input_guides_two_modes(self):
        device = ModeDemultiplexer(fidelity="low")
        eps = device.eps_with_design(np.zeros(device.design_shape))
        omega = constants.wavelength_to_omega(device.specs[0].wavelength)
        in_port = next(p for p in device.geometry.ports if p.name == "in")
        modes = in_port.solve_modes(eps, device.grid, omega, num_modes=2)
        assert len(modes) == 2

    def test_mdm_specs_target_different_outputs(self):
        device = make_device("mdm", fidelity="low")
        targets = [max(s.port_weights, key=s.port_weights.get) for s in device.specs]
        assert len(set(targets)) == 2
        assert [s.source_mode for s in device.specs] == [0, 1]


class TestThermoOpticSwitch:
    def test_heater_changes_permittivity_only_under_heater(self):
        device = ThermoOpticSwitch(fidelity="low")
        eps = device.eps_with_design(np.full(device.design_shape, 0.5))
        heated = device.apply_state(eps, {"heater": 1.0})
        diff = heated - eps
        heater_mask = np.zeros(device.grid.shape, dtype=bool)
        heater_mask[device.heater_slice()] = True
        assert np.allclose(diff[~heater_mask], 0.0)
        assert np.allclose(diff[heater_mask], device.heater_delta_eps)

    def test_zero_drive_is_identity(self):
        device = ThermoOpticSwitch(fidelity="low")
        eps = device.eps_with_design(np.full(device.design_shape, 0.5))
        np.testing.assert_allclose(device.apply_state(eps, {"heater": 0.0}), eps)

    def test_unknown_state_key_rejected(self):
        device = ThermoOpticSwitch(fidelity="low")
        eps = device.eps_with_design(np.full(device.design_shape, 0.5))
        with pytest.raises(ValueError):
            device.apply_state(eps, {"voltage": 1.0})

    def test_specs_cover_both_states(self):
        device = ThermoOpticSwitch(fidelity="low")
        drives = sorted(spec.state.get("heater", 0.0) for spec in device.specs)
        assert drives == [0.0, 1.0]

    def test_equivalent_temperature_is_documented_as_exaggerated(self):
        assert ThermoOpticSwitch.equivalent_temperature_shift(0.8) > 100.0


class TestFigureOfMerit:
    def test_tiny_bend_fom_in_unit_range(self, tiny_bend):
        fom = tiny_bend.figure_of_merit(np.full(tiny_bend.design_shape, 0.5))
        assert 0.0 <= fom <= 1.2

    def test_full_design_beats_empty_design_for_crossing(self, tiny_crossing):
        """A solid design slab transmits more across the crossing than pure cladding."""
        empty = tiny_crossing.figure_of_merit(np.zeros(tiny_crossing.design_shape))
        full = tiny_crossing.figure_of_merit(np.ones(tiny_crossing.design_shape))
        assert full > empty

    def test_simulate_spec_returns_monitored_ports(self, tiny_bend):
        spec = tiny_bend.specs[0]
        result = tiny_bend.simulate_spec(np.full(tiny_bend.design_shape, 0.5), spec)
        assert set(result.transmissions) == set(spec.monitored_ports())

    def test_initial_density_kinds(self, tiny_bend):
        for kind in ("uniform", "random", "waveguide"):
            density = tiny_bend.initial_density(kind=kind, rng=0)
            assert density.shape == tiny_bend.design_shape
            assert density.min() >= 0.0 and density.max() <= 1.0


class TestTargetSpec:
    def test_monitored_ports(self):
        spec = TargetSpec(source_port="in", port_weights={"out": 1.0, "top": -0.5})
        assert set(spec.monitored_ports()) == {"out", "top"}

    def test_defaults(self):
        spec = TargetSpec(source_port="in")
        assert spec.wavelength == constants.DEFAULT_WAVELENGTH
        assert spec.state == {}
        assert spec.weight == 1.0
