"""Tests for physical constants and unit conversions."""

import math

import pytest

from repro import constants


def test_speed_of_light_relation():
    assert constants.EPSILON_0 * constants.MU_0 * constants.C_0**2 == pytest.approx(1.0)


def test_impedance_of_free_space():
    assert constants.ETA_0 == pytest.approx(376.73, rel=1e-3)


def test_material_permittivities():
    assert constants.EPS_SI == pytest.approx(constants.N_SI**2)
    assert constants.EPS_SIO2 == pytest.approx(constants.N_SIO2**2)
    assert constants.EPS_SI > constants.EPS_SIO2 > constants.EPS_AIR


def test_wavelength_to_omega_roundtrip():
    omega = constants.wavelength_to_omega(1.55)
    assert constants.omega_to_wavelength(omega) == pytest.approx(1.55)


def test_wavelength_to_omega_value():
    omega = constants.wavelength_to_omega(1.55)
    expected = 2 * math.pi * constants.C_0 / 1.55e-6
    assert omega == pytest.approx(expected)


@pytest.mark.parametrize("bad", [0.0, -1.0])
def test_wavelength_to_omega_rejects_nonpositive(bad):
    with pytest.raises(ValueError):
        constants.wavelength_to_omega(bad)


@pytest.mark.parametrize("bad", [0.0, -5.0])
def test_omega_to_wavelength_rejects_nonpositive(bad):
    with pytest.raises(ValueError):
        constants.omega_to_wavelength(bad)


def test_wdm_wavelengths_bracket_default():
    low, high = constants.WDM_WAVELENGTHS
    assert low < constants.DEFAULT_WAVELENGTH < high
