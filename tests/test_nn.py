"""Tests for the neural-network library: modules, layers, spectral blocks, optimizers."""

import numpy as np
import pytest

from repro import nn
from repro.autograd import Tensor
from repro.nn.module import Parameter


class TestModule:
    def test_parameter_registration(self):
        layer = nn.Linear(3, 2, rng=0)
        names = dict(layer.named_parameters())
        assert set(names) == {"weight", "bias"}

    def test_nested_module_parameters(self):
        model = nn.Sequential(nn.Linear(3, 4, rng=0), nn.Linear(4, 2, rng=1))
        assert len(list(model.parameters())) == 4
        assert model.num_parameters() == 3 * 4 + 4 + 4 * 2 + 2

    def test_train_eval_propagates(self):
        model = nn.Sequential(nn.Linear(2, 2, rng=0), nn.Dropout(0.5))
        model.eval()
        assert all(not m.training for m in model.modules())
        model.train()
        assert all(m.training for m in model.modules())

    def test_state_dict_roundtrip(self):
        model = nn.Sequential(nn.Linear(3, 3, rng=0), nn.Linear(3, 1, rng=1))
        clone = nn.Sequential(nn.Linear(3, 3, rng=2), nn.Linear(3, 1, rng=3))
        clone.load_state_dict(model.state_dict())
        x = Tensor(np.random.default_rng(0).normal(size=(4, 3)))
        np.testing.assert_allclose(model(x).data, clone(x).data)

    def test_load_state_dict_rejects_mismatch(self):
        model = nn.Linear(3, 2, rng=0)
        with pytest.raises(KeyError):
            model.load_state_dict({"weight": np.zeros((2, 3))})

    def test_load_state_dict_rejects_bad_shape(self):
        model = nn.Linear(3, 2, rng=0)
        state = model.state_dict()
        state["weight"] = np.zeros((5, 5))
        with pytest.raises(ValueError):
            model.load_state_dict(state)

    def test_save_load_file(self, tmp_path):
        model = nn.Linear(4, 2, rng=0)
        path = tmp_path / "model.npz"
        model.save(str(path))
        clone = nn.Linear(4, 2, rng=9)
        clone.load(str(path))
        np.testing.assert_allclose(model.weight.data, clone.weight.data)

    def test_zero_grad(self):
        model = nn.Linear(2, 1, rng=0)
        out = model(Tensor(np.ones((3, 2)))).sum()
        out.backward()
        assert model.weight.grad is not None
        model.zero_grad()
        assert model.weight.grad is None

    def test_module_list(self):
        items = nn.ModuleList([nn.Linear(2, 2, rng=i) for i in range(3)])
        assert len(items) == 3
        assert len(list(items.parameters())) == 6
        assert isinstance(items[1], nn.Linear)


class TestLayers:
    def test_linear_shape(self):
        layer = nn.Linear(5, 3, rng=0)
        assert layer(Tensor(np.zeros((7, 5)))).shape == (7, 3)

    def test_linear_no_bias(self):
        layer = nn.Linear(5, 3, bias=False, rng=0)
        assert layer.bias is None
        assert len(list(layer.parameters())) == 1

    def test_conv2d_shape_same_padding(self):
        layer = nn.Conv2d(3, 8, kernel_size=3, padding="same", rng=0)
        assert layer(Tensor(np.zeros((2, 3, 9, 11)))).shape == (2, 8, 9, 11)

    def test_conv2d_stride(self):
        layer = nn.Conv2d(1, 2, kernel_size=3, stride=2, padding=1, rng=0)
        assert layer(Tensor(np.zeros((1, 1, 8, 8)))).shape == (1, 2, 4, 4)

    def test_conv2d_same_padding_requires_unit_stride(self):
        with pytest.raises(ValueError):
            nn.Conv2d(1, 1, kernel_size=3, stride=2, padding="same")

    def test_groupnorm_normalizes(self):
        layer = nn.GroupNorm(2, 4)
        x = Tensor(np.random.default_rng(0).normal(size=(2, 4, 8, 8)) * 5 + 3)
        out = layer(x).data
        grouped = out.reshape(2, 2, 2, 8, 8)
        np.testing.assert_allclose(grouped.mean(axis=(2, 3, 4)), 0.0, atol=1e-6)
        np.testing.assert_allclose(grouped.std(axis=(2, 3, 4)), 1.0, atol=1e-3)

    def test_groupnorm_divisibility_check(self):
        with pytest.raises(ValueError):
            nn.GroupNorm(3, 4)

    def test_layernorm_normalizes_last_dim(self):
        layer = nn.LayerNorm(6)
        x = Tensor(np.random.default_rng(0).normal(size=(4, 6)) * 2 + 1)
        out = layer(x).data
        np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-6)

    def test_activations_shapes(self):
        x = Tensor(np.linspace(-2, 2, 12).reshape(3, 4))
        for layer in [nn.ReLU(), nn.GELU(), nn.Tanh(), nn.Sigmoid(), nn.Identity()]:
            assert layer(x).shape == x.shape

    def test_relu_nonnegative(self):
        out = nn.ReLU()(Tensor(np.linspace(-5, 5, 11)))
        assert (out.data >= 0).all()

    def test_dropout_training_vs_eval(self):
        layer = nn.Dropout(0.9, rng=0)
        x = Tensor(np.ones((10, 10)))
        layer.train()
        dropped = layer(x).data
        layer.eval()
        kept = layer(x).data
        assert (dropped == 0).any()
        np.testing.assert_allclose(kept, 1.0)

    def test_pool_and_upsample_modules(self):
        x = Tensor(np.zeros((1, 2, 8, 8)))
        assert nn.AvgPool2d(2)(x).shape == (1, 2, 4, 4)
        assert nn.UpsampleNearest2d(2)(x).shape == (1, 2, 16, 16)


class TestSpectralLayers:
    def test_spectral_conv2d_shapes(self):
        layer = nn.SpectralConv2d(3, 5, (3, 4), rng=0)
        assert layer(Tensor(np.zeros((2, 3, 12, 14)))).shape == (2, 5, 12, 14)

    def test_factorized_spectral_shapes(self):
        layer = nn.FactorizedSpectralConv2d(3, 5, (3, 4), rng=0)
        assert layer(Tensor(np.zeros((2, 3, 12, 14)))).shape == (2, 5, 12, 14)

    def test_factorized_has_fewer_parameters(self):
        modes = (6, 6)
        dense = nn.SpectralConv2d(8, 8, modes, rng=0)
        factorized = nn.FactorizedSpectralConv2d(8, 8, modes, rng=0)
        assert factorized.num_parameters() < dense.num_parameters()

    def test_spectral_layer_trains(self):
        """With all modes retained, a spectral layer can learn a circular shift."""
        rng = np.random.default_rng(0)
        layer = nn.SpectralConv2d(1, 1, (6, 6), rng=0)
        x = Tensor(rng.normal(size=(4, 1, 12, 12)))
        target = Tensor(np.roll(x.data, 1, axis=-1))
        optimizer = nn.Adam(layer.parameters(), lr=2e-2)
        first_loss = None
        for _ in range(80):
            optimizer.zero_grad()
            loss = ((layer(x) - target) ** 2).mean()
            loss.backward()
            optimizer.step()
            if first_loss is None:
                first_loss = loss.item()
        assert loss.item() < 0.5 * first_loss


class TestOptimizers:
    @staticmethod
    def _quadratic_problem(optimizer_factory, steps=60):
        target = np.array([1.5, -2.0, 0.5])
        param = Parameter(np.zeros(3))
        optimizer = optimizer_factory([param])
        for _ in range(steps):
            optimizer.zero_grad()
            loss = ((param - Tensor(target)) ** 2).sum()
            loss.backward()
            optimizer.step()
        return param.data, target

    def test_sgd_converges(self):
        value, target = self._quadratic_problem(lambda p: nn.SGD(p, lr=0.1))
        np.testing.assert_allclose(value, target, atol=1e-2)

    def test_sgd_momentum_converges(self):
        value, target = self._quadratic_problem(
            lambda p: nn.SGD(p, lr=0.05, momentum=0.9), steps=150
        )
        np.testing.assert_allclose(value, target, atol=5e-2)

    def test_adam_converges(self):
        value, target = self._quadratic_problem(lambda p: nn.Adam(p, lr=0.2), steps=120)
        np.testing.assert_allclose(value, target, atol=5e-2)

    def test_weight_decay_shrinks_solution(self):
        no_decay, target = self._quadratic_problem(lambda p: nn.Adam(p, lr=0.2), steps=150)
        decayed, _ = self._quadratic_problem(
            lambda p: nn.Adam(p, lr=0.2, weight_decay=0.5), steps=150
        )
        assert np.linalg.norm(decayed) < np.linalg.norm(no_decay)

    def test_empty_parameter_list_rejected(self):
        with pytest.raises(ValueError):
            nn.Adam([], lr=0.1)

    def test_invalid_lr_rejected(self):
        with pytest.raises(ValueError):
            nn.SGD([Parameter(np.zeros(2))], lr=0.0)

    def test_cosine_schedule_decays_to_min(self):
        optimizer = nn.Adam([Parameter(np.zeros(2))], lr=1.0)
        schedule = nn.CosineSchedule(optimizer, total_epochs=10, min_lr=0.1)
        lrs = [schedule.step() for _ in range(10)]
        assert lrs[-1] == pytest.approx(0.1, abs=1e-6)
        assert all(earlier >= later - 1e-12 for earlier, later in zip(lrs, lrs[1:]))

    def test_step_schedule_halves(self):
        optimizer = nn.SGD([Parameter(np.zeros(2))], lr=1.0)
        schedule = nn.StepSchedule(optimizer, step_size=2, gamma=0.5)
        lrs = [schedule.step() for _ in range(4)]
        assert lrs == pytest.approx([1.0, 0.5, 0.5, 0.25])
