"""Tests for the deterministic fault-injection harness (repro.utils.faults)
and its end-to-end recovery contracts through :class:`DatasetGenerator`."""

import os
import time

import pytest

from repro.data.dataset import datasets_bit_identical
from repro.data.generator import (
    DatasetGenerator,
    GeneratorConfig,
    ShardExecutionError,
)
import repro.data.generator as generator_module
from repro.data.shards import run_shard as real_run_shard
from repro.fdfd.engine import default_factorization_cache
from repro.service.cache_store import FileFactorizationStore
from repro.utils import faults

from tests.conftest import TINY_DEVICE_KWARGS


BASE_CONFIG = dict(
    device_name="bending",
    strategy="random",
    num_designs=4,
    with_gradient=False,
    seed=3,
    device_kwargs=TINY_DEVICE_KWARGS,
    shard_size=2,
    fidelities=("low",),
    max_retries=2,
    retry_backoff=0.05,
)


@pytest.fixture(autouse=True)
def _clean_plan():
    faults.clear_plan()
    yield
    faults.clear_plan()


@pytest.fixture(scope="module")
def baseline(tmp_path_factory):
    """One fault-free reference dataset the fault runs must reproduce."""
    shard_dir = tmp_path_factory.mktemp("baseline-shards")
    faults.clear_plan()
    generator = DatasetGenerator(GeneratorConfig(shard_dir=str(shard_dir), **BASE_CONFIG))
    return generator.generate(workers=2)


class TestFaultPlan:
    def test_json_round_trip(self):
        plan = faults.FaultPlan(
            kill_task=3, delay_task=1, delay_seconds=0.5, truncate_shard=2,
            store_errors=2, store_ops=("load",), scratch="/tmp/x",
        )
        assert faults.FaultPlan.from_json(plan.to_json()) == plan

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown fault-plan keys"):
            faults.FaultPlan.from_json('{"explode_randomly": true}')

    def test_env_plan_resolution_tracks_changes(self, monkeypatch):
        assert faults.get_plan() is None
        monkeypatch.setenv(faults.ENV_VAR, faults.FaultPlan(kill_task=1).to_json())
        assert faults.get_plan().kill_task == 1
        monkeypatch.setenv(faults.ENV_VAR, faults.FaultPlan(kill_task=2).to_json())
        assert faults.get_plan().kill_task == 2
        monkeypatch.delenv(faults.ENV_VAR)
        assert faults.get_plan() is None

    def test_active_plan_installs_and_restores(self):
        assert faults.get_plan() is None
        with faults.active_plan(faults.FaultPlan(delay_task=0)) as plan:
            assert faults.get_plan() is plan
            assert faults.ENV_VAR in os.environ  # workers inherit via env
        assert faults.get_plan() is None
        assert faults.ENV_VAR not in os.environ


class TestInjectors:
    def test_all_hooks_noop_when_disabled(self, tmp_path):
        artifact = tmp_path / "shard.npz"
        artifact.write_bytes(b"payload")
        assert faults.on_task_start(0) is None
        faults.on_store_op("load")  # must not raise
        faults.on_shard_saved(0, artifact)
        assert artifact.read_bytes() == b"payload"  # untouched

    def test_kill_is_noop_outside_workers(self, tmp_path):
        faults.install_plan(
            faults.FaultPlan(kill_task=0, scratch=str(tmp_path))
        )
        # Not marked as a worker: surviving this call is the assertion.
        assert faults.on_task_start(0) is None

    def test_delay_fires_exactly_once(self, tmp_path):
        faults.install_plan(
            faults.FaultPlan(delay_task=0, delay_seconds=0.2, scratch=str(tmp_path))
        )
        start = time.monotonic()
        faults.on_task_start(0)
        first = time.monotonic() - start
        start = time.monotonic()
        faults.on_task_start(0)  # marker already claimed
        second = time.monotonic() - start
        assert first >= 0.2
        assert second < 0.1

    def test_store_errors_fire_exactly_n_times(self, tmp_path):
        faults.install_plan(
            faults.FaultPlan(store_errors=2, store_ops=("load",), scratch=str(tmp_path))
        )
        for _ in range(2):
            with pytest.raises(OSError, match="injected fault"):
                faults.on_store_op("load")
        faults.on_store_op("load")  # budget exhausted: no-op
        faults.on_store_op("publish")  # op not in plan: no-op

    def test_truncate_targets_one_shard(self, tmp_path):
        faults.install_plan(faults.FaultPlan(truncate_shard=1, scratch=str(tmp_path)))
        target = tmp_path / "one.npz"
        other = tmp_path / "zero.npz"
        target.write_bytes(b"x" * 100)
        other.write_bytes(b"y" * 100)
        faults.on_shard_saved(0, other)
        faults.on_shard_saved(1, target)
        faults.on_shard_saved(1, target)  # fires once
        assert other.stat().st_size == 100
        assert target.stat().st_size == 50

    def test_scratch_markers_shared_across_plan_reloads(self, tmp_path):
        plan = faults.FaultPlan(delay_task=0, delay_seconds=0.2, scratch=str(tmp_path))
        with faults.active_plan(plan):
            faults.on_task_start(0)
        # A "new process" (fresh local state, same scratch) must see the claim.
        with faults.active_plan(plan):
            start = time.monotonic()
            faults.on_task_start(0)
            assert time.monotonic() - start < 0.1


class TestStoreFaults:
    def test_injected_load_fault_is_failsoft(self, tmp_path):
        store = FileFactorizationStore(tmp_path / "store")
        faults.install_plan(
            faults.FaultPlan(store_errors=1, store_ops=("load",), scratch=str(tmp_path))
        )

        class _Grid:
            nx, ny, dl, npml = 8, 8, 0.1, 2

        assert store.load(_Grid(), 1.0, "fp", "direct") is None
        assert store.stats.failures == 1  # injected fault, swallowed
        assert store.load(_Grid(), 1.0, "fp", "direct") is None
        assert store.stats.failures == 1  # budget spent: plain miss now


class TestGeneratorFaultRecovery:
    def test_worker_death_recovers_bit_identical(self, baseline, tmp_path):
        default_factorization_cache.clear()
        plan = faults.FaultPlan(kill_task=0, scratch=str(tmp_path / "scratch"))
        with faults.active_plan(plan):
            generator = DatasetGenerator(
                GeneratorConfig(shard_dir=str(tmp_path / "shards"), **BASE_CONFIG)
            )
            dataset = generator.generate(workers=2)
        report = generator.last_task_report
        assert datasets_bit_identical(baseline, dataset)
        assert report.worker_crashes == 1
        assert report.respawns >= 1
        assert report.wasted_executions() <= 1  # < 1 re-shard of waste
        assert not report.serial_fallback

    def test_task_timeout_recovers_bit_identical(self, baseline, tmp_path):
        default_factorization_cache.clear()
        plan = faults.FaultPlan(
            delay_task=0, delay_seconds=30.0, scratch=str(tmp_path / "scratch")
        )
        config = GeneratorConfig(
            shard_dir=str(tmp_path / "shards"), task_timeout=1.5, **BASE_CONFIG
        )
        with faults.active_plan(plan):
            generator = DatasetGenerator(config)
            start = time.monotonic()
            dataset = generator.generate(workers=2)
            elapsed = time.monotonic() - start
        report = generator.last_task_report
        assert datasets_bit_identical(baseline, dataset)
        assert report.timeouts >= 1
        assert report.wasted_executions() <= 1
        assert elapsed < 25.0  # never sat out the injected 30 s delay

    def test_truncated_shard_quarantined_and_recovered(self, baseline, tmp_path):
        default_factorization_cache.clear()
        shard_dir = tmp_path / "shards"
        plan = faults.FaultPlan(truncate_shard=1, scratch=str(tmp_path / "scratch"))
        with faults.active_plan(plan):
            generator = DatasetGenerator(GeneratorConfig(shard_dir=str(shard_dir), **BASE_CONFIG))
            dataset = generator.generate(workers=2)
        assert datasets_bit_identical(baseline, dataset)
        assert generator.last_shard_recoveries == 1
        assert list(shard_dir.glob("*.bad*")), "corpse was not quarantined"

        # The recovery rewrote a valid artifact: a resumed run reuses
        # everything and recomputes nothing.
        resumed = DatasetGenerator(GeneratorConfig(shard_dir=str(shard_dir), **BASE_CONFIG))
        dataset2 = resumed.generate(workers=2)
        assert datasets_bit_identical(baseline, dataset2)
        assert resumed.last_task_report.attempts == {}

    def test_permanent_failure_surfaces_and_resume_recomputes_exactly_it(
        self, baseline, tmp_path, monkeypatch
    ):
        shard_dir = tmp_path / "shards"
        config = GeneratorConfig(
            shard_dir=str(shard_dir), **{**BASE_CONFIG, "max_retries": 1}
        )

        def failing_run_shard(task):
            if task.spec.index == 1:
                raise RuntimeError("injected permanent shard failure")
            return real_run_shard(task)

        monkeypatch.setattr(generator_module, "run_shard", failing_run_shard)
        generator = DatasetGenerator(config)
        with pytest.raises(ShardExecutionError) as excinfo:
            generator.generate(workers=1)
        error = excinfo.value
        assert len(error.shard_failures) == 1
        assert error.shard_failures[0][0].spec.index == 1
        assert error.report.attempts[1] == 2  # initial + one retry
        # The sibling shard completed and persisted despite the failure.
        artifacts = sorted(shard_dir.glob("shard_*.npz"))
        assert len(artifacts) == 1
        mtime_before = artifacts[0].stat().st_mtime_ns

        # Fault gone: a resumed run recomputes exactly the lost shard.
        monkeypatch.setattr(generator_module, "run_shard", real_run_shard)
        resumed = DatasetGenerator(config)
        dataset = resumed.generate(workers=1)
        assert datasets_bit_identical(baseline, dataset)
        assert len(resumed.last_task_report.attempts) == 1  # one shard ran
        assert artifacts[0].stat().st_mtime_ns == mtime_before  # untouched
