"""Tests for the solver-engine layer: cache, engines, batching, rewiring."""

import threading

import numpy as np
import pytest

from repro import constants
from repro.fdfd import Grid, Port, Simulation
from repro.fdfd.engine import (
    CountingEngine,
    DirectEngine,
    FactorizationCache,
    IterativeEngine,
    RefinedEngine,
    SolverEngine,
    available_engines,
    dtype_cache_tag,
    eps_fingerprint,
    make_engine,
    mixed_precision_refine,
    precision_dtype,
    resolve_engine,
)
from repro.fdfd.simulation import ExcitationSpec
from repro.fdfd.solver import FdfdSolver
from repro.invdes.adjoint import NumericalFieldBackend, evaluate_spec, evaluate_specs

OMEGA = constants.wavelength_to_omega(1.55)


def _straight_waveguide(dl=0.1, domain=3.0, width=0.48):
    npml = 8
    n = int(domain / dl) + 2 * npml
    grid = Grid(nx=n, ny=n, dl=dl, npml=npml)
    eps = np.full(grid.shape, constants.EPS_SIO2)
    y = grid.y_coords()
    eps[:, np.abs(y - grid.size_y / 2) <= width / 2] = constants.EPS_SI
    margin = (npml + 3) * dl
    ports = [
        Port("in", "x", position=margin, center=grid.size_y / 2, span=3 * width, direction=+1),
        Port("out", "x", position=grid.size_x - margin, center=grid.size_y / 2, span=3 * width, direction=+1),
    ]
    return grid, eps, ports


def _point_sources(grid, count, seed=0):
    rng = np.random.default_rng(seed)
    sources = []
    for _ in range(count):
        source = np.zeros(grid.shape, dtype=complex)
        ix = rng.integers(grid.npml + 2, grid.nx - grid.npml - 2)
        iy = rng.integers(grid.npml + 2, grid.ny - grid.npml - 2)
        source[ix, iy] = 1.0 + 0.5j
        sources.append(source)
    return sources


# --------------------------------------------------------------------------- #
# fingerprints
# --------------------------------------------------------------------------- #
class TestFingerprint:
    def test_equal_content_equal_fingerprint(self):
        a = np.random.default_rng(0).random((8, 9))
        assert eps_fingerprint(a) == eps_fingerprint(a.copy())

    def test_different_content_different_fingerprint(self):
        a = np.ones((4, 4))
        b = a.copy()
        b[2, 2] += 1e-12
        assert eps_fingerprint(a) != eps_fingerprint(b)

    def test_shape_and_dtype_matter(self):
        a = np.zeros((2, 8))
        assert eps_fingerprint(a) != eps_fingerprint(a.reshape(4, 4))
        assert eps_fingerprint(np.zeros(4)) != eps_fingerprint(np.zeros(4, dtype=np.float32))

    def test_non_contiguous_input(self):
        a = np.arange(32, dtype=float).reshape(4, 8)
        assert eps_fingerprint(a[:, ::2]) == eps_fingerprint(np.ascontiguousarray(a[:, ::2]))


# --------------------------------------------------------------------------- #
# factorization cache
# --------------------------------------------------------------------------- #
class TestFactorizationCache:
    def test_hits_and_misses(self):
        cache = FactorizationCache(maxsize=4)
        grid = Grid(nx=20, ny=20, dl=0.1, npml=5)
        built = []
        for _ in range(3):
            cache.get_or_build(grid, OMEGA, "fp", lambda: built.append(1) or "entry")
        assert built == [1]
        assert cache.stats.misses == 1 and cache.stats.hits == 2

    def test_lru_eviction(self):
        cache = FactorizationCache(maxsize=2)
        grid = Grid(nx=20, ny=20, dl=0.1, npml=5)
        for fp in ("a", "b", "c"):
            cache.get_or_build(grid, OMEGA, fp, lambda fp=fp: fp.upper())
        assert len(cache) == 2
        assert cache.peek(grid, OMEGA, "a") is None
        assert cache.peek(grid, OMEGA, "c") == "C"
        assert cache.stats.evictions == 1

    def test_evict_and_clear(self):
        cache = FactorizationCache(maxsize=4)
        grid = Grid(nx=20, ny=20, dl=0.1, npml=5)
        cache.get_or_build(grid, OMEGA, "a", lambda: "A")
        assert cache.evict(grid, OMEGA, "a") == 1
        assert cache.evict(grid, OMEGA, "a") == 0
        cache.get_or_build(grid, OMEGA, "a", lambda: "A")
        cache.clear()
        assert len(cache) == 0 and cache.stats.misses == 0

    def test_tags_are_namespaced(self):
        cache = FactorizationCache(maxsize=4)
        grid = Grid(nx=20, ny=20, dl=0.1, npml=5)
        cache.get_or_build(grid, OMEGA, "fp", lambda: "direct-entry", tag="direct")
        cache.get_or_build(grid, OMEGA, "fp", lambda: "ilu-entry", tag="iterative")
        assert cache.stats.misses == 2
        assert cache.peek(grid, OMEGA, "fp", tag="iterative") == "ilu-entry"

    def test_invalid_maxsize(self):
        with pytest.raises(ValueError):
            FactorizationCache(maxsize=0)

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_FACTORIZATION_CACHE_SIZE", "3")
        assert FactorizationCache().maxsize == 3
        monkeypatch.setenv("REPRO_FACTORIZATION_CACHE_SIZE", "0")
        with pytest.raises(ValueError):
            FactorizationCache()
        monkeypatch.delenv("REPRO_FACTORIZATION_CACHE_SIZE")
        assert FactorizationCache().maxsize == 8

    def test_lru_eviction_order_respects_access(self):
        """A get refreshes an entry: the least-recently *used* entry goes first."""
        cache = FactorizationCache(maxsize=2)
        grid = Grid(nx=20, ny=20, dl=0.1, npml=5)
        cache.get_or_build(grid, OMEGA, "a", lambda: "A")
        cache.get_or_build(grid, OMEGA, "b", lambda: "B")
        cache.get_or_build(grid, OMEGA, "a", lambda: "A'")  # hit: a is now newest
        cache.get_or_build(grid, OMEGA, "c", lambda: "C")  # evicts b, not a
        assert cache.peek(grid, OMEGA, "a") == "A"
        assert cache.peek(grid, OMEGA, "b") is None
        assert cache.peek(grid, OMEGA, "c") == "C"

    def test_byte_accounting_exact_under_thread_churn(self):
        """``current_bytes`` never drifts, even across double-build races.

        Regression guard for the lost-build-race bookkeeping in ``_insert``:
        many threads hammering overlapping cold keys through a tiny cache
        force simultaneous builds of the same key (last insert wins) plus
        constant LRU eviction; afterwards the byte counter must equal the
        recomputed sum over the entries actually held — any unpaired
        add/subtract shows up as permanent drift.
        """
        from repro.fdfd.engine import _entry_nbytes

        cache = FactorizationCache(maxsize=4)
        grid = Grid(nx=20, ny=20, dl=0.1, npml=5)
        fingerprints = [f"fp{i}" for i in range(8)]
        barrier = threading.Barrier(6)

        def churn(seed):
            rng = np.random.default_rng(seed)
            barrier.wait()
            for _ in range(300):
                index = int(rng.integers(len(fingerprints)))
                cache.get_or_build(
                    grid,
                    OMEGA,
                    fingerprints[index],
                    lambda index=index: np.zeros(64 * (index + 1)),
                )

        threads = [threading.Thread(target=churn, args=(seed,)) for seed in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        with cache._lock:
            expected = sum(_entry_nbytes(entry) for entry in cache._entries.values())
        assert cache.stats.current_bytes == expected
        assert len(cache) <= 4

    def test_in_place_eps_mutation_invalidates_fingerprint(self):
        """Content fingerprints key the cache: mutated eps_r never hits stale LUs."""
        grid, eps, _ = _straight_waveguide()
        engine = DirectEngine(cache=FactorizationCache())
        rhs = np.stack(_point_sources(grid, 1))
        first = engine.solve_batch(grid, OMEGA, eps, rhs)
        assert engine.cache.stats.misses == 1
        eps[grid.nx // 2 - 2 : grid.nx // 2 + 2, :] = 1.0  # mutate in place
        second = engine.solve_batch(grid, OMEGA, eps, rhs)
        assert engine.cache.stats.misses == 2  # refactorized, no stale hit
        assert np.max(np.abs(first - second)) > 1e-6 * np.max(np.abs(first))


# --------------------------------------------------------------------------- #
# engine equivalence
# --------------------------------------------------------------------------- #
class TestDirectEngine:
    def test_batched_matches_sequential_forward(self):
        grid, eps, _ = _straight_waveguide()
        sources = _point_sources(grid, 4)
        solver = FdfdSolver(grid, OMEGA, engine=DirectEngine(cache=FactorizationCache()))
        sequential = [solver.solve(eps, s).ez for s in sources]
        batched = solver.solve_batch(eps, sources)
        for seq, bat in zip(sequential, batched):
            np.testing.assert_allclose(bat.ez, seq, rtol=1e-10, atol=1e-16)

    def test_batched_matches_sequential_adjoint(self):
        grid, eps, _ = _straight_waveguide()
        sources = _point_sources(grid, 3, seed=7)
        solver = FdfdSolver(grid, OMEGA, engine=DirectEngine(cache=FactorizationCache()))
        sequential = [solver.solve_adjoint(eps, s) for s in sources]
        batched = solver.solve_adjoint_batch(eps, sources)
        for seq, bat in zip(sequential, batched):
            np.testing.assert_allclose(bat, seq, rtol=1e-10, atol=1e-16)

    def test_batch_factorizes_once(self):
        grid, eps, _ = _straight_waveguide()
        engine = DirectEngine(cache=FactorizationCache())
        engine.solve_batch(grid, OMEGA, eps, np.stack(_point_sources(grid, 5)))
        assert engine.cache.stats.misses == 1

    def test_rhs_shape_validation(self):
        grid, eps, _ = _straight_waveguide()
        engine = DirectEngine(cache=FactorizationCache())
        with pytest.raises(ValueError):
            engine.solve_batch(grid, OMEGA, eps, np.zeros((3, 3), dtype=complex))
        with pytest.raises(ValueError):
            engine.solve_batch(grid, OMEGA, eps[:-1], np.zeros((1, *grid.shape)))


class TestIterativeEngine:
    def test_matches_direct_on_bend(self, tiny_bend):
        density = np.clip(
            0.5 + 0.2 * np.random.default_rng(2).normal(size=tiny_bend.design_shape), 0, 1
        )
        eps = tiny_bend.eps_with_design(density)
        grid = tiny_bend.grid
        omega = constants.wavelength_to_omega(tiny_bend.specs[0].wavelength)
        rhs = np.stack(_point_sources(grid, 2, seed=3))
        exact = DirectEngine(cache=FactorizationCache()).solve_batch(grid, omega, eps, rhs)
        approx = IterativeEngine(rtol=1e-10, cache=FactorizationCache()).solve_batch(
            grid, omega, eps, rhs
        )
        scale = np.max(np.abs(exact))
        np.testing.assert_allclose(approx, exact, atol=1e-6 * scale)

    def test_simulation_with_iterative_engine(self):
        grid, eps, ports = _straight_waveguide()
        direct = Simulation(grid, eps, 1.55, ports)
        iterative = Simulation(grid, eps, 1.55, ports, engine="iterative")
        t_direct = direct.solve("in").transmissions["out"]
        t_iter = iterative.solve("in").transmissions["out"]
        assert t_iter == pytest.approx(t_direct, rel=1e-4)

    def test_invalid_method(self):
        with pytest.raises(ValueError):
            IterativeEngine(method="jacobi")

    def test_nonconvergence_raises(self):
        grid, eps, _ = _straight_waveguide()
        engine = IterativeEngine(rtol=1e-14, maxiter=1, cache=FactorizationCache())
        with pytest.raises(RuntimeError):
            engine.solve_batch(grid, OMEGA, eps, np.stack(_point_sources(grid, 1)))


# --------------------------------------------------------------------------- #
# registry
# --------------------------------------------------------------------------- #
class TestRegistry:
    def test_names_available(self):
        names = available_engines()
        for name in ("direct", "iterative", "high", "low", "refined"):
            assert name in names

    def test_make_engine(self):
        assert isinstance(make_engine("direct"), DirectEngine)
        assert isinstance(make_engine("high"), DirectEngine)
        assert isinstance(make_engine("low"), IterativeEngine)
        assert isinstance(make_engine("refined"), RefinedEngine)
        assert make_engine("gmres").method == "gmres"

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            make_engine("quantum")

    def test_resolve_engine(self):
        engine = DirectEngine()
        assert resolve_engine(engine) is engine
        assert isinstance(resolve_engine(None), DirectEngine)
        assert isinstance(resolve_engine("iterative"), IterativeEngine)
        with pytest.raises(TypeError):
            resolve_engine(42)

    def test_neural_engine_requires_model(self):
        with pytest.raises(ValueError):
            make_engine("neural")


# --------------------------------------------------------------------------- #
# mixed-precision refined tier
# --------------------------------------------------------------------------- #
class TestRefinedEngine:
    def test_precision_aliases(self):
        for alias in ("fp32", "single", "float32", "complex64"):
            assert precision_dtype(alias) == np.dtype(np.complex64)
        for alias in ("fp64", "double", "float64", "complex128"):
            assert precision_dtype(alias) == np.dtype(np.complex128)
        with pytest.raises(ValueError):
            precision_dtype("fp16")

    def test_dtype_cache_tags_never_collide(self):
        # fp64 keeps the bare tag (artifact back-compat); fp32 gets a suffix.
        assert dtype_cache_tag("refined", np.complex128) == "refined"
        assert dtype_cache_tag("refined", np.complex64) == "refined-complex64"

    def test_fp32_factors_refine_to_fp64_accuracy(self):
        grid, eps, _ = _straight_waveguide()
        rhs = np.stack(_point_sources(grid, 3))
        reference = DirectEngine(cache=FactorizationCache()).solve_batch(
            grid, OMEGA, eps, rhs
        )
        engine = RefinedEngine(precision="fp32", rtol=1e-10, cache=FactorizationCache())
        result = engine.solve_batch(grid, OMEGA, eps, rhs)
        scale = np.max(np.abs(reference))
        assert np.max(np.abs(result - reference)) <= 1e-9 * scale
        assert engine.stats.factorizations == 1
        assert engine.stats.solves == 3
        assert engine.stats.sweeps >= 1
        # The cached factor really is single precision.
        entry = engine.cache.peek(
            grid, OMEGA, eps_fingerprint(eps), tag="refined-complex64"
        )
        assert entry is not None and np.dtype(entry.dtype) == np.dtype(np.complex64)

    def test_fp64_precision_degenerates_to_direct(self):
        grid, eps, _ = _straight_waveguide()
        rhs = np.stack(_point_sources(grid, 1))
        reference = DirectEngine(cache=FactorizationCache()).solve_batch(
            grid, OMEGA, eps, rhs
        )
        engine = RefinedEngine(precision="fp64", cache=FactorizationCache())
        result = engine.solve_batch(grid, OMEGA, eps, rhs)
        np.testing.assert_allclose(result, reference, rtol=1e-12, atol=1e-18)
        assert engine.stats.sweeps == 1  # exact LU: first correction converges

    def test_precisions_key_distinct_cache_entries(self):
        grid, eps, _ = _straight_waveguide()
        fingerprint = eps_fingerprint(eps)
        rhs = np.stack(_point_sources(grid, 1))
        cache = FactorizationCache(maxsize=4)
        RefinedEngine(precision="fp32", cache=cache).solve_batch(
            grid, OMEGA, eps, rhs, fingerprint=fingerprint
        )
        RefinedEngine(precision="fp64", cache=cache).solve_batch(
            grid, OMEGA, eps, rhs, fingerprint=fingerprint
        )
        # Two factorizations, never a cross-precision hit.
        assert cache.stats.misses == 2 and cache.stats.hits == 0
        assert cache.peek(grid, OMEGA, fingerprint, tag="refined-complex64") is not None
        assert cache.peek(grid, OMEGA, fingerprint, tag="refined") is not None

    def test_warm_start_skips_converged_refinement(self):
        grid, eps, _ = _straight_waveguide()
        rhs = np.stack(_point_sources(grid, 1))
        engine = RefinedEngine(precision="fp32", cache=FactorizationCache())
        cold = engine.solve_batch(grid, OMEGA, eps, rhs)
        cold_sweeps = engine.stats.sweeps
        warm = engine.solve_batch(grid, OMEGA, eps, rhs, x0=cold)
        assert engine.stats.sweeps - cold_sweeps <= cold_sweeps
        np.testing.assert_allclose(warm, cold, rtol=1e-9, atol=1e-16)

    def test_refinement_divergence_raises(self):
        """A non-contracting 'inverse' must fail loudly, never return junk."""
        from repro.fdfd.engine import assemble_system_matrix

        grid, eps, _ = _straight_waveguide(domain=1.2)
        matrix = assemble_system_matrix(grid, OMEGA, eps)
        rhs = np.stack(_point_sources(grid, 1)).reshape(1, -1)
        with pytest.raises(RuntimeError):
            mixed_precision_refine(
                matrix, lambda r: 1e-3 * r, rhs, rtol=1e-10, max_sweeps=5
            )

    def test_fidelity_signature_carries_precision(self):
        fp32 = RefinedEngine(precision="fp32", cache=FactorizationCache())
        fp64 = RefinedEngine(precision="fp64", cache=FactorizationCache())
        assert fp32.fidelity_signature != fp64.fidelity_signature
        assert "complex64" in fp32.fidelity_signature


# --------------------------------------------------------------------------- #
# simulation batching
# --------------------------------------------------------------------------- #
class TestSolveMulti:
    def test_matches_sequential_solve(self):
        grid, eps, ports = _straight_waveguide()
        sim = Simulation(grid, eps, 1.55, ports)
        sequential = [sim.solve("in"), sim.solve("out")]
        batched = sim.solve_multi([ExcitationSpec("in"), ExcitationSpec("out")])
        for seq, bat in zip(sequential, batched):
            np.testing.assert_allclose(bat.ez, seq.ez, rtol=1e-10, atol=1e-18)
            assert bat.transmissions == seq.transmissions

    def test_accepts_tuples_and_empty(self):
        grid, eps, ports = _straight_waveguide()
        sim = Simulation(grid, eps, 1.55, ports)
        assert sim.solve_multi([]) == []
        results = sim.solve_multi([("in", 0)])
        assert results[0].source_port == "in"

    def test_in_place_eps_mutation_refactorizes(self):
        """Mutating sim.eps_r directly must not hit a stale factorization."""
        grid, eps, ports = _straight_waveguide()
        sim = Simulation(grid, eps, 1.55, ports, engine=DirectEngine(cache=FactorizationCache()))
        first = sim.solve("in").ez
        sim.eps_r[grid.nx // 2 - 2 : grid.nx // 2 + 2, :] = 1.0
        second = sim.solve("in").ez
        assert np.max(np.abs(first - second)) > 1e-6 * np.max(np.abs(first))
        # The normalization cache is tied to the permittivity too.
        assert list(sim._norm_cache) == [("in", 0)]

    def test_clear_cache_evicts_every_solved_eps(self):
        grid, eps, _ = _straight_waveguide()
        engine = DirectEngine(cache=FactorizationCache())
        solver = FdfdSolver(grid, OMEGA, engine=engine)
        source = _point_sources(grid, 1)[0]
        solver.solve(eps, source)
        solver.solve(eps + 0.5, source)
        assert len(engine.cache) == 2
        solver.clear_cache()
        assert len(engine.cache) == 0

    def test_batch_factorizes_design_once(self):
        grid, eps, ports = _straight_waveguide()
        engine = CountingEngine()
        sim = Simulation(grid, eps, 1.55, ports, engine=engine)
        sim.solve_multi([ExcitationSpec("in"), ExcitationSpec("out")])
        design_fp = sim._eps_fingerprint
        # Both excitations in one batched solve; the normalization runs that
        # follow (whose extruded eps equals the straight-waveguide design) hit
        # the same factorization instead of building their own.
        batch_sizes = [n for fp, n in engine.solve_log if fp == design_fp]
        assert batch_sizes[0] == 2
        assert engine.factorizations[design_fp] == 1


# --------------------------------------------------------------------------- #
# adjoint path through the engine layer
# --------------------------------------------------------------------------- #
class TestAdjointFactorizesOnce:
    def test_forward_and_adjoint_share_one_factorization(self, tiny_bend):
        density = np.full(tiny_bend.design_shape, 0.5)
        engine = CountingEngine()
        backend = NumericalFieldBackend(engine=engine)
        evaluation = evaluate_spec(
            tiny_bend, density, tiny_bend.specs[0], backend=backend, compute_gradient=True
        )
        assert evaluation.adjoint_field is not None

        eps = tiny_bend.eps_with_design(density)
        design_fp = eps_fingerprint(eps)
        # Forward + adjoint both solved against the design operator...
        design_calls = [n for fp, n in engine.solve_log if fp == design_fp]
        assert len(design_calls) >= 2
        # ... but the operator was factorized exactly once.
        assert engine.factorizations[design_fp] == 1

    def test_multi_spec_device_factorizes_once_per_operator(self):
        from repro.devices.factory import make_device

        device = make_device("mdm", domain=3.5, design_size=1.6, dl=0.1)
        assert len(device.specs) == 2
        density = np.full(device.design_shape, 0.5)
        engine = CountingEngine()
        backend = NumericalFieldBackend(engine=engine)
        evaluations = evaluate_specs(device, density, backend=backend, compute_gradient=True)
        assert len(evaluations) == 2

        design_fp = eps_fingerprint(device.eps_with_design(density))
        # Both specs share a wavelength and state: one operator, one
        # factorization, despite 2 forward + 2 adjoint solves.
        assert engine.factorizations[design_fp] == 1
        design_batches = [n for fp, n in engine.solve_log if fp == design_fp]
        assert design_batches == [2, 2]

    def test_batched_evaluation_matches_sequential(self):
        from repro.devices.factory import make_device
        from repro.invdes.adjoint import FieldBackend

        class SequentialBackend(FieldBackend):
            """Forces the unbatched default code path."""

            def __init__(self):
                self._inner = NumericalFieldBackend()

            def forward_fields(self, sim, spec):
                return self._inner.forward_fields(sim, spec)

            def adjoint_field(self, sim, spec, adjoint_source):
                return self._inner.adjoint_field(sim, spec, adjoint_source)

        device = make_device("mdm", domain=3.5, design_size=1.6, dl=0.1)
        density = np.clip(
            0.5 + 0.2 * np.random.default_rng(5).normal(size=device.design_shape), 0, 1
        )
        batched = evaluate_specs(device, density, compute_gradient=True)
        sequential = evaluate_specs(
            device, density, backend=SequentialBackend(), compute_gradient=True
        )
        for bat, seq in zip(batched, sequential):
            assert bat.objective_value == pytest.approx(seq.objective_value, rel=1e-10)
            np.testing.assert_allclose(
                bat.grad_density, seq.grad_density, rtol=1e-8, atol=1e-20
            )


# --------------------------------------------------------------------------- #
# engine equivalence: forward + adjoint across tiers and grid sizes
# --------------------------------------------------------------------------- #
GRID_SIZES = [
    dict(domain=3.0, design_size=1.4, dl=0.1),
    dict(domain=2.4, design_size=1.1, dl=0.08),
]


class TestEngineEquivalence:
    """Direct and iterative tiers agree on objectives *and* adjoint gradients."""

    @staticmethod
    def _density(device):
        return np.clip(
            0.5 + 0.2 * np.random.default_rng(11).normal(size=device.design_shape), 0, 1
        )

    @staticmethod
    def _evaluate(device, density, engine):
        backend = NumericalFieldBackend(engine=engine)
        return evaluate_spec(
            device, density, device.specs[0], backend=backend, compute_gradient=True
        )

    @pytest.mark.parametrize("device_kwargs", GRID_SIZES)
    @pytest.mark.parametrize("engine_name", ["direct", "iterative"])
    def test_forward_and_adjoint_consistency(self, engine_name, device_kwargs):
        from repro.devices.factory import make_device

        device = make_device("bending", **device_kwargs)
        density = self._density(device)
        reference = self._evaluate(
            device, density, DirectEngine(cache=FactorizationCache())
        )
        if engine_name == "direct":
            engine = DirectEngine(cache=FactorizationCache())
        else:
            engine = IterativeEngine(rtol=1e-12, cache=FactorizationCache())
        evaluation = self._evaluate(device, density, engine)

        assert evaluation.objective_value == pytest.approx(
            reference.objective_value, rel=1e-6
        )
        scale = np.max(np.abs(reference.grad_density))
        assert scale > 0
        np.testing.assert_allclose(
            evaluation.grad_density,
            reference.grad_density,
            rtol=1e-5,
            atol=1e-7 * scale,
        )

    @pytest.mark.parametrize("device_kwargs", GRID_SIZES)
    def test_transmissions_agree_across_engines(self, device_kwargs):
        from repro.devices.factory import make_device

        device = make_device("bending", **device_kwargs)
        density = self._density(device)
        exact = self._evaluate(device, density, DirectEngine(cache=FactorizationCache()))
        approx = self._evaluate(
            device, density, IterativeEngine(rtol=1e-12, cache=FactorizationCache())
        )
        for port, value in exact.transmissions.items():
            assert approx.transmissions[port] == pytest.approx(value, abs=1e-8)


# --------------------------------------------------------------------------- #
# labels / generator batching equivalence
# --------------------------------------------------------------------------- #
class TestLabelBatching:
    def test_batch_matches_single_extraction(self):
        from repro.data.labels import extract_labels, extract_labels_batch
        from repro.devices.factory import make_device

        device = make_device("mdm", domain=3.5, design_size=1.6, dl=0.1)
        density = np.full(device.design_shape, 0.5)
        batch = extract_labels_batch(device, density, with_gradient=True)
        assert len(batch) == len(device.specs)
        for index, label in enumerate(batch):
            single = extract_labels(device, density, spec=index, with_gradient=True)
            assert label.spec_index == single.spec_index
            np.testing.assert_allclose(label.ez, single.ez, rtol=1e-10, atol=1e-18)
            np.testing.assert_allclose(
                label.adjoint_gradient, single.adjoint_gradient, rtol=1e-8, atol=1e-20
            )
            assert label.figure_of_merit == pytest.approx(single.figure_of_merit, rel=1e-10)


# --------------------------------------------------------------------------- #
# incremental operator assembly
# --------------------------------------------------------------------------- #
class TestIncrementalAssembly:
    """assemble_system_matrix's template path vs from-scratch sparse summation."""

    @staticmethod
    def _from_scratch(grid, omega, eps):
        import scipy.sparse as sp

        from repro.fdfd.engine import operators

        diagonal = omega**2 * constants.EPSILON_0 * np.asarray(eps).ravel()
        matrix = (operators(grid, omega)["curl_curl"] + sp.diags(diagonal)).tocsr()
        matrix.sort_indices()
        return matrix

    def test_bit_identical_to_from_scratch(self):
        from repro.fdfd.engine import assemble_system_matrix

        grid, eps, _ = _straight_waveguide()
        for scale in (1.0, 0.37, 2.5):
            incremental = assemble_system_matrix(grid, OMEGA, eps * scale)
            scratch = self._from_scratch(grid, OMEGA, eps * scale)
            assert np.array_equal(incremental.indptr, scratch.indptr)
            assert np.array_equal(incremental.indices, scratch.indices)
            assert np.array_equal(incremental.data, scratch.data)

    def test_repeated_assembly_is_independent(self):
        """Each call owns its data: assembling eps2 must not corrupt eps1's matrix."""
        from repro.fdfd.engine import assemble_system_matrix

        grid, eps, _ = _straight_waveguide()
        first = assemble_system_matrix(grid, OMEGA, eps)
        reference = first.data.copy()
        assemble_system_matrix(grid, OMEGA, eps + 1.5)
        assert np.array_equal(first.data, reference)

    def test_update_system_diagonal_in_place(self):
        from repro.fdfd.engine import assemble_system_matrix, update_system_diagonal

        grid, eps, _ = _straight_waveguide()
        matrix = assemble_system_matrix(grid, OMEGA, eps)
        updated = update_system_diagonal(matrix, grid, OMEGA, eps + 0.25)
        assert updated is matrix
        scratch = self._from_scratch(grid, OMEGA, eps + 0.25)
        assert np.array_equal(matrix.data, scratch.data)

    def test_shape_validation(self):
        from repro.fdfd.engine import assemble_system_matrix, update_system_diagonal

        grid, eps, _ = _straight_waveguide()
        with pytest.raises(ValueError):
            assemble_system_matrix(grid, OMEGA, eps[:-1])
        matrix = assemble_system_matrix(grid, OMEGA, eps)
        with pytest.raises(ValueError):
            update_system_diagonal(matrix, grid, OMEGA, eps[:, :-1])


# --------------------------------------------------------------------------- #
# operator cache LRU behaviour
# --------------------------------------------------------------------------- #
class TestOperatorCacheLRU:
    def setup_method(self):
        from repro.fdfd import engine

        self._saved = dict(engine._OPERATOR_CACHE)
        engine._OPERATOR_CACHE.clear()

    def teardown_method(self):
        from repro.fdfd import engine

        engine._OPERATOR_CACHE.clear()
        engine._OPERATOR_CACHE.update(self._saved)

    @staticmethod
    def _grids(count):
        return [Grid(nx=12 + i, ny=12, dl=0.1, npml=3) for i in range(count)]

    def test_env_override_controls_size(self, monkeypatch):
        from repro.fdfd import engine

        monkeypatch.setenv("REPRO_OPERATOR_CACHE_SIZE", "2")
        for grid in self._grids(4):
            engine.operators(grid, OMEGA)
        assert len(engine._OPERATOR_CACHE) == 2

    def test_touch_on_hit_protects_hot_grid(self, monkeypatch):
        """A re-used grid survives eviction pressure from cold grids."""
        from repro.fdfd import engine

        monkeypatch.setenv("REPRO_OPERATOR_CACHE_SIZE", "2")
        hot, cold_a, cold_b = self._grids(3)
        engine.operators(hot, OMEGA)
        engine.operators(cold_a, OMEGA)
        engine.operators(hot, OMEGA)  # touch: hot becomes most recent
        engine.operators(cold_b, OMEGA)  # evicts cold_a, not hot
        keys = list(engine._OPERATOR_CACHE)
        assert (hot, float(OMEGA)) in keys
        assert (cold_a, float(OMEGA)) not in keys

    def test_min_size_is_one(self, monkeypatch):
        from repro.fdfd import engine

        monkeypatch.setenv("REPRO_OPERATOR_CACHE_SIZE", "0")
        grid = self._grids(1)[0]
        entry = engine.operators(grid, OMEGA)
        assert entry is engine.operators(grid, OMEGA)
        assert len(engine._OPERATOR_CACHE) == 1


# --------------------------------------------------------------------------- #
# warm-start workspace
# --------------------------------------------------------------------------- #
class TestSolveWorkspace:
    def test_store_and_guess(self):
        from repro.fdfd.engine import SolveWorkspace

        workspace = SolveWorkspace()
        assert workspace.guess("k") is None
        field = np.ones((3, 3), dtype=complex)
        workspace.store("k", field)
        np.testing.assert_array_equal(workspace.guess("k"), field)
        assert workspace.misses == 1 and workspace.hits == 1

    def test_secant_extrapolation(self):
        from repro.fdfd.engine import SolveWorkspace

        workspace = SolveWorkspace()
        workspace.store("k", np.full((2, 2), 1.0 + 0j))
        workspace.store("k", np.full((2, 2), 3.0 + 0j))
        np.testing.assert_allclose(workspace.guess("k"), np.full((2, 2), 5.0 + 0j))

    def test_shape_mismatch_returns_none(self):
        from repro.fdfd.engine import SolveWorkspace

        workspace = SolveWorkspace()
        workspace.store("k", np.ones((2, 2), dtype=complex))
        assert workspace.guess("k", shape=(3, 3)) is None

    def test_guess_stack_zero_fills_missing(self):
        from repro.fdfd.engine import SolveWorkspace

        workspace = SolveWorkspace()
        assert workspace.guess_stack(["a", "b"], (2, 2)) is None
        workspace.store("a", np.full((2, 2), 2.0 + 1j))
        stack = workspace.guess_stack(["a", "b"], (2, 2))
        assert stack.shape == (2, 2, 2)
        np.testing.assert_allclose(stack[0], np.full((2, 2), 2.0 + 1j))
        np.testing.assert_allclose(stack[1], 0.0)

    def test_invalidate_clears_everything(self):
        from repro.fdfd.engine import SolveWorkspace

        workspace = SolveWorkspace()
        workspace.store("a", np.ones((2, 2), dtype=complex))
        workspace.invalidate()
        assert len(workspace) == 0 and workspace.invalidations == 1
        assert workspace.guess("a") is None


# --------------------------------------------------------------------------- #
# recycled engine
# --------------------------------------------------------------------------- #
class TestRecycledEngine:
    def test_registered(self):
        from repro.fdfd.engine import RecycledEngine

        assert "recycled" in available_engines()
        engine = make_engine("recycled")
        assert isinstance(engine, RecycledEngine)
        assert engine.supports_warm_start

    def test_invalid_parameters(self):
        from repro.fdfd.engine import RecycledEngine

        with pytest.raises(ValueError):
            RecycledEngine(method="jacobi")
        with pytest.raises(ValueError):
            RecycledEngine(max_references=0)

    def test_exact_fingerprint_match_is_direct(self):
        from repro.fdfd.engine import RecycledEngine

        grid, eps, _ = _straight_waveguide()
        rhs = np.stack(_point_sources(grid, 2))
        engine = RecycledEngine(cache=FactorizationCache())
        exact = DirectEngine(cache=FactorizationCache()).solve_batch(grid, OMEGA, eps, rhs)
        first = engine.solve_batch(grid, OMEGA, eps, rhs)
        second = engine.solve_batch(grid, OMEGA, eps, rhs)
        assert engine.stats.factorizations == 1
        assert engine.stats.exact_solves == 1
        np.testing.assert_allclose(first, exact, rtol=1e-12, atol=1e-18)
        np.testing.assert_allclose(second, exact, rtol=1e-12, atol=1e-18)

    def test_recycled_solve_matches_direct_on_nearby_eps(self):
        from repro.fdfd.engine import RecycledEngine

        grid, eps, _ = _straight_waveguide()
        rhs = np.stack(_point_sources(grid, 2))
        engine = RecycledEngine(cache=FactorizationCache())
        engine.solve_batch(grid, OMEGA, eps, rhs)  # creates the reference
        perturbed = eps + 0.01 * np.random.default_rng(0).random(eps.shape)
        recycled = engine.solve_batch(grid, OMEGA, perturbed, rhs)
        assert engine.stats.recycled_solves == 1
        assert engine.stats.factorizations == 1  # no refactorization
        exact = DirectEngine(cache=FactorizationCache()).solve_batch(
            grid, OMEGA, perturbed, rhs
        )
        scale = np.max(np.abs(exact))
        np.testing.assert_allclose(recycled, exact, atol=2e-6 * scale)

    def test_large_drift_triggers_refactorization(self):
        from repro.fdfd.engine import RecycledEngine

        grid, eps, _ = _straight_waveguide()
        rhs = np.stack(_point_sources(grid, 1))
        engine = RecycledEngine(drift_threshold=0.01, cache=FactorizationCache())
        engine.solve_batch(grid, OMEGA, eps, rhs)
        far = eps + 3.0  # relative drift far above the threshold
        result = engine.solve_batch(grid, OMEGA, far, rhs)
        assert engine.stats.factorizations == 2
        assert engine.stats.recycled_solves == 0
        exact = DirectEngine(cache=FactorizationCache()).solve_batch(grid, OMEGA, far, rhs)
        np.testing.assert_allclose(result, exact, rtol=1e-12, atol=1e-18)

    def test_reference_lru_is_bounded(self):
        from repro.fdfd.engine import RecycledEngine

        grid, eps, _ = _straight_waveguide()
        rhs = np.stack(_point_sources(grid, 1))
        engine = RecycledEngine(
            drift_threshold=1e-9, max_references=2, cache=FactorizationCache()
        )
        for shift in (0.0, 1.0, 2.0, 3.0):
            engine.solve_batch(grid, OMEGA, eps + shift, rhs)
        references = engine._references[(grid, float(OMEGA))]
        assert len(references) == 2

    def test_failed_recycle_falls_back_to_refactorization(self):
        from repro.fdfd.engine import RecycledEngine

        grid, eps, _ = _straight_waveguide()
        rhs = np.stack(_point_sources(grid, 1))
        # A huge drift threshold forces the recycle attempt even for a big
        # perturbation; tiny sweep/iteration budgets make it fail.
        engine = RecycledEngine(
            drift_threshold=100.0, max_sweeps=1, maxiter=1, max_krylov=10**6,
            cache=FactorizationCache(),
        )
        engine.solve_batch(grid, OMEGA, eps, rhs)
        hard = eps + 5.0 * np.random.default_rng(1).random(eps.shape)
        result = engine.solve_batch(grid, OMEGA, hard, rhs)
        assert engine.stats.fallbacks == 1
        assert engine.stats.factorizations == 2
        exact = DirectEngine(cache=FactorizationCache()).solve_batch(grid, OMEGA, hard, rhs)
        np.testing.assert_allclose(result, exact, rtol=1e-12, atol=1e-18)

    def test_warm_start_does_not_change_solution(self):
        from repro.fdfd.engine import RecycledEngine

        grid, eps, _ = _straight_waveguide()
        rhs = np.stack(_point_sources(grid, 1))
        perturbed = eps + 0.02
        cold = RecycledEngine(cache=FactorizationCache())
        cold.solve_batch(grid, OMEGA, eps, rhs)
        cold_result = cold.solve_batch(grid, OMEGA, perturbed, rhs)
        warm = RecycledEngine(cache=FactorizationCache())
        warm.solve_batch(grid, OMEGA, eps, rhs)
        guess = cold_result * (1.0 + 1e-3 * np.random.default_rng(2).random(rhs.shape))
        warm_result = warm.solve_batch(grid, OMEGA, perturbed, rhs, x0=guess)
        scale = np.max(np.abs(cold_result))
        np.testing.assert_allclose(warm_result, cold_result, atol=5e-6 * scale)


class TestRecycledTrajectoryEquivalence:
    """Forward + adjoint equivalence vs direct across a multi-step eps walk."""

    def test_matches_direct_along_trajectory(self, tiny_bend):
        from repro.fdfd.engine import RecycledEngine

        rng = np.random.default_rng(3)
        density = np.clip(
            0.5 + 0.2 * rng.normal(size=tiny_bend.design_shape), 0, 1
        )
        engine = RecycledEngine(cache=FactorizationCache())
        backend = NumericalFieldBackend(engine=engine)
        for step in range(5):
            reference = evaluate_spec(
                tiny_bend, density, tiny_bend.specs[0],
                backend=NumericalFieldBackend(engine=DirectEngine(cache=FactorizationCache())),
                compute_gradient=True,
            )
            recycled = evaluate_spec(
                tiny_bend, density, tiny_bend.specs[0],
                backend=backend, compute_gradient=True,
            )
            assert recycled.objective_value == pytest.approx(
                reference.objective_value, rel=1e-5
            )
            scale = np.max(np.abs(reference.grad_density))
            assert scale > 0
            np.testing.assert_allclose(
                recycled.grad_density, reference.grad_density,
                rtol=1e-5, atol=1e-5 * scale,
            )
            # Adam-step-sized walk through design space.
            density = np.clip(density + 0.02 * rng.normal(size=density.shape), 0, 1)
        # The walk recycled factorizations rather than rebuilding one per step.
        assert engine.stats.recycled_solves > 0
        assert engine.stats.factorizations < 5


# --------------------------------------------------------------------------- #
# permittivity replacement evicts every engine tag (regression)
# --------------------------------------------------------------------------- #
class TestSetPermittivityEviction:
    def test_all_tags_evicted_for_old_fingerprint(self):
        grid, eps, ports = _straight_waveguide()
        cache = FactorizationCache(maxsize=8)
        sim = Simulation(grid, eps, 1.55, ports, engine=DirectEngine(cache=cache))
        old_fingerprint = sim._eps_fingerprint
        # Factorizations of the current design under several engine tags, as
        # left behind by direct / iterative / recycled runs of the same design.
        for tag in ("direct", "iterative", "recycled"):
            cache.get_or_build(
                grid, sim.omega, old_fingerprint, lambda tag=tag: f"{tag}-entry", tag=tag
            )
        sim.set_permittivity(eps + 0.5)
        for tag in ("direct", "iterative", "recycled"):
            assert cache.peek(grid, sim.omega, old_fingerprint, tag=tag) is None


class TestFidelitySignature:
    """Result caches key on the signature: equal physics may share, others not."""

    def test_exact_engines_share(self):
        assert DirectEngine().fidelity_signature == DirectEngine().fidelity_signature

    def test_iterative_signature_tracks_parameters(self):
        a = IterativeEngine(rtol=1e-8, cache=FactorizationCache())
        b = IterativeEngine(rtol=1e-8, cache=FactorizationCache())
        c = IterativeEngine(rtol=1e-3, cache=FactorizationCache())
        assert a.fidelity_signature == b.fidelity_signature
        assert a.fidelity_signature != c.fidelity_signature

    def test_default_signature_is_per_instance(self):
        class OpaqueEngine(SolverEngine):
            name = "opaque"

        a, b = OpaqueEngine(), OpaqueEngine()
        assert a.fidelity_signature != b.fidelity_signature
        assert a.fidelity_signature == a.fidelity_signature  # stable per instance
