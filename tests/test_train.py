"""Tests for MAPS-Train: models, losses, metrics and the trainer."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.constants import wavelength_to_omega
from repro.fdfd.solver import FdfdSolver
from repro.train import (
    FinetuneCurriculum,
    MaxwellResidualLoss,
    MixedCurriculum,
    NMSELoss,
    NormalizedL2Loss,
    Trainer,
    WarmupCurriculum,
    available_curricula,
    available_models,
    make_curriculum,
    make_model,
    normalized_l2_metric,
    s_parameter_error,
    transmission_error,
)
from repro.train.losses import CompositeLoss, MSELoss
from repro.train.models.neurolight import wave_prior_channels
from repro.train.trainer import TrainingHistory, predict


FIELD_MODELS = ["fno", "ffno", "unet", "neurolight"]


class TestModels:
    def test_available_models(self):
        assert set(available_models()) == {"fno", "ffno", "unet", "neurolight", "blackbox"}

    @pytest.mark.parametrize("name", FIELD_MODELS)
    def test_field_model_shapes(self, name):
        model = make_model(name, width=8, modes=(3, 3), rng=0) if name != "unet" else make_model(
            name, base_width=8, rng=0
        )
        x = Tensor(np.random.default_rng(0).normal(size=(2, 4, 20, 22)))
        out = model(x)
        assert out.shape == (2, 2, 20, 22)

    def test_blackbox_output_shape_and_range(self):
        model = make_model("blackbox", width=8, rng=0)
        out = model(Tensor(np.random.default_rng(0).normal(size=(3, 4, 20, 20))))
        assert out.shape == (3,)
        assert (out.data >= 0).all() and (out.data <= 1).all()

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError):
            make_model("transformer")

    def test_models_accept_numpy_input(self):
        model = make_model("fno", width=8, modes=(3, 3), rng=0)
        out = model(np.zeros((1, 4, 16, 16)))
        assert out.shape == (1, 2, 16, 16)

    def test_ffno_fewer_parameters_than_fno(self):
        fno = make_model("fno", width=16, modes=(6, 6), depth=3, rng=0)
        ffno = make_model("ffno", width=16, modes=(6, 6), depth=3, rng=0)
        assert ffno.num_parameters() < fno.num_parameters()

    def test_wave_prior_channels(self):
        inputs = np.zeros((2, 4, 10, 12))
        inputs[:, 0] = 0.5
        inputs[:, 3] = 0.05
        prior = wave_prior_channels(inputs)
        assert prior.shape == (2, 4, 10, 12)
        assert np.abs(prior).max() <= 1.0 + 1e-12

    def test_model_gradients_flow_to_input(self):
        """Needed by the AD-based gradient methods of Table II."""
        model = make_model("fno", width=8, modes=(3, 3), depth=2, rng=0)
        x = Tensor(np.random.default_rng(0).normal(size=(1, 4, 12, 12)), requires_grad=True)
        model(x).sum().backward()
        assert x.grad is not None
        assert np.abs(x.grad).max() > 0


class TestLosses:
    def test_normalized_l2_perfect_prediction(self):
        target = np.random.default_rng(0).normal(size=(2, 2, 8, 8))
        loss = NormalizedL2Loss()(Tensor(target), Tensor(target))
        assert loss.item() == pytest.approx(0.0, abs=1e-4)

    def test_normalized_l2_zero_prediction_is_one(self):
        target = np.random.default_rng(0).normal(size=(2, 2, 8, 8))
        loss = NormalizedL2Loss()(Tensor(np.zeros_like(target)), Tensor(target))
        assert loss.item() == pytest.approx(1.0, rel=1e-3)

    def test_nmse_is_squared_version(self):
        rng = np.random.default_rng(0)
        pred, target = rng.normal(size=(1, 4, 4)), rng.normal(size=(1, 4, 4))
        l2 = NormalizedL2Loss(eps=0)(Tensor(pred), Tensor(target)).item()
        nmse = NMSELoss(eps=0)(Tensor(pred), Tensor(target)).item()
        assert nmse == pytest.approx(l2**2, rel=1e-6)

    def test_losses_reject_shape_mismatch(self):
        with pytest.raises(ValueError):
            NormalizedL2Loss()(Tensor(np.zeros((1, 2))), Tensor(np.zeros((1, 3))))
        with pytest.raises(ValueError):
            MSELoss()(Tensor(np.zeros((1, 2))), Tensor(np.zeros((2, 2))))

    def test_losses_are_differentiable(self):
        pred = Tensor(np.random.default_rng(0).normal(size=(2, 2, 4, 4)), requires_grad=True)
        target = Tensor(np.random.default_rng(1).normal(size=(2, 2, 4, 4)))
        NormalizedL2Loss()(pred, target).backward()
        assert pred.grad is not None

    def test_composite_loss(self):
        pred = Tensor(np.ones((1, 2)))
        target = Tensor(np.zeros((1, 2)))
        combined = CompositeLoss([(1.0, MSELoss()), (0.5, MSELoss())])
        assert combined(pred, target).item() == pytest.approx(1.5)

    def test_maxwell_residual_zero_for_true_field(self, tiny_bend):
        """The physics loss vanishes on the actual FDFD solution."""
        density = np.full(tiny_bend.design_shape, 0.5)
        spec = tiny_bend.specs[0]
        sim = tiny_bend.simulation(density, wavelength=spec.wavelength)
        result = sim.solve(spec.source_port)
        solver: FdfdSolver = sim.solver
        matrix = solver.system_matrix(sim.eps_r)
        pred = Tensor(np.stack([result.ez.real, result.ez.imag]), requires_grad=True)
        loss = MaxwellResidualLoss()(
            pred, matrix, result.source, wavelength_to_omega(spec.wavelength), field_scale=1.0
        )
        assert loss.item() < 1e-9
        # A perturbed field has a visibly larger residual and a usable gradient.
        noisy = Tensor(pred.data * 1.1, requires_grad=True)
        noisy_loss = MaxwellResidualLoss()(
            noisy, matrix, result.source, wavelength_to_omega(spec.wavelength), field_scale=1.0
        )
        assert noisy_loss.item() > loss.item()
        noisy_loss.backward()
        assert noisy.grad is not None

    def test_maxwell_residual_shape_check(self):
        with pytest.raises(ValueError):
            MaxwellResidualLoss()(Tensor(np.zeros((3, 4, 4))), None, None, 1.0)


class TestMetrics:
    def test_normalized_l2_metric_batched(self):
        target = np.random.default_rng(0).normal(size=(3, 2, 5, 5))
        assert normalized_l2_metric(target, target) == pytest.approx(0.0, abs=1e-9)
        assert normalized_l2_metric(np.zeros_like(target), target) == pytest.approx(1.0)

    def test_transmission_error(self):
        assert transmission_error([0.5, 0.7], [0.4, 0.9]) == pytest.approx(0.15)

    def test_s_parameter_error(self):
        pred = {"out": 0.5 + 0.5j}
        target = {"out": 0.5 - 0.5j}
        assert s_parameter_error(pred, target) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            s_parameter_error({"a": 1.0}, {"b": 1.0})


class TestTrainer:
    def test_training_reduces_loss(self, tiny_splits):
        train, test = tiny_splits
        model = make_model("fno", width=8, modes=(4, 4), depth=2, rng=0)
        trainer = Trainer(model, train, test, epochs=4, batch_size=3, learning_rate=4e-3, seed=0)
        history = trainer.train()
        losses = history.curve("train_loss")
        assert len(history) == 4
        assert losses[-1] < losses[0]
        assert "test_n_l2" in history.final()

    def test_blackbox_training(self, tiny_splits):
        train, test = tiny_splits
        model = make_model("blackbox", width=8, rng=0)
        trainer = Trainer(
            model, train, test, target="transmission", epochs=3, batch_size=3, seed=0
        )
        history = trainer.train()
        assert "train_mae" in history.final()

    def test_transmission_targets_precomputed_once(self, tiny_splits):
        """Scalar targets are built in __init__ and indexed per batch."""
        train, _ = tiny_splits
        trainer = Trainer(
            make_model("blackbox", width=8, rng=0), train, target="transmission"
        )
        np.testing.assert_array_equal(
            trainer._transmission_targets, train.transmission_array()
        )
        indices = np.array([2, 0])
        np.testing.assert_array_equal(
            trainer._transmission_targets[indices],
            np.array([train[2].transmission, train[0].transmission]),
        )
        # Field trainers skip the precompute entirely.
        field_trainer = Trainer(make_model("fno", width=8, modes=(4, 4), depth=2, rng=0), train)
        assert field_trainer._transmission_targets is None

    def test_predict_shapes(self, tiny_splits):
        train, _ = tiny_splits
        model = make_model("fno", width=8, modes=(4, 4), depth=2, rng=0)
        single = predict(model, train[0].inputs)
        batch = predict(model, train.input_array())
        assert single.shape == train[0].target.shape
        assert batch.shape == train.target_array().shape

    def test_invalid_target_kind(self, tiny_splits):
        train, _ = tiny_splits
        with pytest.raises(ValueError):
            Trainer(make_model("fno", rng=0), train, target="s_params")

    def test_empty_training_set_rejected(self, tiny_dataset):
        empty = tiny_dataset.filter(lambda s: False)
        with pytest.raises(ValueError):
            Trainer(make_model("fno", rng=0), empty)

    def test_history_curves(self, tiny_splits):
        train, _ = tiny_splits
        model = make_model("unet", base_width=8, rng=0)
        trainer = Trainer(model, train, epochs=2, batch_size=3, seed=0)
        history = trainer.train()
        assert history.curve("train_n_l2").shape == (2,)


class TestTrainingHistory:
    def test_curve_nan_pads_missing_epochs(self):
        """Regression: ragged (curriculum) records must not silently shrink.

        ``curve`` used to drop epochs missing the key, so curves of different
        keys no longer aligned by epoch.  Missing entries are now NaN.
        """
        history = TrainingHistory()
        history.append({"epoch": 0, "train_loss": 0.5})
        history.append({"epoch": 1, "train_loss": 0.4, "train_loss_high": 0.6})
        history.append({"epoch": 2, "train_loss": 0.3, "train_loss_high": 0.5})
        curve = history.curve("train_loss_high")
        assert curve.shape == (3,)
        assert np.isnan(curve[0])
        np.testing.assert_allclose(curve[1:], [0.6, 0.5])
        # Fully present keys keep their dense curve.
        np.testing.assert_allclose(history.curve("train_loss"), [0.5, 0.4, 0.3])

    def test_final_and_len(self):
        history = TrainingHistory()
        with pytest.raises(ValueError):
            history.final()
        history.append({"epoch": 0})
        assert len(history) == 1
        assert history.final() == {"epoch": 0}


class TestCurricula:
    def test_available(self):
        assert available_curricula() == ["adaptive", "finetune", "mixed", "warmup"]
        with pytest.raises(ValueError):
            make_curriculum("annealed")

    def test_warmup_stages(self):
        curriculum = WarmupCurriculum(("low", "high"), warmup_fraction=0.5)
        early = curriculum.stage(0, 4)
        late = curriculum.stage(2, 4)
        assert set(early.sample_fractions) == {"low"}
        assert set(late.sample_fractions) == {"low", "high"}

    def test_finetune_stages(self):
        curriculum = FinetuneCurriculum(("low", "high"), finetune_fraction=0.5)
        assert set(curriculum.stage(0, 4).sample_fractions) == {"low", "high"}
        assert set(curriculum.stage(3, 4).sample_fractions) == {"high"}

    def test_mixed_ratios_and_weights(self):
        curriculum = MixedCurriculum(
            ("low", "high"), ratios={"low": 0.5}, loss_weights={"high": 2.0}
        )
        stage = curriculum.stage(0, 10)
        assert stage.sample_fractions == {"low": 0.5, "high": 1.0}
        assert stage.weight("high") == 2.0
        assert stage.weight("low") == 1.0

    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            WarmupCurriculum(("low",), warmup_fraction=1.5)
        with pytest.raises(ValueError):
            MixedCurriculum(("low",), ratios={"high": 1.0})
        with pytest.raises(ValueError):
            MixedCurriculum(("low", "high"), loss_weights={"ultra": 1.0})
        with pytest.raises(ValueError):
            MixedCurriculum(())
        with pytest.raises(ValueError):
            MixedCurriculum(("low", "low"))

    def test_non_positive_loss_weights_rejected(self):
        """Regression: weight 0 used to crash the loss un-weighting mid-epoch;
        muting a tier is a sampling decision, not a zero weight."""
        with pytest.raises(ValueError, match="positive"):
            MixedCurriculum(("low", "high"), loss_weights={"low": 0.0})
        with pytest.raises(ValueError, match="positive"):
            WarmupCurriculum(("low", "high"), loss_weights={"high": -1.0})

    def test_describe_is_json_serializable(self):
        import json

        for name in available_curricula():
            payload = make_curriculum(name, fidelities=("low", "high")).describe()
            assert json.loads(json.dumps(payload))["name"] == name


class TestCurriculumTraining:
    @pytest.fixture(scope="class")
    def multi_fidelity_set(self, tiny_shard_run):
        _, _, merged = tiny_shard_run
        return merged

    def test_warmup_records_fidelity_mix(self, multi_fidelity_set):
        model = make_model("fno", width=8, modes=(3, 3), depth=2, rng=0)
        curriculum = WarmupCurriculum(
            ("low", "high"), warmup_fraction=0.5, loss_weights={"high": 2.0}
        )
        history = Trainer(
            model, multi_fidelity_set, epochs=4, batch_size=3, seed=0,
            curriculum=curriculum,
        ).train()
        first, last = history.epochs[0], history.epochs[-1]
        assert "samples_low" in first and "samples_high" not in first
        assert "samples_high" in last and last["loss_weight_high"] == 2.0
        # The ragged per-fidelity curve NaN-pads the warmup epochs.
        curve = history.curve("train_loss_high")
        assert curve.shape == (4,)
        assert np.isnan(curve[:2]).all() and np.isfinite(curve[2:]).all()

    def test_finetune_final_epochs_high_only(self, multi_fidelity_set):
        model = make_model("fno", width=8, modes=(3, 3), depth=2, rng=0)
        history = Trainer(
            model, multi_fidelity_set, epochs=3, batch_size=3, seed=0,
            curriculum=FinetuneCurriculum(("low", "high"), finetune_fraction=0.34),
        ).train()
        assert "samples_low" not in history.final()
        assert "samples_high" in history.final()

    def test_curriculum_by_name_infers_fidelities(self, multi_fidelity_set):
        model = make_model("fno", width=8, modes=(3, 3), depth=2, rng=0)
        trainer = Trainer(
            model, multi_fidelity_set, epochs=2, batch_size=3, seed=0,
            curriculum="mixed",
        )
        assert trainer.curriculum.fidelities == ("low", "high")
        history = trainer.train()
        assert history.final()["samples_low"] > 0
        assert history.final()["samples_high"] > 0

    def test_mixed_fraction_subsamples_pool(self, multi_fidelity_set):
        model = make_model("fno", width=8, modes=(3, 3), depth=2, rng=0)
        curriculum = MixedCurriculum(("low", "high"), ratios={"low": 0.5})
        history = Trainer(
            model, multi_fidelity_set, epochs=1, batch_size=3, seed=0,
            curriculum=curriculum,
        ).train()
        low_pool = int((multi_fidelity_set.fidelity_array() == "low").sum())
        assert history.final()["samples_low"] == max(1, round(0.5 * low_pool))

    def test_curriculum_missing_data_fidelity_rejected(self, multi_fidelity_set):
        """A data tier the curriculum does not schedule would silently drop
        from every epoch — rejected at construction instead."""
        model = make_model("fno", width=8, modes=(3, 3), depth=2, rng=0)
        with pytest.raises(ValueError, match="silently excluded"):
            Trainer(
                model, multi_fidelity_set, epochs=1, batch_size=3, seed=0,
                curriculum=MixedCurriculum(("low",), ratios={"low": 1.0}),
            )

    def test_curriculum_selecting_nothing_rejected(self, multi_fidelity_set):
        low_only = multi_fidelity_set.filter(lambda s: s.fidelity == "low")
        model = make_model("fno", width=8, modes=(3, 3), depth=2, rng=0)
        trainer = Trainer(
            model, low_only, epochs=1, batch_size=3, seed=0,
            # "high" is scheduled but absent from the restricted data — legal
            # at construction (subset views), but a stage sampling only
            # "high" finds nothing and must fail loudly.
            curriculum=MixedCurriculum(("low", "high"), ratios={"low": 0.0}),
        )
        with pytest.raises(ValueError, match="selects no samples"):
            trainer.train()

    def test_curriculum_training_bit_identical_on_loader(self, tiny_shard_run):
        """Curriculum + loader path matches curriculum + in-memory path."""
        from repro.data.loader import ShardDataLoader

        config, shard_dir, merged = tiny_shard_run
        loader = ShardDataLoader.from_directory(
            shard_dir, fidelities=config.fidelities, cache_shards=2
        )
        kwargs = dict(epochs=3, batch_size=3, seed=9)
        histories = []
        for data in (merged, loader):
            model = make_model("fno", width=8, modes=(3, 3), depth=2, rng=0)
            curriculum = WarmupCurriculum(
                ("low", "high"), warmup_fraction=0.4, loss_weights={"high": 1.5}
            )
            histories.append(
                Trainer(model, data=data, curriculum=curriculum, **kwargs).train()
            )
        assert histories[0].epochs == histories[1].epochs


class TestAdaptiveCurriculum:
    """The validation-error-driven schedule: promote tiers on plateau."""

    def make(self, **kwargs):
        from repro.train import AdaptiveCurriculum

        defaults = dict(fidelities=("low", "high"), patience=2, min_improvement=0.05)
        defaults.update(kwargs)
        return AdaptiveCurriculum(**defaults)

    def test_starts_on_cheapest_tier(self):
        curriculum = self.make()
        assert set(curriculum.stage(0, 10).sample_fractions) == {"low"}
        assert curriculum.active_fidelities == ("low",)

    def test_plateau_promotes_next_tier(self):
        curriculum = self.make(patience=2)
        curriculum.observe({"test_n_l2": 0.5})     # baseline
        curriculum.observe({"test_n_l2": 0.5})     # stall 1
        assert curriculum.active_fidelities == ("low",)
        curriculum.observe({"test_n_l2": 0.499})   # < 5% better: stall 2 -> promote
        assert curriculum.active_fidelities == ("low", "high")
        assert set(curriculum.stage(3, 10).sample_fractions) == {"low", "high"}
        assert [fid for _, fid in curriculum.promotions] == ["high"]

    def test_improvement_resets_the_plateau_watch(self):
        curriculum = self.make(patience=2)
        curriculum.observe({"test_n_l2": 0.5})
        curriculum.observe({"test_n_l2": 0.5})     # stall 1
        curriculum.observe({"test_n_l2": 0.4})     # real improvement: reset
        curriculum.observe({"test_n_l2": 0.4})     # stall 1 again
        assert curriculum.active_fidelities == ("low",)

    def test_monitors_newest_tier_then_falls_back(self):
        curriculum = self.make(patience=1)
        # Per-tier validation beats the aggregate when both are present.
        curriculum.observe({"test_n_l2_low": 0.5, "test_n_l2": 123.0})
        curriculum.observe({"test_n_l2_low": 0.5, "test_n_l2": 0.001})
        assert curriculum.active_fidelities == ("low", "high")
        # Without any validation keys the train loss drives the watch.
        fallback = self.make(patience=1)
        fallback.observe({"train_loss": 1.0})
        fallback.observe({"train_loss": 1.0})
        assert fallback.active_fidelities == ("low", "high")

    def test_promotion_stops_at_the_last_tier(self):
        curriculum = self.make(patience=1)
        for _ in range(6):
            curriculum.observe({"test_n_l2": 1.0})
        assert curriculum.active_fidelities == ("low", "high")
        assert len(curriculum.promotions) == 1

    def test_reset(self):
        curriculum = self.make(patience=1)
        curriculum.observe({"test_n_l2": 1.0})
        curriculum.observe({"test_n_l2": 1.0})
        curriculum.reset()
        assert curriculum.active_fidelities == ("low",)
        assert curriculum.promotions == []

    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError, match="patience"):
            self.make(patience=0)
        with pytest.raises(ValueError, match="min_improvement"):
            self.make(min_improvement=-0.1)

    def test_describe_records_promotions(self):
        import json

        curriculum = self.make(patience=1)
        curriculum.observe({"test_n_l2": 1.0})
        curriculum.observe({"test_n_l2": 1.0})
        payload = json.loads(json.dumps(curriculum.describe()))
        assert payload["promotions"] == [[1, "high"]]

    def test_trainer_integration_promotes_and_records_per_tier_val(
        self, tiny_shard_run
    ):
        """End to end: the trainer feeds epoch records back, the curriculum
        promotes mid-run, and per-tier validation metrics appear."""
        from repro.data.dataset import split_dataset

        _, _, merged = tiny_shard_run
        train, test = split_dataset(merged, train_fraction=0.7, rng=0)
        model = make_model("fno", width=8, modes=(3, 3), depth=2, rng=0)
        # min_improvement=0.9 means nothing ever counts as improving, so the
        # promotion fires deterministically after `patience` epochs.
        curriculum = self.make(patience=1, min_improvement=0.9)
        history = Trainer(
            model, train, test_set=test, epochs=4, batch_size=3, seed=0,
            curriculum=curriculum,
        ).train()
        first, last = history.epochs[0], history.epochs[-1]
        assert "samples_low" in first and "samples_high" not in first
        assert "samples_high" in last
        assert curriculum.promotions and curriculum.promotions[0][1] == "high"
        # Multi-fidelity validation: per-tier curves recorded every epoch.
        assert "test_n_l2_low" in first and "test_n_l2_high" in first
        assert np.isfinite(history.curve("test_n_l2_high")).all()
