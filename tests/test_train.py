"""Tests for MAPS-Train: models, losses, metrics and the trainer."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.constants import wavelength_to_omega
from repro.fdfd.solver import FdfdSolver
from repro.train import (
    MaxwellResidualLoss,
    NMSELoss,
    NormalizedL2Loss,
    Trainer,
    available_models,
    make_model,
    normalized_l2_metric,
    s_parameter_error,
    transmission_error,
)
from repro.train.losses import CompositeLoss, MSELoss
from repro.train.models.neurolight import wave_prior_channels
from repro.train.trainer import predict


FIELD_MODELS = ["fno", "ffno", "unet", "neurolight"]


class TestModels:
    def test_available_models(self):
        assert set(available_models()) == {"fno", "ffno", "unet", "neurolight", "blackbox"}

    @pytest.mark.parametrize("name", FIELD_MODELS)
    def test_field_model_shapes(self, name):
        model = make_model(name, width=8, modes=(3, 3), rng=0) if name != "unet" else make_model(
            name, base_width=8, rng=0
        )
        x = Tensor(np.random.default_rng(0).normal(size=(2, 4, 20, 22)))
        out = model(x)
        assert out.shape == (2, 2, 20, 22)

    def test_blackbox_output_shape_and_range(self):
        model = make_model("blackbox", width=8, rng=0)
        out = model(Tensor(np.random.default_rng(0).normal(size=(3, 4, 20, 20))))
        assert out.shape == (3,)
        assert (out.data >= 0).all() and (out.data <= 1).all()

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError):
            make_model("transformer")

    def test_models_accept_numpy_input(self):
        model = make_model("fno", width=8, modes=(3, 3), rng=0)
        out = model(np.zeros((1, 4, 16, 16)))
        assert out.shape == (1, 2, 16, 16)

    def test_ffno_fewer_parameters_than_fno(self):
        fno = make_model("fno", width=16, modes=(6, 6), depth=3, rng=0)
        ffno = make_model("ffno", width=16, modes=(6, 6), depth=3, rng=0)
        assert ffno.num_parameters() < fno.num_parameters()

    def test_wave_prior_channels(self):
        inputs = np.zeros((2, 4, 10, 12))
        inputs[:, 0] = 0.5
        inputs[:, 3] = 0.05
        prior = wave_prior_channels(inputs)
        assert prior.shape == (2, 4, 10, 12)
        assert np.abs(prior).max() <= 1.0 + 1e-12

    def test_model_gradients_flow_to_input(self):
        """Needed by the AD-based gradient methods of Table II."""
        model = make_model("fno", width=8, modes=(3, 3), depth=2, rng=0)
        x = Tensor(np.random.default_rng(0).normal(size=(1, 4, 12, 12)), requires_grad=True)
        model(x).sum().backward()
        assert x.grad is not None
        assert np.abs(x.grad).max() > 0


class TestLosses:
    def test_normalized_l2_perfect_prediction(self):
        target = np.random.default_rng(0).normal(size=(2, 2, 8, 8))
        loss = NormalizedL2Loss()(Tensor(target), Tensor(target))
        assert loss.item() == pytest.approx(0.0, abs=1e-4)

    def test_normalized_l2_zero_prediction_is_one(self):
        target = np.random.default_rng(0).normal(size=(2, 2, 8, 8))
        loss = NormalizedL2Loss()(Tensor(np.zeros_like(target)), Tensor(target))
        assert loss.item() == pytest.approx(1.0, rel=1e-3)

    def test_nmse_is_squared_version(self):
        rng = np.random.default_rng(0)
        pred, target = rng.normal(size=(1, 4, 4)), rng.normal(size=(1, 4, 4))
        l2 = NormalizedL2Loss(eps=0)(Tensor(pred), Tensor(target)).item()
        nmse = NMSELoss(eps=0)(Tensor(pred), Tensor(target)).item()
        assert nmse == pytest.approx(l2**2, rel=1e-6)

    def test_losses_reject_shape_mismatch(self):
        with pytest.raises(ValueError):
            NormalizedL2Loss()(Tensor(np.zeros((1, 2))), Tensor(np.zeros((1, 3))))
        with pytest.raises(ValueError):
            MSELoss()(Tensor(np.zeros((1, 2))), Tensor(np.zeros((2, 2))))

    def test_losses_are_differentiable(self):
        pred = Tensor(np.random.default_rng(0).normal(size=(2, 2, 4, 4)), requires_grad=True)
        target = Tensor(np.random.default_rng(1).normal(size=(2, 2, 4, 4)))
        NormalizedL2Loss()(pred, target).backward()
        assert pred.grad is not None

    def test_composite_loss(self):
        pred = Tensor(np.ones((1, 2)))
        target = Tensor(np.zeros((1, 2)))
        combined = CompositeLoss([(1.0, MSELoss()), (0.5, MSELoss())])
        assert combined(pred, target).item() == pytest.approx(1.5)

    def test_maxwell_residual_zero_for_true_field(self, tiny_bend):
        """The physics loss vanishes on the actual FDFD solution."""
        density = np.full(tiny_bend.design_shape, 0.5)
        spec = tiny_bend.specs[0]
        sim = tiny_bend.simulation(density, wavelength=spec.wavelength)
        result = sim.solve(spec.source_port)
        solver: FdfdSolver = sim.solver
        matrix = solver.system_matrix(sim.eps_r)
        pred = Tensor(np.stack([result.ez.real, result.ez.imag]), requires_grad=True)
        loss = MaxwellResidualLoss()(
            pred, matrix, result.source, wavelength_to_omega(spec.wavelength), field_scale=1.0
        )
        assert loss.item() < 1e-9
        # A perturbed field has a visibly larger residual and a usable gradient.
        noisy = Tensor(pred.data * 1.1, requires_grad=True)
        noisy_loss = MaxwellResidualLoss()(
            noisy, matrix, result.source, wavelength_to_omega(spec.wavelength), field_scale=1.0
        )
        assert noisy_loss.item() > loss.item()
        noisy_loss.backward()
        assert noisy.grad is not None

    def test_maxwell_residual_shape_check(self):
        with pytest.raises(ValueError):
            MaxwellResidualLoss()(Tensor(np.zeros((3, 4, 4))), None, None, 1.0)


class TestMetrics:
    def test_normalized_l2_metric_batched(self):
        target = np.random.default_rng(0).normal(size=(3, 2, 5, 5))
        assert normalized_l2_metric(target, target) == pytest.approx(0.0, abs=1e-9)
        assert normalized_l2_metric(np.zeros_like(target), target) == pytest.approx(1.0)

    def test_transmission_error(self):
        assert transmission_error([0.5, 0.7], [0.4, 0.9]) == pytest.approx(0.15)

    def test_s_parameter_error(self):
        pred = {"out": 0.5 + 0.5j}
        target = {"out": 0.5 - 0.5j}
        assert s_parameter_error(pred, target) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            s_parameter_error({"a": 1.0}, {"b": 1.0})


class TestTrainer:
    def test_training_reduces_loss(self, tiny_splits):
        train, test = tiny_splits
        model = make_model("fno", width=8, modes=(4, 4), depth=2, rng=0)
        trainer = Trainer(model, train, test, epochs=4, batch_size=3, learning_rate=4e-3, seed=0)
        history = trainer.train()
        losses = history.curve("train_loss")
        assert len(history) == 4
        assert losses[-1] < losses[0]
        assert "test_n_l2" in history.final()

    def test_blackbox_training(self, tiny_splits):
        train, test = tiny_splits
        model = make_model("blackbox", width=8, rng=0)
        trainer = Trainer(
            model, train, test, target="transmission", epochs=3, batch_size=3, seed=0
        )
        history = trainer.train()
        assert "train_mae" in history.final()

    def test_transmission_targets_precomputed_once(self, tiny_splits):
        """Scalar targets are built in __init__ and indexed per batch."""
        train, _ = tiny_splits
        trainer = Trainer(
            make_model("blackbox", width=8, rng=0), train, target="transmission"
        )
        np.testing.assert_array_equal(
            trainer._transmission_targets, train.transmission_array()
        )
        indices = np.array([2, 0])
        np.testing.assert_array_equal(
            trainer._batch_targets(indices),
            np.array([train[2].transmission, train[0].transmission]),
        )
        # Field trainers skip the precompute entirely.
        field_trainer = Trainer(make_model("fno", width=8, modes=(4, 4), depth=2, rng=0), train)
        assert field_trainer._transmission_targets is None

    def test_predict_shapes(self, tiny_splits):
        train, _ = tiny_splits
        model = make_model("fno", width=8, modes=(4, 4), depth=2, rng=0)
        single = predict(model, train[0].inputs)
        batch = predict(model, train.input_array())
        assert single.shape == train[0].target.shape
        assert batch.shape == train.target_array().shape

    def test_invalid_target_kind(self, tiny_splits):
        train, _ = tiny_splits
        with pytest.raises(ValueError):
            Trainer(make_model("fno", rng=0), train, target="s_params")

    def test_empty_training_set_rejected(self, tiny_dataset):
        empty = tiny_dataset.filter(lambda s: False)
        with pytest.raises(ValueError):
            Trainer(make_model("fno", rng=0), empty)

    def test_history_curves(self, tiny_splits):
        train, _ = tiny_splits
        model = make_model("unet", base_width=8, rng=0)
        trainer = Trainer(model, train, epochs=2, batch_size=3, seed=0)
        history = trainer.train()
        assert history.curve("train_n_l2").shape == (2,)
