"""Tests for the streaming shard loader and its trainer integration.

The contracts under test are the acceptance criteria of the streaming
training pipeline: loader-based training is bit-identical to in-memory
training on the merged dataset for the same seed, peak memory stays bounded
by O(shard) (not O(dataset)), and shuffling is independent of the prefetch
worker count.
"""

import numpy as np
import pytest

from repro.data.dataset import datasets_bit_identical, split_dataset, split_shape_runs
from repro.data.loader import ShardDataLoader
from repro.train import Trainer, make_model
from repro.utils.parallel import Prefetcher


def make_loader(config, shard_dir, **kwargs):
    return ShardDataLoader.from_directory(
        shard_dir, fidelities=config.fidelities, **kwargs
    )


class TestPrefetcher:
    def test_results_in_task_order(self):
        tasks = list(range(20))
        with Prefetcher(lambda x: x * x, tasks, workers=4) as prefetcher:
            results = [prefetcher.next() for _ in tasks]
        assert results == [x * x for x in tasks]

    def test_synchronous_fallback(self):
        prefetcher = Prefetcher(lambda x: -x, [1, 2, 3], workers=0)
        assert [prefetcher.next() for _ in range(3)] == [-1, -2, -3]

    def test_exhaustion_raises(self):
        prefetcher = Prefetcher(lambda x: x, [1], workers=1)
        prefetcher.next()
        with pytest.raises(StopIteration):
            prefetcher.next()
        prefetcher.close()

    def test_bounded_lookahead(self):
        in_flight = []

        def fn(x):
            in_flight.append(x)
            return x

        prefetcher = Prefetcher(fn, list(range(10)), workers=1, depth=2)
        # Only the lookahead window is submitted before consumption starts.
        assert len(in_flight) <= 2
        results = [prefetcher.next() for _ in range(10)]
        assert results == list(range(10))

    def test_close_cancels(self):
        prefetcher = Prefetcher(lambda x: x, list(range(100)), workers=1, depth=1)
        prefetcher.close()
        assert len(prefetcher) == 0


class TestShardDataLoader:
    def test_matches_merged_dataset_bitwise(self, tiny_shard_run):
        config, shard_dir, merged = tiny_shard_run
        loader = make_loader(config, shard_dir)
        assert len(loader) == len(merged)
        assert loader.field_scale == merged.field_scale
        assert datasets_bit_identical(merged, loader.materialize())

    def test_index_arrays_match_merged(self, tiny_shard_run):
        config, shard_dir, merged = tiny_shard_run
        loader = make_loader(config, shard_dir)
        np.testing.assert_array_equal(loader.fidelity_array(), merged.fidelity_array())
        np.testing.assert_array_equal(loader.design_id_array(), merged.design_id_array())
        np.testing.assert_array_equal(
            loader.transmission_array(), merged.transmission_array()
        )
        assert loader.sample_shapes() == merged.sample_shapes()

    def test_gather_matches_merged(self, tiny_shard_run):
        config, shard_dir, merged = tiny_shard_run
        loader = make_loader(config, shard_dir)
        indices = np.array([7, 0, 3, 0, 11])
        loader_inputs, loader_targets = loader.gather(indices)
        merged_inputs, merged_targets = merged.gather(indices)
        np.testing.assert_array_equal(loader_inputs, merged_inputs)
        np.testing.assert_array_equal(loader_targets, merged_targets)

    def test_batches_bit_identical_to_dataset(self, tiny_shard_run):
        config, shard_dir, merged = tiny_shard_run
        loader = make_loader(config, shard_dir)
        from_loader = list(loader.batches(4, shuffle=True, rng=123))
        from_merged = list(merged.batches(4, shuffle=True, rng=123))
        assert len(from_loader) == len(from_merged)
        for (li, lt, lc), (mi, mt, mc) in zip(from_loader, from_merged):
            np.testing.assert_array_equal(lc, mc)
            np.testing.assert_array_equal(li, mi)
            np.testing.assert_array_equal(lt, mt)

    def test_memory_bounded_by_cache_not_dataset(self, tiny_shard_run):
        """Shard count >> per-batch shard count: residency stays at the cache cap."""
        config, shard_dir, _ = tiny_shard_run
        loader = make_loader(config, shard_dir, cache_shards=2)
        num_shards = loader.metadata["num_shards"]
        assert num_shards == 12
        for _ in range(2):  # two epochs, batch of 2 touches <= 2 shards
            for _ in loader.batches(2, shuffle=True, rng=0):
                pass
        assert loader.stats.max_resident <= 2 < num_shards
        assert loader.stats.shard_loads >= num_shards

    def test_prefetch_does_not_change_batches(self, tiny_shard_run):
        config, shard_dir, _ = tiny_shard_run
        plain = make_loader(config, shard_dir, cache_shards=2, prefetch=0)
        prefetched = make_loader(config, shard_dir, cache_shards=2, prefetch=3)
        for seed in (0, 7):
            a = list(plain.batches(4, shuffle=True, rng=seed))
            b = list(prefetched.batches(4, shuffle=True, rng=seed))
            assert len(a) == len(b)
            for (ai, at, ac), (bi, bt, bc) in zip(a, b):
                np.testing.assert_array_equal(ac, bc)
                np.testing.assert_array_equal(ai, bi)
                np.testing.assert_array_equal(at, bt)

    def test_restrict_fidelity_matches_filter(self, tiny_shard_run):
        config, shard_dir, merged = tiny_shard_run
        loader = make_loader(config, shard_dir)
        view = loader.restrict(fidelities=["high"])
        filtered = merged.filter(lambda s: s.fidelity == "high")
        assert len(view) == len(filtered) > 0
        assert view.field_scale == merged.field_scale
        assert datasets_bit_identical(filtered, view.materialize())

    def test_split_matches_split_dataset(self, tiny_shard_run):
        config, shard_dir, merged = tiny_shard_run
        loader = make_loader(config, shard_dir)
        train_view, test_view = loader.split(train_fraction=0.7, rng=42)
        train_set, test_set = split_dataset(merged, train_fraction=0.7, rng=42)
        assert datasets_bit_identical(train_set, train_view.materialize())
        assert datasets_bit_identical(test_set, test_view.materialize())

    def test_missing_directory_rejected(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            ShardDataLoader.from_directory(tmp_path / "nope")
        (tmp_path / "empty").mkdir()
        with pytest.raises(FileNotFoundError):
            ShardDataLoader.from_directory(tmp_path / "empty")

    def test_unknown_fidelity_order_rejected(self, tiny_shard_run):
        config, shard_dir, _ = tiny_shard_run
        with pytest.raises(ValueError, match="fidelities"):
            ShardDataLoader.from_directory(shard_dir, fidelities=("low",))

    def test_mixed_generation_runs_rejected(self, tiny_shard_run, tmp_path):
        """A reused shard_dir holding two configs' artifacts must fail loudly,
        not train on a silently interleaved mix."""
        import shutil

        from repro.data.generator import DatasetGenerator

        from dataclasses import replace

        config, shard_dir, _ = tiny_shard_run
        mixed_dir = tmp_path / "mixed"
        shutil.copytree(shard_dir, mixed_dir)
        # A second run with a different seed writes new fingerprint-named
        # shards for the same design ids next to the stale ones.
        stale_config = replace(
            config, seed=99, num_designs=2, shard_dir=str(mixed_dir)
        )
        DatasetGenerator(stale_config).generate()
        with pytest.raises(ValueError, match="different generation runs"):
            ShardDataLoader.from_directory(mixed_dir, fidelities=config.fidelities)

    def test_stream_explicit_chunks(self, tiny_shard_run):
        """stream() (the curriculum/prefetch seam) equals per-chunk gather."""
        config, shard_dir, merged = tiny_shard_run
        loader = make_loader(config, shard_dir, cache_shards=2, prefetch=2)
        chunks = [np.array([4, 1]), np.array([9, 9, 0]), np.array([2])]
        streamed = list(loader.stream(chunks))
        assert len(streamed) == len(chunks)
        for chunk, (inputs, targets) in zip(chunks, streamed):
            expected_inputs, expected_targets = merged.gather(chunk)
            np.testing.assert_array_equal(inputs, expected_inputs)
            np.testing.assert_array_equal(targets, expected_targets)

    def test_cache_hits_counted_once_per_access(self, tiny_shard_run):
        """Regression: ensure+gather used to double-count hits per batch."""
        config, shard_dir, _ = tiny_shard_run
        loader = make_loader(config, shard_dir, cache_shards=12)
        order = np.arange(len(loader))
        expected_accesses = sum(
            len({loader._refs[i].shard for i in chunk})
            for chunk in (order[s : s + 4] for s in range(0, len(order), 4))
        )
        loader.cache_clear()
        for _ in loader.batches(4, shuffle=False):
            pass
        assert loader.stats.shard_loads == loader.metadata["num_shards"]
        first_epoch_hits = loader.stats.cache_hits
        for _ in loader.batches(4, shuffle=False):
            pass
        # Second epoch is fully cached: exactly one hit per chunk-shard access.
        assert loader.stats.cache_hits - first_epoch_hits == expected_accesses

    def test_getitem_streams_single_samples(self, tiny_shard_run):
        config, shard_dir, merged = tiny_shard_run
        loader = make_loader(config, shard_dir, cache_shards=1)
        sample = loader[5]
        np.testing.assert_array_equal(sample.inputs, merged[5].inputs)
        assert sample.fidelity == merged[5].fidelity
        assert loader.stats.max_resident == 1


class TestSplitShapeRuns:
    def test_uniform_chunk_stays_whole(self):
        chunk = np.array([3, 1, 2])
        runs = split_shape_runs(chunk, {1: (4, 4), 2: (4, 4), 3: (4, 4)})
        assert len(runs) == 1
        np.testing.assert_array_equal(runs[0], chunk)

    def test_splits_at_shape_boundaries(self):
        shapes = {0: (4, 4), 1: (8, 8), 2: (8, 8), 3: (4, 4)}
        runs = split_shape_runs(np.array([0, 1, 2, 3]), shapes)
        assert [list(r) for r in runs] == [[0], [1, 2], [3]]

    def test_empty_chunk(self):
        assert split_shape_runs(np.array([], dtype=int), {}) == []


class TestLoaderTraining:
    def test_training_bit_identical_to_in_memory(self, tiny_shard_run):
        """The headline acceptance criterion: same seed, same loss curves."""
        config, shard_dir, merged = tiny_shard_run
        loader = make_loader(config, shard_dir, cache_shards=2)
        kwargs = dict(epochs=3, batch_size=4, learning_rate=4e-3, seed=11)
        in_memory = Trainer(
            make_model("fno", width=8, modes=(3, 3), depth=2, rng=0), merged, **kwargs
        ).train()
        streamed = Trainer(
            make_model("fno", width=8, modes=(3, 3), depth=2, rng=0),
            data=loader,
            **kwargs,
        ).train()
        assert in_memory.epochs == streamed.epochs

    def test_training_independent_of_prefetch_workers(self, tiny_shard_run):
        config, shard_dir, _ = tiny_shard_run
        histories = []
        for prefetch in (0, 2):
            loader = make_loader(config, shard_dir, cache_shards=2, prefetch=prefetch)
            model = make_model("fno", width=8, modes=(3, 3), depth=2, rng=0)
            histories.append(
                Trainer(model, data=loader, epochs=2, batch_size=4, seed=5).train()
            )
        assert histories[0].epochs == histories[1].epochs

    def test_trainer_rejects_both_seams(self, tiny_shard_run):
        config, shard_dir, merged = tiny_shard_run
        loader = make_loader(config, shard_dir)
        with pytest.raises(ValueError, match="either train_set or data"):
            Trainer(
                make_model("fno", width=8, modes=(3, 3), depth=2, rng=0),
                merged,
                data=loader,
            )
        with pytest.raises(ValueError, match="required"):
            Trainer(make_model("fno", width=8, modes=(3, 3), depth=2, rng=0))

    def test_transmission_training_on_loader(self, tiny_shard_run):
        config, shard_dir, merged = tiny_shard_run
        loader = make_loader(config, shard_dir)
        model = make_model("blackbox", width=8, rng=0)
        history = Trainer(
            model, data=loader, target="transmission", epochs=2, batch_size=4, seed=0
        ).train()
        assert "train_mae" in history.final()
        reference = Trainer(
            make_model("blackbox", width=8, rng=0),
            merged,
            target="transmission",
            epochs=2,
            batch_size=4,
            seed=0,
        ).train()
        assert history.epochs == reference.epochs


class TestRefresh:
    """Loader growth: the active-learning append path."""

    @pytest.fixture()
    def growing_run(self, tmp_path):
        """A fresh single-use shard run plus an *append* config for it.

        Function-scoped on purpose: refresh tests grow the directory, which
        must never happen to the shared session-scoped ``tiny_shard_run``.
        """
        from dataclasses import replace

        from repro.data.generator import DatasetGenerator, GeneratorConfig

        config = GeneratorConfig(
            device_name="bending",
            strategy="random",
            num_designs=3,
            fidelities=("low", "high"),
            with_gradient=False,
            seed=0,
            device_kwargs=dict(domain=3.0, design_size=1.4, dl=0.1),
            engine={"low": "iterative", "high": "direct"},
            shard_size=2,
            shard_dir=str(tmp_path / "shards"),
        )
        DatasetGenerator(config).generate()
        append_config = replace(
            config, num_designs=2, design_id_offset=3, seed=7
        )
        return config, append_config

    def test_refresh_appends_and_preserves_existing_bytes(self, growing_run):
        from dataclasses import replace

        from repro.data.generator import DatasetGenerator

        config, append_config = growing_run
        loader = ShardDataLoader.from_directory(
            config.shard_dir, fidelities=config.fidelities
        )
        before = loader.materialize()
        field_scale = loader.field_scale

        appended = DatasetGenerator(append_config).generate()
        assert loader.refresh() == len(appended)
        assert len(loader) == len(before) + len(appended)
        # The frozen normalization is the contract that keeps old samples
        # byte-identical: the model trained on them must not see them move.
        assert loader.field_scale == field_scale
        after = loader.materialize()
        from repro.data.dataset import PhotonicDataset

        assert datasets_bit_identical(
            before,
            PhotonicDataset(after.samples[: len(before)], field_scale=field_scale),
        )
        # New design ids continue past the existing ones.
        new_ids = {s.design_id for s in after.samples[len(before) :]}
        assert new_ids == {3, 4}
        # A fresh loader over the grown directory (normalization pinned) sees
        # the same sample *content*.  Order legitimately differs: refresh
        # appends (stable indices for the training loop), a fresh loader
        # re-sorts everything fidelity-major — so compare canonically sorted.
        fresh = ShardDataLoader.from_directory(
            config.shard_dir, fidelities=config.fidelities, field_scale=field_scale
        )
        rank = {f: i for i, f in enumerate(config.fidelities)}

        def canon(dataset):
            samples = sorted(
                dataset.samples,
                key=lambda s: (rank[s.fidelity], s.design_id, s.spec_index),
            )
            return PhotonicDataset(samples, field_scale=dataset.field_scale)

        assert datasets_bit_identical(canon(after), canon(fresh.materialize()))

    def test_refresh_without_new_shards_is_a_noop(self, growing_run):
        config, _ = growing_run
        loader = ShardDataLoader.from_directory(
            config.shard_dir, fidelities=config.fidelities
        )
        count = len(loader)
        assert loader.refresh() == 0
        assert len(loader) == count

    def test_refresh_rejects_stale_mix(self, growing_run):
        """A new shard re-labelling existing (fidelity, design_id) pairs is a
        mixed-run artifact; refresh must reject it and stay unchanged."""
        from dataclasses import replace

        from repro.data.generator import DatasetGenerator

        config, _ = growing_run
        loader = ShardDataLoader.from_directory(
            config.shard_dir, fidelities=config.fidelities
        )
        count = len(loader)
        paths = list(loader._paths)
        # Same design ids (no offset), different seed: new fingerprint files
        # that collide with the existing ids.
        DatasetGenerator(replace(config, num_designs=2, seed=99)).generate()
        with pytest.raises(ValueError, match="different generation runs"):
            loader.refresh()
        assert len(loader) == count
        assert loader._paths == paths

    def test_refresh_rejects_views(self, growing_run):
        config, _ = growing_run
        loader = ShardDataLoader.from_directory(
            config.shard_dir, fidelities=config.fidelities
        )
        with pytest.raises(ValueError, match="root loader"):
            loader.restrict(fidelities=["low"]).refresh()
        with pytest.raises(ValueError, match="root loader"):
            loader.split(0.5, rng=0)[0].refresh()

    def test_refresh_requires_directory_or_paths(self, growing_run):
        from pathlib import Path

        config, append_config = growing_run
        from repro.data.generator import DatasetGenerator

        paths = sorted(Path(config.shard_dir).glob("shard_*.npz"))
        loader = ShardDataLoader(paths, fidelities=config.fidelities)
        with pytest.raises(ValueError, match="shard_paths"):
            loader.refresh()
        DatasetGenerator(append_config).generate()
        grown = sorted(Path(config.shard_dir).glob("shard_*.npz"))
        assert loader.refresh(shard_paths=grown) > 0

    def test_stale_format_artifacts_are_skipped(self, growing_run):
        """Upgrade path: a resumed directory can hold older-format artifacts
        next to their regenerated versions (the generator never deletes files
        it did not write).  The loader must skip them — at construction and
        on refresh — instead of tripping the mixed-run check."""
        import json
        from pathlib import Path

        import numpy as np

        config, _ = growing_run
        shard_dir = Path(config.shard_dir)
        # Forge a "previous release" artifact: same content as a real shard,
        # header version rolled back, under a different fingerprint name.
        source = sorted(shard_dir.glob("shard_*.npz"))[0]
        with np.load(source, allow_pickle=False) as archive:
            arrays = {name: archive[name] for name in archive.files}
        header = json.loads(bytes(arrays["__header__"].tobytes()).decode("utf-8"))
        header["version"] = 1
        arrays["__header__"] = np.frombuffer(
            json.dumps(header).encode("utf-8"), dtype=np.uint8
        )
        stale = shard_dir / "shard_00000000000000000000.npz"
        np.savez_compressed(stale, **arrays)

        loader = ShardDataLoader.from_directory(
            config.shard_dir, fidelities=config.fidelities
        )
        assert stale not in loader._paths
        assert loader.refresh() == 0  # the stale file never counts as "new"

        # A directory holding nothing but stale artifacts fails loudly.
        only_stale = shard_dir / "only_stale"
        only_stale.mkdir()
        np.savez_compressed(only_stale / "shard_0000.npz", **arrays)
        with pytest.raises(ValueError, match="format version"):
            ShardDataLoader.from_directory(only_stale)

    def test_refresh_rejects_unknown_fidelity(self, growing_run, tmp_path):
        from dataclasses import replace

        from repro.data.generator import DatasetGenerator

        config, append_config = growing_run
        loader = ShardDataLoader.from_directory(
            config.shard_dir, fidelities=config.fidelities
        )
        DatasetGenerator(
            replace(
                append_config,
                fidelities=("medium",),
                engine="iterative",
                device_kwargs=dict(config.device_kwargs),
            )
        ).generate()
        with pytest.raises(ValueError, match="fidelities"):
            loader.refresh()
