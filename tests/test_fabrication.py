"""Tests for the fabrication and operating-condition variation models."""

import numpy as np
import pytest

from repro import constants
from repro.autograd import Tensor, check_gradient
from repro.fabrication import (
    EtchModel,
    FabricationCorner,
    LithographyModel,
    TemperatureDrift,
    WavelengthDrift,
    standard_corners,
)
from repro.parametrization.analysis import solid_fraction


def _square_pattern(size=21, half=6):
    pattern = np.zeros((size, size))
    centre = size // 2
    pattern[centre - half : centre + half, centre - half : centre + half] = 1.0
    return pattern


class TestLithography:
    def test_output_range(self):
        out = LithographyModel()(Tensor(_square_pattern())).data
        assert out.min() >= 0.0 and out.max() <= 1.0

    def test_nominal_dose_preserves_large_features(self):
        pattern = _square_pattern()
        printed = LithographyModel(blur_sigma_cells=1.0)(Tensor(pattern)).data
        assert printed[10, 10] > 0.9
        assert printed[0, 0] < 0.1

    def test_overdose_grows_features(self):
        pattern = _square_pattern()
        nominal = LithographyModel(dose=1.0)(Tensor(pattern)).data
        over = LithographyModel(dose=1.3)(Tensor(pattern)).data
        assert solid_fraction(over) >= solid_fraction(nominal)

    def test_underdose_shrinks_features(self):
        pattern = _square_pattern()
        nominal = LithographyModel(dose=1.0)(Tensor(pattern)).data
        under = LithographyModel(dose=0.7)(Tensor(pattern)).data
        assert solid_fraction(under) <= solid_fraction(nominal)

    def test_defocus_blurs_more(self):
        pattern = _square_pattern()
        sharp = LithographyModel(defocus=0.0, sharpness=4.0)(Tensor(pattern)).data
        blurred = LithographyModel(defocus=3.0, sharpness=4.0)(Tensor(pattern)).data
        assert blurred.std() < sharp.std() + 1e-9

    def test_differentiable(self):
        x = Tensor(np.random.default_rng(0).uniform(0, 1, (9, 9)), requires_grad=True)
        assert check_gradient(lambda x: LithographyModel(blur_sigma_cells=1.0)(x), [x]) < 1e-4

    def test_with_corner(self):
        corner = LithographyModel().with_corner(defocus=2.0, dose=1.1)
        assert corner.defocus == 2.0 and corner.dose == 1.1

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            LithographyModel(blur_sigma_cells=0.0)
        with pytest.raises(ValueError):
            LithographyModel(dose=0.0)
        with pytest.raises(ValueError):
            LithographyModel(sharpness=-1.0)


class TestEtch:
    def test_zero_bias_is_identity(self):
        pattern = _square_pattern()
        np.testing.assert_allclose(EtchModel(0.0)(Tensor(pattern)).data, pattern)

    def test_over_etch_shrinks(self):
        pattern = _square_pattern()
        etched = EtchModel(bias_cells=2.0)(Tensor(pattern)).data
        assert solid_fraction(etched) < solid_fraction(pattern)

    def test_under_etch_grows(self):
        pattern = _square_pattern()
        grown = EtchModel(bias_cells=-2.0)(Tensor(pattern)).data
        assert solid_fraction(grown) > solid_fraction(pattern)

    def test_differentiable(self):
        x = Tensor(np.random.default_rng(0).uniform(0, 1, (9, 9)), requires_grad=True)
        assert check_gradient(lambda x: EtchModel(1.0)(x), [x]) < 1e-4

    def test_invalid_sharpness(self):
        with pytest.raises(ValueError):
            EtchModel(1.0, sharpness=0.0)


class TestDrift:
    def test_wavelength_drift(self):
        assert WavelengthDrift(0.005).apply_wavelength(1.55) == pytest.approx(1.555)

    def test_wavelength_drift_rejects_nonpositive_result(self):
        with pytest.raises(ValueError):
            WavelengthDrift(-2.0).apply_wavelength(1.55)

    def test_temperature_drift_shifts_core_only(self):
        eps = np.full((10, 10), constants.EPS_SIO2)
        eps[4:6, :] = constants.EPS_SI
        shifted = TemperatureDrift(50.0).apply_eps(eps)
        np.testing.assert_allclose(shifted[0], constants.EPS_SIO2)
        assert (shifted[4] > constants.EPS_SI).all()

    def test_temperature_drift_magnitude(self):
        eps = np.array([[constants.EPS_SI]])
        shifted = TemperatureDrift(100.0).apply_eps(eps)
        expected = constants.EPS_SI + 2 * constants.N_SI * constants.DN_DT_SI * 100.0
        assert shifted[0, 0] == pytest.approx(expected, rel=1e-6)

    def test_zero_drift_is_identity(self):
        eps = np.full((5, 5), constants.EPS_SI)
        np.testing.assert_allclose(TemperatureDrift(0.0).apply_eps(eps), eps)


class TestCorners:
    def test_standard_corner_set(self):
        corners = standard_corners()
        names = {c.name for c in corners}
        assert {"nominal", "over_etch", "under_etch", "wavelength_drift", "temperature_drift"} <= names
        nominal = next(c for c in corners if c.name == "nominal")
        assert nominal.weight > max(c.weight for c in corners if c.name != "nominal") - 1e-12

    def test_corner_pipeline_applies_transforms(self):
        corner = FabricationCorner(name="test", pattern_transforms=[EtchModel(2.0)])
        pattern = _square_pattern()
        out = corner.pipeline()(Tensor(pattern)).data
        assert solid_fraction(out) < solid_fraction(pattern)

    def test_corner_pattern_output_stays_in_unit_range(self):
        pattern = Tensor(_square_pattern())
        for corner in standard_corners():
            out = corner.pipeline()(pattern).data
            assert out.min() >= -1e-9 and out.max() <= 1.0 + 1e-9
