"""Unit tests for the time-domain (FDTD) tier.

Covers the leapfrog core (dispersion warping, pulse design, CPML decay,
batched/per-batch stepping, precision variants), the broadband facade
(normalization cache, combined device+reference run) and the broadband
dataset plumbing (``evaluate_specs(wavelengths=...)`` through labels and
generator).  Cross-engine accuracy lives in ``test_engine_parity.py``.
"""

import numpy as np
import pytest

import repro.fdtd.broadband as broadband
from repro.constants import wavelength_to_omega
from repro.data.labels import extract_labels_batch
from repro.devices.factory import make_device
from repro.fdfd.engine import make_engine
from repro.fdfd.grid import Grid
from repro.fdtd.broadband import FdtdSimulation
from repro.fdtd.core import (
    FdtdStepper,
    GaussianPulse,
    courant_timestep,
    design_pulse,
    run_pulsed,
    warped_frequency,
)
from repro.fdtd.engine import FdtdFrequencyEngine
from repro.invdes.adjoint import NumericalFieldBackend, evaluate_specs


def _grid(n: int = 50, dl: float = 0.05, npml: int = 10) -> Grid:
    return Grid(nx=n, ny=n, dl=dl, npml=npml)


def _point_current(grid: Grid, batch: int = 1) -> np.ndarray:
    currents = np.zeros((batch,) + grid.shape, dtype=complex)
    currents[:, grid.nx // 2, grid.ny // 2] = 1.0
    return currents


OMEGA = wavelength_to_omega(1.55)


class TestCore:
    def test_courant_timestep_value_and_bounds(self):
        grid = _grid()
        from repro.constants import C_0

        dt = courant_timestep(grid.dl_m, courant=0.5)
        assert dt == pytest.approx(0.5 * grid.dl_m / (C_0 * np.sqrt(2.0)))
        with pytest.raises(ValueError, match="courant"):
            courant_timestep(grid.dl_m, courant=0.0)
        with pytest.raises(ValueError, match="courant"):
            courant_timestep(grid.dl_m, courant=1.5)

    def test_warped_frequency_inverts_leapfrog_dispersion(self):
        dt = courant_timestep(_grid().dl_m)
        warped = warped_frequency(OMEGA, dt)
        # The leapfrog maps a discrete phasor at w' onto (2/dt) sin(w' dt / 2);
        # the warp must invert that map exactly.
        assert (2.0 / dt) * np.sin(0.5 * warped * dt) == pytest.approx(OMEGA, rel=1e-12)
        assert warped > OMEGA  # pre-compensation always shifts up
        with pytest.raises(ValueError, match="not resolvable"):
            warped_frequency(2.0 / dt + 1.0, dt)

    def test_pulse_spectrum_is_exact_dtft(self):
        pulse = GaussianPulse(carrier=OMEGA, tau=8.0 / OMEGA)
        dt = 1e-17
        times = (np.arange(2000) + 0.5) * dt
        omegas = np.array([0.9 * OMEGA, OMEGA, 1.1 * OMEGA])
        expected = np.array(
            [dt * np.sum(pulse(times) * np.exp(-1j * w * times)) for w in omegas]
        )
        np.testing.assert_allclose(pulse.spectrum(omegas, times, dt), expected, rtol=1e-12)

    def test_design_pulse_constraints(self):
        omegas = OMEGA * np.array([0.99, 1.0, 1.01])
        pulse = design_pulse(omegas)
        assert pulse.carrier == pytest.approx(omegas.mean())
        # Default width: shortest without DC content.
        assert pulse.carrier * pulse.tau == pytest.approx(8.0)
        with pytest.raises(ValueError, match="DC content"):
            design_pulse(omegas, tau_s=1.0 / OMEGA)
        with pytest.raises(ValueError, match="cannot cover"):
            design_pulse(OMEGA * np.array([0.5, 1.0, 1.5]))

    def test_stepper_validation(self):
        grid = _grid(n=30, npml=6)
        eps = np.ones(grid.shape)
        with pytest.raises(ValueError, match="dtype"):
            FdtdStepper(grid, eps, dtype=np.int32)
        with pytest.raises(ValueError, match="matches neither"):
            FdtdStepper(grid, np.ones((5, 5)))
        with pytest.raises(ValueError, match="positive"):
            FdtdStepper(grid, 0.0 * eps)
        with pytest.raises(ValueError, match="real permittivity"):
            FdtdStepper(grid, eps + 1j * eps)
        stepper = FdtdStepper(grid, eps, dtype=np.float64)
        with pytest.raises(ValueError, match="complex current"):
            stepper.set_current(1j * _point_current(grid)[0][None])
        with pytest.raises(ValueError, match="does not match state"):
            stepper.set_current(np.zeros((2,) + grid.shape))

    def test_cpml_absorbs_ringdown(self):
        """A pulsed point source must decay instead of bouncing off the walls."""
        grid = _grid(n=40, npml=10)
        stepper = FdtdStepper(grid, np.ones(grid.shape), dtype=np.float64)
        stepper.set_current(_point_current(grid).real)
        pulse = design_pulse(np.array([warped_frequency(OMEGA, stepper.dt)]))
        n_source = int(np.ceil(pulse.duration / stepper.dt))
        peak = 0.0
        for step in range(n_source + 3000):
            t = (step + 0.5) * stepper.dt
            stepper.step(pulse(t).real if step < n_source else 0.0)
            peak = max(peak, stepper.peak()[0])
        assert stepper.peak()[0] < 1e-3 * peak

    def test_per_batch_permittivity_matches_separate_runs(self):
        """A stacked two-media run must reproduce two single-medium runs."""
        grid = _grid(n=36, npml=8)
        eps_a = np.ones(grid.shape)
        eps_b = np.full(grid.shape, 4.0)
        current = _point_current(grid)
        kwargs = dict(decay_tol=0.0, max_steps=1200, check_every=200)
        stacked = run_pulsed(
            grid,
            np.stack([eps_a, eps_b]),
            np.concatenate([current, current]),
            np.array([OMEGA]),
            **kwargs,
        )
        single_a = run_pulsed(grid, eps_a, current, np.array([OMEGA]), **kwargs)
        single_b = run_pulsed(grid, eps_b, current, np.array([OMEGA]), **kwargs)
        np.testing.assert_allclose(stacked[:, 0], single_a[:, 0], rtol=1e-12)
        np.testing.assert_allclose(stacked[:, 1], single_b[:, 0], rtol=1e-12)

    def test_single_precision_tracks_double(self):
        grid = _grid(n=36, npml=8)
        eps = np.full(grid.shape, 2.25)
        current = _point_current(grid)
        kwargs = dict(decay_tol=0.0, max_steps=1200, check_every=200)
        double = run_pulsed(grid, eps, current, np.array([OMEGA]), **kwargs)
        single = run_pulsed(
            grid, eps, current, np.array([OMEGA]), precision="single", **kwargs
        )
        scale = np.abs(double).max()
        assert np.abs(single - double).max() < 1e-4 * scale

    def test_run_pulsed_validation(self):
        grid = _grid(n=30, npml=6)
        with pytest.raises(ValueError, match="batch"):
            run_pulsed(grid, np.ones(grid.shape), np.zeros(grid.shape), [OMEGA])
        with pytest.raises(ValueError, match="precision"):
            run_pulsed(
                grid, np.ones(grid.shape), _point_current(grid), [OMEGA], precision="half"
            )

    def test_interior_fields_match_direct_fdfd(self):
        """The warped DFT extraction satisfies the FDFD system away from the PML."""
        grid = _grid(n=50, npml=10)
        eps = np.full(grid.shape, 2.25)
        rhs = 1j * OMEGA * _point_current(grid)
        ez_direct = make_engine("direct").solve_batch(grid, OMEGA, eps, rhs)[0]
        ez_fdtd = make_engine("fdtd", decay_tol=1e-4).solve_batch(grid, OMEGA, eps, rhs)[0]
        margin = grid.npml + 4
        interior = (slice(margin, -margin), slice(margin, -margin))
        scale = np.linalg.norm(ez_direct[interior])
        rel = np.linalg.norm(ez_fdtd[interior] - ez_direct[interior]) / scale
        assert rel < 0.02


class TestFdtdSimulation:
    @pytest.fixture(scope="class")
    def device(self):
        return make_device("bending", domain=3.0, design_size=1.4, dl=0.1)

    @pytest.fixture(scope="class")
    def eps_r(self, device):
        density = np.random.default_rng(3).uniform(0.2, 0.8, device.design_shape)
        return device.eps_with_design(density)

    def test_validation(self, device, eps_r):
        ports = device.geometry.ports
        with pytest.raises(ValueError, match="does not match grid"):
            FdtdSimulation(device.grid, np.ones((3, 3)), [1.55], ports)
        with pytest.raises(ValueError, match="at least one wavelength"):
            FdtdSimulation(device.grid, eps_r, [], ports)
        with pytest.raises(ValueError, match="at least one port"):
            FdtdSimulation(device.grid, eps_r, [1.55], [])
        sim = FdtdSimulation(device.grid, eps_r, [1.55], ports)
        with pytest.raises(KeyError, match="unknown port"):
            sim.solve(source_port="nope")

    def test_one_run_many_wavelengths_and_norm_cache(self, device, eps_r, monkeypatch):
        """First solve runs device+reference batched; repeats hit the cache."""
        wavelengths = [1.53, 1.55, 1.57]
        calls = []
        real_run = broadband.run_pulsed

        def counting_run(grid, eps, currents, omegas, **kwargs):
            calls.append(currents.shape[0])
            return real_run(grid, eps, currents, omegas, **kwargs)

        monkeypatch.setattr(broadband, "run_pulsed", counting_run)
        broadband._NORM_CACHE.clear()
        sim = FdtdSimulation(device.grid, eps_r, wavelengths, device.geometry.ports)
        results = sim.solve()
        # Cache miss: exactly one time integration, device and normalization
        # reference stacked as a batch of two.
        assert calls == [2]
        assert [r.wavelength for r in results] == pytest.approx(wavelengths)
        for result in results:
            assert result.ez.shape == device.grid.shape
            assert set(result.transmissions) == {"out"}
            assert np.isfinite(result.ez).all()
            assert result.input_flux > 0

        again = sim.solve()
        # Cache hit: one more run, device only.  The second integration stops
        # at its own decay check (the batch no longer contains the reference
        # geometry), so the fields agree to the ring-down tolerance, not
        # bitwise.
        assert calls == [2, 1]
        for a, b in zip(results, again):
            scale = np.abs(a.ez).max()
            np.testing.assert_allclose(b.ez, a.ez, atol=2e-3 * scale)
            assert b.transmissions["out"] == pytest.approx(
                a.transmissions["out"], abs=1e-3
            )

    def test_results_vary_across_band(self, device, eps_r):
        broadband._NORM_CACHE.clear()
        sim = FdtdSimulation(device.grid, eps_r, [1.50, 1.60], device.geometry.ports)
        lo, hi = sim.solve()
        assert lo.transmissions["out"] != pytest.approx(hi.transmissions["out"], abs=1e-4)


class TestEngineRegistration:
    def test_registry_and_signature(self):
        engine = make_engine("fdtd")
        assert isinstance(engine, FdtdFrequencyEngine)
        assert engine.supports_warm_start is False
        assert engine.fidelity_signature[0] == "fdtd"
        # Stepping parameters and precision are part of the cache identity.
        assert (
            make_engine("fdtd", decay_tol=1e-4).fidelity_signature
            != engine.fidelity_signature
        )
        assert (
            make_engine("fdtd", precision="single").fidelity_signature
            != engine.fidelity_signature
        )
        assert (
            make_engine("fdtd").fidelity_signature == engine.fidelity_signature
        )


class TestBroadbandPlumbing:
    @pytest.fixture(scope="class")
    def device(self):
        return make_device("bending", domain=3.0, design_size=1.4, dl=0.1)

    @pytest.fixture(scope="class")
    def density(self, device):
        return np.random.default_rng(5).uniform(0.2, 0.8, device.design_shape)

    WLS = [1.54, 1.55, 1.56]

    def test_gradient_request_is_rejected(self, device, density):
        with pytest.raises(ValueError, match="forward-only"):
            evaluate_specs(
                device, density, compute_gradient=True, wavelengths=self.WLS
            )
        with pytest.raises(ValueError, match="forward-only"):
            extract_labels_batch(
                device, density, with_gradient=True, wavelengths=self.WLS
            )

    def test_fallback_engine_loops_per_wavelength(self, device, density):
        """Non-fdtd engines evaluate each wavelength through the standard path."""
        from dataclasses import replace

        broad = evaluate_specs(
            device,
            density,
            backend=NumericalFieldBackend(engine="direct"),
            compute_gradient=False,
            wavelengths=self.WLS,
        )
        assert len(broad) == len(self.WLS) * len(device.specs)
        for k, w in enumerate(self.WLS):
            for j, spec in enumerate(device.specs):
                evaluation = broad[k * len(device.specs) + j]
                assert evaluation.spec.wavelength == pytest.approx(w)
                manual = evaluate_specs(
                    device,
                    density,
                    specs=[replace(spec, wavelength=w)],
                    compute_gradient=False,
                )[0]
                assert evaluation.objective_value == pytest.approx(
                    manual.objective_value, rel=1e-12
                )

    def test_fdtd_labels_are_wavelength_major(self, device, density):
        labels = extract_labels_batch(
            device,
            density,
            with_gradient=False,
            engine=make_engine("fdtd", courant=0.99, decay_tol=1e-3, precision="single"),
            wavelengths=self.WLS,
        )
        assert [lab.wavelength for lab in labels] == pytest.approx(self.WLS)
        for lab in labels:
            assert lab.adjoint_gradient is None
            assert np.isfinite(lab.ez).all()
            assert set(lab.transmissions) == {"out"}
            assert np.isfinite(lab.maxwell_residual)

    def test_generator_broadband_config(self, tmp_path):
        from repro.data.generator import DatasetGenerator, GeneratorConfig

        with pytest.raises(ValueError, match="forward-only"):
            DatasetGenerator(GeneratorConfig(wavelengths=(1.55,), with_gradient=True))

        config = GeneratorConfig(
            device_name="bending",
            device_kwargs=dict(domain=3.0, design_size=1.4, dl=0.1),
            strategy="random",
            num_designs=1,
            fidelities=("low",),
            with_gradient=False,
            engine="fdtd",
            wavelengths=(1.54, 1.55, 1.56),
            shard_dir=str(tmp_path),
        )
        dataset = DatasetGenerator(config).generate()
        assert len(dataset) == 3
        assert dataset.metadata["wavelengths"] == [1.54, 1.55, 1.56]
        assert [dataset[i].wavelength for i in range(3)] == pytest.approx(
            [1.54, 1.55, 1.56]
        )
        # Broadband shards resume like any other (fingerprint covers the band).
        resumed = DatasetGenerator(config).generate()
        assert all(
            np.array_equal(dataset[i].target, resumed[i].target) for i in range(3)
        )

    def test_wavelengths_key_changes_fingerprint_only_when_set(self):
        from repro.data.generator import GeneratorConfig
        from repro.data.shards import plan_shards, shard_fingerprint

        base = GeneratorConfig(num_designs=1, with_gradient=False)
        banded = GeneratorConfig(
            num_designs=1, with_gradient=False, wavelengths=(1.53, 1.57)
        )
        density = [np.zeros((4, 4))]
        spec = plan_shards(base, num_designs=1)[0]
        fp_base = shard_fingerprint(base, spec, density, ["random"])
        fp_band = shard_fingerprint(banded, spec, density, ["random"])
        assert fp_base != fp_band
        # And unchanged for configs that never mention wavelengths (resume
        # compatibility for every pre-broadband artifact).
        assert fp_base == shard_fingerprint(base, spec, density, ["random"])
