"""Tests for MAPS-InvDes: objectives, adjoint gradients, optimization, robustness."""

import numpy as np
import pytest

from repro.fabrication import EtchModel, FabricationCorner, LithographyModel, WavelengthDrift
from repro.invdes import (
    AdjointOptimizer,
    InverseDesignProblem,
    RobustInverseDesignProblem,
    evaluate_spec,
    initial_density,
)
from repro.invdes.adjoint import evaluate_all_specs
from repro.invdes.objectives import objective_for_spec
from repro.parametrization.transforms import (
    BinarizationProjection,
    BlurTransform,
    TransformPipeline,
)
from tests.helpers.fd_grad import assert_gradient_matches_fd, central_difference


@pytest.fixture(scope="module")
def bend_density(tiny_bend):
    rng = np.random.default_rng(3)
    return np.clip(0.5 + 0.15 * rng.normal(size=tiny_bend.design_shape), 0.0, 1.0)


class TestAdjointGradients:
    @pytest.mark.parametrize("kind", ["mode", "flux"])
    def test_adjoint_matches_finite_difference(self, tiny_bend, bend_density, kind):
        spec = tiny_bend.specs[0]
        objective = objective_for_spec(spec, kind=kind)
        evaluation = evaluate_spec(tiny_bend, bend_density, spec, objective=objective)

        def value(density):
            return evaluate_spec(
                tiny_bend, density, spec, objective=objective, compute_gradient=False
            ).objective_value

        assert_gradient_matches_fd(
            value, bend_density, evaluation.grad_density, rng=0, step=1e-4, rel=1e-3
        )

    def test_gradient_shape(self, tiny_bend, bend_density):
        evaluation = evaluate_spec(tiny_bend, bend_density, tiny_bend.specs[0])
        assert evaluation.grad_density.shape == tiny_bend.design_shape

    def test_skip_gradient_flag(self, tiny_bend, bend_density):
        evaluation = evaluate_spec(
            tiny_bend, bend_density, tiny_bend.specs[0], compute_gradient=False
        )
        assert np.allclose(evaluation.grad_density, 0.0)
        assert evaluation.adjoint_field is None

    def test_evaluate_all_specs_normalization(self, tiny_bend, bend_density):
        fom, grad, evaluations = evaluate_all_specs(tiny_bend, bend_density)
        assert len(evaluations) == len(tiny_bend.specs)
        assert grad.shape == tiny_bend.design_shape
        assert -1.0 <= fom <= 1.5

    def test_crossing_negative_weights_penalize_crosstalk(self, tiny_crossing, bend_density):
        density = np.clip(
            np.resize(bend_density, tiny_crossing.design_shape).astype(float), 0, 1
        )
        spec = tiny_crossing.specs[0]
        evaluation = evaluate_spec(tiny_crossing, density, spec, compute_gradient=False)
        assert set(evaluation.transmissions) == set(spec.monitored_ports())


class TestProblem:
    def test_value_and_grad_through_full_chain(self, tiny_bend):
        """Finite-difference check through parametrization + transforms + adjoint."""
        problem = InverseDesignProblem(
            tiny_bend,
            transforms=TransformPipeline([BlurTransform(1.2), BinarizationProjection(beta=4.0)]),
        )
        theta = problem.initial_theta("uniform")
        fom, grad = problem.value_and_grad(theta)
        assert grad.shape == theta.shape
        index = (theta.shape[0] // 2, theta.shape[1] // 2)
        numeric = central_difference(problem.figure_of_merit, theta, index, step=1e-3)
        assert grad[index] == pytest.approx(numeric, rel=5e-2, abs=1e-7)

    def test_density_from_theta_in_unit_range(self, tiny_bend):
        problem = InverseDesignProblem(tiny_bend)
        density = problem.density_from_theta(problem.initial_theta("random", rng=0))
        assert density.min() >= 0.0 and density.max() <= 1.0
        assert density.shape == tiny_bend.design_shape

    def test_set_binarization_beta(self, tiny_bend):
        problem = InverseDesignProblem(tiny_bend)
        problem.set_binarization_beta(32.0)
        betas = [t.beta for t in problem.transforms if isinstance(t, BinarizationProjection)]
        assert betas == [32.0]

    def test_transmission_labels_present(self, tiny_bend):
        problem = InverseDesignProblem(tiny_bend)
        evaluation = problem.evaluate(problem.initial_theta("waveguide"), compute_gradient=False)
        assert any(key.endswith("->out") for key in evaluation.transmissions)


class TestOptimizer:
    def test_optimization_improves_fom(self, tiny_bend):
        problem = InverseDesignProblem(tiny_bend)
        optimizer = AdjointOptimizer(problem, learning_rate=0.2)
        trajectory = optimizer.run(
            theta0=problem.initial_theta("waveguide"), iterations=8
        )
        assert len(trajectory) == 9
        assert trajectory.best().fom > trajectory[0].fom
        assert trajectory.best().fom > 0.3

    def test_trajectory_records_densities_and_foms(self, tiny_bend):
        problem = InverseDesignProblem(tiny_bend)
        trajectory = AdjointOptimizer(problem, learning_rate=0.2).run(
            theta0=problem.initial_theta("uniform"), iterations=3
        )
        assert trajectory.foms.shape == (4,)
        assert all(p.density.shape == tiny_bend.design_shape for p in trajectory)

    def test_beta_schedule_applied(self, tiny_bend):
        problem = InverseDesignProblem(tiny_bend)
        optimizer = AdjointOptimizer(problem, learning_rate=0.2, beta_schedule={1: 24.0})
        optimizer.run(theta0=problem.initial_theta("uniform"), iterations=2)
        betas = [t.beta for t in problem.transforms if isinstance(t, BinarizationProjection)]
        assert betas == [24.0]

    def test_callback_invoked(self, tiny_bend):
        problem = InverseDesignProblem(tiny_bend)
        seen = []
        AdjointOptimizer(problem, learning_rate=0.2).run(
            theta0=problem.initial_theta("uniform"),
            iterations=2,
            callback=lambda i, ev: seen.append(i),
        )
        assert seen == [0, 1]

    def test_invalid_learning_rate(self, tiny_bend):
        with pytest.raises(ValueError):
            AdjointOptimizer(InverseDesignProblem(tiny_bend), learning_rate=0.0)

    def test_empty_trajectory_best_raises(self):
        from repro.invdes.optimizer import OptimizationTrajectory

        with pytest.raises(ValueError):
            OptimizationTrajectory().best()


class TestInitialization:
    def test_uniform(self, tiny_bend):
        density = initial_density(tiny_bend, "uniform", value=0.3)
        np.testing.assert_allclose(density, 0.3)

    def test_random_reproducible(self, tiny_bend):
        a = initial_density(tiny_bend, "random", rng=5)
        b = initial_density(tiny_bend, "random", rng=5)
        np.testing.assert_allclose(a, b)

    def test_waveguide_connects_ports(self, tiny_bend):
        density = initial_density(tiny_bend, "waveguide")
        assert density.max() == pytest.approx(1.0)
        assert density.mean() > 0.2

    def test_waveguide_init_outperforms_uniform(self, tiny_bend):
        uniform_fom = tiny_bend.figure_of_merit(initial_density(tiny_bend, "uniform"))
        waveguide_fom = tiny_bend.figure_of_merit(initial_density(tiny_bend, "waveguide"))
        assert waveguide_fom > uniform_fom

    def test_unknown_kind_rejected(self, tiny_bend):
        with pytest.raises(ValueError):
            initial_density(tiny_bend, "spiral")


class TestVariationAware:
    @pytest.fixture(scope="class")
    def small_corners(self):
        litho = LithographyModel(blur_sigma_cells=1.0)
        return [
            FabricationCorner(name="nominal", pattern_transforms=[litho], weight=2.0),
            FabricationCorner(name="over_etch", pattern_transforms=[litho, EtchModel(1.0)]),
            FabricationCorner(
                name="wavelength_drift",
                pattern_transforms=[litho],
                wavelength_drift=WavelengthDrift(0.01),
            ),
        ]

    def test_corner_foms_reported(self, tiny_bend, small_corners):
        robust = RobustInverseDesignProblem(
            InverseDesignProblem(tiny_bend), corners=small_corners
        )
        theta = robust.initial_theta("waveguide")
        foms = robust.corner_foms(theta)
        assert set(foms) == {"nominal", "over_etch", "wavelength_drift"}
        assert all(np.isfinite(v) for v in foms.values())

    def test_robust_evaluation_weighted_average(self, tiny_bend, small_corners):
        robust = RobustInverseDesignProblem(
            InverseDesignProblem(tiny_bend), corners=small_corners
        )
        theta = robust.initial_theta("waveguide")
        evaluation = robust.evaluate(theta, compute_gradient=False)
        foms = robust.corner_foms(theta)
        weights = {c.name: c.weight for c in small_corners}
        expected = sum(foms[n] * w for n, w in weights.items()) / sum(weights.values())
        assert evaluation.fom == pytest.approx(expected, rel=1e-6)

    def test_robust_gradient_shape(self, tiny_bend, small_corners):
        robust = RobustInverseDesignProblem(
            InverseDesignProblem(tiny_bend), corners=small_corners
        )
        theta = robust.initial_theta("uniform")
        fom, grad = robust.value_and_grad(theta)
        assert grad.shape == theta.shape
        assert np.isfinite(fom)

    def test_empty_corner_list_rejected(self, tiny_bend):
        with pytest.raises(ValueError):
            RobustInverseDesignProblem(InverseDesignProblem(tiny_bend), corners=[])


class TestSolveWorkspaceWiring:
    """The warm-start workspace created per problem and threaded to the backend."""

    def test_problem_creates_and_shares_workspace(self, tiny_bend):
        problem = InverseDesignProblem(tiny_bend, engine="recycled")
        assert problem.workspace is not None
        assert problem.backend.workspace is problem.workspace

    def test_explicit_backend_adopts_problem_workspace(self, tiny_bend):
        from repro.invdes import NumericalFieldBackend

        backend = NumericalFieldBackend(engine="recycled")
        problem = InverseDesignProblem(tiny_bend, backend=backend)
        assert backend.workspace is problem.workspace

    def test_backend_with_workspace_is_adopted(self, tiny_bend):
        from repro.fdfd.engine import SolveWorkspace
        from repro.invdes import NumericalFieldBackend

        workspace = SolveWorkspace()
        backend = NumericalFieldBackend(engine="recycled", workspace=workspace)
        problem = InverseDesignProblem(tiny_bend, backend=backend)
        assert problem.workspace is workspace

    def test_evaluation_populates_workspace_for_warm_start_engine(self, tiny_bend):
        problem = InverseDesignProblem(tiny_bend, engine="recycled")
        problem.evaluate(problem.initial_theta("waveguide"), compute_gradient=True)
        # One forward and one adjoint field stored for the bend's single spec.
        assert len(problem.workspace) == 2

    def test_direct_engine_skips_workspace(self, tiny_bend):
        """Exact engines gain nothing from guesses; no fields are stored."""
        problem = InverseDesignProblem(tiny_bend)
        problem.evaluate(problem.initial_theta("waveguide"), compute_gradient=True)
        assert len(problem.workspace) == 0

    def test_set_binarization_beta_invalidates_workspace(self, tiny_bend):
        problem = InverseDesignProblem(tiny_bend, engine="recycled")
        problem.evaluate(problem.initial_theta("waveguide"), compute_gradient=True)
        assert len(problem.workspace) == 2
        problem.set_binarization_beta(16.0)
        assert len(problem.workspace) == 0
        assert problem.workspace.invalidations == 1

    def test_same_beta_does_not_invalidate(self, tiny_bend):
        problem = InverseDesignProblem(tiny_bend, engine="recycled")
        beta = next(
            t.beta for t in problem.transforms if isinstance(t, BinarizationProjection)
        )
        problem.evaluate(problem.initial_theta("waveguide"), compute_gradient=True)
        problem.set_binarization_beta(beta)
        assert len(problem.workspace) == 2

    def test_optimizer_resets_workspace_per_run(self, tiny_bend):
        problem = InverseDesignProblem(tiny_bend, engine="recycled")
        optimizer = AdjointOptimizer(problem, learning_rate=0.1)
        theta0 = problem.initial_theta("waveguide")
        optimizer.run(theta0=theta0, iterations=1)
        invalidations = problem.workspace.invalidations
        optimizer.run(theta0=theta0, iterations=1)
        assert problem.workspace.invalidations > invalidations


class TestRecycledOptimization:
    def test_recycled_run_tracks_direct_run(self, tiny_bend):
        """Same trajectory (FoMs within tolerance) at a fraction of the LUs."""
        theta0 = None
        trajectories = {}
        for engine in (None, "recycled"):
            problem = InverseDesignProblem(tiny_bend, engine=engine)
            if theta0 is None:
                theta0 = problem.initial_theta("waveguide")
            optimizer = AdjointOptimizer(problem, learning_rate=0.05)
            trajectories[engine] = optimizer.run(theta0=theta0, iterations=4)
            if engine == "recycled":
                stats = problem.backend.engine.stats
                assert stats.recycled_solves > 0
                assert stats.factorizations < 5
        np.testing.assert_allclose(
            trajectories["recycled"].foms, trajectories[None].foms, rtol=1e-4
        )

    def test_explicit_workspace_overrides_backend_workspace(self, tiny_bend):
        from repro.fdfd.engine import SolveWorkspace
        from repro.invdes import NumericalFieldBackend

        backend = NumericalFieldBackend(engine="recycled", workspace=SolveWorkspace())
        mine = SolveWorkspace()
        problem = InverseDesignProblem(tiny_bend, backend=backend, workspace=mine)
        assert problem.workspace is mine
        assert backend.workspace is mine

    def test_robust_corners_do_not_share_warm_start_slots(self, tiny_bend):
        """Corners reuse the engine but each gets its own workspace."""
        corners = [
            FabricationCorner(name="nominal", weight=1.0),
            FabricationCorner(name="shifted", weight=1.0, wavelength_drift=WavelengthDrift(0.005)),
        ]
        base = InverseDesignProblem(tiny_bend, engine="recycled")
        robust = RobustInverseDesignProblem(base, corners=corners)
        workspaces = [p.workspace for p in robust._corner_problems]
        assert len({id(w) for w in workspaces + [base.workspace]}) == len(workspaces) + 1
        engines = {id(p.backend.engine) for p in robust._corner_problems}
        assert engines == {id(base.backend.engine)}
