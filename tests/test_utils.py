"""Tests for repro.utils: config container, RNG handling and numerics helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.utils import (
    Config,
    channels_to_complex,
    complex_to_channels,
    cosine_similarity,
    get_rng,
    normalized_l2,
    seed_everything,
)
from repro.utils.numerics import resample_bilinear


# --------------------------------------------------------------------------- #
# Config
# --------------------------------------------------------------------------- #
class TestConfig:
    def test_attribute_access(self):
        cfg = Config(a=1, nested=Config(b=2))
        assert cfg.a == 1
        assert cfg.nested.b == 2

    def test_missing_attribute_raises(self):
        with pytest.raises(AttributeError):
            _ = Config().missing

    def test_set_and_delete_attribute(self):
        cfg = Config()
        cfg.x = 5
        assert cfg["x"] == 5
        del cfg.x
        assert "x" not in cfg

    def test_from_dict_recursive(self):
        cfg = Config.from_dict({"model": {"name": "fno", "inner": {"modes": 8}}})
        assert isinstance(cfg.model, Config)
        assert cfg.model.inner.modes == 8

    def test_to_dict_roundtrip(self):
        original = {"a": 1, "b": {"c": [1, 2, 3]}}
        assert Config.from_dict(original).to_dict() == original

    def test_merged_does_not_mutate(self):
        base = Config.from_dict({"model": {"width": 16, "depth": 4}})
        merged = base.merged({"model": {"width": 32}})
        assert merged.model.width == 32
        assert merged.model.depth == 4
        assert base.model.width == 16

    def test_json_roundtrip(self):
        cfg = Config.from_dict({"a": 1, "b": {"c": "x"}})
        assert Config.from_json(cfg.to_json()) == cfg

    def test_flat_items(self):
        cfg = Config.from_dict({"a": 1, "b": {"c": 2}})
        assert dict(cfg.flat_items()) == {"a": 1, "b.c": 2}


# --------------------------------------------------------------------------- #
# RNG
# --------------------------------------------------------------------------- #
class TestRng:
    def test_same_seed_same_stream(self):
        assert get_rng(7).normal() == get_rng(7).normal()

    def test_generator_passthrough(self):
        gen = np.random.default_rng(3)
        assert get_rng(gen) is gen

    def test_seed_everything_sets_default(self):
        seed_everything(11)
        first = get_rng().normal()
        seed_everything(11)
        assert get_rng().normal() == first


# --------------------------------------------------------------------------- #
# numerics
# --------------------------------------------------------------------------- #
class TestNormalizedL2:
    def test_zero_for_identical(self):
        x = np.arange(12.0).reshape(3, 4)
        assert normalized_l2(x, x) == pytest.approx(0.0, abs=1e-9)

    def test_one_for_zero_prediction(self):
        target = np.ones((4, 4))
        assert normalized_l2(np.zeros_like(target), target) == pytest.approx(1.0)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            normalized_l2(np.zeros(3), np.zeros(4))

    def test_complex_input(self):
        target = np.ones((3, 3)) * (1 + 1j)
        assert normalized_l2(target, target) == pytest.approx(0.0, abs=1e-9)

    @given(
        hnp.arrays(np.float64, (3, 4), elements=st.floats(-10, 10)),
        st.floats(0.1, 5.0),
    )
    @settings(max_examples=25, deadline=None)
    def test_scale_invariance(self, target, scale):
        pred = target * 0.5
        if np.linalg.norm(target) < 1e-6:
            return
        assert normalized_l2(pred * scale, target * scale) == pytest.approx(
            normalized_l2(pred, target), rel=1e-6
        )


class TestCosineSimilarity:
    def test_identical_vectors(self):
        v = np.array([1.0, 2.0, 3.0])
        assert cosine_similarity(v, v) == pytest.approx(1.0)

    def test_opposite_vectors(self):
        v = np.array([1.0, -2.0, 0.5])
        assert cosine_similarity(v, -v) == pytest.approx(-1.0)

    def test_orthogonal_vectors(self):
        assert cosine_similarity(np.array([1.0, 0.0]), np.array([0.0, 1.0])) == pytest.approx(0.0)

    def test_zero_vector_returns_zero(self):
        assert cosine_similarity(np.zeros(3), np.ones(3)) == 0.0

    @given(hnp.arrays(np.float64, (10,), elements=st.floats(-5, 5)), st.floats(0.01, 100.0))
    @settings(max_examples=25, deadline=None)
    def test_positive_scaling_invariance(self, v, scale):
        if np.linalg.norm(v) < 1e-6:
            return
        w = np.roll(v, 1) + 0.1
        assert cosine_similarity(v * scale, w) == pytest.approx(cosine_similarity(v, w), abs=1e-8)


class TestComplexChannels:
    @given(hnp.arrays(np.complex128, (5, 6), elements=st.complex_numbers(max_magnitude=10)))
    @settings(max_examples=25, deadline=None)
    def test_roundtrip(self, field):
        channels = complex_to_channels(field)
        assert channels.shape == (2, 5, 6)
        np.testing.assert_allclose(channels_to_complex(channels), field)

    def test_channels_to_complex_requires_two_channels(self):
        with pytest.raises(ValueError):
            channels_to_complex(np.zeros((3, 4, 4)))


class TestResampleBilinear:
    def test_identity_when_same_shape(self):
        x = np.random.default_rng(0).normal(size=(7, 5))
        np.testing.assert_allclose(resample_bilinear(x, (7, 5)), x)

    def test_constant_preserved(self):
        x = np.full((6, 6), 3.5)
        np.testing.assert_allclose(resample_bilinear(x, (11, 4)), 3.5)

    def test_upsample_shape(self):
        assert resample_bilinear(np.ones((4, 5)), (8, 10)).shape == (8, 10)

    def test_complex_resampling(self):
        x = np.ones((4, 4)) + 1j * np.ones((4, 4))
        out = resample_bilinear(x, (8, 8))
        assert np.iscomplexobj(out)
        np.testing.assert_allclose(out, 1 + 1j)

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            resample_bilinear(np.zeros((2, 2, 2)), (4, 4))
