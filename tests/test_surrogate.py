"""Tests for the neural-surrogate integration (gradient methods + neural backend).

The key correctness test uses an *oracle model*: a Module whose forward pass
reconstructs the permittivity and source from the standardized input and calls
the exact FDFD solver.  Plugging the oracle into the surrogate machinery must
reproduce the numerical transmissions and adjoint gradients almost exactly,
which pins down all the scaling conventions (field scale, source amplitude,
adjoint ``1/(i omega)`` factor) without requiring a trained network.
"""

import numpy as np
import pytest

from repro.autograd.tensor import Tensor
from repro.constants import wavelength_to_omega
from repro.data.labels import field_target, standardize_input
from repro.fdfd.grid import Grid
from repro.fdfd.solver import FdfdSolver
from repro.invdes import InverseDesignProblem
from repro.invdes.adjoint import evaluate_spec
from repro.nn.module import Module
from repro.surrogate import (
    GRADIENT_METHODS,
    NeuralFieldBackend,
    compute_gradient,
    gradient_ad_black_box,
    gradient_ad_pred_field,
    gradient_fwd_adj_field,
    gradient_numerical,
)
from repro.train.models import make_model
from repro.utils.numerics import cosine_similarity

_EPS_MAX = 12.25


class OracleFieldModel(Module):
    """A 'perfect surrogate': decodes the standardized input and solves FDFD."""

    def __init__(self, grid: Grid, wavelength: float, field_scale: float):
        super().__init__()
        self.grid = grid
        self.omega = wavelength_to_omega(wavelength)
        self.wavelength = wavelength
        self.field_scale = field_scale

    def forward(self, x):
        data = x.data if isinstance(x, Tensor) else np.asarray(x)
        outputs = []
        for sample in data:
            eps = sample[0] * _EPS_MAX
            source = sample[1] + 1j * sample[2]
            solver = FdfdSolver(self.grid, self.omega)
            ez = solver.solve(eps, source).ez
            outputs.append(field_target(ez, self.field_scale, source=source))
        return Tensor(np.stack(outputs, axis=0))


@pytest.fixture(scope="module")
def oracle_setup(tiny_bend):
    density = np.clip(
        0.5 + 0.2 * np.random.default_rng(0).normal(size=tiny_bend.design_shape), 0, 1
    )
    spec = tiny_bend.specs[0]
    field_scale = 1e-6
    oracle = OracleFieldModel(tiny_bend.grid, spec.wavelength, field_scale)
    return tiny_bend, density, spec, oracle, field_scale


class TestOracleConsistency:
    def test_neural_backend_matches_numerical_transmission(self, oracle_setup):
        device, density, spec, oracle, field_scale = oracle_setup
        exact = evaluate_spec(device, density, spec, compute_gradient=False)
        backend = NeuralFieldBackend(oracle, field_scale)
        surrogate = evaluate_spec(
            device, density, spec, backend=backend, compute_gradient=False
        )
        assert surrogate.transmissions["out"] == pytest.approx(
            exact.transmissions["out"], rel=1e-6
        )
        assert surrogate.objective_value == pytest.approx(exact.objective_value, rel=1e-6)

    def test_fwd_adj_gradient_matches_numerical_with_oracle(self, oracle_setup):
        device, density, spec, oracle, field_scale = oracle_setup
        truth = gradient_numerical(device, density, spec)
        estimate = gradient_fwd_adj_field(oracle, field_scale, device, density, spec)
        assert cosine_similarity(estimate, truth) > 0.999
        np.testing.assert_allclose(estimate, truth, rtol=1e-4, atol=1e-12)

    def test_oracle_backend_drives_inverse_design(self, oracle_setup):
        device, density, spec, oracle, field_scale = oracle_setup
        problem = InverseDesignProblem(device, backend=NeuralFieldBackend(oracle, field_scale))
        theta = problem.initial_theta("waveguide")
        fom, grad = problem.value_and_grad(theta)
        exact_fom, exact_grad = InverseDesignProblem(device).value_and_grad(theta)
        assert fom == pytest.approx(exact_fom, rel=1e-6)
        assert cosine_similarity(grad, exact_grad) > 0.999


class TestGradientMethodsWithRealModels:
    @pytest.fixture(scope="class")
    def untrained_models(self):
        field_model = make_model("fno", width=8, modes=(4, 4), depth=2, rng=0)
        black_box = make_model("blackbox", width=8, rng=0)
        return field_model, black_box

    def test_all_methods_return_design_shaped_gradients(self, oracle_setup, untrained_models):
        device, density, spec, _, _ = oracle_setup
        field_model, black_box = untrained_models
        for method in GRADIENT_METHODS:
            grad = compute_gradient(
                method,
                device,
                density,
                spec,
                field_model=field_model,
                field_scale=1e-6,
                black_box_model=black_box,
            )
            assert grad.shape == device.design_shape
            assert np.all(np.isfinite(grad))

    def test_ad_pred_field_gradient_nonzero(self, oracle_setup, untrained_models):
        device, density, spec, _, _ = oracle_setup
        field_model, _ = untrained_models
        grad = gradient_ad_pred_field(field_model, 1e-6, device, density, spec)
        assert np.abs(grad).max() > 0

    def test_ad_black_box_gradient_nonzero(self, oracle_setup, untrained_models):
        device, density, spec, _, _ = oracle_setup
        _, black_box = untrained_models
        grad = gradient_ad_black_box(black_box, device, density, spec)
        assert np.abs(grad).max() > 0

    def test_dispatch_validation(self, oracle_setup):
        device, density, spec, _, _ = oracle_setup
        with pytest.raises(ValueError):
            compute_gradient("fwd_adj_field", device, density, spec)
        with pytest.raises(ValueError):
            compute_gradient("ad_black_box", device, density, spec)
        with pytest.raises(ValueError):
            compute_gradient("unknown", device, density, spec)

    def test_numerical_dispatch(self, oracle_setup):
        device, density, spec, _, _ = oracle_setup
        grad = compute_gradient("numerical", device, density, spec)
        np.testing.assert_allclose(grad, gradient_numerical(device, density, spec))


class TestEvaluation:
    def test_evaluate_model_reports_metric_triple(self, tiny_splits):
        from repro.train.evaluation import evaluate_model

        train, test = tiny_splits
        model = make_model("fno", width=8, modes=(4, 4), depth=2, rng=0)
        metrics = evaluate_model(model, train, test, num_gradient_samples=1, rng=0)
        assert set(metrics) == {"train_n_l2", "test_n_l2", "grad_similarity"}
        assert np.isfinite(metrics["train_n_l2"])
        assert -1.0 <= metrics["grad_similarity"] <= 1.0

    def test_oracle_model_scores_perfectly(self, tiny_splits, tiny_bend):
        from repro.train.evaluation import field_prediction_error

        train, _ = tiny_splits
        oracle = OracleFieldModel(
            tiny_bend.grid, tiny_bend.specs[0].wavelength, train.field_scale
        )
        assert field_prediction_error(oracle, train) < 1e-9
