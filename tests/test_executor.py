"""Tests for the fault-tolerant task fabric (repro.utils.executor)."""

import os
import signal
import time

import pytest

from repro.utils.executor import (
    ExecutorConfig,
    LocalPoolExecutor,
    TaskExecutor,
    TaskTimeoutError,
    WorkerCrashError,
    execute_tasks,
)
from repro.utils.parallel import run_tasks


# ----------------------------------------------------------------------------
# Worker functions: module-level so process pools can pickle them.  The
# fire-once / counting state lives in marker files under a scratch directory
# passed inside each task, so it survives worker death and respawn.


def _square(x):
    return x * x


def _record_execution(scratch, index):
    """Append one execution record; returns how many executions came before."""
    count = 0
    while True:
        try:
            with open(os.path.join(scratch, f"exec-{index}-{count}"), "x"):
                return count
        except FileExistsError:
            count += 1


def _counted_square(task):
    scratch, index, value = task
    _record_execution(scratch, index)
    return value * value


def _die_once_on_target(task):
    scratch, index, value, target = task
    prior = _record_execution(scratch, index)
    if index == target and prior == 0:
        os.kill(os.getpid(), signal.SIGKILL)
    return value * value


def _flaky(task):
    scratch, index, value, fail_times = task
    prior = _record_execution(scratch, index)
    if prior < fail_times:
        raise RuntimeError(f"task {index} transient failure #{prior}")
    return value * value


def _slow_on_first(task):
    scratch, index, value, seconds = task
    prior = _record_execution(scratch, index)
    if prior == 0 and seconds > 0:
        time.sleep(seconds)
    return value + 1000


def _always_slow(task):
    time.sleep(task)
    return task


def _executions(scratch, index):
    return sum(
        1 for name in os.listdir(scratch) if name.startswith(f"exec-{index}-")
    )


FAST = ExecutorConfig(max_retries=2, backoff=0.05, heartbeat_interval=0.1)


class TestSerialExecution:
    def test_results_ordered_and_reported(self):
        report = execute_tasks(_square, range(6), workers=1)
        assert report.results == [x * x for x in range(6)]
        assert report.ok
        assert report.attempts == {i: 1 for i in range(6)}
        assert report.wasted_executions() == 0
        assert not report.serial_fallback  # serial by request, not by failure

    def test_failure_does_not_abort_siblings(self, tmp_path):
        tasks = [(str(tmp_path), i, i, 10 if i == 1 else 0) for i in range(3)]
        report = execute_tasks(
            _flaky, tasks, workers=1, config=ExecutorConfig(max_retries=1, backoff=0.01)
        )
        assert [report.results[0], report.results[2]] == [0, 4]
        assert len(report.failures) == 1
        failure = report.failures[0]
        assert failure.index == 1 and failure.kind == "error"
        assert isinstance(failure.error, RuntimeError)
        assert report.attempts[1] == 2  # initial + one retry
        with pytest.raises(RuntimeError):
            report.raise_first()

    def test_retry_recovers_transient_failures(self, tmp_path):
        tasks = [(str(tmp_path), i, i, 2 if i == 0 else 0) for i in range(3)]
        report = execute_tasks(
            _flaky, tasks, workers=1, config=ExecutorConfig(max_retries=2, backoff=0.01)
        )
        assert report.ok
        assert report.results == [0, 1, 4]
        assert report.attempts[0] == 3
        assert report.retries == 2

    def test_initializer_runs_once(self, tmp_path, monkeypatch):
        marker = tmp_path / "init"

        def initializer(value):
            with open(marker, "a") as fh:
                fh.write(value)

        report = execute_tasks(
            _square, range(3), workers=1, initializer=initializer, initargs=("x",)
        )
        assert report.ok
        assert marker.read_text() == "x"

    def test_cancel_pending_task(self):
        executor = LocalPoolExecutor(workers=1)
        try:
            for i in range(3):
                executor.submit(_square, i)
            assert executor.cancel(1)
            while not executor.done():
                executor.poll()
            report = executor.report()
        finally:
            executor.close()
        assert report.results[0] == 0 and report.results[2] == 4
        assert len(report.failures) == 1 and report.failures[0].kind == "cancelled"
        assert not executor.cancel(0)  # already settled

    def test_protocol_conformance(self):
        assert isinstance(LocalPoolExecutor(workers=1), TaskExecutor)


class TestRetryPolicy:
    def test_retry_delay_is_deterministic_and_bounded(self):
        config = ExecutorConfig(backoff=0.5, backoff_factor=2.0, jitter=0.25, seed=7)
        delays = [config.retry_delay(3, attempt) for attempt in (1, 2, 3)]
        assert delays == [config.retry_delay(3, attempt) for attempt in (1, 2, 3)]
        for attempt, delay in enumerate(delays, start=1):
            base = 0.5 * 2.0 ** (attempt - 1)
            assert base <= delay <= base * 1.25
        # Different tasks jitter differently (no thundering-herd retries).
        assert config.retry_delay(0, 1) != config.retry_delay(1, 1)

    def test_zero_backoff(self):
        assert ExecutorConfig(backoff=0.0).retry_delay(0, 1) == 0.0


class TestPoolExecution:
    def test_results_match_serial(self, tmp_path):
        tasks = [(str(tmp_path), i, i) for i in range(6)]
        report = execute_tasks(_counted_square, tasks, workers=2, config=FAST)
        assert report.results == [i * i for i in range(6)]
        assert report.ok
        assert all(_executions(str(tmp_path), i) == 1 for i in range(6))

    def test_worker_crash_recovers_task_level(self, tmp_path):
        """One killed worker costs exactly its own in-flight task."""
        scratch = str(tmp_path)
        tasks = [(scratch, i, i, 0) for i in range(6)]
        report = execute_tasks(_die_once_on_target, tasks, workers=2, config=FAST)
        assert report.results == [i * i for i in range(6)]
        assert report.ok
        assert report.worker_crashes == 1
        assert report.respawns >= 1
        assert not report.serial_fallback
        # The regression this fabric exists for: the task that lost its
        # worker re-ran once; every sibling ran exactly once (the old
        # serial-fallback rewind re-ran *everything*).
        assert _executions(scratch, 0) == 2
        assert all(_executions(scratch, i) == 1 for i in range(1, 6))
        assert report.wasted_executions() == 1

    def test_run_tasks_reuses_completed_results_on_broken_pool(self, tmp_path):
        """Satellite regression: per-task execution counts under a crash."""
        scratch = str(tmp_path)
        tasks = [(scratch, i, i, 2) for i in range(5)]
        results = run_tasks(
            _die_once_on_target, tasks, workers=2, max_retries=2, retry_backoff=0.05
        )
        assert results == [i * i for i in range(5)]
        executions = {i: _executions(scratch, i) for i in range(5)}
        assert executions[2] == 2, executions
        assert all(executions[i] == 1 for i in (0, 1, 3, 4)), executions

    def test_permanent_crash_reported_without_aborting_siblings(self, tmp_path):
        # Task 1 dies on every attempt; siblings must still complete.
        scratch = str(tmp_path)
        tasks = [(scratch, i, i, 0) for i in range(4)]
        report = execute_tasks(
            _die_forever_on_one,
            tasks,
            workers=2,
            config=ExecutorConfig(max_retries=1, backoff=0.05),
        )
        assert [report.results[i] for i in (0, 2, 3)] == [0, 4, 9]
        assert len(report.failures) == 1
        failure = report.failures[0]
        assert failure.index == 1 and failure.kind == "crash"
        assert isinstance(failure.error, WorkerCrashError)
        assert failure.attempts == 2

    def test_timeout_kills_and_retries(self, tmp_path):
        scratch = str(tmp_path)
        tasks = [(scratch, i, i, 30.0 if i == 1 else 0.0) for i in range(3)]
        config = ExecutorConfig(timeout=1.0, max_retries=2, backoff=0.05)
        start = time.monotonic()
        report = execute_tasks(_slow_on_first, tasks, workers=2, config=config)
        elapsed = time.monotonic() - start
        assert report.results == [1000, 1001, 1002]
        assert report.ok
        assert report.timeouts >= 1
        assert elapsed < 20.0  # never waited out the 30 s sleep

    def test_timeout_exhausted_surfaces_as_timeout_error(self):
        config = ExecutorConfig(timeout=0.5, max_retries=1, backoff=0.05)
        start = time.monotonic()
        report = execute_tasks(_always_slow, [5.0, 0.0], workers=2, config=config)
        elapsed = time.monotonic() - start
        assert report.results[1] == 0.0
        assert len(report.failures) == 1
        failure = report.failures[0]
        assert failure.index == 0 and failure.kind == "timeout"
        assert isinstance(failure.error, TaskTimeoutError)
        assert failure.error.index == 0
        assert report.timeouts == 2  # both attempts timed out
        assert elapsed < 15.0

    def test_pool_initializer_and_knobs_via_run_tasks(self, tmp_path):
        scratch = str(tmp_path)
        tasks = [(scratch, i, i, 1 if i == 0 else 0) for i in range(3)]
        results = run_tasks(_flaky, tasks, workers=2, max_retries=1, retry_backoff=0.05)
        assert results == [0, 1, 4]


def _die_forever_on_one(task):
    scratch, index, value, _ = task
    _record_execution(scratch, index)
    if index == 1:
        os.kill(os.getpid(), signal.SIGKILL)
    return value * value
