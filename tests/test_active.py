"""Tests for the active-learning loop and its per-sample weight plumbing.

The loop's structural contracts are cheap to test end to end at toy scale:
acquired designs get fresh ids, their labels land in the growing shard
directory, the loader refresh folds them in without touching existing bytes,
acquisition weights travel shard → loader → trainer, and the finished loop
promotes a servable checkpoint.
"""

from dataclasses import replace
from pathlib import Path

import numpy as np
import pytest

from repro.data.dataset import datasets_bit_identical
from repro.data.generator import DatasetGenerator, GeneratorConfig
from repro.data.loader import ShardDataLoader
from repro.data.sampling import DesignSample
from repro.data.shards import shard_fingerprint, plan_shards
from repro.train import ActiveLearningConfig, ActiveLearningLoop, Trainer, make_model
from repro.train.active import score_candidates

TINY_DEVICE_KWARGS = dict(domain=3.0, design_size=1.4, dl=0.1)
TINY_MODEL_KWARGS = dict(width=4, modes=(2, 2), depth=1, rng=0)


def tiny_generator_config(shard_dir=None, **overrides):
    config = GeneratorConfig(
        device_name="bending",
        strategy="random",
        num_designs=2,
        fidelities=("high",),
        engine="direct",
        with_gradient=False,
        seed=0,
        device_kwargs=TINY_DEVICE_KWARGS,
        shard_size=2,
        shard_dir=str(shard_dir) if shard_dir is not None else None,
    )
    return replace(config, **overrides) if overrides else config


def tiny_loop(tmp_path, acquisition="disagreement", **config_kwargs):
    val_set = DatasetGenerator(tiny_generator_config(seed=77)).generate()
    defaults = dict(
        rounds=2,
        candidates_per_round=3,
        acquire_per_round=1,
        epochs_per_round=1,
        acquisition=acquisition,
        seed=0,
    )
    defaults.update(config_kwargs)
    return ActiveLearningLoop(
        model=make_model("fno", **TINY_MODEL_KWARGS),
        model_name="fno",
        model_kwargs=TINY_MODEL_KWARGS,
        generator_config=tiny_generator_config(tmp_path / "shards"),
        val_set=val_set,
        config=ActiveLearningConfig(**defaults),
        trainer_kwargs=dict(batch_size=2, learning_rate=3e-3),
    )


class TestWeightPlumbing:
    """DesignSample.weight → shard extras → dataset/loader → trainer."""

    def test_weights_ride_through_generation(self, tmp_path):
        config = tiny_generator_config(tmp_path / "w")
        device_shape = (14, 14)
        rng = np.random.default_rng(0)
        designs = [
            DesignSample(density=rng.uniform(size=device_shape), stage="x", weight=2.5),
            DesignSample(density=rng.uniform(size=device_shape), stage="x"),
        ]
        dataset = DatasetGenerator(config).generate(designs=designs)
        assert dataset.sample_weight_array().tolist() == [2.5, 1.0]
        loader = ShardDataLoader.from_directory(
            config.shard_dir, fidelities=config.fidelities
        )
        assert loader.sample_weight_array().tolist() == [2.5, 1.0]
        # The dataset round-trips weights through save/load too.
        path = tmp_path / "weighted.npz"
        dataset.save(path)
        from repro.data.dataset import PhotonicDataset

        assert PhotonicDataset.load(path).sample_weight_array().tolist() == [2.5, 1.0]

    def test_weights_change_the_shard_fingerprint(self):
        config = tiny_generator_config()
        spec = plan_shards(config)[0]
        densities = [np.full((4, 4), 0.5), np.full((4, 4), 0.25)]
        stages = ["a", "b"]
        base = shard_fingerprint(config, spec, densities, stages)
        assert base == shard_fingerprint(
            config, spec, densities, stages, weights=[1.0, 1.0]
        )
        assert base != shard_fingerprint(
            config, spec, densities, stages, weights=[2.0, 1.0]
        )

    @staticmethod
    def reweighted(dataset, weights):
        """A copy of ``dataset`` with per-sample weights (samples copied —
        the originals belong to a shared session fixture)."""
        from dataclasses import replace as replace_sample

        from repro.data.dataset import PhotonicDataset

        return PhotonicDataset(
            [
                replace_sample(sample, weight=weight)
                for sample, weight in zip(dataset.samples, weights)
            ],
            field_scale=dataset.field_scale,
            metadata=dict(dataset.metadata),
        )

    def test_uniform_weights_train_bit_identical(self, tiny_splits):
        """Scaling every weight by the same power of two must not change the
        training trajectory — the weighted mean reduces to the plain mean."""
        train, _ = tiny_splits
        doubled = self.reweighted(train, [2.0] * len(train))
        histories = []
        for data in (train, doubled):
            model = make_model("fno", width=8, modes=(3, 3), depth=2, rng=0)
            histories.append(
                Trainer(model, data, epochs=2, batch_size=4, seed=0).train()
            )
        assert histories[0].epochs == histories[1].epochs

    def test_non_uniform_weights_change_training(self, tiny_splits):
        train, _ = tiny_splits
        skewed = self.reweighted(train, [50.0] + [1.0] * (len(train) - 1))
        histories = []
        for data in (train, skewed):
            model = make_model("fno", width=8, modes=(3, 3), depth=2, rng=0)
            histories.append(
                Trainer(model, data, epochs=2, batch_size=4, seed=0).train()
            )
        assert histories[0].epochs != histories[1].epochs

    def test_trainer_rebinds_arrays_after_loader_refresh(self, tmp_path):
        """Regression: the trainer snapshots per-sample targets/weights; a
        loader refreshed mid-lifetime (active learning) must be re-read at
        train() time — stale snapshots crashed transmission training and
        silently dropped appended acquisition weights."""
        config = tiny_generator_config(tmp_path / "grow")
        DatasetGenerator(config).generate()
        loader = ShardDataLoader.from_directory(
            config.shard_dir, fidelities=config.fidelities
        )
        trainer = Trainer(
            make_model("blackbox", width=8, rng=0),
            data=loader,
            target="transmission",
            epochs=1,
            batch_size=2,
            seed=0,
        )
        trainer.train()
        # Grow the directory with a weighted acquisition-style append.
        rng = np.random.default_rng(3)
        DatasetGenerator(
            replace(config, num_designs=1, design_id_offset=2, seed=5)
        ).generate(
            designs=[
                DesignSample(density=rng.uniform(size=(14, 14)), stage="x", weight=3.0)
            ]
        )
        loader.refresh()
        trainer.train()  # used to raise IndexError on the stale target array
        assert trainer._transmission_targets.shape == (len(loader),)

        field_trainer = Trainer(
            make_model("fno", width=4, modes=(2, 2), depth=1, rng=0),
            data=loader,
            epochs=1,
            batch_size=2,
            seed=0,
        )
        # Weights were uniform at construction time only if the loader had
        # not yet grown; after this refresh-aware rebind they must be active.
        field_trainer.train()
        assert field_trainer._sample_weights is not None
        assert field_trainer._sample_weights.tolist() == loader.sample_weight_array().tolist()

    def test_non_positive_weights_rejected(self, tiny_splits):
        train, _ = tiny_splits
        bad = self.reweighted(train, [0.0] + [1.0] * (len(train) - 1))
        with pytest.raises(ValueError, match="positive"):
            Trainer(
                make_model("fno", width=8, modes=(3, 3), depth=2, rng=0), bad,
                epochs=1, batch_size=4, seed=0,
            )


class TestActiveLearningConfig:
    def test_validation(self):
        with pytest.raises(ValueError, match="rounds"):
            ActiveLearningConfig(rounds=0)
        with pytest.raises(ValueError, match="acquisition"):
            ActiveLearningConfig(acquisition="entropy")
        with pytest.raises(ValueError, match="candidates_per_round"):
            ActiveLearningConfig(candidates_per_round=2, acquire_per_round=3)
        with pytest.raises(ValueError, match="max_weight"):
            ActiveLearningConfig(max_weight=0.5)

    def test_loop_requires_shard_dir(self):
        with pytest.raises(ValueError, match="shard_dir"):
            ActiveLearningLoop(
                model=make_model("fno", **TINY_MODEL_KWARGS),
                model_name="fno",
                model_kwargs=TINY_MODEL_KWARGS,
                generator_config=tiny_generator_config(),
                val_set=None,
            )


class TestActiveLearningLoop:
    @pytest.mark.parametrize("acquisition", ["disagreement", "residual", "random"])
    def test_loop_contracts(self, tmp_path, acquisition):
        loop = tiny_loop(tmp_path, acquisition=acquisition)
        records = loop.run()
        assert len(records) == 2
        # Round 0 trains on the seed, acquires one fresh design.
        assert records[0].exact_labels == 2
        assert records[0].acquired_design_ids == [2]
        # Round 1 trains on the grown set, acquires nothing (final round).
        assert records[1].exact_labels == 3
        assert records[1].acquired_design_ids == []
        assert all(np.isfinite(r.val_n_l2) for r in records)
        assert len(loop.loader) == 3
        if acquisition == "disagreement":
            assert records[0].cheap_solves > 0
            assert len(records[0].acquisition_scores) == 3
            assert all(w >= 1.0 for w in records[0].sample_weights)
        # The finished loop promoted a servable checkpoint.
        assert loop.checkpoint.startswith("neural:")
        assert Path(loop.checkpoint.split(":", 1)[1]).is_file()

    def test_refresh_keeps_existing_samples_identical(self, tmp_path):
        loop = tiny_loop(tmp_path)
        loop._ensure_seed_data()
        before = loop.loader.materialize()
        loop.run()
        after = loop.loader.materialize()
        from repro.data.dataset import PhotonicDataset

        assert datasets_bit_identical(
            before,
            PhotonicDataset(
                after.samples[: len(before)], field_scale=before.field_scale
            ),
        )

    def test_rerun_resumes_seed_shards(self, tmp_path):
        """The seed generation is resumable: a second loop over the same
        shard_dir must not recompute (or re-id) the seed designs."""
        loop = tiny_loop(tmp_path)
        loop._ensure_seed_data()
        seed_paths = set(Path(loop.generator_config.shard_dir).glob("shard_*.npz"))
        again = tiny_loop(tmp_path)
        again._ensure_seed_data()
        assert set(Path(again.generator_config.shard_dir).glob("shard_*.npz")) == seed_paths
        assert again._next_design_id == 2

    def test_score_candidates_validation(self, tiny_bend):
        with pytest.raises(ValueError, match="disagreement"):
            score_candidates(tiny_bend, [], None, acquisition="entropy")
        with pytest.raises(ValueError, match="cheap engine"):
            score_candidates(tiny_bend, [], None, acquisition="disagreement")
