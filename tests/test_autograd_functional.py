"""Gradient checks for the fused primitives: convolution, pooling, FFT operators."""

import numpy as np
import pytest

from repro.autograd import Tensor, check_gradient, functional as F


def tensor_of(shape, seed=0, scale=1.0):
    rng = np.random.default_rng(seed)
    return Tensor(scale * rng.normal(size=shape), requires_grad=True)


class TestPadCrop:
    def test_pad_values(self):
        x = Tensor(np.ones((1, 1, 2, 2)))
        out = F.pad2d(x, (1, 1, 2, 2), value=5.0)
        assert out.shape == (1, 1, 4, 6)
        assert out.data[0, 0, 0, 0] == 5.0
        assert out.data[0, 0, 1, 2] == 1.0

    def test_pad_gradient(self):
        x = tensor_of((2, 3, 4, 5), seed=1)
        assert check_gradient(lambda x: F.pad2d(x, (1, 0, 2, 1)), [x]) < 1e-6

    def test_negative_padding_rejected(self):
        with pytest.raises(ValueError):
            F.pad2d(Tensor(np.ones((1, 1, 2, 2))), (-1, 0, 0, 0))

    def test_crop(self):
        x = Tensor(np.arange(16.0).reshape(1, 1, 4, 4))
        out = F.crop2d(x, (2, 3))
        assert out.shape == (1, 1, 2, 3)

    def test_crop_too_large_rejected(self):
        with pytest.raises(ValueError):
            F.crop2d(Tensor(np.ones((1, 1, 2, 2))), (3, 2))


class TestConv2d:
    @pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (2, 1), (2, 0)])
    def test_gradients(self, stride, padding):
        x = tensor_of((2, 3, 6, 7), seed=0)
        w = tensor_of((4, 3, 3, 3), seed=1)
        b = tensor_of((4,), seed=2)
        err = check_gradient(
            lambda x, w, b: F.conv2d(x, w, b, stride=stride, padding=padding), [x, w, b]
        )
        assert err < 1e-4

    def test_output_shape(self):
        x = Tensor(np.zeros((1, 2, 8, 8)))
        w = Tensor(np.zeros((5, 2, 3, 3)))
        assert F.conv2d(x, w, None, stride=2, padding=1).shape == (1, 5, 4, 4)

    def test_identity_kernel(self):
        rng = np.random.default_rng(0)
        x = Tensor(rng.normal(size=(1, 1, 5, 5)))
        w = Tensor(np.ones((1, 1, 1, 1)))
        np.testing.assert_allclose(F.conv2d(x, w).data, x.data)

    def test_channel_mismatch_raises(self):
        with pytest.raises(ValueError):
            F.conv2d(Tensor(np.zeros((1, 2, 4, 4))), Tensor(np.zeros((1, 3, 3, 3))))

    def test_kernel_larger_than_input_raises(self):
        with pytest.raises(ValueError):
            F.conv2d(Tensor(np.zeros((1, 1, 2, 2))), Tensor(np.zeros((1, 1, 5, 5))))


class TestPoolingAndUpsampling:
    def test_avg_pool_values(self):
        x = Tensor(np.arange(16.0).reshape(1, 1, 4, 4))
        out = F.avg_pool2d(x, 2)
        np.testing.assert_allclose(out.data[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_avg_pool_gradient(self):
        x = tensor_of((2, 3, 4, 6), seed=3)
        assert check_gradient(lambda x: F.avg_pool2d(x, 2), [x]) < 1e-6

    def test_avg_pool_indivisible_raises(self):
        with pytest.raises(ValueError):
            F.avg_pool2d(Tensor(np.zeros((1, 1, 5, 4))), 2)

    def test_upsample_values(self):
        x = Tensor(np.array([[[[1.0, 2.0], [3.0, 4.0]]]]))
        out = F.upsample_nearest(x, 2)
        assert out.shape == (1, 1, 4, 4)
        np.testing.assert_allclose(out.data[0, 0, :2, :2], 1.0)

    def test_upsample_gradient(self):
        x = tensor_of((1, 2, 3, 3), seed=4)
        assert check_gradient(lambda x: F.upsample_nearest(x, 3), [x]) < 1e-6

    def test_pool_then_upsample_preserves_mean(self):
        x = tensor_of((1, 1, 4, 4), seed=5)
        out = F.upsample_nearest(F.avg_pool2d(x, 2), 2)
        assert out.data.mean() == pytest.approx(x.data.mean())


class TestSpectralConv:
    def test_spectral2d_gradient(self):
        x = tensor_of((2, 2, 8, 8), seed=0)
        wr = tensor_of((2, 3, 4, 4), seed=1, scale=0.1)
        wi = tensor_of((2, 3, 4, 4), seed=2, scale=0.1)
        err = check_gradient(lambda x, wr, wi: F.spectral_conv2d(x, wr, wi, (2, 2)), [x, wr, wi])
        assert err < 1e-4

    @pytest.mark.parametrize("axis", [-1, -2])
    def test_spectral1d_gradient(self, axis):
        x = tensor_of((2, 2, 8, 6), seed=0)
        wr = tensor_of((2, 3, 4), seed=1, scale=0.1)
        wi = tensor_of((2, 3, 4), seed=2, scale=0.1)
        err = check_gradient(
            lambda x, wr, wi: F.spectral_conv1d(x, wr, wi, 2, axis=axis), [x, wr, wi]
        )
        assert err < 1e-4

    def test_spectral2d_output_shape(self):
        x = Tensor(np.zeros((1, 3, 10, 12)))
        wr = Tensor(np.zeros((3, 5, 6, 4)))
        wi = Tensor(np.zeros((3, 5, 6, 4)))
        assert F.spectral_conv2d(x, wr, wi, (3, 2)).shape == (1, 5, 10, 12)

    def test_spectral2d_identity_weight_low_pass(self):
        """Identity weights on all retained modes act as a spectral low-pass filter."""
        rng = np.random.default_rng(0)
        x = Tensor(rng.normal(size=(1, 1, 16, 16)))
        modes = (8, 8)
        wr = np.zeros((1, 1, 16, 16))
        wr[0, 0] = 1.0
        out = F.spectral_conv2d(x, Tensor(wr), Tensor(np.zeros_like(wr)), modes)
        # With all modes retained and unit weights the operation is the identity.
        np.testing.assert_allclose(out.data, x.data, atol=1e-10)

    def test_too_many_modes_rejected(self):
        x = Tensor(np.zeros((1, 1, 8, 8)))
        wr = Tensor(np.zeros((1, 1, 10, 10)))
        with pytest.raises(ValueError):
            F.spectral_conv2d(x, wr, wr, (5, 5))

    def test_weight_shape_mismatch_rejected(self):
        x = Tensor(np.zeros((1, 2, 8, 8)))
        wr = Tensor(np.zeros((2, 2, 4, 2)))
        with pytest.raises(ValueError):
            F.spectral_conv2d(x, wr, wr, (2, 2))


class TestDropoutSoftplus:
    def test_dropout_eval_is_identity(self):
        x = Tensor(np.ones((4, 4)))
        out = F.dropout(x, 0.5, training=False, rng=np.random.default_rng(0))
        np.testing.assert_allclose(out.data, x.data)

    def test_dropout_preserves_expectation(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones((2000,)))
        out = F.dropout(x, 0.3, training=True, rng=rng)
        assert out.data.mean() == pytest.approx(1.0, abs=0.1)

    def test_dropout_invalid_probability(self):
        with pytest.raises(ValueError):
            F.dropout(Tensor(np.ones(3)), 1.0, training=True, rng=np.random.default_rng(0))

    def test_softplus_gradient(self):
        x = tensor_of((3, 3), seed=6)
        assert check_gradient(lambda x: F.softplus(x), [x]) < 1e-5

    def test_softplus_positive(self):
        out = F.softplus(Tensor(np.linspace(-10, 10, 21)))
        assert (out.data > 0).all()
