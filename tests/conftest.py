"""Shared fixtures: tiny devices and datasets sized for fast unit tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.dataset import split_dataset
from repro.data.generator import generate_dataset
from repro.devices import WaveguideBend, WaveguideCrossing


TINY_DEVICE_KWARGS = dict(domain=3.0, design_size=1.4, dl=0.1)


@pytest.fixture(scope="session")
def tiny_bend() -> WaveguideBend:
    """A small, fast-to-simulate bend used across the physics tests."""
    return WaveguideBend(**TINY_DEVICE_KWARGS)


@pytest.fixture(scope="session")
def tiny_crossing() -> WaveguideCrossing:
    """A small crossing (multiple monitor ports)."""
    return WaveguideCrossing(**TINY_DEVICE_KWARGS)


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def tiny_dataset():
    """A small labelled dataset on the tiny bend (random sampling, no gradients)."""
    return generate_dataset(
        "bending",
        "random",
        num_designs=6,
        seed=0,
        with_gradient=False,
        device_kwargs=TINY_DEVICE_KWARGS,
    )


@pytest.fixture(scope="session")
def tiny_splits(tiny_dataset):
    """Train/test split of the tiny dataset."""
    return split_dataset(tiny_dataset, train_fraction=0.7, rng=0)
