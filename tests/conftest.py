"""Shared fixtures: tiny devices and datasets sized for fast unit tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.dataset import split_dataset
from repro.data.generator import DatasetGenerator, GeneratorConfig, generate_dataset
from repro.devices import WaveguideBend, WaveguideCrossing


TINY_DEVICE_KWARGS = dict(domain=3.0, design_size=1.4, dl=0.1)


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="regenerate the golden regression fixtures under tests/golden/",
    )


@pytest.fixture(scope="session")
def update_golden(request) -> bool:
    """Whether this run should rewrite the golden fixtures."""
    return bool(request.config.getoption("--update-golden"))


@pytest.fixture(autouse=True)
def _isolate_result_cache():
    """Start every test with an empty end-to-end result cache.

    The cache is process-wide and keyed on query content, so without this a
    test solving a device another test already solved would be served the
    memoized result — and tests asserting on solver side effects (cache
    entries, solve counts) would see none.
    """
    from repro.fdfd.simulation import clear_result_cache

    clear_result_cache()
    yield


@pytest.fixture(scope="session")
def tiny_bend() -> WaveguideBend:
    """A small, fast-to-simulate bend used across the physics tests."""
    return WaveguideBend(**TINY_DEVICE_KWARGS)


@pytest.fixture(scope="session")
def tiny_crossing() -> WaveguideCrossing:
    """A small crossing (multiple monitor ports)."""
    return WaveguideCrossing(**TINY_DEVICE_KWARGS)


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def tiny_dataset():
    """A small labelled dataset on the tiny bend (random sampling, no gradients)."""
    return generate_dataset(
        "bending",
        "random",
        num_designs=6,
        seed=0,
        with_gradient=False,
        device_kwargs=TINY_DEVICE_KWARGS,
    )


@pytest.fixture(scope="session")
def tiny_splits(tiny_dataset):
    """Train/test split of the tiny dataset."""
    return split_dataset(tiny_dataset, train_fraction=0.7, rng=0)


@pytest.fixture(scope="session")
def tiny_shard_run(tmp_path_factory):
    """A small sharded multi-fidelity generation run with persisted artifacts.

    Returns ``(config, shard_dir, merged_dataset)``: 6 designs x 2 fidelities
    in 12 single-design shards — a shard count far above the per-epoch batch
    count, which is what the bounded-memory loader tests need.  The explicit
    ``dl`` keeps both fidelity tiers on one grid (the tiers differ by solver
    engine), so samples stack across fidelities.
    """
    shard_dir = tmp_path_factory.mktemp("shards")
    config = GeneratorConfig(
        device_name="bending",
        strategy="random",
        num_designs=6,
        fidelities=("low", "high"),
        with_gradient=False,
        seed=0,
        device_kwargs=TINY_DEVICE_KWARGS,
        engine={"low": "iterative", "high": "direct"},
        shard_size=1,
        shard_dir=str(shard_dir),
    )
    merged = DatasetGenerator(config).generate()
    return config, shard_dir, merged


@pytest.fixture(scope="session")
def tiny_checkpoint(tmp_path_factory, tiny_splits):
    """A quickly trained FNO surrogate saved as a promotion checkpoint.

    Returns ``(path, model, meta)``; accuracy is irrelevant — these tests
    exercise the promotion plumbing, not the surrogate quality.
    """
    from repro.surrogate import CheckpointMeta, dataset_fingerprint, save_checkpoint
    from repro.train import Trainer, make_model

    train, _ = tiny_splits
    model_kwargs = dict(width=8, modes=(3, 3), depth=2, rng=0)
    model = make_model("fno", **model_kwargs)
    Trainer(model, train, epochs=2, batch_size=4, seed=0).train()
    meta = CheckpointMeta(
        model_name="fno",
        model_kwargs=model_kwargs,
        field_scale=train.field_scale,
        dataset_fingerprint=dataset_fingerprint(train),
    )
    path = tmp_path_factory.mktemp("checkpoints") / "tiny_fno.npz"
    save_checkpoint(path, model, meta)
    return path, model, meta
