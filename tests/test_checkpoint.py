"""Tests for surrogate checkpoints and engine promotion.

Covers the serve side of the generate→train→serve loop: checkpoint
round-trips (weights + normalization statistics + dataset fingerprint),
``promote_to_engine``, and ``engine="neural:<checkpoint>"`` selection through
``Simulation``, ``DatasetGenerator`` and ``InverseDesignProblem``.
"""

import numpy as np
import pytest

from repro.data.generator import DatasetGenerator, GeneratorConfig
from repro.data.loader import ShardDataLoader
from repro.devices import WaveguideBend
from repro.fdfd.engine import make_engine, resolve_engine
from repro.surrogate import (
    CheckpointMeta,
    NeuralEngine,
    dataset_fingerprint,
    load_checkpoint,
    promote_to_engine,
    save_checkpoint,
)
from repro.train import make_model
from repro.train.trainer import predict

TINY_DEVICE_KWARGS = dict(domain=3.0, design_size=1.4, dl=0.1)


class TestCheckpointRoundTrip:
    def test_weights_and_meta_survive(self, tiny_checkpoint):
        path, model, meta = tiny_checkpoint
        loaded, loaded_meta = load_checkpoint(path)
        for (name, param), (loaded_name, loaded_param) in zip(
            model.named_parameters(), loaded.named_parameters()
        ):
            assert name == loaded_name
            np.testing.assert_array_equal(param.data, loaded_param.data)
        assert loaded_meta.model_name == meta.model_name
        assert loaded_meta.field_scale == meta.field_scale
        assert loaded_meta.dataset_fingerprint == meta.dataset_fingerprint
        assert loaded_meta.target == "field"
        # JSON turns the modes tuple into a list; loading restores it.
        assert loaded_meta.model_kwargs["modes"] == (3, 3)

    def test_loaded_model_predicts_identically(self, tiny_checkpoint, tiny_splits):
        path, model, _ = tiny_checkpoint
        loaded, _ = load_checkpoint(path)
        train, _ = tiny_splits
        inputs = train.input_array()[:2]
        np.testing.assert_array_equal(predict(model, inputs), predict(loaded, inputs))

    def test_non_checkpoint_rejected(self, tmp_path):
        bogus = tmp_path / "weights.npz"
        np.savez(bogus, w=np.zeros(3))
        with pytest.raises(ValueError, match="not a surrogate checkpoint"):
            load_checkpoint(bogus)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_checkpoint(tmp_path / "nope.npz")

    def test_non_json_model_kwargs_rejected_at_save(self, tmp_path):
        """Regression: default=str used to stringify bad kwargs silently and
        fail only inside make_model on load."""
        model = make_model("fno", width=8, modes=(3, 3), depth=2, rng=0)
        meta = CheckpointMeta("fno", dict(width=8, rng=np.random.default_rng(0)))
        with pytest.raises(ValueError, match="JSON-serializable"):
            save_checkpoint(tmp_path / "bad.npz", model, meta)

    def test_non_json_extras_rejected_at_save(self, tmp_path):
        """Extras must round-trip too — np.int64(30) stringifying to \"30\"
        is the kind of silent corruption the save-time check exists for."""
        model = make_model("fno", width=8, modes=(3, 3), depth=2, rng=0)
        meta = CheckpointMeta(
            "fno", dict(width=8, modes=(3, 3), depth=2, rng=0),
            extras={"epochs": np.int64(30)},
        )
        with pytest.raises(ValueError, match="JSON-serializable"):
            save_checkpoint(tmp_path / "bad_extras.npz", model, meta)


class TestDatasetFingerprint:
    def test_loader_and_dataset_fingerprint_identically(self, tiny_shard_run):
        config, shard_dir, merged = tiny_shard_run
        loader = ShardDataLoader.from_directory(shard_dir, fidelities=config.fidelities)
        assert dataset_fingerprint(merged) == dataset_fingerprint(loader)

    def test_different_data_different_fingerprint(self, tiny_shard_run):
        _, _, merged = tiny_shard_run
        subset = merged.filter(lambda s: s.fidelity == "high")
        assert dataset_fingerprint(merged) != dataset_fingerprint(subset)


class TestPromotion:
    def test_promote_from_path(self, tiny_checkpoint):
        path, _, meta = tiny_checkpoint
        engine = promote_to_engine(path)
        assert isinstance(engine, NeuralEngine)
        assert engine.field_scale == meta.field_scale
        assert engine.supports_warm_start is False

    def test_promote_live_model_requires_meta(self, tiny_checkpoint):
        _, model, meta = tiny_checkpoint
        assert isinstance(promote_to_engine(model, meta), NeuralEngine)
        with pytest.raises(ValueError, match="CheckpointMeta"):
            promote_to_engine(model)

    def test_non_field_checkpoint_rejected(self, tmp_path):
        model = make_model("blackbox", width=8, rng=0)
        meta = CheckpointMeta("blackbox", dict(width=8, rng=0), target="transmission")
        path = save_checkpoint(tmp_path / "bb.npz", model, meta)
        with pytest.raises(ValueError, match="field-prediction"):
            promote_to_engine(path)

    def test_registry_name_with_checkpoint_suffix(self, tiny_checkpoint):
        path, _, meta = tiny_checkpoint
        engine = make_engine(f"neural:{path}")
        assert isinstance(engine, NeuralEngine)
        assert engine.field_scale == meta.field_scale
        # resolve_engine (the path every engine= argument goes through) too.
        assert isinstance(resolve_engine(f"neural:{path}"), NeuralEngine)

    def test_suffix_on_non_checkpoint_engine_rejected(self):
        with pytest.raises(ValueError, match="suffix"):
            make_engine("direct:whatever")
        with pytest.raises(ValueError, match="empty"):
            make_engine("neural:")

    def test_neural_factory_rejects_model_and_checkpoint(self, tiny_checkpoint):
        path, model, _ = tiny_checkpoint
        with pytest.raises(ValueError, match="not both"):
            make_engine(f"neural:{path}", model=model)

    def test_neural_factory_rejects_field_scale_and_checkpoint(self, tiny_checkpoint):
        """An explicit field_scale would be silently shadowed by the
        checkpoint's stored normalization — rejected instead."""
        path, _, _ = tiny_checkpoint
        with pytest.raises(ValueError, match="field_scale"):
            make_engine(f"neural:{path}", field_scale=2.0)

    def test_checkpoint_load_errors_not_masked(self, tmp_path):
        """Regression: a broken checkpoint must surface its own error, not a
        misleading 'no suffix support' message."""
        with pytest.raises(FileNotFoundError):
            make_engine(f"neural:{tmp_path / 'missing.npz'}")


class TestServedEngine:
    def test_simulation_solve_multi(self, tiny_checkpoint):
        path, _, _ = tiny_checkpoint
        device = WaveguideBend(**TINY_DEVICE_KWARGS)
        sim = device.simulation(
            np.full(device.design_shape, 0.5), engine=f"neural:{path}"
        )
        results = sim.solve_multi([("in", 0)])
        assert len(results) == 1
        assert results[0].ez.shape == device.grid.shape
        assert np.isfinite(results[0].ez).all()
        assert all(np.isfinite(v) for v in results[0].transmissions.values())

    def test_dataset_generator_end_to_end(self, tiny_checkpoint):
        path, _, _ = tiny_checkpoint
        config = GeneratorConfig(
            device_name="bending",
            strategy="random",
            num_designs=2,
            fidelities=("low",),
            with_gradient=False,
            seed=1,
            device_kwargs=TINY_DEVICE_KWARGS,
            engine=f"neural:{path}",
        )
        dataset = DatasetGenerator(config).generate()
        assert len(dataset) == 2
        assert np.isfinite(dataset.input_array()).all()
        assert np.isfinite(dataset.target_array()).all()
        assert dataset.metadata["engine"]["low"] == f"neural:{path}"

    def test_inverse_design_problem_accepts_checkpoint_engine(self, tiny_checkpoint):
        from repro.invdes.problem import InverseDesignProblem

        path, _, _ = tiny_checkpoint
        device = WaveguideBend(**TINY_DEVICE_KWARGS)
        problem = InverseDesignProblem(device, engine=f"neural:{path}")
        theta = problem.initial_theta(rng=0)
        value, grad = problem.value_and_grad(theta)
        assert np.isfinite(value)
        assert grad.shape == theta.shape
        assert np.isfinite(grad).all()
