"""Shared finite-difference gradient checking utilities.

Both the linear and the nonlinear (Kerr fixed-point) adjoint tests validate
analytic gradients the same way: central differences of a scalar objective at
a handful of deterministic pixels.  This module is the single implementation
(promoted from ad-hoc loops that used to live in ``test_invdes.py``), also
reused by ``benchmarks/bench_nonlinear.py`` for its gradient-cosine record.
"""

from __future__ import annotations

import numpy as np
import pytest


def sample_pixels(shape, count: int = 3, rng=0) -> list[tuple[int, ...]]:
    """Deterministic pixel index tuples for spot-checking a gradient."""
    rng = np.random.default_rng(rng)
    return [tuple(int(rng.integers(0, s)) for s in shape) for _ in range(count)]


def central_difference(f, x: np.ndarray, pixel: tuple[int, ...], step: float = 1e-4) -> float:
    """Central finite difference of scalar ``f(x)`` along one pixel of ``x``."""
    plus = np.array(x, dtype=float, copy=True)
    plus[pixel] += step
    minus = np.array(x, dtype=float, copy=True)
    minus[pixel] -= step
    return (float(f(plus)) - float(f(minus))) / (2.0 * step)


def fd_gradient(
    f, x: np.ndarray, pixels: list[tuple[int, ...]], step: float = 1e-4
) -> np.ndarray:
    """Central-difference gradient of ``f`` at the given pixels."""
    return np.array([central_difference(f, x, pixel, step=step) for pixel in pixels])


def gradient_cosine(analytic: np.ndarray, numeric: np.ndarray) -> float:
    """Cosine similarity between analytic and finite-difference gradients."""
    analytic = np.asarray(analytic, dtype=float).ravel()
    numeric = np.asarray(numeric, dtype=float).ravel()
    denom = np.linalg.norm(analytic) * np.linalg.norm(numeric)
    if denom == 0.0:
        return 1.0 if np.allclose(analytic, numeric) else 0.0
    return float(np.dot(analytic, numeric) / denom)


def assert_gradient_matches_fd(
    f,
    x: np.ndarray,
    grad: np.ndarray,
    pixels: list[tuple[int, ...]] | None = None,
    count: int = 3,
    rng=0,
    step: float = 1e-4,
    rel: float = 1e-3,
    abs_tol: float = 1e-9,
) -> None:
    """Assert analytic ``grad`` of scalar ``f`` matches central differences.

    ``f`` takes an array like ``x`` and returns the objective value; ``grad``
    is the analytic gradient at ``x``.  ``pixels`` defaults to ``count``
    deterministic samples from ``rng`` (the historical test convention).
    """
    if pixels is None:
        pixels = sample_pixels(np.shape(x), count=count, rng=rng)
    for pixel in pixels:
        numeric = central_difference(f, x, pixel, step=step)
        analytic = float(np.asarray(grad)[pixel])
        assert analytic == pytest.approx(numeric, rel=rel, abs=abs_tol), (
            f"gradient mismatch at pixel {pixel}: analytic {analytic:.6e} "
            f"vs finite-difference {numeric:.6e}"
        )
