"""Tests for MAPS-Data: labels, sampling strategies, datasets and analysis."""

import numpy as np
import pytest

from repro.data import (
    DatasetGenerator,
    OptTrajSampling,
    PerturbedOptTrajSampling,
    PhotonicDataset,
    RandomSampling,
    extract_labels,
    make_sampler,
    split_dataset,
    standardize_input,
)
from repro.data.analysis import (
    distribution_balance,
    fom_coverage,
    pattern_embedding,
    transmission_histogram,
)
from repro.data.generator import (
    GeneratorConfig,
    _parse_engine,
    generate_dataset,
    main as generator_main,
)
from repro.data.labels import field_target
from repro.data.shards import (
    engine_for_fidelity,
    plan_shards,
    shard_fingerprint,
)
from repro.fdfd.engine import DirectEngine

from tests.conftest import TINY_DEVICE_KWARGS


class TestLabels:
    @pytest.fixture(scope="class")
    def labels(self, tiny_bend):
        density = np.full(tiny_bend.design_shape, 0.5)
        return extract_labels(tiny_bend, density, spec=0, with_gradient=True, stage="test")

    def test_all_fields_present(self, labels, tiny_bend):
        assert labels.ez.shape == tiny_bend.grid.shape
        assert labels.hx.shape == tiny_bend.grid.shape
        assert labels.eps_r.shape == tiny_bend.grid.shape
        assert labels.adjoint_gradient.shape == tiny_bend.design_shape
        assert labels.device_name == "bending"
        assert labels.stage == "test"

    def test_figure_of_merit_consistent_with_transmissions(self, labels):
        assert labels.figure_of_merit == pytest.approx(labels.transmissions["out"], rel=1e-9)

    def test_maxwell_residual_small(self, labels):
        assert labels.maxwell_residual < 1e-10

    def test_radiation_complements_transmission(self, labels):
        assert labels.radiation == pytest.approx(1.0 - labels.total_transmission(), abs=1e-9)

    def test_without_gradient(self, tiny_bend):
        labels = extract_labels(
            tiny_bend, np.full(tiny_bend.design_shape, 0.5), spec=0, with_gradient=False
        )
        assert labels.adjoint_gradient is None

    def test_standardize_input_layout(self, labels):
        inputs = standardize_input(labels.eps_r, labels.source, labels.wavelength, labels.dl)
        assert inputs.shape == (4,) + labels.eps_r.shape
        assert inputs[0].max() <= 1.0
        assert np.abs(inputs[1:3]).max() == pytest.approx(1.0)
        np.testing.assert_allclose(inputs[3], labels.dl / labels.wavelength)

    def test_field_target_scaling(self, labels):
        target = field_target(labels.ez, field_scale=2.0, source=labels.source)
        amplitude = np.max(np.abs(labels.source))
        np.testing.assert_allclose(target[0], labels.ez.real / (2.0 * amplitude))


class TestSampling:
    def test_random_sampling_shapes_and_range(self, tiny_bend):
        samples = RandomSampling().sample(tiny_bend, 5, rng=0)
        assert len(samples) == 5
        for sample in samples:
            assert sample.density.shape == tiny_bend.design_shape
            assert sample.density.min() >= 0.0 and sample.density.max() <= 1.0
            assert sample.stage == "random"

    def test_random_sampling_mostly_binary(self, tiny_bend):
        samples = RandomSampling(binarize=True).sample(tiny_bend, 3, rng=0)
        for sample in samples:
            assert set(np.unique(sample.density)) <= {0.0, 1.0}

    def test_opt_traj_sampling_covers_low_and_high_fom(self, tiny_bend):
        samples = OptTrajSampling(iterations=8).sample(tiny_bend, 9, rng=0)
        foms = [s.fom_hint for s in samples if s.fom_hint is not None]
        assert len(samples) <= 9
        assert max(foms) > min(foms) + 0.1

    def test_perturbed_sampling_mixes_stages(self, tiny_bend):
        sampler = PerturbedOptTrajSampling(iterations=6, perturbation_fraction=0.5)
        samples = sampler.sample(tiny_bend, 10, rng=0)
        stages = {s.stage.split(":")[0] for s in samples}
        assert "perturbed" in stages and "opt-traj" in stages
        assert len(samples) == 10

    def test_make_sampler_dispatch(self):
        assert isinstance(make_sampler("random"), RandomSampling)
        assert isinstance(make_sampler("opt_traj"), OptTrajSampling)
        assert isinstance(make_sampler("perturbed_opt_traj"), PerturbedOptTrajSampling)
        with pytest.raises(ValueError):
            make_sampler("active_learning")

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            RandomSampling(smooth_cells=0.0)
        with pytest.raises(ValueError):
            OptTrajSampling(iterations=0)
        with pytest.raises(ValueError):
            PerturbedOptTrajSampling(perturbation_fraction=1.0)


class TestDataset:
    def test_sample_arrays(self, tiny_dataset):
        assert len(tiny_dataset) > 0
        assert tiny_dataset.input_array().shape[1] == 4
        assert tiny_dataset.target_array().shape[1] == 2
        assert tiny_dataset.fom_array().shape == (len(tiny_dataset),)

    def test_batches_cover_dataset(self, tiny_dataset):
        seen = []
        for inputs, targets, indices in tiny_dataset.batches(2, shuffle=True, rng=0):
            assert inputs.shape[0] == targets.shape[0] == len(indices)
            seen.extend(indices.tolist())
        assert sorted(seen) == list(range(len(tiny_dataset)))

    def test_split_is_design_level(self, tiny_dataset):
        train, test = split_dataset(tiny_dataset, 0.5, rng=0)
        train_ids = {s.design_id for s in train}
        test_ids = {s.design_id for s in test}
        assert train_ids.isdisjoint(test_ids)
        assert len(train) + len(test) == len(tiny_dataset)

    def test_split_with_validation(self, tiny_dataset):
        train, val, test = split_dataset(tiny_dataset, 0.5, val_fraction=0.2, rng=0)
        assert len(train) + len(val) + len(test) == len(tiny_dataset)

    def test_split_invalid_fractions(self, tiny_dataset):
        with pytest.raises(ValueError):
            split_dataset(tiny_dataset, 0.0)
        with pytest.raises(ValueError):
            split_dataset(tiny_dataset, 0.9, val_fraction=0.5)

    def test_save_load_roundtrip(self, tiny_dataset, tmp_path):
        path = tmp_path / "dataset.npz"
        tiny_dataset.save(path)
        loaded = PhotonicDataset.load(path)
        assert len(loaded) == len(tiny_dataset)
        assert loaded.field_scale == pytest.approx(tiny_dataset.field_scale)
        np.testing.assert_allclose(loaded[0].inputs, tiny_dataset[0].inputs)
        np.testing.assert_allclose(loaded[0].target, tiny_dataset[0].target)
        assert loaded[0].device_name == tiny_dataset[0].device_name

    def test_filter(self, tiny_dataset):
        subset = tiny_dataset.filter(lambda s: s.design_id == 0)
        assert all(s.design_id == 0 for s in subset)

    def test_invalid_batch_size(self, tiny_dataset):
        with pytest.raises(ValueError):
            list(tiny_dataset.batches(0))


class TestGenerator:
    def test_generate_counts(self):
        dataset = generate_dataset(
            "bending",
            "random",
            num_designs=3,
            seed=1,
            with_gradient=False,
            device_kwargs=TINY_DEVICE_KWARGS,
        )
        # 3 designs x 1 spec x 1 fidelity.
        assert len(dataset) == 3
        assert dataset.metadata["strategy"] == "random"

    def test_multi_fidelity_pairing(self):
        config = GeneratorConfig(
            device_name="bending",
            strategy="random",
            num_designs=2,
            fidelities=("low", "high"),
            with_gradient=False,
            seed=0,
            device_kwargs=dict(domain=2.5, design_size=1.2),
        )
        # Use explicit dl values to keep the high-fidelity grid small.
        config.device_kwargs = dict(domain=2.5, design_size=1.2)
        dataset = DatasetGenerator(config).generate()
        assert len(dataset) == 4
        by_fidelity = {}
        for sample in dataset:
            by_fidelity.setdefault(sample.fidelity, set()).add(sample.design_id)
        assert by_fidelity["low"] == by_fidelity["high"]
        shapes = {s.fidelity: s.grid_shape for s in dataset}
        assert shapes["high"] != shapes["low"]

    def test_unknown_option_rejected(self):
        with pytest.raises(TypeError):
            DatasetGenerator(num_design=3)

    def test_overrides_do_not_mutate_caller_config(self):
        """Regression: **overrides used to be written into the caller's config."""
        config = GeneratorConfig(num_designs=7, strategy="random")
        generator = DatasetGenerator(config, num_designs=2, seed=5)
        assert config.num_designs == 7 and config.seed == 0
        assert generator.config.num_designs == 2 and generator.config.seed == 5
        assert generator.config is not config

    def test_unknown_engine_rejected_early(self):
        with pytest.raises(ValueError):
            DatasetGenerator(GeneratorConfig(engine="quantum"))
        with pytest.raises(ValueError):
            DatasetGenerator(
                GeneratorConfig(fidelities=("low", "high"), engine={"high": "quantum"})
            )

    def test_typoed_engine_mapping_key_rejected(self):
        """A mapping key matching no fidelity must not fall back silently."""
        with pytest.raises(ValueError, match="match no configured fidelity"):
            DatasetGenerator(GeneratorConfig(engine={"lo": "iterative"}))
        # "*" is the documented default key and stays accepted.
        DatasetGenerator(
            GeneratorConfig(fidelities=("low", "high"), engine={"low": "iterative", "*": "direct"})
        )

    def test_engine_selection_reaches_metadata(self):
        dataset = generate_dataset(
            "bending",
            "random",
            num_designs=2,
            seed=1,
            with_gradient=False,
            device_kwargs=TINY_DEVICE_KWARGS,
            engine="iterative",
        )
        assert dataset.metadata["engine"] == {"low": "iterative"}


class TestEngineForFidelity:
    def test_passthrough_and_mapping(self):
        assert engine_for_fidelity(None, "low") is None
        assert engine_for_fidelity("direct", "high") == "direct"
        engine = DirectEngine()
        assert engine_for_fidelity(engine, "low") is engine
        mapping = {"low": "iterative", "*": "direct"}
        assert engine_for_fidelity(mapping, "low") == "iterative"
        assert engine_for_fidelity(mapping, "high") == "direct"
        assert engine_for_fidelity({"low": "iterative"}, "high") is None

    def test_invalid_type_rejected(self):
        with pytest.raises(TypeError):
            engine_for_fidelity(42, "low")


class TestShardPlanning:
    def test_layout_covers_all_designs_per_fidelity(self):
        config = GeneratorConfig(num_designs=10, shard_size=3, fidelities=("low", "high"))
        plan = plan_shards(config)
        assert len(plan) == 8  # ceil(10/3) = 4 blocks x 2 fidelities
        for fidelity in ("low", "high"):
            ids = [
                i for spec in plan if spec.fidelity == fidelity for i in spec.design_ids
            ]
            assert ids == list(range(10))
        assert [spec.index for spec in plan] == list(range(len(plan)))

    def test_layout_independent_of_workers(self):
        from dataclasses import replace

        config = GeneratorConfig(num_designs=9, shard_size=2)
        plan = plan_shards(config)
        again = plan_shards(replace(config, workers=8))
        assert [s.design_ids for s in again] == [s.design_ids for s in plan]
        assert [s.rng_seed for s in again] == [s.rng_seed for s in plan]

    def test_per_shard_rng_streams_distinct_and_seed_dependent(self):
        config = GeneratorConfig(num_designs=8, shard_size=2)
        seeds = [spec.rng_seed for spec in plan_shards(config)]
        assert len(set(seeds)) == len(seeds)
        from dataclasses import replace

        reseeded = [spec.rng_seed for spec in plan_shards(replace(config, seed=1))]
        assert reseeded != seeds

    def test_fingerprint_tracks_design_content_and_engine(self):
        config = GeneratorConfig(num_designs=2, strategy="random")
        spec = plan_shards(config)[0]
        densities = [np.zeros((4, 4)), np.ones((4, 4))]
        stages = ["random", "random"]
        base = shard_fingerprint(config, spec, densities, stages)
        assert base == shard_fingerprint(
            config, spec, [d.copy() for d in densities], stages
        )
        bumped = [densities[0], densities[1] + 1e-12]
        assert base != shard_fingerprint(config, spec, bumped, stages)
        from dataclasses import replace

        other_engine = replace(config, engine="iterative")
        assert base != shard_fingerprint(other_engine, spec, densities, stages)


class TestShardedGeneration:
    CONFIG_KWARGS = dict(
        device_name="bending",
        strategy="random",
        num_designs=4,
        with_gradient=False,
        seed=3,
        device_kwargs=TINY_DEVICE_KWARGS,
        shard_size=2,
    )

    @staticmethod
    def _assert_bit_identical(left, right):
        from repro.data.dataset import datasets_bit_identical

        assert datasets_bit_identical(left, right)

    def test_parallel_bit_identical_to_serial(self):
        serial = DatasetGenerator(GeneratorConfig(**self.CONFIG_KWARGS, workers=1)).generate()
        parallel = DatasetGenerator(
            GeneratorConfig(**self.CONFIG_KWARGS, workers=2)
        ).generate()
        self._assert_bit_identical(serial, parallel)

    def test_resume_reuses_artifacts(self, tmp_path, monkeypatch):
        config = GeneratorConfig(**self.CONFIG_KWARGS, shard_dir=str(tmp_path))
        first = DatasetGenerator(config).generate()
        shard_files = sorted(tmp_path.glob("shard_*.npz"))
        assert len(shard_files) == 2  # 4 designs / shard_size 2

        import repro.data.generator as generator_module

        def explode(task):
            raise AssertionError("shard recomputed despite valid artifacts")

        monkeypatch.setattr(generator_module, "run_shard", explode)
        resumed = DatasetGenerator(config).generate()
        self._assert_bit_identical(first, resumed)

    def test_artifact_roundtrip_matches_in_memory(self, tmp_path):
        in_memory = DatasetGenerator(GeneratorConfig(**self.CONFIG_KWARGS)).generate()
        via_disk = DatasetGenerator(
            GeneratorConfig(**self.CONFIG_KWARGS, shard_dir=str(tmp_path))
        ).generate()
        self._assert_bit_identical(in_memory, via_disk)

    def test_corrupt_artifact_recomputed(self, tmp_path):
        config = GeneratorConfig(**self.CONFIG_KWARGS, shard_dir=str(tmp_path))
        first = DatasetGenerator(config).generate()
        shards = sorted(tmp_path.glob("shard_*.npz"))
        shards[0].write_bytes(b"not an npz file")  # raises ValueError on load
        # Truncated archive keeping the zip magic raises zipfile.BadZipFile.
        shards[1].write_bytes(shards[1].read_bytes()[:40])
        recovered = DatasetGenerator(config).generate()
        self._assert_bit_identical(first, recovered)

    def test_engine_instances_rejected_for_parallel_runs(self):
        config = GeneratorConfig(
            **self.CONFIG_KWARGS, engine=DirectEngine(), workers=2
        )
        generator = DatasetGenerator(config)
        with pytest.raises(ValueError):
            generator.generate()

    def test_unknown_array_backend_rejected_at_config_time(self):
        config = GeneratorConfig(**self.CONFIG_KWARGS, backend="tpu")
        with pytest.raises(ValueError, match="tpu"):
            DatasetGenerator(config)

    def test_numpy_backend_accepted_and_bit_identical(self):
        baseline = DatasetGenerator(GeneratorConfig(**self.CONFIG_KWARGS)).generate()
        explicit = DatasetGenerator(
            GeneratorConfig(**self.CONFIG_KWARGS, backend="numpy")
        ).generate()
        self._assert_bit_identical(baseline, explicit)


class TestGeneratorCLI:
    def test_engine_argument_parsing(self):
        assert _parse_engine(None) is None
        assert _parse_engine("direct") == "direct"
        assert _parse_engine("low=iterative,high=direct") == {
            "low": "iterative",
            "high": "direct",
        }
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            _parse_engine("low=")

    def test_main_generates_and_saves(self, tmp_path):
        import json

        output = tmp_path / "cli_dataset.npz"
        exit_code = generator_main(
            [
                "--device",
                "bending",
                "--strategy",
                "random",
                "--num-designs",
                "2",
                "--no-gradient",
                "--engine",
                "direct",
                "--workers",
                "1",
                "--device-kwargs",
                json.dumps(TINY_DEVICE_KWARGS),
                "--output",
                str(output),
            ]
        )
        assert exit_code == 0
        loaded = PhotonicDataset.load(output)
        assert len(loaded) == 2
        assert loaded.metadata["engine"] == {"low": "direct"}


class TestAnalysis:
    def test_histogram_fractions_sum_to_one(self, tiny_dataset):
        fractions, edges = transmission_histogram(tiny_dataset, bins=5)
        assert fractions.sum() == pytest.approx(1.0)
        assert len(edges) == 6

    def test_histogram_invalid_kind(self, tiny_dataset):
        with pytest.raises(ValueError):
            transmission_histogram(tiny_dataset, value="loss")

    def test_balance_bounds(self, tiny_dataset):
        balance = distribution_balance(tiny_dataset)
        assert 0.0 <= balance <= 1.0

    def test_fom_coverage_monotone_in_threshold(self, tiny_dataset):
        assert fom_coverage(tiny_dataset, 0.1) >= fom_coverage(tiny_dataset, 0.9)

    def test_pattern_embedding_shapes(self, tiny_dataset):
        embedding = pattern_embedding({"a": tiny_dataset, "b": tiny_dataset})
        assert embedding["a"].shape == (len(tiny_dataset), 2)
        assert embedding["b"].shape == (len(tiny_dataset), 2)

    def test_pattern_embedding_requires_data(self):
        with pytest.raises(ValueError):
            pattern_embedding({})
