"""Tests for MAPS-Data: labels, sampling strategies, datasets and analysis."""

import numpy as np
import pytest

from repro.data import (
    DatasetGenerator,
    OptTrajSampling,
    PerturbedOptTrajSampling,
    PhotonicDataset,
    RandomSampling,
    extract_labels,
    make_sampler,
    split_dataset,
    standardize_input,
)
from repro.data.analysis import (
    distribution_balance,
    fom_coverage,
    pattern_embedding,
    transmission_histogram,
)
from repro.data.generator import GeneratorConfig, generate_dataset
from repro.data.labels import field_target

from tests.conftest import TINY_DEVICE_KWARGS


class TestLabels:
    @pytest.fixture(scope="class")
    def labels(self, tiny_bend):
        density = np.full(tiny_bend.design_shape, 0.5)
        return extract_labels(tiny_bend, density, spec=0, with_gradient=True, stage="test")

    def test_all_fields_present(self, labels, tiny_bend):
        assert labels.ez.shape == tiny_bend.grid.shape
        assert labels.hx.shape == tiny_bend.grid.shape
        assert labels.eps_r.shape == tiny_bend.grid.shape
        assert labels.adjoint_gradient.shape == tiny_bend.design_shape
        assert labels.device_name == "bending"
        assert labels.stage == "test"

    def test_figure_of_merit_consistent_with_transmissions(self, labels):
        assert labels.figure_of_merit == pytest.approx(labels.transmissions["out"], rel=1e-9)

    def test_maxwell_residual_small(self, labels):
        assert labels.maxwell_residual < 1e-10

    def test_radiation_complements_transmission(self, labels):
        assert labels.radiation == pytest.approx(1.0 - labels.total_transmission(), abs=1e-9)

    def test_without_gradient(self, tiny_bend):
        labels = extract_labels(
            tiny_bend, np.full(tiny_bend.design_shape, 0.5), spec=0, with_gradient=False
        )
        assert labels.adjoint_gradient is None

    def test_standardize_input_layout(self, labels):
        inputs = standardize_input(labels.eps_r, labels.source, labels.wavelength, labels.dl)
        assert inputs.shape == (4,) + labels.eps_r.shape
        assert inputs[0].max() <= 1.0
        assert np.abs(inputs[1:3]).max() == pytest.approx(1.0)
        np.testing.assert_allclose(inputs[3], labels.dl / labels.wavelength)

    def test_field_target_scaling(self, labels):
        target = field_target(labels.ez, field_scale=2.0, source=labels.source)
        amplitude = np.max(np.abs(labels.source))
        np.testing.assert_allclose(target[0], labels.ez.real / (2.0 * amplitude))


class TestSampling:
    def test_random_sampling_shapes_and_range(self, tiny_bend):
        samples = RandomSampling().sample(tiny_bend, 5, rng=0)
        assert len(samples) == 5
        for sample in samples:
            assert sample.density.shape == tiny_bend.design_shape
            assert sample.density.min() >= 0.0 and sample.density.max() <= 1.0
            assert sample.stage == "random"

    def test_random_sampling_mostly_binary(self, tiny_bend):
        samples = RandomSampling(binarize=True).sample(tiny_bend, 3, rng=0)
        for sample in samples:
            assert set(np.unique(sample.density)) <= {0.0, 1.0}

    def test_opt_traj_sampling_covers_low_and_high_fom(self, tiny_bend):
        samples = OptTrajSampling(iterations=8).sample(tiny_bend, 9, rng=0)
        foms = [s.fom_hint for s in samples if s.fom_hint is not None]
        assert len(samples) <= 9
        assert max(foms) > min(foms) + 0.1

    def test_perturbed_sampling_mixes_stages(self, tiny_bend):
        sampler = PerturbedOptTrajSampling(iterations=6, perturbation_fraction=0.5)
        samples = sampler.sample(tiny_bend, 10, rng=0)
        stages = {s.stage.split(":")[0] for s in samples}
        assert "perturbed" in stages and "opt-traj" in stages
        assert len(samples) == 10

    def test_make_sampler_dispatch(self):
        assert isinstance(make_sampler("random"), RandomSampling)
        assert isinstance(make_sampler("opt_traj"), OptTrajSampling)
        assert isinstance(make_sampler("perturbed_opt_traj"), PerturbedOptTrajSampling)
        with pytest.raises(ValueError):
            make_sampler("active_learning")

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            RandomSampling(smooth_cells=0.0)
        with pytest.raises(ValueError):
            OptTrajSampling(iterations=0)
        with pytest.raises(ValueError):
            PerturbedOptTrajSampling(perturbation_fraction=1.0)


class TestDataset:
    def test_sample_arrays(self, tiny_dataset):
        assert len(tiny_dataset) > 0
        assert tiny_dataset.input_array().shape[1] == 4
        assert tiny_dataset.target_array().shape[1] == 2
        assert tiny_dataset.fom_array().shape == (len(tiny_dataset),)

    def test_batches_cover_dataset(self, tiny_dataset):
        seen = []
        for inputs, targets, indices in tiny_dataset.batches(2, shuffle=True, rng=0):
            assert inputs.shape[0] == targets.shape[0] == len(indices)
            seen.extend(indices.tolist())
        assert sorted(seen) == list(range(len(tiny_dataset)))

    def test_split_is_design_level(self, tiny_dataset):
        train, test = split_dataset(tiny_dataset, 0.5, rng=0)
        train_ids = {s.design_id for s in train}
        test_ids = {s.design_id for s in test}
        assert train_ids.isdisjoint(test_ids)
        assert len(train) + len(test) == len(tiny_dataset)

    def test_split_with_validation(self, tiny_dataset):
        train, val, test = split_dataset(tiny_dataset, 0.5, val_fraction=0.2, rng=0)
        assert len(train) + len(val) + len(test) == len(tiny_dataset)

    def test_split_invalid_fractions(self, tiny_dataset):
        with pytest.raises(ValueError):
            split_dataset(tiny_dataset, 0.0)
        with pytest.raises(ValueError):
            split_dataset(tiny_dataset, 0.9, val_fraction=0.5)

    def test_save_load_roundtrip(self, tiny_dataset, tmp_path):
        path = tmp_path / "dataset.npz"
        tiny_dataset.save(path)
        loaded = PhotonicDataset.load(path)
        assert len(loaded) == len(tiny_dataset)
        assert loaded.field_scale == pytest.approx(tiny_dataset.field_scale)
        np.testing.assert_allclose(loaded[0].inputs, tiny_dataset[0].inputs)
        np.testing.assert_allclose(loaded[0].target, tiny_dataset[0].target)
        assert loaded[0].device_name == tiny_dataset[0].device_name

    def test_filter(self, tiny_dataset):
        subset = tiny_dataset.filter(lambda s: s.design_id == 0)
        assert all(s.design_id == 0 for s in subset)

    def test_invalid_batch_size(self, tiny_dataset):
        with pytest.raises(ValueError):
            list(tiny_dataset.batches(0))


class TestGenerator:
    def test_generate_counts(self):
        dataset = generate_dataset(
            "bending",
            "random",
            num_designs=3,
            seed=1,
            with_gradient=False,
            device_kwargs=TINY_DEVICE_KWARGS,
        )
        # 3 designs x 1 spec x 1 fidelity.
        assert len(dataset) == 3
        assert dataset.metadata["strategy"] == "random"

    def test_multi_fidelity_pairing(self):
        config = GeneratorConfig(
            device_name="bending",
            strategy="random",
            num_designs=2,
            fidelities=("low", "high"),
            with_gradient=False,
            seed=0,
            device_kwargs=dict(domain=2.5, design_size=1.2),
        )
        # Use explicit dl values to keep the high-fidelity grid small.
        config.device_kwargs = dict(domain=2.5, design_size=1.2)
        dataset = DatasetGenerator(config).generate()
        assert len(dataset) == 4
        by_fidelity = {}
        for sample in dataset:
            by_fidelity.setdefault(sample.fidelity, set()).add(sample.design_id)
        assert by_fidelity["low"] == by_fidelity["high"]
        shapes = {s.fidelity: s.grid_shape for s in dataset}
        assert shapes["high"] != shapes["low"]

    def test_unknown_option_rejected(self):
        with pytest.raises(TypeError):
            DatasetGenerator(num_design=3)


class TestAnalysis:
    def test_histogram_fractions_sum_to_one(self, tiny_dataset):
        fractions, edges = transmission_histogram(tiny_dataset, bins=5)
        assert fractions.sum() == pytest.approx(1.0)
        assert len(edges) == 6

    def test_histogram_invalid_kind(self, tiny_dataset):
        with pytest.raises(ValueError):
            transmission_histogram(tiny_dataset, value="loss")

    def test_balance_bounds(self, tiny_dataset):
        balance = distribution_balance(tiny_dataset)
        assert 0.0 <= balance <= 1.0

    def test_fom_coverage_monotone_in_threshold(self, tiny_dataset):
        assert fom_coverage(tiny_dataset, 0.1) >= fom_coverage(tiny_dataset, 0.9)

    def test_pattern_embedding_shapes(self, tiny_dataset):
        embedding = pattern_embedding({"a": tiny_dataset, "b": tiny_dataset})
        assert embedding["a"].shape == (len(tiny_dataset), 2)
        assert embedding["b"].shape == (len(tiny_dataset), 2)

    def test_pattern_embedding_requires_data(self):
        with pytest.raises(ValueError):
            pattern_embedding({})
