"""Golden-regression fixtures: committed snapshots that catch numerical drift.

Each golden case pins the exact-solver labels (fields, transmissions,
adjoint gradient, residual) of a fixed seed/config.  Tier-1 runs compare
against the committed ``tests/golden/*.npz`` snapshots, so *silent* numerical
drift introduced by any PR — operator assembly, engine defaults, monitor
changes — fails loudly instead of shifting every downstream result.

Regenerate intentionally with::

    python -m pytest tests/test_golden.py --update-golden

and commit the refreshed files together with the change that moved the
numbers (the diff is then an explicit, reviewable statement of the drift).
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.data.labels import extract_labels_batch
from repro.devices.factory import make_device
from repro.fdfd.nonlinear import KerrNonlinearity

GOLDEN_DIR = Path(__file__).parent / "golden"
GOLDEN_SEED = 2026

# Tolerances are loose enough for cross-platform BLAS variation, tight enough
# that any change a user could notice in labels trips the comparison.
FIELD_RTOL = 1e-6
SCALAR_ATOL = 1e-8

# ``kerr_limiter`` pins a *converged nonlinear fixed point* (Newton, direct
# inner solves): drift in the Kerr iteration, the effective-permittivity
# update or the nonlinear adjoint shows up here even if the linear tiers
# are untouched.
CASES = {
    "bending": dict(domain=3.0, design_size=1.4, dl=0.1),
    "crossing": dict(domain=3.0, design_size=1.4, dl=0.1),
    "kerr_limiter": dict(domain=3.0, design_size=1.4, dl=0.1),
}


def golden_path(name: str) -> Path:
    return GOLDEN_DIR / f"golden_{name}.npz"


def compute_case(name: str) -> dict:
    """The golden payload: exact labels of one fixed design."""
    device = make_device(name, **CASES[name])
    density = np.random.default_rng(GOLDEN_SEED).uniform(
        0.2, 0.8, size=device.design_shape
    )
    nonlinearity = KerrNonlinearity(rtol=1e-10) if device.chi3 else None
    labels = extract_labels_batch(
        device,
        density,
        with_gradient=True,
        engine="direct",
        stage="golden",
        nonlinearity=nonlinearity,
    )
    arrays = {"density": density}
    records = []
    for i, label in enumerate(labels):
        arrays[f"ez_{i}"] = label.ez
        arrays[f"adjoint_gradient_{i}"] = label.adjoint_gradient
        records.append(
            {
                "spec_index": label.spec_index,
                "wavelength": label.wavelength,
                "transmissions": dict(label.transmissions),
                "figure_of_merit": label.figure_of_merit,
                "objective_value": label.objective_value,
                "maxwell_residual": label.maxwell_residual,
            }
        )
    arrays["__header__"] = np.frombuffer(
        json.dumps({"seed": GOLDEN_SEED, "records": records}).encode(), dtype=np.uint8
    )
    return arrays


def load_golden(path: Path) -> tuple[dict, list[dict]]:
    with np.load(path, allow_pickle=False) as archive:
        header = json.loads(bytes(archive["__header__"].tobytes()).decode())
        arrays = {name: archive[name] for name in archive.files if name != "__header__"}
    return arrays, header["records"]


@pytest.mark.parametrize("name", sorted(CASES))
def test_golden_labels(name, update_golden):
    path = golden_path(name)
    current = compute_case(name)
    if update_golden:
        GOLDEN_DIR.mkdir(exist_ok=True)
        np.savez_compressed(path, **current)
        pytest.skip(f"golden fixture {path.name} regenerated")
    assert path.is_file(), (
        f"missing golden fixture {path}; run "
        f"`python -m pytest tests/test_golden.py --update-golden` and commit it"
    )
    golden_arrays, golden_records = load_golden(path)

    np.testing.assert_array_equal(current["density"], golden_arrays["density"])
    for i, record in enumerate(golden_records):
        ez, golden_ez = current[f"ez_{i}"], golden_arrays[f"ez_{i}"]
        assert ez.shape == golden_ez.shape
        drift = np.linalg.norm(ez - golden_ez) / np.linalg.norm(golden_ez)
        assert drift < FIELD_RTOL, f"field drift {drift:.2e} on spec {i}"

        grad = current[f"adjoint_gradient_{i}"]
        golden_grad = golden_arrays[f"adjoint_gradient_{i}"]
        scale = max(np.abs(golden_grad).max(), 1e-30)
        np.testing.assert_allclose(
            grad, golden_grad, atol=FIELD_RTOL * scale,
            err_msg=f"adjoint-gradient drift on spec {i}",
        )

        header = json.loads(
            bytes(np.asarray(current["__header__"]).tobytes()).decode()
        )
        got = header["records"][i]
        assert got["wavelength"] == record["wavelength"]
        assert set(got["transmissions"]) == set(record["transmissions"])
        for port, value in record["transmissions"].items():
            assert got["transmissions"][port] == pytest.approx(value, abs=SCALAR_ATOL)
        for key in ("figure_of_merit", "objective_value", "maxwell_residual"):
            assert got[key] == pytest.approx(record[key], abs=SCALAR_ATOL), key
