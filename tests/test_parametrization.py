"""Tests for design parametrizations, differentiable transforms and pattern analysis."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.autograd import Tensor, check_gradient
from repro.parametrization import (
    BinarizationProjection,
    BlurTransform,
    DensityParametrization,
    LevelSetParametrization,
    MinimumFeatureSizeTransform,
    SymmetryTransform,
    TransformPipeline,
    binarization_level,
    minimum_feature_size,
)
from repro.parametrization.analysis import solid_fraction

densities = hnp.arrays(np.float64, (8, 9), elements=st.floats(0.0, 1.0))


class TestParametrizations:
    def test_density_range(self):
        param = DensityParametrization((4, 4))
        rho = param(Tensor(np.random.default_rng(0).normal(size=(4, 4)) * 10))
        assert rho.data.min() > 0.0 and rho.data.max() < 1.0

    def test_density_initial_theta_roundtrip(self):
        param = DensityParametrization((5, 5))
        target = np.random.default_rng(0).uniform(0.1, 0.9, (5, 5))
        theta = param.initial_theta(target)
        np.testing.assert_allclose(param(Tensor(theta)).data, target, atol=1e-6)

    def test_levelset_initial_theta_roundtrip(self):
        param = LevelSetParametrization((5, 5), interface_width=0.3)
        target = np.random.default_rng(1).uniform(0.1, 0.9, (5, 5))
        theta = param.initial_theta(target)
        np.testing.assert_allclose(param(Tensor(theta)).data, target, atol=1e-6)

    def test_levelset_circles_init(self):
        param = LevelSetParametrization((20, 20))
        phi = param.circles_init(num_circles=3, radius_cells=4.0, rng=0)
        rho = param(Tensor(phi)).data
        assert rho.max() > 0.6 and rho.min() < 0.4

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            DensityParametrization((4, 4))(Tensor(np.zeros((3, 3))))
        with pytest.raises(ValueError):
            DensityParametrization((4,))
        with pytest.raises(ValueError):
            LevelSetParametrization((4, 4), interface_width=0.0)

    def test_parametrization_is_differentiable(self):
        param = DensityParametrization((4, 4))
        theta = Tensor(np.random.default_rng(0).normal(size=(4, 4)), requires_grad=True)
        assert check_gradient(lambda t: param(t), [theta]) < 1e-5


class TestTransforms:
    @given(densities)
    @settings(max_examples=15, deadline=None)
    def test_blur_preserves_range(self, density):
        out = BlurTransform(radius_cells=2.0)(Tensor(density)).data
        assert out.min() >= -1e-9 and out.max() <= 1.0 + 1e-9

    def test_blur_smooths_checkerboard(self):
        checker = np.indices((10, 10)).sum(axis=0) % 2
        out = BlurTransform(radius_cells=2.0)(Tensor(checker.astype(float))).data
        assert out.std() < checker.std()

    def test_blur_gradient(self):
        x = Tensor(np.random.default_rng(0).uniform(0, 1, (6, 6)), requires_grad=True)
        assert check_gradient(lambda x: BlurTransform(1.5)(x), [x]) < 1e-5

    @given(densities, st.floats(2.0, 30.0))
    @settings(max_examples=15, deadline=None)
    def test_projection_range_and_monotonicity(self, density, beta):
        projection = BinarizationProjection(beta=beta)
        out = projection(Tensor(density)).data
        assert out.min() >= -1e-9 and out.max() <= 1.0 + 1e-9
        # Monotone in the input.
        shifted = projection(Tensor(np.clip(density + 0.05, 0, 1))).data
        assert (shifted - out).min() >= -1e-9

    def test_projection_sharpens(self):
        density = np.array([[0.35, 0.65]])
        soft = BinarizationProjection(beta=2.0)(Tensor(density)).data
        hard = BinarizationProjection(beta=30.0)(Tensor(density)).data
        assert binarization_level(hard) > binarization_level(soft)

    def test_projection_fixed_points(self):
        projection = BinarizationProjection(beta=10.0, eta=0.5)
        out = projection(Tensor(np.array([[0.0, 0.5, 1.0]]))).data
        assert out[0, 0] == pytest.approx(0.0, abs=1e-6)
        assert out[0, 1] == pytest.approx(0.5, abs=0.05)
        assert out[0, 2] == pytest.approx(1.0, abs=1e-6)

    def test_projection_gradient(self):
        x = Tensor(np.random.default_rng(0).uniform(0, 1, (5, 5)), requires_grad=True)
        assert check_gradient(lambda x: BinarizationProjection(beta=6.0)(x), [x]) < 1e-4

    def test_projection_with_beta(self):
        proj = BinarizationProjection(beta=4.0, eta=0.4)
        stronger = proj.with_beta(16.0)
        assert stronger.beta == 16.0 and stronger.eta == 0.4

    @pytest.mark.parametrize("axis", ["x", "y", "both"])
    def test_symmetry_enforced(self, axis):
        rng = np.random.default_rng(0)
        out = SymmetryTransform(axis=axis)(Tensor(rng.uniform(0, 1, (8, 8)))).data
        if axis in ("x", "both"):
            np.testing.assert_allclose(out, np.flip(out, axis=0), atol=1e-12)
        if axis in ("y", "both"):
            np.testing.assert_allclose(out, np.flip(out, axis=1), atol=1e-12)

    def test_symmetry_idempotent(self):
        rng = np.random.default_rng(1)
        transform = SymmetryTransform(axis="x")
        once = transform(Tensor(rng.uniform(0, 1, (6, 6)))).data
        twice = transform(Tensor(once)).data
        np.testing.assert_allclose(once, twice, atol=1e-12)

    def test_symmetry_gradient(self):
        x = Tensor(np.random.default_rng(0).uniform(0, 1, (6, 6)), requires_grad=True)
        assert check_gradient(lambda x: SymmetryTransform("both")(x), [x]) < 1e-6

    def test_mfs_transform_removes_small_features(self):
        pattern = np.zeros((15, 15))
        pattern[7, 7] = 1.0  # single-pixel feature
        out = MinimumFeatureSizeTransform(mfs_cells=4.0)(Tensor(pattern)).data
        assert out.max() < 0.5

    def test_mfs_transform_keeps_large_features(self):
        pattern = np.zeros((15, 15))
        pattern[4:11, 4:11] = 1.0
        out = MinimumFeatureSizeTransform(mfs_cells=3.0)(Tensor(pattern)).data
        assert out[7, 7] > 0.9

    def test_pipeline_composition_and_gradient(self):
        pipeline = TransformPipeline(
            [BlurTransform(1.5), SymmetryTransform("y"), BinarizationProjection(beta=6.0)]
        )
        assert len(pipeline) == 3
        x = Tensor(np.random.default_rng(0).uniform(0, 1, (6, 6)), requires_grad=True)
        assert check_gradient(lambda x: pipeline(x), [x]) < 1e-4

    def test_pipeline_replace(self):
        pipeline = TransformPipeline([BinarizationProjection(beta=4.0)])
        pipeline.replace(0, BinarizationProjection(beta=20.0))
        assert pipeline.transforms[0].beta == 20.0

    def test_empty_pipeline_is_identity(self):
        x = np.random.default_rng(0).uniform(0, 1, (4, 4))
        np.testing.assert_allclose(TransformPipeline()(Tensor(x)).data, x)

    def test_transform_rejects_non_2d(self):
        with pytest.raises(ValueError):
            BlurTransform(1.0)(Tensor(np.zeros((2, 3, 4))))

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            BlurTransform(0.0)
        with pytest.raises(ValueError):
            BinarizationProjection(beta=-1.0)
        with pytest.raises(ValueError):
            BinarizationProjection(beta=1.0, eta=1.5)
        with pytest.raises(ValueError):
            SymmetryTransform("diagonal")
        with pytest.raises(ValueError):
            MinimumFeatureSizeTransform(mfs_cells=0.0)


class TestAnalysis:
    def test_binarization_level_extremes(self):
        assert binarization_level(np.array([0.0, 1.0, 1.0, 0.0])) == pytest.approx(1.0)
        assert binarization_level(np.full(10, 0.5)) == pytest.approx(0.0)

    def test_minimum_feature_size_of_stripe(self):
        pattern = np.zeros((20, 20))
        pattern[:, 8:12] = 1.0  # 4-cell-wide stripe
        assert 3.0 <= minimum_feature_size(pattern) <= 6.0

    def test_minimum_feature_size_uniform_spans_region(self):
        assert minimum_feature_size(np.ones((10, 10))) >= 8.0

    def test_single_pixel_feature_is_small(self):
        pattern = np.zeros((20, 20))
        pattern[10, 10] = 1.0
        assert minimum_feature_size(pattern) <= 2.0

    def test_solid_fraction(self):
        pattern = np.zeros((10, 10))
        pattern[:5] = 1.0
        assert solid_fraction(pattern) == pytest.approx(0.5)
