"""Tests for the solve service and the cross-process factorization store.

Covers the serving seam end to end: artifact roundtrips and every
corruption/failure path of :class:`FileFactorizationStore`, the cache
fall-through (fresh cache + warm store solves without factorizing), recycled
reference adoption, request coalescing bit-identity, the engine-shaped
service front-end through :class:`Simulation`, the end-to-end result cache,
and the pool-initializer plumbing the generator uses to share a store across
worker processes.
"""

from __future__ import annotations

import concurrent.futures
import os
import pathlib
import threading
import time

import numpy as np
import pytest
import scipy.sparse.linalg as spla

from repro import constants
from repro.fdfd import Grid, Port, Simulation
from repro.fdfd.engine import (
    CountingEngine,
    DirectEngine,
    FactorizationCache,
    RecycledEngine,
    RefinedEngine,
    assemble_system_matrix,
    available_engines,
    eps_fingerprint,
    make_engine,
    resolve_engine,
)
from repro.fdfd.simulation import clear_result_cache, result_cache_stats
from repro.service import (
    FileFactorizationStore,
    ServiceEngine,
    SolveService,
    SolveTimeoutError,
    default_store_budget_bytes,
)
from repro.service.cache_store import StoredFactorization
from repro.utils.parallel import run_tasks

OMEGA = constants.wavelength_to_omega(1.55)


def _tiny_waveguide(dl=0.1, domain=2.4, width=0.48):
    npml = 8
    n = int(domain / dl) + 2 * npml
    grid = Grid(nx=n, ny=n, dl=dl, npml=npml)
    eps = np.full(grid.shape, constants.EPS_SIO2)
    y = grid.y_coords()
    eps[:, np.abs(y - grid.size_y / 2) <= width / 2] = constants.EPS_SI
    margin = (npml + 3) * dl
    ports = [
        Port("in", "x", position=margin, center=grid.size_y / 2, span=3 * width, direction=+1),
        Port("out", "x", position=grid.size_x - margin, center=grid.size_y / 2, span=3 * width, direction=+1),
    ]
    return grid, eps, ports


def _rhs_stack(grid, count, seed=0):
    rng = np.random.default_rng(seed)
    rhs = np.zeros((count, *grid.shape), dtype=complex)
    for index in range(count):
        ix = rng.integers(grid.npml + 2, grid.nx - grid.npml - 2)
        iy = rng.integers(grid.npml + 2, grid.ny - grid.npml - 2)
        rhs[index, ix, iy] = 1j * OMEGA
    return rhs


def _norm_close(a, b, rtol=1e-4):
    scale = max(float(np.linalg.norm(b)), 1e-300)
    return float(np.linalg.norm(np.asarray(a) - np.asarray(b))) <= rtol * scale


@pytest.fixture()
def tiny_problem():
    grid, eps, _ = _tiny_waveguide()
    return grid, eps, eps_fingerprint(eps)


# --------------------------------------------------------------------------- #
# artifact store
# --------------------------------------------------------------------------- #
class TestFileFactorizationStore:
    def _published(self, tmp_path, grid, eps, fingerprint, **store_kwargs):
        store = FileFactorizationStore(tmp_path, **store_kwargs)
        lu = spla.splu(assemble_system_matrix(grid, OMEGA, eps).tocsc())
        assert store.publish(grid, OMEGA, fingerprint, "direct", lu)
        return store, lu

    def test_roundtrip_reproduces_solves(self, tmp_path, tiny_problem):
        grid, eps, fingerprint = tiny_problem
        store, lu = self._published(tmp_path, grid, eps, fingerprint)
        entry = store.load(grid, OMEGA, fingerprint, "direct")
        assert isinstance(entry, StoredFactorization)
        assert entry.from_store
        rhs = _rhs_stack(grid, 2)
        for b in rhs:
            assert _norm_close(entry.solve(b.ravel()), lu.solve(b.ravel()))
        # Stacked RHS solve matches per-column solves.
        flat = rhs.reshape(2, -1).T
        stacked = entry.solve(flat)
        for col in range(2):
            np.testing.assert_array_equal(stacked[:, col], entry.solve(flat[:, col]))
        assert store.stats.hits == 1
        assert store.stats.publishes == 1
        assert len(store) == 1

    def test_missing_artifact_is_a_miss(self, tmp_path, tiny_problem):
        grid, _, fingerprint = tiny_problem
        store = FileFactorizationStore(tmp_path)
        assert store.load(grid, OMEGA, fingerprint, "direct") is None
        assert store.stats.misses == 1
        assert store.stats.failures == 0

    def test_corrupt_header_is_a_miss(self, tmp_path, tiny_problem):
        grid, eps, fingerprint = tiny_problem
        store, _ = self._published(tmp_path, grid, eps, fingerprint)
        path = store.path_for(grid, OMEGA, fingerprint, "direct")
        path.write_bytes(b"not an artifact at all")
        assert store.load(grid, OMEGA, fingerprint, "direct") is None
        assert store.stats.failures == 1

    def test_truncated_artifact_is_a_miss(self, tmp_path, tiny_problem):
        grid, eps, fingerprint = tiny_problem
        store, _ = self._published(tmp_path, grid, eps, fingerprint)
        path = store.path_for(grid, OMEGA, fingerprint, "direct")
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])
        assert store.load(grid, OMEGA, fingerprint, "direct") is None
        assert store.stats.failures == 1

    @pytest.mark.filterwarnings("ignore::RuntimeWarning")  # scrambled factors overflow
    def test_tampered_payload_fails_the_probe(self, tmp_path, tiny_problem):
        """Structurally valid but numerically wrong factors are rejected."""
        grid, eps, fingerprint = tiny_problem
        store, _ = self._published(tmp_path, grid, eps, fingerprint)
        path = store.path_for(grid, OMEGA, fingerprint, "direct")
        blob = bytearray(path.read_bytes())
        # Scramble a slab of the numeric payload without touching the header.
        start = len(blob) // 2
        blob[start : start + 4096] = os.urandom(4096)
        path.write_bytes(bytes(blob))
        assert store.load(grid, OMEGA, fingerprint, "direct") is None
        assert store.stats.failures == 1

    def test_engine_falls_back_to_fresh_factorization(self, tmp_path, tiny_problem):
        """A corrupt artifact never poisons results — it costs one rebuild."""
        grid, eps, fingerprint = tiny_problem
        store, _ = self._published(tmp_path, grid, eps, fingerprint)
        path = store.path_for(grid, OMEGA, fingerprint, "direct")
        path.write_bytes(b"garbage")
        rhs = _rhs_stack(grid, 2)
        reference = DirectEngine(cache=FactorizationCache()).solve_batch(
            grid, OMEGA, eps, rhs, fingerprint=fingerprint
        )
        cache = FactorizationCache(store=store)
        result = DirectEngine(cache=cache).solve_batch(
            grid, OMEGA, eps, rhs, fingerprint=fingerprint
        )
        np.testing.assert_array_equal(result, reference)
        assert cache.stats.store_misses == 1
        assert cache.stats.factorizations == 1
        # The rebuild re-published a good artifact over the corrupt one.
        assert store.load(grid, OMEGA, fingerprint, "direct") is not None

    def test_store_entries_never_republished(self, tmp_path, tiny_problem):
        grid, eps, fingerprint = tiny_problem
        store, _ = self._published(tmp_path, grid, eps, fingerprint)
        entry = store.load(grid, OMEGA, fingerprint, "direct")
        assert store.publish(grid, OMEGA, fingerprint, "direct", entry) is False
        assert store.stats.publishes == 1

    def test_non_superlu_entries_declined(self, tmp_path, tiny_problem):
        grid, _, fingerprint = tiny_problem
        store = FileFactorizationStore(tmp_path)
        assert store.publish(grid, OMEGA, fingerprint, "direct", object()) is False
        assert store.stats.declined == 1
        assert len(store) == 0

    def test_concurrent_writers_do_not_clobber(self, tmp_path, tiny_problem):
        """Atomic publish: racing writers all succeed, the artifact stays valid."""
        grid, eps, fingerprint = tiny_problem
        store = FileFactorizationStore(tmp_path)
        lu = spla.splu(assemble_system_matrix(grid, OMEGA, eps).tocsc())
        barrier = threading.Barrier(4)
        outcomes = []

        def writer():
            barrier.wait()
            outcomes.append(store.publish(grid, OMEGA, fingerprint, "direct", lu))

        threads = [threading.Thread(target=writer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert outcomes == [True] * 4
        assert len(store) == 1
        entry = store.load(grid, OMEGA, fingerprint, "direct")
        assert entry is not None
        b = _rhs_stack(grid, 1)[0].ravel()
        assert _norm_close(entry.solve(b), lu.solve(b))
        # No temporary files left behind.
        assert not list(store.directory.glob(".*.tmp-*"))

    def test_budget_prunes_oldest(self, tmp_path, tiny_problem):
        grid, eps, fingerprint = tiny_problem
        eps_b = eps * 1.01
        fingerprint_b = eps_fingerprint(eps_b)
        lu_a = spla.splu(assemble_system_matrix(grid, OMEGA, eps).tocsc())
        lu_b = spla.splu(assemble_system_matrix(grid, OMEGA, eps_b).tocsc())
        probe = FileFactorizationStore(tmp_path / "probe")
        probe.publish(grid, OMEGA, fingerprint, "direct", lu_a)
        artifact_bytes = probe.stats.bytes_written

        store = FileFactorizationStore(tmp_path / "real", budget_bytes=int(artifact_bytes * 1.5))
        store.publish(grid, OMEGA, fingerprint, "direct", lu_a)
        time.sleep(0.01)  # distinct mtimes so pruning order is deterministic
        store.publish(grid, OMEGA, fingerprint_b, "direct", lu_b)
        assert len(store) == 1
        assert store.stats.pruned == 1
        assert store.load(grid, OMEGA, fingerprint_b, "direct") is not None
        assert store.load(grid, OMEGA, fingerprint, "direct") is None

    def test_precision_keyed_artifacts_coexist(self, tmp_path, tiny_problem):
        """fp32 and fp64 factors of one operator persist as distinct artifacts."""
        grid, eps, fingerprint = tiny_problem
        store = FileFactorizationStore(tmp_path)
        rhs = _rhs_stack(grid, 1)
        for precision in ("fp32", "fp64"):
            cache = FactorizationCache(store=store)
            RefinedEngine(precision=precision, cache=cache).solve_batch(
                grid, OMEGA, eps, rhs, fingerprint=fingerprint
            )
        assert store.stats.publishes == 2
        assert len(store) == 2  # dtype-suffixed tags: no clobbering
        for tag, dtype_name in (("refined-complex64", "complex64"), ("refined", "complex128")):
            path = store.path_for(grid, OMEGA, fingerprint, tag)
            assert path.exists()
            assert store._read_header(path)["dtype"] == dtype_name

    def test_wrong_precision_warm_store_is_a_miss(self, tmp_path, tiny_problem):
        grid, eps, fingerprint = tiny_problem
        store = FileFactorizationStore(tmp_path)
        rhs = _rhs_stack(grid, 1)
        warm = FactorizationCache(store=store)
        RefinedEngine(precision="fp32", cache=warm).solve_batch(
            grid, OMEGA, eps, rhs, fingerprint=fingerprint
        )
        assert warm.stats.factorizations == 1

        # fp64 must not adopt the fp32 artifact: store miss, fresh build.
        cold64 = FactorizationCache(store=store)
        reference = RefinedEngine(precision="fp64", cache=cold64).solve_batch(
            grid, OMEGA, eps, rhs, fingerprint=fingerprint
        )
        assert cold64.stats.store_misses == 1
        assert cold64.stats.factorizations == 1

        # Matching precision maps the artifact without factorizing.
        cold32 = FactorizationCache(store=store)
        result = RefinedEngine(precision="fp32", cache=cold32).solve_batch(
            grid, OMEGA, eps, rhs, fingerprint=fingerprint
        )
        assert cold32.stats.store_hits == 1
        assert cold32.stats.factorizations == 0
        assert _norm_close(result, reference, rtol=1e-7)

    def _three_artifacts(self, tmp_path, grid, eps):
        """Three same-sized artifacts with strictly increasing mtimes."""
        store = FileFactorizationStore(tmp_path)
        paths = []
        for scale in (1.0, 1.01, 1.02):
            eps_k = eps * scale
            fingerprint_k = eps_fingerprint(eps_k)
            lu = spla.splu(assemble_system_matrix(grid, OMEGA, eps_k).tocsc())
            assert store.publish(grid, OMEGA, fingerprint_k, "direct", lu)
            paths.append(store.path_for(grid, OMEGA, fingerprint_k, "direct"))
            time.sleep(0.01)
        return store, paths  # oldest first

    def test_prune_tolerates_files_vanishing_mid_scan(
        self, tmp_path, tiny_problem, monkeypatch
    ):
        """A file deleted between glob and stat never aborts the prune pass.

        Regression: the scan used to stat inside one list comprehension, so a
        concurrent pruner deleting any artifact mid-scan raised out of the
        whole pass and left the directory over budget indefinitely.
        """
        grid, eps, _ = tiny_problem
        store, paths = self._three_artifacts(tmp_path, grid, eps)
        oldest, middle, newest = paths
        sizes = {path: path.stat().st_size for path in paths}
        # Room for one and a half artifacts: the prune must delete `oldest`
        # (after `newest` vanishes, reclaiming its bytes for us).
        store.budget_bytes = sizes[middle] + sizes[newest] // 2

        real_stat = pathlib.Path.stat
        state = {"fired": False}

        def racing_stat(self, **kwargs):
            if not state["fired"] and self == newest:
                state["fired"] = True
                os.unlink(self)  # a concurrent pruner wins the stat race
            return real_stat(self, **kwargs)

        monkeypatch.setattr(pathlib.Path, "stat", racing_stat)
        store._prune()
        monkeypatch.undo()

        assert state["fired"]
        assert not oldest.exists()  # the pass continued past the vanished file
        assert middle.exists()
        assert store.stats.pruned == 1
        assert len(store) == 1

    def test_prune_counts_bytes_reclaimed_by_concurrent_pruner(
        self, tmp_path, tiny_problem, monkeypatch
    ):
        """A file deleted between stat and unlink still counts as reclaimed.

        Regression: losing the unlink race used to leave the running total
        unadjusted, so the pass kept deleting newer artifacts it should have
        kept (the budget was already met by the concurrent deletion).
        """
        grid, eps, _ = tiny_problem
        store, paths = self._three_artifacts(tmp_path, grid, eps)
        oldest, middle, newest = paths
        sizes = {path: path.stat().st_size for path in paths}
        # Room for two and a half artifacts: deleting `oldest` alone meets
        # the budget; anything more is an over-prune.
        store.budget_bytes = sizes[middle] + sizes[newest] + sizes[oldest] // 2

        real_unlink = pathlib.Path.unlink
        state = {"fired": False}

        def racing_unlink(self, **kwargs):
            if not state["fired"] and self == oldest:
                state["fired"] = True
                os.unlink(self)  # a concurrent pruner wins the unlink race
            return real_unlink(self, **kwargs)

        monkeypatch.setattr(pathlib.Path, "unlink", racing_unlink)
        store._prune()
        monkeypatch.undo()

        assert state["fired"]
        assert middle.exists() and newest.exists()  # no over-prune
        assert len(store) == 2

    def test_load_tolerates_artifact_pruned_mid_read(
        self, tmp_path, tiny_problem, monkeypatch
    ):
        """An artifact vanishing mid-load is a plain miss, never a crash."""
        grid, eps, fingerprint = tiny_problem
        store, _ = self._published(tmp_path, grid, eps, fingerprint)
        real_read_header = FileFactorizationStore._read_header

        def delete_after_header(self, path):
            header = real_read_header(self, path)
            path.unlink()  # a concurrent pruner reclaims the file mid-load
            return header

        monkeypatch.setattr(FileFactorizationStore, "_read_header", delete_after_header)
        assert store.load(grid, OMEGA, fingerprint, "direct") is None
        assert store.stats.misses == 1
        assert store.stats.failures == 0  # a vanished file is not corruption

    def test_budget_env_knob(self, monkeypatch):
        monkeypatch.setenv("REPRO_FACTORIZATION_STORE_BYTES", "12345")
        assert default_store_budget_bytes() == 12345
        monkeypatch.setenv("REPRO_FACTORIZATION_STORE_BYTES", "0")
        assert default_store_budget_bytes() == 0
        monkeypatch.delenv("REPRO_FACTORIZATION_STORE_BYTES")
        assert default_store_budget_bytes() == 1 << 30

    def test_list_extras_newest_first(self, tmp_path, tiny_problem):
        grid, eps, fingerprint = tiny_problem
        eps_b = eps * 1.01
        fingerprint_b = eps_fingerprint(eps_b)
        store = FileFactorizationStore(tmp_path)
        lu_a = spla.splu(assemble_system_matrix(grid, OMEGA, eps).tocsc())
        lu_b = spla.splu(assemble_system_matrix(grid, OMEGA, eps_b).tocsc())
        store.publish(grid, OMEGA, fingerprint, "recycled", lu_a, extras={"eps": eps})
        time.sleep(0.01)
        store.publish(grid, OMEGA, fingerprint_b, "recycled", lu_b, extras={"eps": eps_b})
        extras = store.list_extras(grid, OMEGA, tag="recycled", name="eps")
        assert [fp for fp, _ in extras] == [fingerprint_b, fingerprint]
        np.testing.assert_array_equal(extras[0][1].reshape(grid.shape), eps_b)
        limited = store.list_extras(grid, OMEGA, tag="recycled", name="eps", limit=1)
        assert len(limited) == 1 and limited[0][0] == fingerprint_b
        # Different tag: nothing.
        assert store.list_extras(grid, OMEGA, tag="direct", name="eps") == []


# --------------------------------------------------------------------------- #
# cache fall-through
# --------------------------------------------------------------------------- #
class TestCacheFallThrough:
    def test_warm_store_skips_factorization(self, tmp_path, tiny_problem):
        """A fresh cache with a warm store solves without ever factorizing."""
        grid, eps, fingerprint = tiny_problem
        rhs = _rhs_stack(grid, 2)
        store = FileFactorizationStore(tmp_path)
        publisher_cache = FactorizationCache(store=store)
        cold = DirectEngine(cache=publisher_cache).solve_batch(
            grid, OMEGA, eps, rhs, fingerprint=fingerprint
        )
        assert store.stats.publishes == 1

        fresh_cache = FactorizationCache(store=store)
        warm = DirectEngine(cache=fresh_cache).solve_batch(
            grid, OMEGA, eps, rhs, fingerprint=fingerprint
        )
        assert fresh_cache.stats.factorizations == 0
        assert fresh_cache.stats.store_hits == 1
        assert _norm_close(warm, cold)

    def test_env_var_attaches_store(self, tmp_path, monkeypatch, tiny_problem):
        grid, eps, fingerprint = tiny_problem
        monkeypatch.setenv("REPRO_FACTORIZATION_STORE", str(tmp_path))
        rhs = _rhs_stack(grid, 1)
        cache = FactorizationCache()
        DirectEngine(cache=cache).solve_batch(grid, OMEGA, eps, rhs, fingerprint=fingerprint)
        assert cache.store is not None
        assert len(list(tmp_path.glob("*.fact"))) == 1

        second = FactorizationCache()
        DirectEngine(cache=second).solve_batch(grid, OMEGA, eps, rhs, fingerprint=fingerprint)
        assert second.stats.store_hits == 1
        assert second.stats.factorizations == 0

        monkeypatch.delenv("REPRO_FACTORIZATION_STORE")
        assert cache.store is None

    def test_attach_store_wins_over_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_FACTORIZATION_STORE", str(tmp_path / "env"))
        explicit = FileFactorizationStore(tmp_path / "explicit")
        cache = FactorizationCache()
        cache.attach_store(explicit)
        assert cache.store is explicit
        cache.attach_store(None)
        assert str(cache.store.directory) == str(tmp_path / "env")

    def test_cache_is_thread_safe_under_churn(self, tiny_problem):
        """Concurrent get_or_build/evict/len never corrupt the bookkeeping."""
        grid, eps, fingerprint = tiny_problem
        cache = FactorizationCache(maxsize=4)
        errors = []

        def churn(seed):
            try:
                rng = np.random.default_rng(seed)
                for i in range(25):
                    fp = f"{fingerprint}-{rng.integers(6)}"
                    cache.get_or_build(grid, OMEGA, fp, build=lambda: object())
                    if i % 7 == 0:
                        cache.evict(grid, OMEGA, fp)
                    len(cache)
            except Exception as error:  # pragma: no cover - the failure signal
                errors.append(error)

        threads = [threading.Thread(target=churn, args=(s,)) for s in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(cache) <= 4
        stats = cache.stats.as_dict()
        assert stats["misses"] >= stats["factorizations"]

    def test_recycled_adopts_references_from_store(self, tmp_path, tiny_problem):
        """A fresh recycled engine starts exact-solving from published references."""
        grid, eps, fingerprint = tiny_problem
        rhs = _rhs_stack(grid, 1)
        store = FileFactorizationStore(tmp_path)
        publisher = RecycledEngine(cache=FactorizationCache(store=store))
        reference = publisher.solve_batch(grid, OMEGA, eps, rhs, fingerprint=fingerprint)
        assert publisher.stats.factorizations == 1

        fresh = RecycledEngine(cache=FactorizationCache(store=store))
        assert fresh.warm_from_store(grid, OMEGA) == 1
        result = fresh.solve_batch(grid, OMEGA, eps, rhs, fingerprint=fingerprint)
        assert fresh.stats.factorizations == 0
        assert fresh.stats.exact_solves == 1
        assert _norm_close(result, reference)

    def test_warm_from_store_without_store(self, tiny_problem):
        grid, _, _ = tiny_problem
        engine = RecycledEngine(cache=FactorizationCache())
        assert engine.warm_from_store(grid, OMEGA) == 0


# --------------------------------------------------------------------------- #
# solve service
# --------------------------------------------------------------------------- #
class TestSolveService:
    def test_coalesced_results_bit_identical_to_serial(self, tiny_problem):
        grid, eps, fingerprint = tiny_problem
        rhs = _rhs_stack(grid, 6)
        serial = DirectEngine(cache=FactorizationCache()).solve_batch(
            grid, OMEGA, eps, rhs, fingerprint=fingerprint
        )
        with SolveService(
            engine=DirectEngine(cache=FactorizationCache()), window=0.02
        ) as service:
            futures = [
                service.submit(grid, OMEGA, eps, rhs[i], fingerprint=fingerprint)
                for i in range(6)
            ]
            results = [future.result(timeout=30) for future in futures]
            assert service.engine.cache.stats.factorizations == 1
            assert service.stats.coalesced_rhs >= 1
        for i in range(6):
            np.testing.assert_array_equal(results[i], serial[i])

    def test_requests_group_by_operator(self, tiny_problem):
        grid, eps, fingerprint = tiny_problem
        eps_b = eps * 1.01
        rhs = _rhs_stack(grid, 1)[0]
        with SolveService(
            engine=DirectEngine(cache=FactorizationCache()), window=0.02
        ) as service:
            future_a = service.submit(grid, OMEGA, eps, rhs, fingerprint=fingerprint)
            future_b = service.submit(grid, OMEGA, eps_b, rhs)
            a, b = future_a.result(timeout=30), future_b.result(timeout=30)
            assert service.stats.batches == 2
            assert service.engine.cache.stats.factorizations == 2
        assert not np.array_equal(a, b)

    def test_max_batch_flushes_without_waiting(self, tiny_problem):
        grid, eps, fingerprint = tiny_problem
        rhs = _rhs_stack(grid, 2)
        # The window is far longer than the timeout: only the size trigger
        # can flush in time.
        with SolveService(
            engine=DirectEngine(cache=FactorizationCache()), window=60.0, max_batch=2
        ) as service:
            futures = [
                service.submit(grid, OMEGA, eps, rhs[i], fingerprint=fingerprint)
                for i in range(2)
            ]
            for future in futures:
                future.result(timeout=30)
            assert service.stats.full_flushes == 1
            assert service.stats.max_batch_seen == 2

    def test_stacked_rhs_keeps_shape(self, tiny_problem):
        grid, eps, fingerprint = tiny_problem
        rhs = _rhs_stack(grid, 3)
        with SolveService(engine=DirectEngine(cache=FactorizationCache())) as service:
            stacked = service.solve(grid, OMEGA, eps, rhs, fingerprint=fingerprint)
            single = service.solve(grid, OMEGA, eps, rhs[0], fingerprint=fingerprint)
        assert stacked.shape == rhs.shape
        assert single.shape == grid.shape
        np.testing.assert_array_equal(stacked[0], single)

    def test_engine_errors_propagate_to_every_waiter(self, tiny_problem):
        grid, eps, fingerprint = tiny_problem

        class Exploding(DirectEngine):
            def solve_batch(self, *args, **kwargs):
                raise RuntimeError("boom")

        rhs = _rhs_stack(grid, 2)
        with SolveService(engine=Exploding(cache=FactorizationCache()), window=0.02) as service:
            futures = [
                service.submit(grid, OMEGA, eps, rhs[i], fingerprint=fingerprint)
                for i in range(2)
            ]
            for future in futures:
                with pytest.raises(RuntimeError, match="boom"):
                    future.result(timeout=30)

    def test_bad_rhs_shape_rejected(self, tiny_problem):
        grid, eps, _ = tiny_problem
        with SolveService(engine=DirectEngine(cache=FactorizationCache())) as service:
            with pytest.raises(ValueError):
                service.submit(grid, OMEGA, eps, np.zeros((3,), dtype=complex))

    def test_close_cancels_pending_and_rejects_new(self, tiny_problem):
        grid, eps, fingerprint = tiny_problem
        rhs = _rhs_stack(grid, 1)[0]
        service = SolveService(
            engine=DirectEngine(cache=FactorizationCache()), window=60.0
        )
        pending = service.submit(grid, OMEGA, eps, rhs, fingerprint=fingerprint)
        service.close()
        # A queued-but-unflushed request resolves by cancellation, never a hang.
        with pytest.raises(concurrent.futures.CancelledError):
            pending.result(timeout=10)
        with pytest.raises(RuntimeError):
            service.submit(grid, OMEGA, eps, rhs)
        service.close()  # idempotent

    def test_per_request_engine_override(self, tiny_problem):
        grid, eps, fingerprint = tiny_problem
        rhs = _rhs_stack(grid, 1)[0]
        counting = CountingEngine()
        with SolveService(engine=DirectEngine(cache=FactorizationCache())) as service:
            service.solve(grid, OMEGA, eps, rhs, fingerprint=fingerprint, engine=counting)
        assert counting.solve_log == [(fingerprint, 1)]


# --------------------------------------------------------------------------- #
# the service as an engine
# --------------------------------------------------------------------------- #
class TestServiceEngine:
    def test_registered_in_engine_registry(self):
        assert "service" in available_engines()
        assert isinstance(make_engine("service"), ServiceEngine)

    def test_as_engine_resolves(self, tiny_problem):
        with SolveService(engine=DirectEngine(cache=FactorizationCache())) as service:
            engine = resolve_engine(service.as_engine())
            assert isinstance(engine, ServiceEngine)
            assert engine.service is service
            # A SolveService itself duck-types as an engine via as_engine().
            assert resolve_engine(service).service is service

    def test_fidelity_signature_matches_backing_engine(self):
        backing = DirectEngine(cache=FactorizationCache())
        with SolveService(engine=backing) as service:
            assert service.as_engine().fidelity_signature == backing.fidelity_signature

    def test_simulation_through_service_matches_direct(self):
        grid, eps, ports = _tiny_waveguide()
        direct = Simulation(grid, eps, 1.55, ports, engine=DirectEngine(cache=FactorizationCache()))
        expected = direct.solve("in").transmissions["out"]
        with SolveService(engine=DirectEngine(cache=FactorizationCache())) as service:
            served = Simulation(grid, eps, 1.55, ports, engine=service.as_engine())
            assert served.solve("in").transmissions["out"] == pytest.approx(expected, rel=1e-9)

    def test_set_permittivity_still_evicts(self):
        grid, eps, ports = _tiny_waveguide()
        with SolveService(engine=DirectEngine(cache=FactorizationCache())) as service:
            sim = Simulation(grid, eps, 1.55, ports, engine=service.as_engine())
            sim.solve("in")
            cache = service.engine.cache
            assert len(cache) > 0
            sim.set_permittivity(eps * 1.01)
            sim.solve("in")
            # Old operator evicted; the new one factorized.
            assert cache.stats.factorizations == 2


# --------------------------------------------------------------------------- #
# end-to-end result cache
# --------------------------------------------------------------------------- #
class TestResultCache:
    def test_identical_query_served_from_cache(self):
        grid, eps, ports = _tiny_waveguide()
        counting = CountingEngine()
        sim = Simulation(grid, eps, 1.55, ports, engine=counting)
        first = sim.solve("in")
        calls = len(counting.solve_log)
        before = result_cache_stats()
        second = sim.solve("in")
        after = result_cache_stats()
        assert len(counting.solve_log) == calls  # engine never consulted
        assert after["hits"] == before["hits"] + 1
        assert second.transmissions == first.transmissions
        np.testing.assert_array_equal(second.ez, first.ez)

    def test_cached_results_are_mutation_safe(self):
        grid, eps, ports = _tiny_waveguide()
        sim = Simulation(grid, eps, 1.55, ports)
        first = sim.solve("in")
        pristine = first.ez.copy()
        first.ez[:] = 0
        first.fluxes["out"] = -1.0
        second = sim.solve("in")
        np.testing.assert_array_equal(second.ez, pristine)
        assert second.fluxes["out"] != -1.0

    def test_different_query_misses(self):
        grid, eps, ports = _tiny_waveguide()
        counting = CountingEngine()
        sim = Simulation(grid, eps, 1.55, ports, engine=counting)
        sim.solve("in")
        calls = len(counting.solve_log)
        sim.solve("out")  # different source port: genuinely new work
        assert len(counting.solve_log) > calls

    def test_permittivity_change_misses(self):
        grid, eps, ports = _tiny_waveguide()
        counting = CountingEngine()
        sim = Simulation(grid, eps, 1.55, ports, engine=counting)
        ez_before = sim.solve("in").ez
        calls = len(counting.solve_log)
        sim.set_permittivity(eps * 1.02)
        ez_after = sim.solve("in").ez
        assert len(counting.solve_log) > calls
        assert not np.array_equal(ez_after, ez_before)

    def test_size_knob_disables_cache(self, monkeypatch):
        monkeypatch.setenv("REPRO_RESULT_CACHE_SIZE", "0")
        grid, eps, ports = _tiny_waveguide()
        counting = CountingEngine()
        sim = Simulation(grid, eps, 1.55, ports, engine=counting)
        sim.solve("in")
        calls = len(counting.solve_log)
        sim.solve("in")
        assert len(counting.solve_log) > calls
        assert result_cache_stats()["size"] == 0

    def test_lru_bounded_by_size_knob(self, monkeypatch):
        monkeypatch.setenv("REPRO_RESULT_CACHE_SIZE", "1")
        clear_result_cache()
        grid, eps, ports = _tiny_waveguide()
        sim = Simulation(grid, eps, 1.55, ports)
        sim.solve("in")
        sim.solve("out")
        assert result_cache_stats()["size"] == 1

    def test_distinct_counting_engines_never_share_hits(self):
        """Per-instance fidelity tokens keep observing wrappers honest."""
        grid, eps, ports = _tiny_waveguide()
        first = CountingEngine()
        Simulation(grid, eps, 1.55, ports, engine=first).solve("in")
        second = CountingEngine()
        Simulation(grid, eps, 1.55, ports, engine=second).solve("in")
        assert second.solve_log  # not served from the first wrapper's entry


# --------------------------------------------------------------------------- #
# worker-pool plumbing
# --------------------------------------------------------------------------- #
def _read_marker(_task):
    return os.environ.get("REPRO_TEST_INIT_MARKER", "")


def _set_marker(value):
    os.environ["REPRO_TEST_INIT_MARKER"] = value


class TestRunTasksInitializer:
    def test_serial_path_runs_initializer_in_process(self, monkeypatch):
        monkeypatch.delenv("REPRO_TEST_INIT_MARKER", raising=False)
        results = run_tasks(
            _read_marker, [1, 2], workers=1, initializer=_set_marker, initargs=("ready",)
        )
        assert results == ["ready", "ready"]
        monkeypatch.delenv("REPRO_TEST_INIT_MARKER", raising=False)

    def test_pool_path_runs_initializer_per_worker(self, monkeypatch):
        monkeypatch.delenv("REPRO_TEST_INIT_MARKER", raising=False)
        results = run_tasks(
            _read_marker, [1, 2], workers=2, initializer=_set_marker, initargs=("ready",)
        )
        # Pool workers each ran the initializer; if the pool could not spawn,
        # the serial fallback ran it in-process — either way every task saw it.
        assert results == ["ready", "ready"]
        monkeypatch.delenv("REPRO_TEST_INIT_MARKER", raising=False)


class TestGeneratorStoreWiring:
    def test_generate_populates_the_store(self, tmp_path):
        from repro.data.generator import GeneratorConfig, DatasetGenerator
        from repro.fdfd.engine import default_factorization_cache

        store_dir = tmp_path / "store"
        config = GeneratorConfig(
            device_name="bending",
            strategy="random",
            num_designs=2,
            fidelities=("low",),
            with_gradient=False,
            seed=0,
            device_kwargs=dict(domain=2.4, design_size=1.2, dl=0.1),
            engine={"low": "direct"},
            workers=1,
            factorization_store=str(store_dir),
        )
        try:
            dataset = DatasetGenerator(config).generate()
        finally:
            # The serial path attached the store to the process-default cache.
            default_factorization_cache.attach_store(None)
        assert len(dataset) == 2
        assert len(list(store_dir.glob("*.fact"))) >= 1


# --------------------------------------------------------------------------- #
# request deadlines, batch retries, and artifact quarantine
# --------------------------------------------------------------------------- #
class _SlowEngine(DirectEngine):
    """Direct tier with an injected per-batch delay (tests deadlines)."""

    def __init__(self, delay, **kwargs):
        super().__init__(**kwargs)
        self._delay = delay

    def solve_batch(self, *args, **kwargs):
        time.sleep(self._delay)
        return super().solve_batch(*args, **kwargs)


class _FlakyEngine(DirectEngine):
    """Direct tier that raises on its first ``fail_times`` batches."""

    def __init__(self, fail_times, **kwargs):
        super().__init__(**kwargs)
        self._remaining = fail_times

    def solve_batch(self, *args, **kwargs):
        if self._remaining > 0:
            self._remaining -= 1
            raise RuntimeError("transient engine failure")
        return super().solve_batch(*args, **kwargs)


class TestServiceTimeouts:
    def test_timeout_fails_only_the_timed_out_request(self, tiny_problem):
        grid, eps, fingerprint = tiny_problem
        rhs = _rhs_stack(grid, 2)
        reference = DirectEngine(cache=FactorizationCache()).solve_batch(
            grid, OMEGA, eps, rhs, fingerprint=fingerprint
        )
        with SolveService(
            engine=_SlowEngine(1.0, cache=FactorizationCache()), window=0.02
        ) as service:
            # Both requests coalesce into one batch; only the one carrying a
            # deadline shorter than the engine delay may fail.
            impatient = service.submit(
                grid, OMEGA, eps, rhs[0], fingerprint=fingerprint, timeout=0.2
            )
            patient = service.submit(grid, OMEGA, eps, rhs[1], fingerprint=fingerprint)
            with pytest.raises(SolveTimeoutError) as excinfo:
                impatient.result(timeout=30)
            np.testing.assert_array_equal(patient.result(timeout=30), reference[1])
            assert service.stats.timeouts == 1
            assert service.stats.batches == 1  # sibling was never re-solved
        error = excinfo.value
        assert error.timeout == pytest.approx(0.2)
        signature, group_grid, omega, group_fingerprint = error.group
        assert group_fingerprint == fingerprint
        assert group_grid is grid and omega == pytest.approx(OMEGA)
        assert "timed out" in str(error)

    def test_service_level_default_timeout(self, tiny_problem):
        grid, eps, fingerprint = tiny_problem
        rhs = _rhs_stack(grid, 1)[0]
        with SolveService(
            engine=_SlowEngine(5.0, cache=FactorizationCache()),
            window=0.02,
            timeout=0.2,
        ) as service:
            future = service.submit(grid, OMEGA, eps, rhs, fingerprint=fingerprint)
            with pytest.raises(SolveTimeoutError):
                future.result(timeout=30)
        assert service.stats.timeouts == 1

    def test_request_completing_in_time_is_unaffected(self, tiny_problem):
        grid, eps, fingerprint = tiny_problem
        rhs = _rhs_stack(grid, 1)[0]
        reference = DirectEngine(cache=FactorizationCache()).solve_batch(
            grid, OMEGA, eps, rhs[None], fingerprint=fingerprint
        )[0]
        with SolveService(engine=DirectEngine(cache=FactorizationCache())) as service:
            result = service.solve(
                grid, OMEGA, eps, rhs, fingerprint=fingerprint, timeout=30.0
            )
        np.testing.assert_array_equal(result, reference)
        assert service.stats.timeouts == 0

    def test_invalid_timeout_rejected(self):
        with pytest.raises(ValueError, match="timeout"):
            SolveService(timeout=0.0)


class TestServiceRetries:
    def test_flaky_batch_retried_transparently(self, tiny_problem):
        grid, eps, fingerprint = tiny_problem
        rhs = _rhs_stack(grid, 1)[0]
        reference = DirectEngine(cache=FactorizationCache()).solve_batch(
            grid, OMEGA, eps, rhs[None], fingerprint=fingerprint
        )[0]
        with SolveService(
            engine=_FlakyEngine(1, cache=FactorizationCache()),
            window=0.02,
            max_retries=1,
        ) as service:
            result = service.solve(grid, OMEGA, eps, rhs, fingerprint=fingerprint)
        np.testing.assert_array_equal(result, reference)
        assert service.stats.retries == 1
        assert service.stats.batches == 2

    def test_retries_exhausted_forwards_the_error(self, tiny_problem):
        grid, eps, fingerprint = tiny_problem
        rhs = _rhs_stack(grid, 1)[0]
        with SolveService(
            engine=_FlakyEngine(10, cache=FactorizationCache()),
            window=0.02,
            max_retries=1,
        ) as service:
            future = service.submit(grid, OMEGA, eps, rhs, fingerprint=fingerprint)
            with pytest.raises(RuntimeError, match="transient engine failure"):
                future.result(timeout=30)
        assert service.stats.retries == 1


class TestStoreQuarantine:
    def _published(self, tmp_path, grid, eps, fingerprint):
        store = FileFactorizationStore(tmp_path)
        lu = spla.splu(assemble_system_matrix(grid, OMEGA, eps).tocsc())
        assert store.publish(grid, OMEGA, fingerprint, "direct", lu)
        return store

    def test_corrupt_artifact_quarantined_once(self, tmp_path, tiny_problem, caplog):
        grid, eps, fingerprint = tiny_problem
        store = self._published(tmp_path, grid, eps, fingerprint)
        path = store.path_for(grid, OMEGA, fingerprint, "direct")
        path.write_bytes(b"not an artifact at all")
        with caplog.at_level("WARNING", logger="repro.service.cache_store"):
            assert store.load(grid, OMEGA, fingerprint, "direct") is None
            assert store.load(grid, OMEGA, fingerprint, "direct") is None
        assert store.stats.failures == 1  # second load is a plain miss
        assert store.stats.misses == 2
        assert store.stats.quarantined == 1
        assert not path.exists()
        assert path.with_name(path.name + ".bad").exists()
        quarantine_logs = [r for r in caplog.records if "quarantined" in r.message]
        assert len(quarantine_logs) == 1

    def test_quarantined_artifact_invisible_to_enumeration(self, tmp_path, tiny_problem):
        grid, eps, fingerprint = tiny_problem
        store = self._published(tmp_path, grid, eps, fingerprint)
        path = store.path_for(grid, OMEGA, fingerprint, "direct")
        path.write_bytes(b"garbage")
        assert store.load(grid, OMEGA, fingerprint, "direct") is None
        assert len(store) == 0  # the corpse no longer counts against the budget

    def test_transient_io_error_does_not_quarantine(self, tmp_path, tiny_problem, monkeypatch):
        grid, eps, fingerprint = tiny_problem
        store = self._published(tmp_path, grid, eps, fingerprint)
        path = store.path_for(grid, OMEGA, fingerprint, "direct")
        monkeypatch.setattr(
            store,
            "_read_artifact",
            lambda *a, **k: (_ for _ in ()).throw(OSError("disk hiccup")),
        )
        assert store.load(grid, OMEGA, fingerprint, "direct") is None
        assert store.stats.failures == 1
        assert store.stats.quarantined == 0
        assert path.exists()  # transient errors leave the artifact alone

    def test_publish_failsoft_on_disk_errors(self, tmp_path, tiny_problem, monkeypatch):
        grid, eps, fingerprint = tiny_problem
        store = FileFactorizationStore(tmp_path)
        lu = spla.splu(assemble_system_matrix(grid, OMEGA, eps).tocsc())
        monkeypatch.setattr(
            store,
            "_write_artifact",
            lambda *a, **k: (_ for _ in ()).throw(OSError("disk full")),
        )
        assert store.publish(grid, OMEGA, fingerprint, "direct", lu) is False
        assert store.stats.declined == 1
        assert store.stats.publishes == 0
