"""Kerr nonlinear tier: convergence properties, stats scoping, adjoint, data axis.

Property-style guarantees of :mod:`repro.fdfd.nonlinear`:

* damped iterations decrease the true nonlinear residual monotonically;
* past the stable-power threshold the solve raises a loud
  :class:`ConvergenceError` (with its stats attached) instead of returning
  silently wrong fields;
* iteration counts and residual histories are deterministic for fixed seeds;
* per-solve engine counters are scoped (the seam-bug regression: cumulative
  engine/cache stats used to bleed into per-outer-iteration readings);
* adjoint gradients flow *through* the converged fixed point (validated
  against finite differences via the shared ``tests/helpers/fd_grad``);
* the chi3/intensity data axis stamps shard fingerprints without disturbing
  linear artifacts.
"""

import numpy as np
import pytest

from repro.data.generator import DatasetGenerator, GeneratorConfig
from repro.data.labels import extract_labels_batch
from repro.data.shards import plan_shards, shard_fingerprint
from repro.devices import make_device
from repro.fdfd.engine import (
    CacheStats,
    RecycleStats,
    make_engine,
    scoped_stats,
)
from repro.fdfd.nonlinear import (
    ConvergenceError,
    KerrNonlinearity,
    KerrSolver,
    NonlinearSimulation,
)
from repro.fdfd.simulation import Simulation
from repro.invdes.adjoint import evaluate_specs
from repro.invdes.problem import InverseDesignProblem
from tests.conftest import TINY_DEVICE_KWARGS
from tests.helpers.fd_grad import assert_gradient_matches_fd, central_difference

KERR_KWARGS = dict(TINY_DEVICE_KWARGS)


@pytest.fixture(scope="module")
def kerr_switch():
    return make_device("kerr_switch", **KERR_KWARGS)


@pytest.fixture(scope="module")
def kerr_limiter():
    return make_device("kerr_limiter", **KERR_KWARGS)


def _uniform_eps(device, value: float = 0.5):
    return device.eps_with_design(np.full(device.geometry.design_shape, value))


def _solve(device, eps, power, method="born", engine=None, **kwargs):
    spec = device.specs[0]
    sim = NonlinearSimulation(
        device.grid,
        eps,
        spec.wavelength,
        device.geometry.ports,
        chi3=device.chi3_map(),
        engine=engine,
        source_scale=float(power),
        method=method,
        **kwargs,
    )
    result = sim.solve(spec.source_port, monitor_ports=spec.monitored_ports())
    return sim, result


class TestConvergenceProperties:
    @pytest.mark.parametrize("power", [1.0, 3.0, 6.0])
    @pytest.mark.parametrize("method", ["born", "newton"])
    def test_residuals_decrease_monotonically(self, kerr_switch, power, method):
        """Backtracking damping only ever accepts residual-decreasing steps."""
        sim, _ = _solve(kerr_switch, _uniform_eps(kerr_switch), power, method=method)
        stats = sim.last_stats[0]
        assert stats.converged
        assert len(stats.residuals) == stats.iterations + 1
        for before, after in zip(stats.residuals, stats.residuals[1:]):
            assert after < before

    def test_newton_takes_fewer_outer_iterations(self, kerr_switch):
        eps = _uniform_eps(kerr_switch)
        born_sim, _ = _solve(kerr_switch, eps, 3.0, method="born")
        newton_sim, _ = _solve(kerr_switch, eps, 3.0, method="newton")
        assert (
            newton_sim.last_stats[0].iterations <= born_sim.last_stats[0].iterations
        )

    @pytest.mark.parametrize("method", ["born", "newton"])
    def test_loud_failure_past_power_threshold(self, kerr_switch, method):
        """No silent wrong fields: unstable powers raise with stats attached."""
        with pytest.raises(ConvergenceError) as excinfo:
            _solve(
                kerr_switch,
                _uniform_eps(kerr_switch),
                30.0,
                method=method,
                max_iterations=30,
            )
        stats = excinfo.value.stats
        assert not stats.converged
        assert stats.residuals  # the history survives for post-mortems
        assert stats.damping_events > 0 or stats.iterations > 0

    @pytest.mark.parametrize("power", [1.0, 3.0])
    @pytest.mark.parametrize("seed", [0, 7])
    def test_deterministic_iteration_counts(self, kerr_switch, power, seed):
        """Identical problems converge along bit-identical trajectories."""
        density = np.random.default_rng(seed).uniform(0.3, 0.7, kerr_switch.design_shape)
        eps = kerr_switch.eps_with_design(density)
        first, _ = _solve(kerr_switch, eps, power)
        second, _ = _solve(kerr_switch, eps, power)
        a, b = first.last_stats[0], second.last_stats[0]
        assert a.iterations == b.iterations
        assert a.inner_solves == b.inner_solves
        assert a.damping_events == b.damping_events
        assert a.residuals == b.residuals

    def test_inexact_inner_engine_terminates_via_step_criterion(self, kerr_switch):
        """A loose inner tier converges by field stationarity, not residual.

        The recycled engine at its default 1e-6 tolerance cannot push the
        nonlinear residual to 1e-8; without the update-size criterion the
        loop would backtrack to the damping floor and raise spuriously.
        """
        sim, _ = _solve(
            kerr_switch,
            _uniform_eps(kerr_switch),
            1.0,
            engine=make_engine("recycled"),
            rtol=1e-8,
        )
        assert sim.last_stats[0].converged

    def test_invalid_method_rejected(self, kerr_switch):
        with pytest.raises(ValueError, match="unknown nonlinear method"):
            KerrSolver(kerr_switch.grid, 1.0, method="picard")

    def test_zero_source_rejected(self, kerr_switch):
        solver = KerrSolver(kerr_switch.grid, 1.0)
        with pytest.raises(ValueError, match="non-zero source"):
            solver.solve(
                np.ones(kerr_switch.grid.shape),
                0.0,
                np.zeros(kerr_switch.grid.shape),
            )


class TestNonlinearSimulation:
    def test_workspace_rejected(self, kerr_switch):
        from repro.fdfd.engine import SolveWorkspace
        from repro.fdfd.simulation import ExcitationSpec

        spec = kerr_switch.specs[0]
        sim = NonlinearSimulation(
            kerr_switch.grid,
            _uniform_eps(kerr_switch),
            spec.wavelength,
            kerr_switch.geometry.ports,
            chi3=kerr_switch.chi3_map(),
        )
        with pytest.raises(ValueError, match="workspace"):
            sim.solve_multi(
                [ExcitationSpec(spec.source_port)], workspace=SolveWorkspace()
            )

    def test_transmissions_power_invariant_in_linear_limit(self, kerr_switch):
        """The normalization rescales with the injected power: at chi3 = 0
        transmissions are fractions of input power, independent of scale."""
        eps = _uniform_eps(kerr_switch)
        spec = kerr_switch.specs[0]

        def transmissions(scale):
            sim = NonlinearSimulation(
                kerr_switch.grid,
                eps,
                spec.wavelength,
                kerr_switch.geometry.ports,
                chi3=0.0,
                source_scale=scale,
            )
            return sim.solve(spec.source_port).transmissions

        low, high = transmissions(1.0), transmissions(4.0)
        for port, value in low.items():
            assert high[port] == pytest.approx(value, rel=1e-9)

    def test_kerr_transfer_is_power_dependent(self, kerr_limiter):
        """The point of the tier: with chi3 on, transmission depends on power."""
        eps = _uniform_eps(kerr_limiter)
        _, low = _solve(kerr_limiter, eps, 1.0)
        _, high = _solve(kerr_limiter, eps, 6.0)
        assert abs(high.transmissions["out"] - low.transmissions["out"]) > 1e-3

    def test_maxwell_residual_uses_effective_permittivity(self, kerr_limiter):
        eps = _uniform_eps(kerr_limiter)
        sim, result = _solve(kerr_limiter, eps, 3.0)
        nonlinear_residual = sim.maxwell_residual(result)
        assert nonlinear_residual < 1e-6
        # The same field does NOT satisfy the linear operator: the gap is
        # exactly the Kerr term the fixed point converged.
        linear = Simulation(
            kerr_limiter.grid,
            eps,
            kerr_limiter.specs[0].wavelength,
            kerr_limiter.geometry.ports,
        )
        assert linear.maxwell_residual(result) > 100 * nonlinear_residual

    def test_solve_multi_converges_each_excitation_separately(self, kerr_switch):
        spec = kerr_switch.specs[0]
        sim = NonlinearSimulation(
            kerr_switch.grid,
            _uniform_eps(kerr_switch),
            spec.wavelength,
            kerr_switch.geometry.ports,
            chi3=kerr_switch.chi3_map(),
        )
        results = sim.solve_multi([(spec.source_port, 0), (spec.source_port, 0)])
        assert len(results) == len(sim.last_stats) == 2
        assert np.array_equal(results[0].ez, results[1].ez)


class TestStatsScoping:
    """Regression tests for the seam bug: per-solve stats must not inherit
    (or corrupt) the engine's cumulative counters."""

    def test_reset_zeros_counters_and_keeps_gauges(self):
        stats = CacheStats(hits=3, misses=2, current_bytes=512)
        stats.reset()
        assert stats.hits == 0 and stats.misses == 0
        assert stats.current_bytes == 512  # a gauge, not a tally

    def test_merge_sums_counters_and_overwrites_gauges(self):
        total = CacheStats(hits=10, current_bytes=100)
        recent = CacheStats(hits=2, current_bytes=64)
        total.merge(recent)
        assert total.hits == 12
        assert total.current_bytes == 64

    def test_merge_rejects_mismatched_types(self):
        with pytest.raises(TypeError, match="cannot merge"):
            CacheStats().merge(RecycleStats())

    def test_scoped_stats_isolates_and_restores(self):
        engine = make_engine("recycled")
        engine.stats.factorizations = 5
        with scoped_stats(engine) as (scope,):
            assert scope.factorizations == 0
            engine.stats.recycled_solves += 3
        assert engine.stats.factorizations == 5
        assert engine.stats.recycled_solves == 3

    def test_scoped_stats_restores_on_error(self):
        engine = make_engine("recycled")
        engine.stats.exact_solves = 2
        with pytest.raises(RuntimeError, match="boom"):
            with scoped_stats(engine):
                engine.stats.exact_solves += 1
                raise RuntimeError("boom")
        assert engine.stats.exact_solves == 3  # scoped work folded back in

    def test_scoped_stats_rejects_statless_holders(self):
        with pytest.raises(TypeError, match="no resettable stats"):
            with scoped_stats(object()):
                pass

    def test_nonlinear_solves_report_per_solve_counters(self, kerr_switch):
        """Two consecutive solves each see only their own inner work, while
        the engine's cumulative counters keep the running total."""
        engine = make_engine("recycled")
        eps = _uniform_eps(kerr_switch)
        first_sim, _ = _solve(kerr_switch, eps, 1.0, engine=engine)
        first = first_sim.last_stats[0].engine_stats["recycled"]
        second_sim, _ = _solve(kerr_switch, eps, 1.0, engine=engine)
        second = second_sim.last_stats[0].engine_stats["recycled"]
        total = first_sim.last_stats[0].inner_solves + second_sim.last_stats[0].inner_solves

        def solves(counters):
            return (
                counters["factorizations"]
                + counters["exact_solves"]
                + counters["recycled_solves"]
            )

        assert solves(first) + solves(second) == total  # scoped: no bleed
        assert first["factorizations"] == 1  # one reference LU, rest recycled
        assert second["factorizations"] == 0  # second solve reuses the reference
        cumulative = engine.stats
        assert (
            cumulative.factorizations
            + cumulative.exact_solves
            + cumulative.recycled_solves
            == total
        )


class TestNonlinearAdjoint:
    @pytest.mark.parametrize("device_name", ["kerr_switch", "kerr_limiter"])
    def test_gradient_matches_finite_difference(self, device_name):
        device = make_device(device_name, **KERR_KWARGS)
        density = np.random.default_rng(5).uniform(0.3, 0.7, device.design_shape)
        nonlinearity = KerrNonlinearity(rtol=1e-10)
        spec_index = len(device.specs) - 1  # the high-power (most nonlinear) spec
        evaluation = evaluate_specs(
            device, density, specs=[device.specs[spec_index]], nonlinearity=nonlinearity
        )[0]
        assert evaluation.nonlinear_stats is not None

        def value(d):
            return evaluate_specs(
                device,
                d,
                specs=[device.specs[spec_index]],
                nonlinearity=nonlinearity,
                compute_gradient=False,
            )[0].objective_value

        assert_gradient_matches_fd(
            value, density, evaluation.grad_density, rng=1, step=1e-4, rel=1e-3
        )

    def test_chi3_zero_gradient_matches_linear(self, kerr_switch):
        density = np.random.default_rng(6).uniform(0.3, 0.7, kerr_switch.design_shape)
        linear = evaluate_specs(kerr_switch, density)
        nonlinear = evaluate_specs(
            kerr_switch, density, nonlinearity=KerrNonlinearity(chi3=0.0)
        )
        for lin, non in zip(linear, nonlinear):
            np.testing.assert_allclose(
                non.grad_density, lin.grad_density, rtol=1e-6, atol=1e-12
            )
            assert non.objective_value == pytest.approx(lin.objective_value, abs=1e-10)

    def test_problem_chain_with_nonlinearity(self, kerr_limiter):
        problem = InverseDesignProblem(
            kerr_limiter, nonlinearity=KerrNonlinearity(rtol=1e-10)
        )
        theta = problem.initial_theta("uniform")
        fom, grad = problem.value_and_grad(theta)
        assert np.isfinite(fom)
        assert grad.shape == theta.shape
        index = (theta.shape[0] // 2, theta.shape[1] // 2)
        numeric = central_difference(problem.figure_of_merit, theta, index, step=1e-3)
        assert grad[index] == pytest.approx(numeric, rel=5e-2, abs=1e-7)


class TestNonlinearDataAxis:
    def test_labels_carry_nonlinear_extras(self, kerr_limiter):
        density = np.full(kerr_limiter.design_shape, 0.5)
        labels = extract_labels_batch(
            kerr_limiter,
            density,
            nonlinearity=KerrNonlinearity(),
            intensities=[0.5, 2.0],
            with_gradient=False,
        )
        assert len(labels) == 2 * len(kerr_limiter.specs)  # intensity-major
        for label in labels:
            assert label.extras["chi3"] == kerr_limiter.chi3
            assert label.extras["nonlinear_iterations"] >= 0
            assert label.maxwell_residual < 1e-6
        # the power state multiplies the intensity axis
        scales = [label.extras["source_scale"] for label in labels]
        assert scales == [
            0.5 * kerr_limiter.specs[0].state["power"],
            0.5 * kerr_limiter.specs[1].state["power"],
            2.0 * kerr_limiter.specs[0].state["power"],
            2.0 * kerr_limiter.specs[1].state["power"],
        ]

    def test_intensities_require_nonlinearity(self, kerr_limiter):
        with pytest.raises(ValueError, match="intensities"):
            extract_labels_batch(
                kerr_limiter, np.full(kerr_limiter.design_shape, 0.5), intensities=[1.0]
            )

    def test_fingerprints_stamp_chi3_only_when_nonlinear(self):
        """Linear artifact fingerprints must not move; nonlinear ones must."""
        densities = [np.full((14, 14), 0.5)]
        stages = ["random"]
        base = GeneratorConfig(device_name="kerr_limiter", num_designs=1, shard_size=1)
        spec = plan_shards(base, num_designs=1)[0]
        fp_linear = shard_fingerprint(base, spec, densities, stages, [1.0])
        nonlinear = GeneratorConfig(
            device_name="kerr_limiter", num_designs=1, shard_size=1, chi3=1.1e8
        )
        fp_nonlinear = shard_fingerprint(nonlinear, spec, densities, stages, [1.0])
        swept = GeneratorConfig(
            device_name="kerr_limiter",
            num_designs=1,
            shard_size=1,
            chi3=1.1e8,
            intensities=(1.0, 2.0),
        )
        fp_swept = shard_fingerprint(swept, spec, densities, stages, [1.0])
        assert fp_linear != fp_nonlinear != fp_swept

    def test_generator_config_validation(self):
        with pytest.raises(ValueError, match="intensities"):
            DatasetGenerator(GeneratorConfig(intensities=(1.0,)))
        with pytest.raises(ValueError, match="cannot be combined"):
            DatasetGenerator(
                GeneratorConfig(
                    chi3=1.0, wavelengths=(1.55,), with_gradient=False
                )
            )

    def test_nonlinear_dataset_generation_and_resume(self, tmp_path, kerr_limiter):
        config = GeneratorConfig(
            device_name="kerr_limiter",
            strategy="random",
            num_designs=2,
            seed=1,
            chi3=kerr_limiter.chi3,
            device_kwargs=KERR_KWARGS,
            shard_dir=str(tmp_path),
            shard_size=1,
        )
        first = DatasetGenerator(config).generate()
        second = DatasetGenerator(config).generate()
        assert len(first) == len(second) == 2 * len(kerr_limiter.specs)
        assert first.metadata["chi3"] == kerr_limiter.chi3
        for a, b in zip(first.samples, second.samples):
            assert np.array_equal(a.eps_r, b.eps_r)
            assert np.array_equal(a.adjoint_gradient, b.adjoint_gradient)
