"""Tests for the array-namespace seam (repro.utils.backend).

The suite must pass on a NumPy-only machine: optional backends (cupy, torch)
are exercised only through the detection contract — never imported directly.
"""

import importlib.util

import numpy as np
import pytest

from repro.utils import backend as array_backend


@pytest.fixture(autouse=True)
def _reset_default():
    """Every test starts and ends with env/NumPy default resolution."""
    array_backend.set_default_backend(None)
    yield
    array_backend.set_default_backend(None)


class TestResolution:
    def test_numpy_always_known_and_available(self):
        assert "numpy" in array_backend.backend_names()
        assert "numpy" in array_backend.available_backends()

    def test_default_is_numpy(self):
        backend = array_backend.get_backend()
        assert backend.name == "numpy"
        assert backend.xp is np
        assert not backend.is_gpu
        assert array_backend.default_namespace() is np

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            array_backend.get_backend("tpu")
        with pytest.raises(ValueError):
            array_backend.set_default_backend("tpu")

    def test_names_are_case_insensitive(self):
        assert array_backend.get_backend("NumPy").name == "numpy"

    def test_env_var_selects_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_ARRAY_BACKEND", "numpy")
        assert array_backend.get_backend().name == "numpy"

    def test_set_default_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_ARRAY_BACKEND", "definitely-not-a-backend")
        # An explicit default short-circuits env resolution entirely.
        array_backend.set_default_backend("numpy")
        assert array_backend.get_backend().name == "numpy"

    def test_missing_optional_backend_fails_loudly(self):
        """Asking for an uninstalled stack raises; detection never does."""
        for name in ("cupy", "torch"):
            if importlib.util.find_spec(name) is not None:
                continue  # installed here: the loud-failure path is moot
            with pytest.raises(ImportError):
                array_backend.get_backend(name)
            assert name not in array_backend.available_backends()

    def test_backend_caching(self):
        assert array_backend.get_backend("numpy") is array_backend.get_backend("numpy")


class TestNumpyBackend:
    def test_asarray_and_to_numpy_are_identity(self):
        backend = array_backend.get_backend("numpy")
        data = np.arange(6.0).reshape(2, 3)
        assert backend.asarray(data) is data
        out = backend.to_numpy(backend.asarray(data, dtype=np.complex128))
        assert out.dtype == np.complex128
        np.testing.assert_array_equal(out, data)


class TestFftSeam:
    def test_fft2_matches_numpy(self):
        rng = np.random.default_rng(0)
        data = rng.standard_normal((3, 4, 8, 8))
        np.testing.assert_array_equal(
            array_backend.fft2(data), np.fft.fft2(data, axes=(-2, -1))
        )
        np.testing.assert_array_equal(
            array_backend.ifft2(data), np.fft.ifft2(data, axes=(-2, -1))
        )

    def test_fft_axis_matches_numpy(self):
        rng = np.random.default_rng(1)
        data = rng.standard_normal((2, 3, 8, 8))
        for axis in (-1, -2):
            np.testing.assert_array_equal(
                array_backend.fft(data, axis=axis), np.fft.fft(data, axis=axis)
            )
            np.testing.assert_array_equal(
                array_backend.ifft(data, axis=axis), np.fft.ifft(data, axis=axis)
            )

    def test_roundtrip(self):
        rng = np.random.default_rng(2)
        data = rng.standard_normal((4, 4)) + 1j * rng.standard_normal((4, 4))
        np.testing.assert_allclose(
            array_backend.ifft2(array_backend.fft2(data)), data, atol=1e-12
        )
