"""Cross-engine parity matrix: every fidelity tier must agree with ``direct``.

One parametrized suite asserting forward fields, adjoint gradients and
``evaluate_specs`` labels agree across ``direct`` x ``iterative`` x
``recycled`` x ``refined`` (mixed-precision iterative refinement) on two
devices x two grid sizes — the single place engine regressions surface.  The ``neural`` tier (registered from a checkpoint) is
exercised for plumbing, not accuracy: a surrogate's numbers depend on its
training, so it is asserted to run end to end and produce finite,
well-shaped results.  The nonlinear (Kerr) tier gets its own matrix:
Born vs Newton, recycled-inner vs direct-inner fixed points, and the
``chi3 = 0`` linear limit, across the two Kerr zoo devices x two grids.
"""

import numpy as np
import pytest

from repro.devices.factory import make_device
from repro.fdfd.engine import make_engine
from repro.fdfd.nonlinear import NonlinearSimulation
from repro.fdfd.simulation import Simulation
from repro.invdes.adjoint import NumericalFieldBackend, evaluate_specs

# (case id, device name, device kwargs) — two devices x two grid sizes.
CASES = [
    ("bending-dl0.10", "bending", dict(domain=3.0, design_size=1.4, dl=0.1)),
    ("bending-dl0.08", "bending", dict(domain=3.0, design_size=1.4, dl=0.08)),
    ("crossing-dl0.10", "crossing", dict(domain=3.0, design_size=1.4, dl=0.1)),
    ("crossing-dl0.08", "crossing", dict(domain=3.0, design_size=1.4, dl=0.08)),
]
CASE_IDS = [case[0] for case in CASES]

ENGINES = ["iterative", "recycled", "refined"]


def _density(device) -> np.ndarray:
    return np.random.default_rng(7).uniform(0.2, 0.8, size=device.design_shape)


def _evaluate(device, density, engine):
    backend = NumericalFieldBackend(engine=engine)
    return evaluate_specs(device, density, backend=backend, compute_gradient=True)


@pytest.fixture(scope="module")
def parity_reference():
    """Per-case direct-engine reference evaluations, computed once."""
    references = {}
    for case_id, device_name, device_kwargs in CASES:
        device = make_device(device_name, **device_kwargs)
        density = _density(device)
        references[case_id] = (
            device,
            density,
            _evaluate(device, density, make_engine("direct")),
        )
    return references


@pytest.mark.parametrize("engine_name", ENGINES)
@pytest.mark.parametrize("case_id", CASE_IDS)
class TestEngineParity:
    def _case(self, parity_reference, case_id, engine_name):
        device, density, reference = parity_reference[case_id]
        evaluations = _evaluate(device, density, make_engine(engine_name))
        assert len(evaluations) == len(reference) == len(device.specs)
        return reference, evaluations

    def test_forward_fields_agree(self, parity_reference, case_id, engine_name):
        reference, evaluations = self._case(parity_reference, case_id, engine_name)
        for ref, got in zip(reference, evaluations):
            scale = np.linalg.norm(ref.result.ez)
            assert np.linalg.norm(got.result.ez - ref.result.ez) / scale < 1e-5

    def test_adjoint_gradients_agree(self, parity_reference, case_id, engine_name):
        reference, evaluations = self._case(parity_reference, case_id, engine_name)
        for ref, got in zip(reference, evaluations):
            scale = max(np.abs(ref.grad_density).max(), 1e-30)
            np.testing.assert_allclose(
                got.grad_density, ref.grad_density, atol=1e-5 * scale
            )

    def test_labels_agree(self, parity_reference, case_id, engine_name):
        reference, evaluations = self._case(parity_reference, case_id, engine_name)
        for ref, got in zip(reference, evaluations):
            assert got.objective_value == pytest.approx(ref.objective_value, abs=1e-7)
            assert set(got.transmissions) == set(ref.transmissions)
            for port, value in ref.transmissions.items():
                assert got.transmissions[port] == pytest.approx(value, abs=1e-7)


# Nonlinear parity matrix: the two Kerr zoo devices x two grid sizes.
KERR_CASES = [
    ("kerr_switch-dl0.10", "kerr_switch", dict(domain=3.0, design_size=1.4, dl=0.1)),
    ("kerr_switch-dl0.08", "kerr_switch", dict(domain=3.0, design_size=1.4, dl=0.08)),
    ("kerr_limiter-dl0.10", "kerr_limiter", dict(domain=3.0, design_size=1.4, dl=0.1)),
    ("kerr_limiter-dl0.08", "kerr_limiter", dict(domain=3.0, design_size=1.4, dl=0.08)),
]
KERR_CASE_IDS = [case[0] for case in KERR_CASES]


@pytest.fixture(scope="module")
def kerr_cases():
    cases = {}
    for case_id, device_name, device_kwargs in KERR_CASES:
        device = make_device(device_name, **device_kwargs)
        density = _density(device)
        cases[case_id] = (device, density, device.eps_with_design(density))
    return cases


@pytest.mark.parametrize("case_id", KERR_CASE_IDS)
class TestNonlinearParity:
    """Self-consistency of the Kerr fixed point across methods and engines."""

    RTOL = 1e-10

    def _solve(self, device, eps, engine=None, method="newton", chi3=None):
        spec = device.specs[0]
        sim = NonlinearSimulation(
            device.grid,
            eps,
            spec.wavelength,
            device.geometry.ports,
            chi3=device.chi3_map() if chi3 is None else chi3,
            engine=engine,
            source_scale=float(spec.state.get("power", 1.0)),
            method=method,
            rtol=self.RTOL,
        )
        result = sim.solve(spec.source_port, monitor_ports=spec.monitored_ports())
        return sim, result

    def test_born_and_newton_find_the_same_fixed_point(self, kerr_cases, case_id):
        device, _, eps = kerr_cases[case_id]
        _, born = self._solve(device, eps, method="born")
        _, newton = self._solve(device, eps, method="newton")
        scale = np.linalg.norm(newton.ez)
        assert np.linalg.norm(born.ez - newton.ez) / scale < 1e-6

    def test_recycled_inner_matches_direct_inner(self, kerr_cases, case_id):
        """An approximate (refinement-based) inner tier must converge to the
        same fixed point as exact inner solves, to the nonlinear tolerance."""
        device, _, eps = kerr_cases[case_id]
        _, direct = self._solve(device, eps, engine=make_engine("direct"))
        recycled_sim, recycled = self._solve(
            device, eps, engine=make_engine("recycled", rtol=1e-12)
        )
        scale = np.linalg.norm(direct.ez)
        assert np.linalg.norm(recycled.ez - direct.ez) / scale < 1e-8
        stats = recycled_sim.last_stats[0]
        # The recycled tier must actually ride its refinement path (one
        # reference factorization, the rest recycled diagonal updates) —
        # this is the seam the nonlinear workload was built to exercise.
        assert stats.engine_stats["recycled"]["recycled_solves"] > 0

    def test_linear_limit_is_bit_identical(self, kerr_cases, case_id):
        """chi3 = 0 must reproduce the linear solve exactly — same bytes."""
        device, _, eps = kerr_cases[case_id]
        spec = device.specs[0]
        _, nonlinear = self._solve(device, eps, chi3=0.0)
        linear_sim = Simulation(device.grid, eps, spec.wavelength, device.geometry.ports)
        scale = float(spec.state.get("power", 1.0))
        source = linear_sim.mode_source(spec.source_port, spec.source_mode) * scale
        linear = linear_sim.solve(
            source=source,
            source_port=spec.source_port,
            monitor_ports=spec.monitored_ports(),
        )
        assert np.array_equal(nonlinear.ez, linear.ez)


class TestFdtdTierParity:
    """Time-domain tier vs ``direct`` FDFD, single-frequency and broadband.

    The FDTD fields satisfy the FDFD equations at the target frequency exactly
    in the interior (frequency-warped DFT extraction); what remains is the
    absorbing-boundary model difference and the ring-down truncation, so the
    tolerances here are physical (percent-level transmissions), not the 1e-5
    numerical parity of the frequency-domain tiers.
    """

    #: Five extraction wavelengths across the 1.53-1.57 um band — one pulsed
    #: run serves all of them.
    WAVELENGTHS = [1.53, 1.54, 1.55, 1.56, 1.57]

    @staticmethod
    def _fdtd_engine():
        return make_engine("fdtd", courant=0.99, decay_tol=3e-4, precision="single")

    def _forward(self, device, density, engine, wavelengths=None):
        return evaluate_specs(
            device,
            density,
            backend=NumericalFieldBackend(engine=engine),
            compute_gradient=False,
            wavelengths=wavelengths,
        )

    def test_single_frequency_matches_direct(self):
        device = make_device("bending", domain=3.0, design_size=1.4, dl=0.1)
        density = _density(device)
        reference = self._forward(device, density, make_engine("direct"))
        evaluations = self._forward(device, density, self._fdtd_engine())
        for ref, got in zip(reference, evaluations):
            assert set(got.transmissions) == set(ref.transmissions)
            for port, value in ref.transmissions.items():
                assert abs(got.transmissions[port] - value) <= max(0.02 * value, 0.005)
            assert got.objective_value == pytest.approx(
                ref.objective_value, abs=max(0.02 * ref.objective_value, 0.005)
            )

    @pytest.mark.parametrize(
        "device_name,device_kwargs",
        [
            ("bending", dict(domain=3.0, design_size=1.4, dl=0.1)),
            ("wdm", dict(fidelity="high", dl=0.06)),
        ],
        ids=["bending", "wdm"],
    )
    def test_broadband_matches_per_wavelength_direct(self, device_name, device_kwargs):
        """One pulsed run agrees with N direct solves to <= 2% per wavelength."""
        device = make_device(device_name, **device_kwargs)
        density = _density(device)
        evaluations = self._forward(
            device, density, self._fdtd_engine(), wavelengths=self.WAVELENGTHS
        )
        reference = self._forward(
            device, density, make_engine("direct"), wavelengths=self.WAVELENGTHS
        )
        assert len(evaluations) == len(reference) == len(self.WAVELENGTHS) * len(
            device.specs
        )
        for ref, got in zip(reference, evaluations):
            assert got.spec.wavelength == ref.spec.wavelength
            assert got.result.ez.shape == device.grid.shape
            for port, value in ref.transmissions.items():
                # <= 2% relative error on meaningful transmissions, with a
                # small absolute floor where the reference is near zero.
                assert abs(got.transmissions[port] - value) <= max(0.02 * value, 0.005)


class TestNeuralTierPlumbing:
    """The surrogate tier runs through the same matrix; accuracy is its own
    benchmark (``bench_training.py``), so only well-formedness is asserted."""

    def test_neural_engine_through_evaluate_specs(self, tiny_checkpoint):
        path, _, _ = tiny_checkpoint
        device = make_device("bending", domain=3.0, design_size=1.4, dl=0.1)
        density = _density(device)
        evaluations = _evaluate(device, density, make_engine(f"neural:{path}"))
        assert len(evaluations) == len(device.specs)
        for evaluation in evaluations:
            assert np.isfinite(evaluation.objective_value)
            assert evaluation.result.ez.shape == device.grid.shape
            assert np.isfinite(evaluation.result.ez).all()
            assert np.isfinite(evaluation.grad_density).all()

    def test_neural_engine_is_cold_start_only(self, tiny_checkpoint):
        path, _, _ = tiny_checkpoint
        assert make_engine(f"neural:{path}").supports_warm_start is False
