"""Tests for the autograd engine: tensor ops, broadcasting and the backward pass."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.autograd import Tensor, check_gradient, no_grad

finite = st.floats(-3.0, 3.0, allow_nan=False, allow_infinity=False)


def tensor_of(shape, seed=0, requires_grad=True, scale=1.0):
    rng = np.random.default_rng(seed)
    return Tensor(scale * rng.normal(size=shape), requires_grad=requires_grad)


class TestBasicOps:
    def test_add_values(self):
        out = Tensor([1.0, 2.0]) + Tensor([3.0, 4.0])
        np.testing.assert_allclose(out.data, [4.0, 6.0])

    def test_scalar_broadcast(self):
        out = Tensor([[1.0, 2.0]]) * 3.0
        np.testing.assert_allclose(out.data, [[3.0, 6.0]])

    def test_pow(self):
        out = Tensor([2.0, 3.0]) ** 2
        np.testing.assert_allclose(out.data, [4.0, 9.0])

    def test_matmul_values(self):
        a = Tensor(np.eye(3))
        b = Tensor(np.arange(9.0).reshape(3, 3))
        np.testing.assert_allclose((a @ b).data, b.data)

    def test_comparisons_return_arrays(self):
        mask = Tensor([1.0, -1.0]) > 0
        assert mask.dtype == bool
        np.testing.assert_array_equal(mask, [True, False])

    def test_reshape_and_transpose(self):
        x = Tensor(np.arange(6.0).reshape(2, 3))
        assert x.reshape(3, 2).shape == (3, 2)
        assert x.transpose().shape == (3, 2)

    def test_cat_and_stack(self):
        a, b = Tensor(np.ones((2, 2))), Tensor(np.zeros((2, 2)))
        assert Tensor.cat([a, b], axis=0).shape == (4, 2)
        assert Tensor.stack([a, b], axis=0).shape == (2, 2, 2)


class TestGradients:
    @pytest.mark.parametrize(
        "func",
        [
            lambda x: (x * 2.0 + 1.0) ** 3,
            lambda x: x.exp(),
            lambda x: (x.abs() + 1.0).log(),
            lambda x: x.tanh(),
            lambda x: x.sigmoid(),
            lambda x: x.relu(),
            lambda x: x.gelu(),
            lambda x: x.sin() + x.cos(),
            lambda x: (x * x + 1.0).sqrt(),
            lambda x: x.clamp(-0.5, 0.5),
            lambda x: x.abs(),
        ],
        ids=[
            "poly",
            "exp",
            "log",
            "tanh",
            "sigmoid",
            "relu",
            "gelu",
            "trig",
            "sqrt",
            "clamp",
            "abs",
        ],
    )
    def test_elementwise_gradients(self, func):
        x = tensor_of((3, 4), seed=2)
        assert check_gradient(func, [x]) < 1e-4

    def test_broadcast_add_gradient(self):
        a = tensor_of((3, 4), seed=0)
        b = tensor_of((4,), seed=1)
        assert check_gradient(lambda a, b: a + b * 2.0, [a, b]) < 1e-5

    def test_broadcast_mul_gradient(self):
        a = tensor_of((2, 3, 4), seed=0)
        b = tensor_of((1, 3, 1), seed=1)
        assert check_gradient(lambda a, b: a * b, [a, b]) < 1e-5

    def test_division_gradient(self):
        a = tensor_of((3, 3), seed=0)
        b = Tensor(np.random.default_rng(1).uniform(0.5, 2.0, (3, 3)), requires_grad=True)
        assert check_gradient(lambda a, b: a / b, [a, b]) < 1e-4

    def test_matmul_gradient(self):
        a = tensor_of((3, 4), seed=0)
        b = tensor_of((4, 2), seed=1)
        assert check_gradient(lambda a, b: a @ b, [a, b]) < 1e-5

    def test_matvec_gradient(self):
        a = tensor_of((3, 4), seed=0)
        v = tensor_of((4,), seed=1)
        assert check_gradient(lambda a, v: a @ v, [a, v]) < 1e-5

    @pytest.mark.parametrize("axis,keepdims", [(None, False), (0, False), (1, True), ((0, 1), False)])
    def test_sum_gradient(self, axis, keepdims):
        x = tensor_of((3, 5), seed=3)
        assert check_gradient(lambda x: x.sum(axis=axis, keepdims=keepdims), [x]) < 1e-6

    def test_mean_max_gradient(self):
        x = tensor_of((4, 4), seed=4)
        assert check_gradient(lambda x: x.mean(axis=0), [x]) < 1e-6
        assert check_gradient(lambda x: x.max(axis=1), [x]) < 1e-5

    def test_getitem_gradient(self):
        x = tensor_of((5, 5), seed=5)
        assert check_gradient(lambda x: x[1:4, ::2] * 2.0, [x]) < 1e-6

    def test_reshape_transpose_gradient(self):
        x = tensor_of((2, 3, 4), seed=6)
        assert check_gradient(lambda x: x.reshape(6, 4).transpose(), [x]) < 1e-6

    def test_cat_stack_gradient(self):
        a = tensor_of((2, 3), seed=7)
        b = tensor_of((2, 3), seed=8)
        assert check_gradient(lambda a, b: Tensor.cat([a, b], axis=1).tanh(), [a, b]) < 1e-5
        assert check_gradient(lambda a, b: Tensor.stack([a, b], axis=0).sigmoid(), [a, b]) < 1e-5

    def test_norm_gradient(self):
        x = tensor_of((3, 3), seed=9)
        assert check_gradient(lambda x: x.norm(), [x]) < 1e-5

    @given(hnp.arrays(np.float64, (3, 3), elements=finite))
    @settings(max_examples=20, deadline=None)
    def test_chain_rule_matches_analytic(self, data):
        x = Tensor(data, requires_grad=True)
        y = (x * x).sum()
        y.backward()
        np.testing.assert_allclose(x.grad, 2 * data, rtol=1e-7, atol=1e-9)


class TestGraphMechanics:
    def test_gradient_accumulates_over_multiple_uses(self):
        x = Tensor([2.0], requires_grad=True)
        y = x * 3.0 + x * 4.0
        y.backward()
        np.testing.assert_allclose(x.grad, [7.0])

    def test_backward_requires_scalar_without_seed(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        with pytest.raises(RuntimeError):
            (x * 2).backward()

    def test_backward_with_explicit_seed(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        (x * 2).backward(grad=np.ones((2, 2)))
        np.testing.assert_allclose(x.grad, 2 * np.ones((2, 2)))

    def test_backward_on_non_grad_tensor_raises(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()

    def test_no_grad_disables_graph(self):
        x = Tensor([1.0], requires_grad=True)
        with no_grad():
            y = x * 2.0
        assert not y.requires_grad

    def test_detach_cuts_graph(self):
        x = Tensor([1.0], requires_grad=True)
        y = (x * 2.0).detach() * 3.0
        assert not y.requires_grad

    def test_zero_grad(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 2).sum().backward()
        assert x.grad is not None
        x.zero_grad()
        assert x.grad is None

    def test_second_backward_accumulates(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 2).sum().backward()
        (x * 3).sum().backward()
        np.testing.assert_allclose(x.grad, [5.0])

    def test_constants_do_not_collect_grad(self):
        x = Tensor([1.0], requires_grad=True)
        c = Tensor([2.0])
        (x * c).sum().backward()
        assert c.grad is None
