"""Tests for the FDFD substrate: grid, PML, operators, modes, solver, monitors."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import constants
from repro.fdfd import Grid, Port, Simulation, solve_slab_modes
from repro.fdfd.derivatives import derivative_operators
from repro.fdfd.modes import overlap_coefficient
from repro.fdfd.monitors import mode_overlap, poynting_flux_through_port
from repro.fdfd.engine import DirectEngine, FactorizationCache
from repro.fdfd.pml import create_sfactor
from repro.fdfd.solver import FdfdSolver

OMEGA = constants.wavelength_to_omega(1.55)


# --------------------------------------------------------------------------- #
# Grid
# --------------------------------------------------------------------------- #
class TestGrid:
    def test_basic_properties(self):
        grid = Grid(nx=40, ny=30, dl=0.1, npml=8)
        assert grid.shape == (40, 30)
        assert grid.n_points == 1200
        assert grid.size_x == pytest.approx(4.0)
        assert grid.dl_m == pytest.approx(1e-7)

    @pytest.mark.parametrize("kwargs", [
        dict(nx=0, ny=10, dl=0.1),
        dict(nx=10, ny=10, dl=-0.1),
        dict(nx=10, ny=10, dl=0.1, npml=-1),
        dict(nx=10, ny=10, dl=0.1, npml=5),
    ])
    def test_invalid_construction(self, kwargs):
        with pytest.raises(ValueError):
            Grid(**kwargs)

    def test_coordinates_are_cell_centres(self):
        grid = Grid(nx=4, ny=4, dl=0.5, npml=1)
        np.testing.assert_allclose(grid.x_coords(), [0.25, 0.75, 1.25, 1.75])

    def test_index_of_clips_to_domain(self):
        grid = Grid(nx=10, ny=10, dl=0.1, npml=2)
        assert grid.index_of(-1.0, 0.55) == (0, 5)
        assert grid.index_of(100.0, 100.0) == (9, 9)

    def test_slices(self):
        grid = Grid(nx=20, ny=20, dl=0.1, npml=2)
        assert grid.slice_x(0.5, 1.0) == slice(5, 10)
        assert grid.slice_y(1.0, 0.5) == slice(5, 10)

    def test_interior_mask_excludes_pml(self):
        grid = Grid(nx=20, ny=20, dl=0.1, npml=5)
        mask = grid.interior_mask()
        assert mask.sum() == 10 * 10
        assert not mask[0, 0] and mask[10, 10]

    def test_with_resolution_preserves_physical_size(self):
        grid = Grid(nx=40, ny=20, dl=0.1, npml=5)
        coarse = grid.with_resolution(0.2)
        assert coarse.nx == 20 and coarse.ny == 11
        assert coarse.size_x == pytest.approx(grid.size_x, rel=0.1)

    @given(st.integers(20, 60), st.integers(20, 60))
    @settings(max_examples=20, deadline=None)
    def test_interior_mask_size_property(self, nx, ny):
        grid = Grid(nx=nx, ny=ny, dl=0.05, npml=8)
        assert grid.interior_mask().sum() == (nx - 16) * (ny - 16)


# --------------------------------------------------------------------------- #
# PML
# --------------------------------------------------------------------------- #
class TestPml:
    def test_interior_is_unity(self):
        s = create_sfactor(OMEGA, 5e-8, 50, 10, shifted=False)
        np.testing.assert_allclose(s[10:40], 1.0)

    def test_pml_has_negative_imaginary_part(self):
        s = create_sfactor(OMEGA, 5e-8, 50, 10, shifted=True)
        assert (s[:9].imag < 0).all()
        assert (s[-9:].imag < 0).all()

    def test_absorption_grows_towards_boundary(self):
        s = create_sfactor(OMEGA, 5e-8, 50, 10, shifted=False)
        assert abs(s[0].imag) > abs(s[5].imag) > abs(s[9].imag)

    def test_no_pml_is_all_ones(self):
        np.testing.assert_allclose(create_sfactor(OMEGA, 5e-8, 30, 0, shifted=True), 1.0)

    def test_oversized_pml_rejected(self):
        with pytest.raises(ValueError):
            create_sfactor(OMEGA, 5e-8, 20, 10, shifted=True)


# --------------------------------------------------------------------------- #
# derivative operators
# --------------------------------------------------------------------------- #
class TestDerivatives:
    def test_shapes(self):
        grid = Grid(nx=20, ny=25, dl=0.1, npml=5)
        ops = derivative_operators(grid, OMEGA)
        for name in ("Dxf", "Dxb", "Dyf", "Dyb"):
            assert ops[name].shape == (grid.n_points, grid.n_points)

    def test_derivative_of_linear_field(self):
        """Away from boundaries the forward difference of x (in metres) is 1."""
        grid = Grid(nx=30, ny=30, dl=0.1, npml=8)
        ops = derivative_operators(grid, OMEGA)
        x_field = np.broadcast_to(grid.x_coords()[:, None] * 1e-6, grid.shape)
        derivative = (ops["Dxf"] @ x_field.ravel()).reshape(grid.shape)
        interior = derivative[10:-10, 10:-10]
        np.testing.assert_allclose(interior.real, 1.0, rtol=1e-9)

    def test_constant_field_has_zero_interior_derivative(self):
        grid = Grid(nx=24, ny=24, dl=0.1, npml=6)
        ops = derivative_operators(grid, OMEGA)
        const = np.ones(grid.n_points)
        for name in ("Dxf", "Dyf"):
            derivative = (ops[name] @ const).reshape(grid.shape)
            np.testing.assert_allclose(derivative[8:-8, 8:-8], 0.0, atol=1e-9)


# --------------------------------------------------------------------------- #
# mode solver
# --------------------------------------------------------------------------- #
class TestModes:
    @staticmethod
    def _slab_eps(width_um=0.48, dl=0.05, span=3.0):
        n = int(span / dl)
        y = (np.arange(n) + 0.5) * dl
        eps = np.full(n, constants.EPS_SIO2)
        eps[np.abs(y - span / 2) <= width_um / 2] = constants.EPS_SI
        return eps

    def test_fundamental_mode_exists(self):
        modes = solve_slab_modes(self._slab_eps(), 0.05, OMEGA, num_modes=2)
        assert len(modes) >= 1
        assert constants.N_SIO2 < modes[0].neff < constants.N_SI

    def test_modes_sorted_by_neff(self):
        modes = solve_slab_modes(self._slab_eps(width_um=1.0), 0.05, OMEGA, num_modes=3)
        assert len(modes) >= 2
        assert modes[0].neff > modes[1].neff

    def test_mode_profile_normalized(self):
        mode = solve_slab_modes(self._slab_eps(), 0.05, OMEGA)[0]
        assert np.sum(np.abs(mode.profile) ** 2) * mode.dl == pytest.approx(1.0)

    def test_fundamental_mode_has_single_lobe(self):
        mode = solve_slab_modes(self._slab_eps(), 0.05, OMEGA)[0]
        sign_changes = np.sum(np.abs(np.diff(np.sign(mode.profile[np.abs(mode.profile) > 1e-3]))) > 0)
        assert sign_changes == 0

    def test_wider_waveguide_guides_more_modes(self):
        narrow = solve_slab_modes(self._slab_eps(width_um=0.3), 0.05, OMEGA, num_modes=4)
        wide = solve_slab_modes(self._slab_eps(width_um=1.2), 0.05, OMEGA, num_modes=4)
        assert len(wide) > len(narrow)

    def test_uniform_cladding_guides_nothing(self):
        eps = np.full(60, constants.EPS_SIO2)
        assert solve_slab_modes(eps, 0.05, OMEGA) == []

    def test_overlap_coefficient_self(self):
        mode = solve_slab_modes(self._slab_eps(), 0.05, OMEGA)[0]
        overlap = overlap_coefficient(mode.profile, mode)
        assert abs(overlap) == pytest.approx(1.0 * mode.dl * np.sum(mode.profile**2), rel=1e-9)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            solve_slab_modes(np.ones((3, 3)), 0.05, OMEGA)
        with pytest.raises(ValueError):
            solve_slab_modes(np.ones(2), 0.05, OMEGA)

    def test_modes_orthonormal(self):
        """Regression: unit L2 norm per mode, orthogonality between modes."""
        modes = solve_slab_modes(self._slab_eps(width_um=1.2), 0.05, OMEGA, num_modes=3)
        assert len(modes) >= 2
        for i, mode_i in enumerate(modes):
            for j, mode_j in enumerate(modes):
                inner = np.sum(mode_i.profile * mode_j.profile) * mode_i.dl
                assert inner == pytest.approx(1.0 if i == j else 0.0, abs=1e-9)

    def test_mode_ordering_regression(self):
        """Modes come back fundamental-first with contiguous order tags."""
        modes = solve_slab_modes(self._slab_eps(width_um=1.2), 0.05, OMEGA, num_modes=4)
        assert len(modes) >= 2
        neffs = [mode.neff for mode in modes]
        assert neffs == sorted(neffs, reverse=True)
        assert [mode.order for mode in modes] == list(range(len(modes)))
        for mode in modes:
            assert constants.N_SIO2 < mode.neff < constants.N_SI

    def test_overlap_coefficient_reciprocity(self):
        """<phi_a, phi_b> == <phi_b, phi_a>: the overlap is symmetric."""
        modes = solve_slab_modes(self._slab_eps(width_um=1.2), 0.05, OMEGA, num_modes=2)
        assert len(modes) == 2
        forward = overlap_coefficient(modes[0].profile, modes[1])
        backward = overlap_coefficient(modes[1].profile, modes[0])
        assert forward == pytest.approx(backward, abs=1e-12)
        # Complex field lines keep the same symmetry (no conjugation).
        field = (modes[0].profile + 0.3j * modes[1].profile).astype(complex)
        direct = overlap_coefficient(field, modes[1])
        manual = complex(np.sum(field * modes[1].profile) * modes[1].dl)
        assert direct == pytest.approx(manual, rel=1e-12)

    def test_batched_matches_single(self):
        from repro.fdfd.modes import solve_slab_modes_batch

        lines = [
            self._slab_eps(width_um=0.48),
            self._slab_eps(width_um=1.2),
            self._slab_eps(width_um=0.8, span=2.0),  # different length
            np.full(60, constants.EPS_SIO2),  # guides nothing
        ]
        batched = solve_slab_modes_batch(lines, 0.05, OMEGA, num_modes=3)
        assert len(batched) == len(lines)
        assert batched[3] == []
        for line, modes in zip(lines, batched):
            singles = solve_slab_modes(line, 0.05, OMEGA, num_modes=3)
            assert len(modes) == len(singles)
            for got, want in zip(modes, singles):
                assert got.neff == pytest.approx(want.neff, rel=1e-12)
                np.testing.assert_allclose(got.profile, want.profile, atol=1e-10)

    def test_batched_invalid_line_rejected(self):
        from repro.fdfd.modes import solve_slab_modes_batch

        with pytest.raises(ValueError):
            solve_slab_modes_batch([self._slab_eps(), np.ones(2)], 0.05, OMEGA)

    def test_simulation_batches_port_mode_solves(self):
        """One batched eigendecomposition pass per permittivity, not per call."""
        import repro.fdfd.simulation as simulation_module
        from repro.fdfd import Grid, Port, Simulation

        grid = Grid(nx=40, ny=40, dl=0.1, npml=8)
        eps = np.full(grid.shape, constants.EPS_SIO2)
        y = grid.y_coords()
        eps[:, np.abs(y - grid.size_y / 2) <= 0.24] = constants.EPS_SI
        margin = 11 * 0.1
        ports = [
            Port("in", "x", position=margin, center=grid.size_y / 2, span=1.44),
            Port("out", "x", position=grid.size_x - margin, center=grid.size_y / 2, span=1.44),
        ]
        sim = Simulation(grid, eps, 1.55, ports)

        calls = []
        original = simulation_module.solve_slab_modes_batch

        def counting(lines, *args, **kwargs):
            calls.append(len(lines))
            return original(lines, *args, **kwargs)

        simulation_module.solve_slab_modes_batch = counting
        try:
            sim.solve("in")
            assert calls == [2]  # source + monitor lines in one batch
            sim.solve("in")
            assert calls == [2]  # cached: no further eigendecompositions
            sim.eps_r[:, :2] = 1.0  # in-place mutation invalidates the cache
            sim.solve("in")
            assert calls == [2, 2]
        finally:
            simulation_module.solve_slab_modes_batch = original


# --------------------------------------------------------------------------- #
# solver + simulation physics
# --------------------------------------------------------------------------- #
def _straight_waveguide(dl=0.1, domain=4.0, width=0.48):
    npml = 8
    n = int(domain / dl) + 2 * npml
    grid = Grid(nx=n, ny=n, dl=dl, npml=npml)
    eps = np.full(grid.shape, constants.EPS_SIO2)
    y = grid.y_coords()
    eps[:, np.abs(y - grid.size_y / 2) <= width / 2] = constants.EPS_SI
    margin = (npml + 3) * dl
    ports = [
        Port("in", "x", position=margin, center=grid.size_y / 2, span=3 * width, direction=+1),
        Port("out", "x", position=grid.size_x - margin, center=grid.size_y / 2, span=3 * width, direction=+1),
    ]
    return grid, eps, ports


class TestSolver:
    def test_solution_satisfies_maxwell(self):
        grid, eps, ports = _straight_waveguide()
        solver = FdfdSolver(grid, OMEGA)
        source = np.zeros(grid.shape, dtype=complex)
        source[grid.nx // 2, grid.ny // 2] = 1.0
        solution = solver.solve(eps, source)
        residual = solver.residual(eps, solution.ez, source)
        rhs_norm = np.linalg.norm(1j * OMEGA * source)
        assert np.linalg.norm(residual) / rhs_norm < 1e-10

    def test_factorization_cache_reused(self):
        grid, eps, ports = _straight_waveguide()
        engine = DirectEngine(cache=FactorizationCache())
        solver = FdfdSolver(grid, OMEGA, engine=engine)
        source = np.zeros(grid.shape, dtype=complex)
        source[grid.nx // 2, grid.ny // 2] = 1.0
        solver.solve(eps, source)
        assert engine.cache.stats.misses == 1
        solver.solve(eps, 2 * source)
        assert engine.cache.stats.misses == 1
        assert engine.cache.stats.hits == 1
        solver.clear_cache()
        assert len(engine.cache) == 0

    def test_linearity_in_source(self):
        grid, eps, ports = _straight_waveguide()
        solver = FdfdSolver(grid, OMEGA)
        source = np.zeros(grid.shape, dtype=complex)
        source[grid.nx // 2, grid.ny // 2] = 1.0
        ez1 = solver.solve(eps, source).ez
        ez2 = solver.solve(eps, 3.0 * source).ez
        np.testing.assert_allclose(ez2, 3.0 * ez1, rtol=1e-9)

    def test_shape_validation(self):
        grid, eps, ports = _straight_waveguide()
        solver = FdfdSolver(grid, OMEGA)
        with pytest.raises(ValueError):
            solver.solve(eps[:-1], np.zeros(grid.shape))
        with pytest.raises(ValueError):
            solver.solve(eps, np.zeros((3, 3)))

    def test_invalid_omega(self):
        grid, _, _ = _straight_waveguide()
        with pytest.raises(ValueError):
            FdfdSolver(grid, -1.0)


class TestSimulation:
    @pytest.fixture(scope="class")
    def straight_result(self):
        grid, eps, ports = _straight_waveguide()
        sim = Simulation(grid, eps, 1.55, ports)
        return sim, sim.solve("in")

    def test_straight_waveguide_transmission_near_unity(self, straight_result):
        _, result = straight_result
        assert result.transmissions["out"] == pytest.approx(1.0, abs=0.05)

    def test_maxwell_residual_small(self, straight_result):
        sim, result = straight_result
        assert sim.maxwell_residual(result) < 1e-10

    def test_field_decays_in_pml(self, straight_result):
        sim, result = straight_result
        interior_peak = np.abs(result.ez[sim.grid.interior_mask()]).max()
        corner = np.abs(result.ez[:3, :3]).max()
        assert corner < 1e-3 * interior_peak

    def test_radiation_is_small_for_straight_guide(self, straight_result):
        _, result = straight_result
        assert result.radiation < 0.1

    def test_total_transmission_selected_ports(self, straight_result):
        _, result = straight_result
        assert result.total_transmission(["out"]) == pytest.approx(
            result.transmissions["out"]
        )

    def test_unknown_port_raises(self, straight_result):
        sim, _ = straight_result
        with pytest.raises(KeyError):
            sim.solve("nonexistent")

    def test_duplicate_port_names_rejected(self):
        grid, eps, ports = _straight_waveguide()
        with pytest.raises(ValueError):
            Simulation(grid, eps, 1.55, [ports[0], ports[0]])

    def test_eps_shape_mismatch_rejected(self):
        grid, eps, ports = _straight_waveguide()
        with pytest.raises(ValueError):
            Simulation(grid, eps[:-1], 1.55, ports)

    def test_set_permittivity_invalidates_cache(self):
        grid, eps, ports = _straight_waveguide()
        sim = Simulation(grid, eps, 1.55, ports, engine=DirectEngine(cache=FactorizationCache()))
        sim.solve("in")
        old_fingerprint = sim._eps_fingerprint
        assert sim.engine.cache.peek(grid, sim.omega, old_fingerprint) is not None
        new_eps = eps.copy()
        new_eps[grid.nx // 2, grid.ny // 2] = 1.0
        sim.set_permittivity(new_eps)
        assert sim._eps_fingerprint != old_fingerprint
        assert sim.engine.cache.peek(grid, sim.omega, old_fingerprint) is None

    def test_set_permittivity_invalidates_normalization_cache(self):
        """Regression: normalization flux/overlap must not survive a design change."""
        grid, eps, ports = _straight_waveguide()
        sim = Simulation(grid, eps, 1.55, ports)
        sim.solve("in")
        assert sim._norm_cache
        stale = dict(sim._norm_cache)
        # Widen the feeding waveguide: the port cross-section (and therefore the
        # normalization run) changes, so the cached values would be wrong.
        wider = np.full(grid.shape, constants.EPS_SIO2)
        y = grid.y_coords()
        wider[:, np.abs(y - grid.size_y / 2) <= 0.6] = constants.EPS_SI
        sim.set_permittivity(wider)
        assert not sim._norm_cache
        result = sim.solve("in")
        stale_flux = stale[("in", 0)][0]
        assert abs(result.input_flux - stale_flux) / stale_flux > 1e-6

    def test_mode_source_is_on_port_line_only(self, straight_result):
        sim, _ = straight_result
        source = sim.mode_source("in")
        mask = np.zeros(sim.grid.shape, dtype=bool)
        mask[sim.ports["in"].indices(sim.grid)] = True
        assert np.abs(source[~mask]).max() == 0.0
        assert np.abs(source[mask]).max() > 0.0

    def test_requesting_unguided_mode_raises(self, straight_result):
        sim, _ = straight_result
        with pytest.raises(ValueError):
            sim.mode_source("in", mode_index=5)


class TestMonitors:
    def test_port_validation(self):
        with pytest.raises(ValueError):
            Port("p", "z", 1.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            Port("p", "x", 1.0, 1.0, -1.0)
        with pytest.raises(ValueError):
            Port("p", "x", 1.0, 1.0, 1.0, direction=2)

    def test_flux_sign_flips_with_direction(self):
        grid, eps, ports = _straight_waveguide()
        sim = Simulation(grid, eps, 1.55, ports)
        result = sim.solve("in")
        forward = poynting_flux_through_port(result.ez, result.hx, result.hy, ports[1], grid)
        reversed_port = Port("out_r", "x", ports[1].position, ports[1].center, ports[1].span, direction=-1)
        backward = poynting_flux_through_port(result.ez, result.hx, result.hy, reversed_port, grid)
        assert forward == pytest.approx(-backward)
        assert forward > 0

    def test_mode_overlap_peaks_on_waveguide(self):
        grid, eps, ports = _straight_waveguide()
        sim = Simulation(grid, eps, 1.55, ports)
        result = sim.solve("in")
        out_port = ports[1]
        mode = out_port.solve_modes(eps, grid, sim.omega)[0]
        on_guide = abs(mode_overlap(result.ez, out_port, mode, grid))
        shifted_port = Port("shift", "x", out_port.position, out_port.center + 1.0, out_port.span, +1)
        shifted_modes = shifted_port.solve_modes(eps, grid, sim.omega)
        if shifted_modes:
            off_guide = abs(mode_overlap(result.ez, shifted_port, shifted_modes[0], grid))
            assert on_guide > off_guide

    def test_scatter_line_shape_check(self):
        grid, eps, ports = _straight_waveguide()
        with pytest.raises(ValueError):
            ports[0].scatter_line(np.ones(3), grid)


class TestIndexRoundingRule:
    """Regression tests for the unified coordinate -> index rounding rule.

    ``Port.indices`` used to resolve the plane position with Python's
    banker's ``round()`` while ``Grid.index_of`` floors and the slice helpers
    used ``np.round`` — a port at an exact half-cell position could inject its
    source on one row and measure flux on another, with the winner depending
    on index parity.
    """

    def test_cell_index_owns_half_open_interval(self):
        from repro.fdfd.grid import cell_index

        assert cell_index(0.0, 0.1) == 0
        # A coordinate exactly on a boundary belongs to the cell above it.
        assert cell_index(0.2, 0.1) == 2
        # Floating-point noise in position / dl must not flip the index.
        assert cell_index(0.3, 0.1) == 3  # 0.3 / 0.1 == 2.999... in binary fp
        assert cell_index(0.25, 0.1) == 2  # interior point

    def test_slice_bound_half_up(self):
        from repro.fdfd.grid import slice_bound

        # Round-half-up, independent of parity (banker's would give 12 / 14).
        assert slice_bound(1.25, 0.1) == 13
        assert slice_bound(1.35, 0.1) == 14
        assert slice_bound(1.2, 0.1) == 12

    @pytest.mark.parametrize("k", [12, 13])  # both parities of the owning cell
    @pytest.mark.parametrize("normal_axis", ["x", "y"])
    def test_port_at_half_cell_position_matches_grid_rule(self, k, normal_axis):
        """A port plane at a cell centre resolves to that cell on either axis.

        With banker's rounding, ``position / dl == 13.5`` resolved to row 14
        while ``Grid.index_of`` placed the same coordinate in cell 13.
        """
        grid = Grid(nx=40, ny=40, dl=0.1, npml=8)
        position = (k + 0.5) * grid.dl
        port = Port("p", normal_axis, position, center=grid.size_y / 2, span=1.0)
        index = port.indices(grid)
        plane_index = index[0] if normal_axis == "x" else index[1]
        owning = grid.index_of(position, position)
        assert plane_index == k
        assert plane_index == (owning[0] if normal_axis == "x" else owning[1])

    def test_source_and_monitor_share_a_row_at_half_cell(self):
        """End to end: a half-cell port's scattered source lies exactly on the
        row its flux monitor reads Ez from."""
        grid, eps, ports = _straight_waveguide()
        port = Port("p", "x", position=(13 + 0.5) * grid.dl, center=grid.size_y / 2, span=1.44)
        source = port.scatter_line(np.ones(port.extract_line(eps, grid).shape), grid)
        rows_with_source = np.flatnonzero(np.abs(source).sum(axis=1))
        assert rows_with_source.tolist() == [port.indices(grid)[0]]


class TestFluxColocation:
    """Regression tests for Yee-staggering colocation in the flux monitor.

    ``e_to_h`` produces H half a cell below the Ez samples; the monitor used
    to multiply Ez with the raw staggered H sample, an O(dl) bias whenever the
    field carries more than one wavevector along the port normal.  With the
    two straddling H samples averaged onto the Ez line the error is O(dl^2).
    """

    K1 = 9.73  # ~ effective index 2.4 at 1.55 um, rad / um
    K2 = 6.08  # ~ cladding index 1.5

    def _two_wave_error(self, dl: float, normal_axis: str) -> float:
        """Relative flux error against the analytically colocated product for a
        synthetic two-wavevector field sampled at the Yee positions."""
        npml = 8
        n = int(round(4.0 / dl)) + 2 * npml
        grid = Grid(nx=n, ny=n, dl=dl, npml=npml)
        centres = (np.arange(n) + 0.5) * dl  # Ez sample positions
        staggered = np.arange(n) * dl  # H sample positions (half a cell below)
        window = np.exp(-(((np.arange(n) + 0.5) * dl - grid.size_x / 2) / 0.6) ** 2)

        def e_profile(s):
            return np.exp(1j * self.K1 * s) + np.exp(1j * self.K2 * s)

        def h_profile(s):
            return self.K1 * np.exp(1j * self.K1 * s) + self.K2 * np.exp(1j * self.K2 * s)

        port = Port("m", normal_axis, grid.size_x / 2, center=grid.size_y / 2, span=2.4)
        index = port.indices(grid)
        if normal_axis == "x":
            ez = e_profile(centres)[:, None] * window[None, :]
            hy = h_profile(staggered)[:, None] * window[None, :]
            hx = np.zeros_like(ez)
            h_true_line = (h_profile(centres[index[0]]) * window)[index[1]]
            truth = -0.5 * np.real(np.sum(ez[index] * np.conj(h_true_line))) * grid.dl_m
        else:
            ez = e_profile(centres)[None, :] * window[:, None]
            hx = h_profile(staggered)[None, :] * window[:, None]
            hy = np.zeros_like(ez)
            h_true_line = (h_profile(centres[index[1]]) * window)[index[0]]
            truth = 0.5 * np.real(np.sum(ez[index] * np.conj(h_true_line))) * grid.dl_m
        measured = poynting_flux_through_port(ez, hx, hy, port, grid)
        return abs(measured - truth) / abs(truth)

    @pytest.mark.parametrize("normal_axis", ["x", "y"])
    def test_flux_error_is_second_order(self, normal_axis):
        errors = [self._two_wave_error(dl, normal_axis) for dl in (0.05, 0.025, 0.0125)]
        # Raw staggered sampling errs by ~28% / 5% / 2% here (first order);
        # the colocated monitor must be both accurate and better than first
        # order between successive halvings.
        assert errors[-1] < 3e-3
        assert errors[1] < errors[0] / 3.0
        assert errors[2] < errors[1] / 3.0

    def test_flux_agrees_with_overlap_across_resolutions(self):
        """Straight-waveguide parity: flux-based and overlap-based transmission
        agree and converge as dl -> 0 (PML thickness held in physical units)."""
        gaps = []
        for dl in (0.1, 0.05, 0.025):
            npml = int(round(0.8 / dl))
            n = int(4.0 / dl) + 2 * npml
            grid = Grid(nx=n, ny=n, dl=dl, npml=npml)
            eps = np.full(grid.shape, constants.EPS_SIO2)
            y = grid.y_coords()
            eps[:, np.abs(y - grid.size_y / 2) <= 0.24] = constants.EPS_SI
            margin = (npml + 3) * dl
            ports = [
                Port("in", "x", margin, grid.size_y / 2, 1.44, +1),
                Port("out", "x", grid.size_x - margin, grid.size_y / 2, 1.44, +1),
            ]
            result = Simulation(grid, eps, 1.55, ports).solve("in")
            t_flux = result.transmissions["out"]
            t_overlap = abs(result.s_params["out"]) ** 2
            assert t_flux == pytest.approx(1.0, abs=5e-3)
            gaps.append(abs(t_flux - t_overlap))
        assert gaps[1] < gaps[0] and gaps[2] < gaps[1]
        assert gaps[-1] < 2.5e-2
