"""Table II — gradient-computation methods.

Compares the cosine similarity (against the FDFD adjoint gradient) of the
three gradient routes for FNO and UNet surrogates: auto-diff through a
black-box transmission regressor, auto-diff through the field predictor, and
the adjoint formula on predicted forward + adjoint fields.  Expected shape:
the forward+adjoint-field method is clearly the most accurate.
"""

import numpy as np
import pytest

from common import BENCH, DEVICE_KWARGS, build_dataset, build_model, print_table, train_model
from repro.devices import make_device
from repro.surrogate import compute_gradient, gradient_numerical
from repro.utils.numerics import cosine_similarity
from repro.utils.rng import get_rng


@pytest.fixture(scope="module")
def table2_results():
    dataset = build_dataset("bending", "perturbed_opt_traj", seed=0)
    device = make_device("bending", fidelity="low", **DEVICE_KWARGS)

    # Train the two field surrogates and the black-box regressor once.
    field_models = {}
    for name in ("fno", "unet"):
        model = build_model(name, rng=0)
        train_model(model, dataset, seed=0)
        field_models[name] = model
    black_box = build_model("blackbox", rng=0)
    train_model(black_box, dataset, target="transmission", seed=0)

    # Score every gradient method on a few test designs.
    rng = get_rng(0)
    indices = rng.choice(len(dataset), size=min(3, len(dataset)), replace=False)
    results = {}
    rows = []
    for model_name, model in field_models.items():
        for method in ("ad_black_box", "ad_pred_field", "fwd_adj_field"):
            sims = []
            for index in indices:
                sample = dataset[int(index)]
                spec = device.specs[sample.spec_index]
                truth = gradient_numerical(device, sample.density, spec)
                estimate = compute_gradient(
                    method,
                    device,
                    sample.density,
                    spec,
                    field_model=model,
                    field_scale=dataset.field_scale,
                    black_box_model=black_box,
                )
                sims.append(cosine_similarity(estimate, truth))
            results[(model_name, method)] = float(np.mean(sims))
            rows.append([model_name.upper(), method, f"{results[(model_name, method)]:.4f}"])
    print_table(
        "Table II: gradient-computation methods (bending waveguide)",
        ["model", "Grad Method", "Grad Similarity"],
        rows,
    )
    return results


def test_table2_fwd_adj_field_is_most_accurate(table2_results, benchmark):
    """The forward+adjoint-field gradient beats both auto-diff routes."""
    from common import SCALE

    assert all(np.isfinite(v) for v in table2_results.values())
    wins = 0
    for model_name in ("fno", "unet"):
        fwd_adj = table2_results[(model_name, "fwd_adj_field")]
        others = [
            table2_results[(model_name, "ad_black_box")],
            table2_results[(model_name, "ad_pred_field")],
        ]
        if fwd_adj >= max(others) - 1e-9:
            wins += 1
    if SCALE == "full":
        assert wins == 2
    elif wins < 1:
        print(
            "WARNING: paper ordering not yet visible at the fast benchmark scale; "
            "re-run with REPRO_BENCH_SCALE=full for converged models."
        )

    # Representative unit of work: one numerical adjoint gradient.
    device = make_device("bending", fidelity="low", **DEVICE_KWARGS)
    density = np.full(device.design_shape, 0.5)
    benchmark(lambda: gradient_numerical(device, density, device.specs[0]))
