"""Active-learning label-budget benchmark: targeted vs random acquisition.

Two identical surrogates start from the same seed dataset and the same
weights; each round both may label the same *number* of new designs at the
exact tier — but the **active** arm scores a candidate pool by surrogate
disagreement against the cheap iterative tier and labels only the top-k,
while the **random** arm labels an arbitrary k of the same pool.  The figure
of merit is the exact-solve budget each arm spends to reach the same test
N-L2: ``label_budget_ratio < 1`` means active acquisition reached the random
arm's final accuracy with proportionally fewer exact-tier labels.

Writes ``BENCH_active.json``.  ``--quick`` shrinks the run to a CI smoke gate
that *asserts* the loop's contracts instead of measuring savings:
pre-existing loader samples stay byte-identical across ``refresh()``,
acquired design ids are fresh and monotonic, acquisition weights ride into
the loader, the promoted checkpoint keeps serving, and both arms complete.
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))

from common import print_table, write_bench_record

from repro.data.dataset import datasets_bit_identical
from repro.data.generator import DatasetGenerator, GeneratorConfig
from repro.data.loader import ShardDataLoader
from repro.train.active import ActiveLearningConfig, ActiveLearningLoop
from repro.train.models import make_model

# The learning problem: field surrogates on perturbed optimization-trajectory
# designs (the distribution the paper's sampling study favours, and one the
# models demonstrably learn at benchmark scale).  The candidate pool mixes a
# stratified trajectory sweep with perturbed copies of high-FoM iterates, so
# it contains genuine redundancy for random acquisition to waste labels on.
DEVICE_KWARGS = dict(domain=3.0, design_size=1.4, dl=0.1)
STRATEGY_KWARGS = dict(iterations=10)
QUICK_STRATEGY_KWARGS = dict(iterations=4)
MODEL_KWARGS = dict(width=12, modes=(4, 4), depth=2, rng=0)
QUICK_MODEL_KWARGS = dict(width=8, modes=(3, 3), depth=2, rng=0)


def seed_config(shard_dir: str, quick: bool) -> GeneratorConfig:
    return GeneratorConfig(
        device_name="bending",
        strategy="perturbed_opt_traj",
        num_designs=3 if quick else 6,
        fidelities=("high",),
        engine="direct",
        with_gradient=False,
        seed=0,
        strategy_kwargs=QUICK_STRATEGY_KWARGS if quick else STRATEGY_KWARGS,
        device_kwargs=DEVICE_KWARGS,
        shard_size=3,
        shard_dir=shard_dir,
    )


def loop_config(acquisition: str, quick: bool) -> ActiveLearningConfig:
    if quick:
        return ActiveLearningConfig(
            rounds=2,
            candidates_per_round=4,
            acquire_per_round=2,
            epochs_per_round=2,
            acquisition=acquisition,
            seed=0,
        )
    return ActiveLearningConfig(
        rounds=8,
        candidates_per_round=30,
        acquire_per_round=3,
        epochs_per_round=20,
        acquisition=acquisition,
        seed=0,
    )


def run_arm(acquisition: str, shard_dir: str, val_set, quick: bool):
    """One acquisition strategy, from an identical starting point."""
    model_kwargs = QUICK_MODEL_KWARGS if quick else MODEL_KWARGS
    loop = ActiveLearningLoop(
        model=make_model("ffno", **model_kwargs),
        model_name="ffno",
        model_kwargs=model_kwargs,
        generator_config=seed_config(shard_dir, quick),
        val_set=val_set,
        config=loop_config(acquisition, quick),
        trainer_kwargs=dict(batch_size=4, learning_rate=3e-3),
    )
    start = time.perf_counter()
    records = loop.run()
    seconds = time.perf_counter() - start
    return loop, records, seconds


def budget_to_reach(records, target: float) -> int | None:
    """Exact labels the arm had spent when it first matched ``target``."""
    for record in records:
        if record.val_n_l2 <= target:
            return record.exact_labels
    return None


def records_json(records) -> list[dict]:
    return [
        {
            "round": r.round_index,
            "exact_labels": r.exact_labels,
            "num_samples": r.num_samples,
            "val_n_l2": round(r.val_n_l2, 6),
            "acquired": list(r.acquired_design_ids),
            "weights": [round(w, 4) for w in r.sample_weights],
            "cheap_solves": r.cheap_solves,
        }
        for r in records
    ]


def assert_quick_contracts(loop, records, shard_dir: str) -> None:
    """The CI gate: the loop's structural contracts, asserted end to end."""
    # Growth actually happened, with fresh monotonically increasing ids.
    seen: set[int] = set()
    for record in records[:-1]:
        assert record.acquired_design_ids, "acquisition round labelled nothing"
        for design_id in record.acquired_design_ids:
            assert design_id not in seen, "acquired design id re-used"
            seen.add(design_id)
    assert records[-1].exact_labels > records[0].exact_labels, (
        "exact-label budget did not grow across rounds"
    )
    assert all(np.isfinite(r.val_n_l2) for r in records), "non-finite validation error"

    # Acquisition weights rode through shard metadata into the loader.
    weights = loop.loader.sample_weight_array()
    assert weights.min() >= 1.0, "acquisition weights must be >= 1"

    # refresh() contract: a fresh loader over the grown directory sees the
    # same samples, and the grown loader's pre-existing prefix is
    # byte-identical to a fresh read restricted to the same design ids.
    fresh = ShardDataLoader.from_directory(
        shard_dir, fidelities=loop.generator_config.fidelities
    )
    assert len(fresh) == len(loop.loader), "refresh missed or duplicated samples"
    grown = loop.loader.materialize()
    assert datasets_bit_identical(
        grown,
        ShardDataLoader(
            loop.loader._paths,
            fidelities=loop.generator_config.fidelities,
            field_scale=loop.loader.field_scale,
        ).materialize(),
    ), "refreshed loader diverged from a fresh loader over the same shards"

    # The promoted checkpoint still serves as engine="neural:<ckpt>".
    checkpoint = Path(shard_dir) / loop.config.checkpoint_name
    assert checkpoint.is_file(), "promotion wrote no checkpoint"
    served = DatasetGenerator(
        GeneratorConfig(
            device_name="bending",
            strategy="random",
            num_designs=1,
            fidelities=("low",),
            engine=f"neural:{checkpoint}",
            with_gradient=False,
            seed=5,
            device_kwargs=DEVICE_KWARGS,
        )
    ).generate()
    assert np.isfinite(served.target_array()).all(), "promoted engine not servable"


def run(quick: bool) -> dict:
    with tempfile.TemporaryDirectory(prefix="bench_active_") as tmp:
        val_set = DatasetGenerator(
            GeneratorConfig(
                device_name="bending",
                strategy="perturbed_opt_traj",
                num_designs=4 if quick else 10,
                fidelities=("high",),
                engine="direct",
                with_gradient=False,
                seed=424_242,
                strategy_kwargs=QUICK_STRATEGY_KWARGS if quick else STRATEGY_KWARGS,
                device_kwargs=DEVICE_KWARGS,
            )
        ).generate()

        active_dir = str(Path(tmp) / "active")
        random_dir = str(Path(tmp) / "random")
        active_loop, active_records, active_seconds = run_arm(
            "disagreement", active_dir, val_set, quick
        )
        random_loop, random_records, random_seconds = run_arm(
            "random", random_dir, val_set, quick
        )

        if quick:
            assert_quick_contracts(active_loop, active_records, active_dir)
            assert_quick_contracts(random_loop, random_records, random_dir)

        # Matched-accuracy budget: how many exact labels did each arm spend
        # to reach the random arm's final validation error?
        target = random_records[-1].val_n_l2
        active_budget = budget_to_reach(active_records, target)
        random_budget = random_records[-1].exact_labels
        ratio = (
            round(active_budget / random_budget, 4)
            if active_budget is not None
            else None
        )

        record = {
            "quick": quick,
            "device": "bending",
            "acquisition": "disagreement",
            "baseline": "random",
            "matched_val_n_l2": round(target, 6),
            "active_exact_labels_at_match": active_budget,
            "random_exact_labels": random_budget,
            "label_budget_ratio": ratio,
            "active_final_val_n_l2": round(active_records[-1].val_n_l2, 6),
            "random_final_val_n_l2": round(random_records[-1].val_n_l2, 6),
            "active_cheap_solves": int(sum(r.cheap_solves for r in active_records)),
            "active_seconds": round(active_seconds, 3),
            "random_seconds": round(random_seconds, 3),
            "active_rounds": records_json(active_records),
            "random_rounds": records_json(random_records),
        }

    header = ["round", "active labels", "active val N-L2", "random labels", "random val N-L2"]
    table = [
        [
            str(a.round_index),
            str(a.exact_labels),
            f"{a.val_n_l2:.4f}",
            str(b.exact_labels),
            f"{b.val_n_l2:.4f}",
        ]
        for a, b in zip(active_records, random_records)
    ]
    print_table("Active vs random acquisition (exact-tier label budget)", header, table)
    if ratio is not None:
        print(
            f"active reached the random arm's final val N-L2 ({target:.4f}) with "
            f"{active_budget}/{random_budget} exact labels "
            f"(label_budget_ratio={ratio})"
        )
    else:
        print(
            f"active did not reach the random arm's final val N-L2 "
            f"({target:.4f}) within its budget"
        )
    return record


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke gate: two tiny rounds plus loop-contract assertions",
    )
    args = parser.parse_args(argv)
    record = run(quick=args.quick)
    path = write_bench_record("active_quick" if args.quick else "active", record)
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
