"""Shared configuration and helpers for the benchmark harnesses.

Every benchmark regenerates one table or figure of the paper's evaluation
section.  The default ("fast") scale keeps the full suite runnable on a laptop
CPU in tens of minutes by shrinking datasets, model widths and epoch counts;
set ``REPRO_BENCH_SCALE=full`` to run closer to the paper's operating point
(hours of CPU time).  The *shape* of each result — which method wins and by
roughly what margin — is what the harness reproduces; absolute numbers depend
on the compute budget.
"""

from __future__ import annotations

import json
import os
import platform
import time
from dataclasses import dataclass
from pathlib import Path

from repro.data.dataset import PhotonicDataset, split_dataset
from repro.data.generator import generate_dataset
from repro.train.models import make_model
from repro.train.trainer import Trainer

SCALE = os.environ.get("REPRO_BENCH_SCALE", "fast").lower()

# Devices are shrunk slightly relative to the library defaults so one forward
# solve costs ~50 ms on a laptop core.
DEVICE_KWARGS = dict(domain=3.5, design_size=1.8)


@dataclass(frozen=True)
class BenchScale:
    """Knobs that trade benchmark runtime against fidelity to the paper."""

    num_designs: int
    opt_iterations: int
    epochs: int
    width: int
    modes: tuple[int, int]
    depth: int
    unet_width: int
    batch_size: int
    grad_samples: int


SCALES = {
    "fast": BenchScale(
        num_designs=16,
        opt_iterations=12,
        epochs=12,
        width=16,
        modes=(6, 6),
        depth=3,
        unet_width=12,
        batch_size=6,
        grad_samples=3,
    ),
    "full": BenchScale(
        num_designs=64,
        opt_iterations=40,
        epochs=60,
        width=32,
        modes=(10, 10),
        depth=4,
        unet_width=24,
        batch_size=8,
        grad_samples=8,
    ),
}

BENCH = SCALES.get(SCALE, SCALES["fast"])


def build_dataset(device_name: str, strategy: str, seed: int = 0, num_designs: int | None = None) -> PhotonicDataset:
    """Generate a labelled dataset for one device and sampling strategy."""
    strategy_kwargs = None
    if strategy in ("opt_traj", "perturbed_opt_traj"):
        strategy_kwargs = dict(iterations=BENCH.opt_iterations)
    return generate_dataset(
        device_name,
        strategy,
        num_designs=num_designs or BENCH.num_designs,
        seed=seed,
        with_gradient=False,
        strategy_kwargs=strategy_kwargs,
        device_kwargs=DEVICE_KWARGS,
    )


def build_model(name: str, rng: int = 0):
    """Instantiate a surrogate at the benchmark scale."""
    if name == "unet":
        return make_model("unet", base_width=BENCH.unet_width, rng=rng)
    if name == "blackbox":
        return make_model("blackbox", width=BENCH.unet_width, rng=rng)
    return make_model(name, width=BENCH.width, modes=BENCH.modes, depth=BENCH.depth, rng=rng)


def train_model(model, dataset: PhotonicDataset, target: str = "field", seed: int = 0):
    """Split, train and return ``(trainer, train_set, test_set)``."""
    train_set, test_set = split_dataset(dataset, train_fraction=0.75, rng=seed)
    trainer = Trainer(
        model,
        train_set,
        test_set,
        target=target,
        epochs=BENCH.epochs,
        batch_size=BENCH.batch_size,
        learning_rate=3e-3,
        seed=seed,
    )
    trainer.train()
    return trainer, train_set, test_set


def write_bench_record(name: str, record: dict) -> Path:
    """Write the standard ``BENCH_<name>.json`` record next to the benchmarks.

    The record is wrapped with the benchmark name, the scale it ran at and
    host/timestamp metadata so CI logs and local runs are comparable.
    """
    path = Path(__file__).parent / f"BENCH_{name}.json"
    payload = {
        "benchmark": name,
        "scale": SCALE,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "processor": platform.processor() or "unknown",
        },
        "record": record,
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def print_table(title: str, header: list[str], rows: list[list[str]]) -> None:
    """Print a paper-style table to stdout (captured in bench_output.txt)."""
    widths = [max(len(str(row[i])) for row in [header] + rows) for i in range(len(header))]
    line = "  ".join(str(h).ljust(w) for h, w in zip(header, widths))
    print(f"\n=== {title} ===")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
    print()
