"""Table I — data-sampling strategies: random vs. perturbed opt-trajectory.

For FNO and UNet trained on equally sized datasets of the bending waveguide,
the table reports Train N-L2 / Test N-L2 / test gradient similarity.  Expected
shape (as in the paper): models trained on the perturbed trajectory dataset
generalize better (lower test error) and give much higher gradient similarity
than models trained on randomly sampled patterns.
"""

import pytest

from common import BENCH, build_dataset, build_model, print_table, train_model
from repro.train.evaluation import evaluate_model


@pytest.fixture(scope="module")
def table1_results():
    datasets = {
        "Perturb Opt-Traj": build_dataset("bending", "perturbed_opt_traj", seed=0),
        "random": build_dataset("bending", "random", seed=0),
    }
    rows = []
    raw = {}
    for model_name in ("fno", "unet"):
        for dataset_name, dataset in datasets.items():
            model = build_model(model_name, rng=0)
            trainer, train_set, test_set = train_model(model, dataset, seed=0)
            metrics = evaluate_model(
                model, train_set, test_set, num_gradient_samples=BENCH.grad_samples, rng=0
            )
            raw[(model_name, dataset_name)] = metrics
            rows.append(
                [
                    model_name.upper(),
                    dataset_name,
                    f"{metrics['train_n_l2']:.4f}",
                    f"{metrics['test_n_l2']:.4f}",
                    f"{metrics['grad_similarity']:.4f}",
                ]
            )
    print_table(
        "Table I: sampling strategies (bending waveguide)",
        ["model", "dataset", "Train N-L2", "Test N-L2", "Grad Similarity"],
        rows,
    )
    return raw


def test_table1_sampling_strategies(table1_results, benchmark):
    """Perturbed opt-traj sampling beats random sampling on generalization."""
    import numpy as np

    from common import SCALE

    better = 0
    for model_name in ("fno", "unet"):
        perturbed = table1_results[(model_name, "Perturb Opt-Traj")]
        random = table1_results[(model_name, "random")]
        assert np.isfinite(perturbed["test_n_l2"]) and np.isfinite(random["test_n_l2"])
        if perturbed["grad_similarity"] >= random["grad_similarity"]:
            better += 1
        if perturbed["test_n_l2"] <= random["test_n_l2"]:
            better += 1
    if SCALE == "full":
        # At the paper's operating point the ordering holds for every pair.
        assert better >= 3
    elif better < 2:
        print(
            "WARNING: paper ordering not yet visible at the fast benchmark scale; "
            "re-run with REPRO_BENCH_SCALE=full for converged models."
        )

    # Benchmark a representative unit of work: one dataset sample simulation.
    from common import DEVICE_KWARGS
    from repro.devices import make_device
    import numpy as np

    device = make_device("bending", fidelity="low", **DEVICE_KWARGS)
    density = np.full(device.design_shape, 0.5)
    benchmark(lambda: device.figure_of_merit(density))
