"""Ablation benchmarks for the design choices called out in DESIGN.md.

* perturbation amplitude in perturbed opt-traj sampling (dataset balance),
* low/high fidelity mesh ratio (solver cost vs. accuracy trade-off),
* blur radius / binarization sharpness of the fabrication projection
  (manufacturability vs. nominal performance).

These are lightweight: they exercise the data and inverse-design machinery
without any surrogate training.
"""

import time

import numpy as np
import pytest

from common import DEVICE_KWARGS, print_table
from repro.data.analysis import distribution_balance
from repro.data.generator import generate_dataset
from repro.devices import make_device
from repro.invdes import AdjointOptimizer, InverseDesignProblem
from repro.parametrization.analysis import binarization_level, minimum_feature_size
from repro.parametrization.transforms import BinarizationProjection, BlurTransform, TransformPipeline


def test_ablation_perturbation_amplitude(benchmark):
    """Larger perturbations of trajectory samples balance the FoM distribution."""
    rows = []
    balances = {}
    for amplitude in (0.0, 0.2, 0.5):
        dataset = generate_dataset(
            "bending",
            "perturbed_opt_traj",
            num_designs=10,
            seed=0,
            with_gradient=False,
            strategy_kwargs=dict(
                iterations=8, noise_amplitude=max(amplitude, 1e-6), perturbation_fraction=0.5
            ),
            device_kwargs=DEVICE_KWARGS,
        )
        balances[amplitude] = distribution_balance(dataset)
        rows.append([f"{amplitude:.1f}", f"{balances[amplitude]:.3f}"])
    print_table(
        "Ablation: perturbation amplitude vs. dataset balance",
        ["noise amplitude", "FoM-histogram balance"],
        rows,
    )
    assert all(np.isfinite(v) for v in balances.values())
    benchmark(lambda: distribution_balance(generate_dataset(
        "bending", "random", num_designs=4, seed=1, with_gradient=False,
        device_kwargs=DEVICE_KWARGS,
    )))


def test_ablation_fidelity_cost_accuracy(benchmark):
    """Coarse meshes are much cheaper but deviate from the fine-mesh transmission."""
    rows = []
    results = {}
    for dl in (0.1, 0.05):
        device = make_device("bending", dl=dl, **DEVICE_KWARGS)
        density = device.initial_density("waveguide")
        start = time.perf_counter()
        fom = device.figure_of_merit(density)
        elapsed = time.perf_counter() - start
        results[dl] = (fom, elapsed, device.grid.n_points)
        rows.append([f"{dl:.3f}", str(device.grid.n_points), f"{fom:.3f}", f"{elapsed*1e3:.0f} ms"])
    print_table(
        "Ablation: mesh fidelity vs. cost and figure of merit",
        ["dl (um)", "unknowns", "FoM (waveguide init)", "solve time"],
        rows,
    )
    assert results[0.05][2] > results[0.1][2]
    coarse_device = make_device("bending", dl=0.1, **DEVICE_KWARGS)
    density = coarse_device.initial_density("waveguide")
    benchmark(lambda: coarse_device.figure_of_merit(density))


def test_ablation_projection_strength(benchmark):
    """Stronger blur + sharper projection yields more manufacturable designs."""
    device = make_device("bending", fidelity="low", **DEVICE_KWARGS)
    rows = []
    outcomes = {}
    for blur, beta in ((0.5, 2.0), (1.5, 8.0), (2.5, 16.0)):
        problem = InverseDesignProblem(
            device,
            transforms=TransformPipeline(
                [BlurTransform(radius_cells=blur), BinarizationProjection(beta=beta)]
            ),
        )
        trajectory = AdjointOptimizer(problem, learning_rate=0.25).run(
            theta0=problem.initial_theta("waveguide"), iterations=8
        )
        final = trajectory[-1].density
        outcomes[(blur, beta)] = dict(
            fom=trajectory.best().fom,
            binarization=binarization_level(final),
            mfs=minimum_feature_size(final),
        )
        rows.append(
            [
                f"{blur:.1f}",
                f"{beta:.0f}",
                f"{outcomes[(blur, beta)]['fom']:.3f}",
                f"{outcomes[(blur, beta)]['binarization']:.2f}",
                f"{outcomes[(blur, beta)]['mfs']:.1f}",
            ]
        )
    print_table(
        "Ablation: projection strength vs. performance and manufacturability",
        ["blur radius (cells)", "beta", "best FoM", "binarization", "min feature (cells)"],
        rows,
    )
    strongest = outcomes[(2.5, 16.0)]
    weakest = outcomes[(0.5, 2.0)]
    assert strongest["mfs"] >= weakest["mfs"] - 1e-9
    benchmark(lambda: binarization_level(device.initial_density("waveguide")))
