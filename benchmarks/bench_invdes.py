"""Inverse-design optimization-loop throughput: direct vs iterative vs recycled.

Every Adam step of an adjoint optimization changes the permittivity, so the
content-keyed factorization cache never hits and the direct engine pays a full
SuperLU factorization per iteration — the hot path this benchmark measures.
The recycled engine instead keeps the LU of a reference permittivity and
serves nearby iterates with matvec-free diagonal-update refinement (Krylov
fallback), warm-started from the previous iteration's fields through the
optimizer's :class:`~repro.fdfd.engine.SolveWorkspace`.

For each benchmark device the same optimization (same ``theta0``, same
learning rate, same iteration count) runs once per engine; reported are
iterations/sec, total wall-clock, and — so speed never silently buys wrong
gradients — a gradient-fidelity column: the cosine similarity between the
recycled and direct gradients at the final iterate, and the relative drift of
the final figure of merit.

Run directly (``python benchmarks/bench_invdes.py``; ``--quick`` for the CI
smoke variant) or through pytest.  Emits the standard ``BENCH_invdes.json``.
The optimization uses fine Adam steps (the "hundreds of adjoint iterations"
regime of MAPS-InvDes), where operator drift per iteration is small — the
regime factorization recycling is designed for.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))

from common import print_table, write_bench_record  # noqa: E402

from repro.devices.factory import make_device  # noqa: E402
from repro.fdfd.engine import FactorizationCache, make_engine  # noqa: E402
import repro.fdfd.simulation as _simulation  # noqa: E402
from repro.invdes import AdjointOptimizer, InverseDesignProblem  # noqa: E402

# Fine-discretization devices (the MAPS "high"-fidelity cell size) with fine
# Adam steps: the realistic operating point of a production inverse-design
# run, where per-iteration operator drift is small.
DEVICES = ({"name": "bending", "dl": 0.05}, {"name": "crossing", "dl": 0.05})
DEVICE_KWARGS = dict(domain=4.0, design_size=2.0)
ENGINES = ("direct", "iterative", "recycled")
ITERATIONS = 16
REPEATS = 2
LEARNING_RATE = 0.02


def _fresh_engine(name: str):
    """Engine instance with a private cache, so runs cannot share LUs."""
    if name == "iterative":
        # The ILU tier needs a residual tolerance tight enough for adjoint
        # gradients; everything else stays at the engine defaults.
        return make_engine(name, rtol=1e-8, cache=FactorizationCache())
    return make_engine(name, cache=FactorizationCache())


def _run_optimization(device_spec: dict, engine_name: str, iterations: int, repeats=REPEATS):
    """Best-of-``repeats`` full optimizer runs (deterministic trajectory).

    Each repeat starts cold: fresh engine, fresh caches.  Repeating and
    keeping the best wall-clock filters scheduler noise out of the recorded
    iterations/sec, exactly like the engine-throughput benchmark does.
    """
    device = make_device(device_spec["name"], dl=device_spec["dl"], **DEVICE_KWARGS)
    best, trajectory, problem = float("inf"), None, None
    for _ in range(repeats):
        _simulation._NORMALIZATION_CACHE.clear()
        problem = InverseDesignProblem(device, engine=_fresh_engine(engine_name))
        optimizer = AdjointOptimizer(problem, learning_rate=LEARNING_RATE)
        theta0 = problem.initial_theta("waveguide")
        start = time.perf_counter()
        trajectory = optimizer.run(theta0=theta0, iterations=iterations)
        best = min(best, time.perf_counter() - start)
    return best, trajectory, problem


def _gradient_fidelity(device_spec: dict, theta: np.ndarray) -> float:
    """Cosine similarity between recycled and direct gradients at ``theta``.

    The recycled engine is evaluated mid-recycle: a first evaluation installs
    the reference factorization, a second at a slightly perturbed design goes
    through the recycled (refinement) path — the code path whose gradients
    the optimization actually consumes.
    """
    device = make_device(device_spec["name"], dl=device_spec["dl"], **DEVICE_KWARGS)
    perturbed = theta + 1e-3 * np.random.default_rng(0).normal(size=theta.shape)

    direct_problem = InverseDesignProblem(device, engine=_fresh_engine("direct"))
    _, grad_direct = direct_problem.value_and_grad(perturbed)

    recycled_problem = InverseDesignProblem(device, engine=_fresh_engine("recycled"))
    recycled_problem.value_and_grad(theta)  # installs the reference LU
    _, grad_recycled = recycled_problem.value_and_grad(perturbed)

    norm = np.linalg.norm(grad_direct) * np.linalg.norm(grad_recycled)
    if norm == 0:
        return 1.0
    return float(np.vdot(grad_direct.ravel(), grad_recycled.ravel()).real / norm)


def run_benchmark(devices=DEVICES, iterations=ITERATIONS, record_name="invdes") -> dict:
    """Time every engine on every device and return the record dict."""
    results = []
    for device_spec in devices:
        per_engine: dict[str, dict] = {}
        final_theta = None
        for engine_name in ENGINES:
            elapsed, trajectory, problem = _run_optimization(
                device_spec, engine_name, iterations
            )
            entry = {
                "wall_clock_s": elapsed,
                "iterations_per_s": (iterations + 1) / elapsed,
                "final_fom": float(trajectory[-1].fom),
            }
            stats = getattr(problem.backend.engine, "stats", None)
            if stats is not None:
                entry["factorizations"] = stats.factorizations
                entry["recycled_solves"] = stats.recycled_solves
                entry["refinement_sweeps"] = stats.krylov_iterations
            per_engine[engine_name] = entry
            if engine_name == "direct":
                # The gradient-fidelity probe runs at the direct run's final
                # latent point — a converged, binarized design, the hardest
                # place for an approximate solve to stay faithful.
                final_theta = trajectory[-1].theta

        direct = per_engine["direct"]
        recycled = per_engine["recycled"]
        fom_scale = max(abs(direct["final_fom"]), 1e-12)
        results.append(
            {
                "device": device_spec["name"],
                "dl": device_spec["dl"],
                "iterations": iterations,
                "learning_rate": LEARNING_RATE,
                "engines": per_engine,
                "speedup_recycled_vs_direct": (
                    recycled["iterations_per_s"] / direct["iterations_per_s"]
                ),
                "gradient_cosine_recycled_vs_direct": _gradient_fidelity(
                    device_spec, final_theta
                ),
                "fom_drift_recycled_vs_direct": (
                    abs(recycled["final_fom"] - direct["final_fom"]) / fom_scale
                ),
            }
        )

    rows = [
        [
            r["device"],
            f"{r['engines']['direct']['iterations_per_s']:.2f}",
            f"{r['engines']['iterative']['iterations_per_s']:.2f}",
            f"{r['engines']['recycled']['iterations_per_s']:.2f}",
            f"{r['speedup_recycled_vs_direct']:.2f}x",
            f"{r['gradient_cosine_recycled_vs_direct']:.6f}",
            f"{r['fom_drift_recycled_vs_direct']:.2e}",
        ]
        for r in results
    ]
    print_table(
        f"Inverse-design loop throughput ({iterations} Adam iterations)",
        ["device", "direct it/s", "iterative it/s", "recycled it/s",
         "speedup", "grad cosine", "FoM drift"],
        rows,
    )
    record = {"results": results}
    path = write_bench_record(record_name, record)
    print(f"wrote {path}")
    return record


def _check_record(record: dict, min_speedup: float) -> None:
    """Shared assertions: recycled must be fast *and* right."""
    for result in record["results"]:
        speedup = result["speedup_recycled_vs_direct"]
        assert speedup >= min_speedup, (
            f"{result['device']}: recycled speedup only {speedup:.2f}x "
            f"(need >= {min_speedup}x)"
        )
        cosine = result["gradient_cosine_recycled_vs_direct"]
        assert cosine >= 0.999, f"{result['device']}: gradient cosine {cosine:.6f} < 0.999"
        drift = result["fom_drift_recycled_vs_direct"]
        assert drift <= 0.01, f"{result['device']}: FoM drift {drift:.2e} > 1%"


def test_recycled_engine_speedup():
    """Recycling beats per-iteration refactorization >= 2x with exact gradients."""
    record = run_benchmark()
    _check_record(record, min_speedup=2.0)


def main(argv: list[str]) -> int:
    quick = "--quick" in argv
    if quick:
        # CI smoke: one device, fewer iterations; assert the recycled engine
        # is not slower than direct and its gradients stay faithful.  Writes
        # its own record so the full BENCH_invdes.json is never clobbered.
        record = run_benchmark(
            devices=DEVICES[:1], iterations=8, record_name="invdes_quick"
        )
        _check_record(record, min_speedup=1.0)
    else:
        record = run_benchmark()
        _check_record(record, min_speedup=2.0)
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
