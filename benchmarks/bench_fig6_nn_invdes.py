"""Figure 6 — inverse design driven by a neural surrogate.

(a) The optimization trajectory when the adjoint gradients come from the
trained surrogate, with the transmission of every iterate re-evaluated by the
FDFD solver as ground truth.
(b) The field of the final design as predicted by the surrogate vs. computed
by FDFD (reported here as the normalized L2 distance between the two).

Expected shape: the NN-driven loop improves the FDFD-verified transmission
substantially over the initial design and the final predicted field agrees
with FDFD to within the surrogate's test error.
"""

import numpy as np
import pytest

from common import BENCH, DEVICE_KWARGS, build_dataset, build_model, print_table, train_model
from repro.devices import make_device
from repro.invdes import AdjointOptimizer, InverseDesignProblem
from repro.surrogate import NeuralFieldBackend
from repro.utils.numerics import normalized_l2


@pytest.fixture(scope="module")
def fig6_run():
    device = make_device("bending", fidelity="low", **DEVICE_KWARGS)
    dataset = build_dataset("bending", "perturbed_opt_traj", seed=0)
    model = build_model("fno", rng=0)
    trainer, _, test_set = train_model(model, dataset, seed=0)

    backend = NeuralFieldBackend(model, dataset.field_scale)
    problem = InverseDesignProblem(device, backend=backend)
    trajectory_log = []

    def verify(iteration, evaluation):
        trajectory_log.append(
            {
                "iteration": iteration,
                "nn_fom": evaluation.fom,
                "fdfd_fom": device.figure_of_merit(evaluation.density),
                "density": evaluation.density,
            }
        )

    optimizer = AdjointOptimizer(problem, learning_rate=0.2, beta_schedule={0: 4.0})
    optimizer.run(
        theta0=problem.initial_theta("waveguide"),
        iterations=BENCH.opt_iterations,
        callback=verify,
    )
    return device, model, dataset, trajectory_log, trainer.history.final()


def test_fig6a_nn_driven_trajectory(fig6_run, benchmark):
    """NN-driven adjoint optimization improves the FDFD-verified transmission."""
    device, _, _, log, final_metrics = fig6_run
    rows = [
        [str(entry["iteration"]), f"{entry['nn_fom']:.3f}", f"{entry['fdfd_fom']:.3f}"]
        for entry in log
    ]
    print_table(
        "Figure 6(a): NN-driven optimization trajectory (bending waveguide)",
        ["iteration", "NN-estimated FoM", "FDFD-verified FoM"],
        rows,
    )
    from common import SCALE

    first = log[0]["fdfd_fom"]
    best = max(entry["fdfd_fom"] for entry in log)
    print(f"surrogate test N-L2 at the end of training: {final_metrics.get('test_n_l2'):.3f}")
    print(f"FDFD-verified FoM: initial {first:.3f} -> best {best:.3f}")
    assert all(np.isfinite(entry["nn_fom"]) for entry in log)
    assert all(np.isfinite(entry["fdfd_fom"]) for entry in log)
    if SCALE == "full":
        # With a converged surrogate the NN-driven loop improves the design a lot.
        assert best > first + 0.1
    elif best < first - 0.05:
        print(
            "WARNING: the fast-scale surrogate is too weak to drive the optimization; "
            "re-run with REPRO_BENCH_SCALE=full for the paper's behaviour."
        )

    benchmark(lambda: device.figure_of_merit(log[-1]["density"]))


def test_fig6b_final_field_agreement(fig6_run, benchmark):
    """Predicted and FDFD fields of the final design agree to the model's error level."""
    device, model, dataset, log, _ = fig6_run
    final_density = log[-1]["density"]
    spec = device.specs[0]
    sim = device.simulation(final_density, wavelength=spec.wavelength)
    source = sim.mode_source(spec.source_port, spec.source_mode)
    true_ez = sim.solver.solve(sim.eps_r, source).ez

    backend = NeuralFieldBackend(model, dataset.field_scale)
    predicted_ez = backend.predict_field(sim, source)
    error = normalized_l2(predicted_ez, true_ez)
    print(f"\nFigure 6(b): N-L2 distance between NN-predicted and FDFD field: {error:.3f}")
    assert np.isfinite(error)
    assert error < 2.0

    benchmark(lambda: backend.predict_field(sim, source))
