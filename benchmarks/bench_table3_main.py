"""Table III — main results: four surrogates on the six benchmark devices.

For FNO, Factorized-FNO, UNet and NeurOLight on bending / crossing / optical
diode / MDM / WDM / TOS, the table reports Train N-L2 / Test N-L2 / test
gradient similarity.  Expected shape: the physics-aware NeurOLight is the
strongest (or tied-strongest) baseline overall, and every model degrades on
the complex multiplexed devices (MDM, WDM, TOS) relative to the basic ones.
"""

import os

import numpy as np
import pytest

from common import BENCH, build_dataset, build_model, print_table, train_model
from repro.devices import available_devices
from repro.train.evaluation import evaluate_model

MODELS = ("fno", "ffno", "unet", "neurolight")
# The fast scale covers a representative basic + multiplexed subset by default;
# set REPRO_BENCH_DEVICES=all (or REPRO_BENCH_SCALE=full) for all six devices.
_DEVICE_ENV = os.environ.get("REPRO_BENCH_DEVICES", "")
if _DEVICE_ENV == "all" or os.environ.get("REPRO_BENCH_SCALE", "fast") == "full":
    DEVICES = tuple(available_devices())
elif _DEVICE_ENV:
    DEVICES = tuple(name.strip() for name in _DEVICE_ENV.split(",") if name.strip())
else:
    DEVICES = ("bending", "crossing", "mdm")

BASIC_DEVICES = {"bending", "crossing"}


@pytest.fixture(scope="module")
def table3_results():
    results = {}
    rows = []
    for device_name in DEVICES:
        dataset = build_dataset(device_name, "perturbed_opt_traj", seed=0)
        for model_name in MODELS:
            model = build_model(model_name, rng=0)
            trainer, train_set, test_set = train_model(model, dataset, seed=0)
            metrics = evaluate_model(
                model, train_set, test_set, num_gradient_samples=BENCH.grad_samples, rng=0
            )
            results[(device_name, model_name)] = metrics
            rows.append(
                [
                    device_name,
                    model_name,
                    f"{metrics['train_n_l2']:.3f}",
                    f"{metrics['test_n_l2']:.3f}",
                    f"{metrics['grad_similarity']:.3f}",
                ]
            )
    print_table(
        "Table III: predictive baselines across benchmark devices",
        ["device", "model", "Train N-L2", "Test N-L2", "Grad Similarity"],
        rows,
    )
    return results


def test_table3_models_run_on_all_devices(table3_results, benchmark):
    """Every (device, model) pair trains and yields finite standardized metrics."""
    for metrics in table3_results.values():
        assert np.isfinite(metrics["train_n_l2"])
        assert np.isfinite(metrics["test_n_l2"])
        assert -1.0 <= metrics["grad_similarity"] <= 1.0
    benchmark(lambda: sum(m["test_n_l2"] for m in table3_results.values()))


def test_table3_complex_devices_are_harder(table3_results):
    """Multiplexed/active devices show higher test error than basic devices."""
    basic = [
        m["test_n_l2"]
        for (device, _), m in table3_results.items()
        if device in BASIC_DEVICES
    ]
    complex_ = [
        m["test_n_l2"]
        for (device, _), m in table3_results.items()
        if device not in BASIC_DEVICES
    ]
    if not basic or not complex_:
        pytest.skip("device subset does not contain both basic and complex devices")
    assert np.mean(complex_) >= np.mean(basic) - 0.05
