"""Figure 5 — dataset distribution comparison between sampling strategies.

(a) Transmission-ratio histogram for random, optimization-trajectory and
perturbed optimization-trajectory sampling on the bending waveguide.
(b) 2-D embedding of the design patterns showing that perturbed trajectory
sampling covers both the low- and the high-performance regions.

Expected shape: random sampling piles up at low transmission; opt-trajectory
sampling reaches high transmission but is unbalanced; perturbed trajectory
sampling spreads over the whole range (highest histogram entropy).
"""

import numpy as np
import pytest

from common import build_dataset, print_table
from repro.data.analysis import (
    distribution_balance,
    fom_coverage,
    pattern_embedding,
    transmission_histogram,
)

STRATEGIES = ("random", "opt_traj", "perturbed_opt_traj")


@pytest.fixture(scope="module")
def fig5_datasets():
    return {name: build_dataset("bending", name, seed=0) for name in STRATEGIES}


def test_fig5a_transmission_histograms(fig5_datasets, benchmark):
    """Regenerate the Fig. 5(a) histogram series and check its shape."""
    bins = 10
    rows = []
    histograms = {}
    for name, dataset in fig5_datasets.items():
        fractions, edges = transmission_histogram(dataset, bins=bins)
        histograms[name] = fractions
        rows.append(
            [name]
            + [f"{f:.2f}" for f in fractions]
            + [f"{distribution_balance(dataset):.3f}", f"{fom_coverage(dataset, 0.5):.2f}"]
        )
    header = ["strategy"] + [f"{e:.1f}" for e in edges[:-1]] + ["balance", "frac FoM>0.5"]
    print_table("Figure 5(a): transmission-ratio histograms", header, rows)

    # Random sampling concentrates in the low-transmission bins, and does so
    # much more strongly than perturbed trajectory sampling.
    assert histograms["random"][:3].sum() > 0.6
    assert histograms["random"][:3].sum() > histograms["perturbed_opt_traj"][:3].sum()
    # Trajectory-based strategies reach the high-transmission region.
    assert fom_coverage(fig5_datasets["perturbed_opt_traj"], 0.5) > fom_coverage(
        fig5_datasets["random"], 0.5
    )
    # The perturbed strategy covers both the low- and the high-performance
    # regions (random covers only the low end, pure opt-traj mostly the high end).
    perturbed_high = fom_coverage(fig5_datasets["perturbed_opt_traj"], 0.5)
    assert 0.05 < perturbed_high <= 1.0
    random_high = fom_coverage(fig5_datasets["random"], 0.5)
    assert random_high < perturbed_high

    benchmark(lambda: transmission_histogram(fig5_datasets["random"], bins=bins))


def test_fig5b_pattern_embedding(fig5_datasets, benchmark):
    """Regenerate the Fig. 5(b) embedding and check the coverage property."""
    embedding = pattern_embedding(fig5_datasets)
    for name, points in embedding.items():
        assert points.shape == (len(fig5_datasets[name]), 2)

    # Perturbed trajectory samples cover a region at least as large as random
    # sampling (they span both the random-like and the optimized clusters).
    def spread(points):
        return float(np.prod(points.std(axis=0) + 1e-9))

    print("\nFigure 5(b): embedding spread per strategy")
    for name, points in embedding.items():
        print(f"  {name:22s} spread={spread(points):.4f}")
    assert spread(embedding["perturbed_opt_traj"]) > 0

    benchmark(lambda: pattern_embedding(fig5_datasets))
