"""Kerr nonlinear fixed-point throughput: recycled-inner vs direct-inner.

Every outer iteration of the Kerr solve changes only the *diagonal* of the
FDFD operator (``eps_eff = eps + chi3 |E|^2``), which is exactly the workload
the recycled engine's reference-LU refinement path was built for: the direct
inner engine pays a full SuperLU factorization per Born iteration (the
effective permittivity never repeats), while the recycled inner tier keeps one
reference factorization and serves every subsequent iterate with
diagonal-update refinement.

Reported per device:

* **iterations/sec** of the damped Born fixed point with direct vs recycled
  inner solves at matched nonlinear tolerance, over a sweep of nearby designs
  (the inverse-design operating point) — plus the relative field disagreement
  between the two fixed points, so speed never silently buys a wrong answer;
* **gradient cosine vs finite differences** of the implicit-function adjoint
  on both Kerr zoo devices (via the shared ``tests/helpers/fd_grad``);
* **power-sweep transfer curves** over ``device.power_sweep`` — the
  all-optical-switch / limiter behaviour the zoo devices exist to exhibit.

Run directly (``python benchmarks/bench_nonlinear.py``; ``--quick`` for the CI
smoke variant) or through pytest.  Emits the standard ``BENCH_nonlinear.json``.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))
sys.path.insert(0, str(Path(__file__).parent.parent))

from common import print_table, write_bench_record  # noqa: E402

from repro.devices.factory import make_device  # noqa: E402
from repro.fdfd.engine import FactorizationCache, make_engine  # noqa: E402
from repro.fdfd.nonlinear import KerrNonlinearity, NonlinearSimulation  # noqa: E402
import repro.fdfd.simulation as _simulation  # noqa: E402
from repro.invdes.adjoint import evaluate_specs  # noqa: E402
from tests.helpers.fd_grad import (  # noqa: E402
    fd_gradient,
    gradient_cosine,
    sample_pixels,
)

DEVICES = ("kerr_switch", "kerr_limiter")

# Throughput runs at the fine cell size where a factorization is expensive
# enough to matter; gradient/transfer probes use the tiny grid (finite
# differences re-converge the fixed point twice per probed pixel).
THROUGHPUT_KWARGS = dict(domain=4.0, design_size=2.0, dl=0.05)
PROBE_KWARGS = dict(domain=3.0, design_size=1.4, dl=0.1)

#: Matched tolerances: both inner tiers drive the same nonlinear rtol, and the
#: recycled refinement runs tight enough that inner error never limits it.
NONLINEAR_RTOL = 1e-8
INNER_RTOL = 1e-10

DESIGN_SWEEP = 4
REPEATS = 2
FD_PIXELS = 4


def _fresh_engine(name: str):
    """Engine with a private cache so runs cannot share factorizations."""
    if name == "recycled":
        return make_engine(name, rtol=INNER_RTOL, cache=FactorizationCache())
    return make_engine(name, cache=FactorizationCache())


def _design_sweep(device, count: int) -> list[np.ndarray]:
    """A base design plus nearby perturbations — the optimizer-step regime."""
    base = np.full(device.design_shape, 0.5)
    rng = np.random.default_rng(11)
    return [base] + [
        np.clip(base + 0.02 * rng.normal(size=base.shape), 0.0, 1.0)
        for _ in range(count - 1)
    ]


def _run_sweep(device, engine_name: str, designs: list[np.ndarray]):
    """Solve the high-power spec on every design; best-of-``REPEATS`` timing.

    The Born method is used so every outer iteration presents a *new*
    effective permittivity to the inner engine — the path where the direct
    tier refactorizes and the recycled tier refines.
    """
    spec = device.specs[-1]  # the high-power (most nonlinear) target
    best, iterations, inner_solves, last_ez = float("inf"), 0, 0, None
    for _ in range(REPEATS):
        _simulation._NORMALIZATION_CACHE.clear()
        engine = _fresh_engine(engine_name)
        iterations = inner_solves = 0
        start = time.perf_counter()
        for density in designs:
            sim = NonlinearSimulation(
                device.grid,
                device.eps_with_design(density),
                spec.wavelength,
                device.geometry.ports,
                chi3=device.chi3_map(),
                engine=engine,
                source_scale=float(spec.state.get("power", 1.0)),
                method="born",
                rtol=NONLINEAR_RTOL,
            )
            result = sim.solve(spec.source_port, monitor_ports=spec.monitored_ports())
            stats = sim.last_stats[0]
            iterations += stats.iterations
            inner_solves += stats.inner_solves
            last_ez = result.ez
        best = min(best, time.perf_counter() - start)
    return {
        "wall_clock_s": best,
        "outer_iterations": iterations,
        "inner_solves": inner_solves,
        "iterations_per_s": iterations / best,
    }, last_ez


def _gradient_vs_fd(device_name: str, pixels: int) -> float:
    """Cosine between the implicit-function adjoint and central differences."""
    device = make_device(device_name, **PROBE_KWARGS)
    density = np.random.default_rng(3).uniform(0.3, 0.7, device.design_shape)
    nonlinearity = KerrNonlinearity(rtol=1e-10)
    spec = device.specs[-1]
    evaluation = evaluate_specs(
        device, density, specs=[spec], nonlinearity=nonlinearity
    )[0]

    def value(d):
        return evaluate_specs(
            device, d, specs=[spec], nonlinearity=nonlinearity, compute_gradient=False
        )[0].objective_value

    where = sample_pixels(density.shape, count=pixels, rng=0)
    numeric = fd_gradient(value, density, where, step=1e-4)
    analytic = np.array([evaluation.grad_density[p] for p in where])
    return gradient_cosine(analytic, numeric)


def _transfer_curve(device_name: str) -> dict:
    """Transmissions vs injected power over the device's published sweep."""
    device = make_device(device_name, **PROBE_KWARGS)
    eps = device.eps_with_design(np.full(device.design_shape, 0.5))
    spec = device.specs[0]
    curve = {"powers": list(device.power_sweep), "transmissions": {}}
    for power in device.power_sweep:
        sim = NonlinearSimulation(
            device.grid,
            eps,
            spec.wavelength,
            device.geometry.ports,
            chi3=device.chi3_map(),
            source_scale=float(power),
            rtol=NONLINEAR_RTOL,
        )
        result = sim.solve(spec.source_port, monitor_ports=spec.monitored_ports())
        for port, value in result.transmissions.items():
            curve["transmissions"].setdefault(port, []).append(float(value))
    return curve


def run_benchmark(
    devices=DEVICES,
    design_sweep: int = DESIGN_SWEEP,
    fd_pixels: int = FD_PIXELS,
    record_name: str = "nonlinear",
) -> dict:
    results = []
    for device_name in devices:
        device = make_device(device_name, **THROUGHPUT_KWARGS)
        designs = _design_sweep(device, design_sweep)
        direct, direct_ez = _run_sweep(device, "direct", designs)
        recycled, recycled_ez = _run_sweep(device, "recycled", designs)
        field_drift = float(
            np.linalg.norm(recycled_ez - direct_ez) / np.linalg.norm(direct_ez)
        )
        results.append(
            {
                "device": device_name,
                "dl": THROUGHPUT_KWARGS["dl"],
                "designs": len(designs),
                "nonlinear_rtol": NONLINEAR_RTOL,
                "engines": {"direct": direct, "recycled": recycled},
                "speedup_recycled_vs_direct": (
                    recycled["iterations_per_s"] / direct["iterations_per_s"]
                ),
                "field_drift_recycled_vs_direct": field_drift,
                "gradient_cosine_vs_fd": _gradient_vs_fd(device_name, fd_pixels),
                "transfer_curve": _transfer_curve(device_name),
            }
        )

    rows = [
        [
            r["device"],
            f"{r['engines']['direct']['iterations_per_s']:.2f}",
            f"{r['engines']['recycled']['iterations_per_s']:.2f}",
            f"{r['speedup_recycled_vs_direct']:.2f}x",
            f"{r['field_drift_recycled_vs_direct']:.2e}",
            f"{r['gradient_cosine_vs_fd']:.6f}",
        ]
        for r in results
    ]
    print_table(
        "Kerr fixed-point throughput (Born outer iterations/sec)",
        ["device", "direct it/s", "recycled it/s", "speedup", "field drift",
         "grad cosine vs FD"],
        rows,
    )
    record = {"results": results}
    path = write_bench_record(record_name, record)
    print(f"wrote {path}")
    return record


def _check_record(record: dict, min_speedup: float) -> None:
    """Shared gate: recycled-inner must be fast, faithful, and differentiable."""
    for result in record["results"]:
        speedup = result["speedup_recycled_vs_direct"]
        assert speedup >= min_speedup, (
            f"{result['device']}: recycled-inner speedup only {speedup:.2f}x "
            f"(need >= {min_speedup}x)"
        )
        drift = result["field_drift_recycled_vs_direct"]
        assert drift < 1e-6, f"{result['device']}: field drift {drift:.2e}"
        cosine = result["gradient_cosine_vs_fd"]
        assert cosine >= 0.999, (
            f"{result['device']}: adjoint-vs-FD cosine {cosine:.6f} < 0.999"
        )


def test_recycled_inner_speedup():
    """Recycled inner solves beat per-iteration refactorization >= 1.5x."""
    record = run_benchmark()
    _check_record(record, min_speedup=1.5)


def main(argv: list[str]) -> int:
    quick = "--quick" in argv
    if quick:
        # CI smoke: one device, smaller sweep; assert recycled-inner is not
        # slower than direct-inner and the adjoint stays FD-faithful.  Writes
        # its own record so the full BENCH_nonlinear.json is never clobbered.
        record = run_benchmark(
            devices=DEVICES[:1],
            design_sweep=2,
            fd_pixels=2,
            record_name="nonlinear_quick",
        )
        _check_record(record, min_speedup=1.0)
    else:
        record = run_benchmark()
        _check_record(record, min_speedup=1.5)
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
