"""Solver-engine throughput: sequential per-RHS solves vs. batched engines.

The architectural claim of the engine layer is factorize-once/solve-many:
a device with N excitation specs (plus their adjoint and normalization
right-hand sides) should cost one factorization and N cheap back-
substitutions, not N factorizations.  This benchmark measures, across grid
sizes:

* ``sequential`` — the seed behaviour: every right-hand side pays a fresh
  factorization (what independent throwaway solvers per call site did),
* ``direct_batched`` — one :class:`~repro.fdfd.engine.DirectEngine`
  factorization, all RHS stacked into a single multi-RHS solve,
* ``iterative`` — the ILU-preconditioned low-fidelity tier.

Run directly (``python benchmarks/bench_engines.py``) or through pytest.
Emits the standard ``BENCH_engines.json`` record.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))

from common import print_table, write_bench_record  # noqa: E402

from repro.constants import wavelength_to_omega  # noqa: E402
from repro.devices.factory import make_device  # noqa: E402
from repro.fdfd.engine import (  # noqa: E402
    DirectEngine,
    FactorizationCache,
    IterativeEngine,
)

NUM_RHS = 6
REPEATS = 3
DOMAINS = (3.0, 4.5)


def _bend_problem(domain: float):
    """A bend device permittivity plus NUM_RHS mode/dipole right-hand sides."""
    device = make_device("bending", fidelity="low", domain=domain, design_size=domain / 2)
    density = np.clip(
        0.5 + 0.2 * np.random.default_rng(0).normal(size=device.design_shape), 0, 1
    )
    eps = device.eps_with_design(density)
    grid = device.grid
    omega = wavelength_to_omega(device.specs[0].wavelength)
    rng = np.random.default_rng(1)
    rhs = np.zeros((NUM_RHS, *grid.shape), dtype=complex)
    for index in range(NUM_RHS):
        ix = rng.integers(grid.npml + 2, grid.nx - grid.npml - 2)
        iy = rng.integers(grid.npml + 2, grid.ny - grid.npml - 2)
        rhs[index, ix, iy] = 1j * omega
    return grid, omega, eps, rhs


def _time(fn, repeats: int = REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def run_benchmark(domains=DOMAINS, num_rhs=NUM_RHS) -> dict:
    """Time the three solve strategies and return the record dict."""
    results = []
    for domain in domains:
        grid, omega, eps, rhs = _bend_problem(domain)
        rhs = rhs[:num_rhs]

        def sequential():
            # Fresh cache per RHS: every solve pays its own factorization,
            # mimicking the seed's throwaway solver per call site.
            for single in rhs:
                engine = DirectEngine(cache=FactorizationCache())
                engine.solve_batch(grid, omega, eps, single[None])

        def batched():
            DirectEngine(cache=FactorizationCache()).solve_batch(grid, omega, eps, rhs)

        def iterative():
            IterativeEngine(cache=FactorizationCache()).solve_batch(grid, omega, eps, rhs)

        t_seq = _time(sequential)
        t_bat = _time(batched)
        t_itr = _time(iterative)
        results.append(
            {
                "grid": list(grid.shape),
                "n_points": grid.n_points,
                "num_rhs": len(rhs),
                "sequential_s": t_seq,
                "direct_batched_s": t_bat,
                "iterative_s": t_itr,
                "speedup_batched_vs_sequential": t_seq / t_bat,
                "speedup_iterative_vs_sequential": t_seq / t_itr,
            }
        )

    rows = [
        [
            f"{r['grid'][0]}x{r['grid'][1]}",
            r["num_rhs"],
            f"{r['sequential_s'] * 1e3:.1f}",
            f"{r['direct_batched_s'] * 1e3:.1f}",
            f"{r['iterative_s'] * 1e3:.1f}",
            f"{r['speedup_batched_vs_sequential']:.1f}x",
        ]
        for r in results
    ]
    print_table(
        "Engine throughput (6 RHS per operator)",
        ["grid", "#rhs", "seq [ms]", "batched [ms]", "iterative [ms]", "speedup"],
        rows,
    )
    record = {"results": results}
    path = write_bench_record("engines", record)
    print(f"wrote {path}")
    return record


def test_batched_direct_engine_speedup():
    """Factorize-once/solve-many beats per-RHS factorization by >= 2x."""
    record = run_benchmark(domains=(3.0,), num_rhs=4)
    speedup = record["results"][0]["speedup_batched_vs_sequential"]
    assert speedup >= 2.0, f"batched speedup only {speedup:.2f}x"


if __name__ == "__main__":
    run_benchmark()
