"""Sharded dataset-generation throughput: serial vs N worker processes.

The benchmark times the labelling stage of :class:`repro.data.generator.
DatasetGenerator` (design sampling is shared and excluded) for a fixed config
at several worker counts, verifies that every parallel run is bit-identical
to the serial run, and writes ``BENCH_generation.json``.

Speedup is wall-clock and therefore bounded by the host's core count (recorded
in the output): on a >= 4-core machine the 4-worker run is expected to clear
~2x; on a single-core container it degrades gracefully to ~1x plus pool
overhead.

Run with::

    PYTHONPATH=src python benchmarks/bench_generation.py            # full sweep
    PYTHONPATH=src python benchmarks/bench_generation.py --quick    # CI smoke
"""

from __future__ import annotations

import argparse
import time

from common import BENCH, DEVICE_KWARGS, print_table, write_bench_record
from repro.data.dataset import datasets_bit_identical
from repro.data.generator import DatasetGenerator, GeneratorConfig
from repro.fdfd.engine import default_factorization_cache
from repro.utils.parallel import cpu_count


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--workers",
        default="1,2,4",
        help="comma-separated worker counts to sweep (first should be 1)",
    )
    parser.add_argument("--num-designs", type=int, default=None)
    parser.add_argument(
        "--quick", action="store_true", help="CI smoke mode: tiny run, 1 and 2 workers"
    )
    args = parser.parse_args()

    worker_counts = [int(w) for w in args.workers.split(",")]
    # Gradient labels plus a finer mesh keep per-design compute (~60 ms) well
    # above the per-design IPC payload (~5 ms), so fan-out overhead stays
    # negligible on a multi-core host.
    num_designs = args.num_designs or 2 * BENCH.num_designs
    with_gradient = True
    device_kwargs = dict(DEVICE_KWARGS, dl=0.05)
    if args.quick:
        worker_counts = [1, 2]
        num_designs = min(num_designs, 8)
        with_gradient = False
        device_kwargs = dict(DEVICE_KWARGS)
    if worker_counts[0] != 1:
        worker_counts.insert(0, 1)

    # Shard layout is fixed across the sweep (it never depends on workers),
    # sized so the largest worker count has at least 2 shards per worker.
    shard_size = max(1, num_designs // (2 * max(worker_counts)))
    config = GeneratorConfig(
        device_name="bending",
        strategy="random",
        num_designs=num_designs,
        with_gradient=with_gradient,
        seed=0,
        device_kwargs=device_kwargs,
        shard_size=shard_size,
    )
    generator = DatasetGenerator(config)
    designs = generator.sample_designs()

    results = []
    baseline = None
    baseline_time = None
    for workers in worker_counts:
        # Start every run from a cold factorization cache; forked workers
        # would otherwise inherit LUs warmed by the preceding run.
        default_factorization_cache.clear()
        start = time.perf_counter()
        dataset = generator.generate(designs, workers=workers)
        elapsed = time.perf_counter() - start
        if baseline is None:
            baseline, baseline_time = dataset, elapsed
        entry = {
            "workers": workers,
            "seconds": elapsed,
            "samples": len(dataset),
            "samples_per_second": len(dataset) / elapsed,
            "speedup_vs_serial": baseline_time / elapsed,
            "bit_identical_to_serial": datasets_bit_identical(baseline, dataset),
        }
        results.append(entry)

    rows = [
        [
            entry["workers"],
            f"{entry['seconds']:.2f}",
            f"{entry['samples_per_second']:.2f}",
            f"{entry['speedup_vs_serial']:.2f}x",
            entry["bit_identical_to_serial"],
        ]
        for entry in results
    ]
    print_table(
        "Sharded dataset generation throughput",
        ["workers", "seconds", "samples/s", "speedup", "bit-identical"],
        rows,
    )

    record = {
        "device": config.device_name,
        "device_kwargs": device_kwargs,
        "strategy": config.strategy,
        "num_designs": num_designs,
        "with_gradient": with_gradient,
        "shard_size": shard_size,
        "cpu_count": cpu_count(),
        "quick": bool(args.quick),
        "runs": results,
        "all_bit_identical": all(e["bit_identical_to_serial"] for e in results),
    }
    path = write_bench_record("generation", record)
    print(f"wrote {path}")
    if not record["all_bit_identical"]:
        raise SystemExit("FAIL: parallel generation diverged from the serial path")


if __name__ == "__main__":
    main()
