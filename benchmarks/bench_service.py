"""Solve service under many-client load: coalescing + cache-fabric wins.

Two claims of the serving layer are measured:

* **Request coalescing** — N concurrent clients querying the same operator
  each pay a solve call.  Uncoalesced, they race the factorization cache on a
  cold start (the cache deliberately locks its bookkeeping, not the build, so
  the thundering herd builds up to N identical LUs) and then back-substitute
  one right-hand side at a time.  Through a :class:`~repro.service.SolveService`
  the same requests group by ``(engine, grid, omega, eps fingerprint)`` and
  flush as single batched ``solve_batch`` calls: one factorization total,
  stacked back-substitutions, bit-identical results.  Reported per arm:
  factorizations, throughput, and p50/p95/p99 request latency.

* **Cross-process cache fabric** — a fresh process (modelled by a fresh
  :class:`~repro.fdfd.engine.FactorizationCache`; the artifacts genuinely
  live on disk and are memory-mapped) pays a full factorization on its first
  solve when cold, but only an artifact map + two sparse triangular
  substitutions when a shared :class:`~repro.service.FileFactorizationStore`
  is warm.  Reported: cold vs. warm first-solve latency, the speedup, the
  norm-wise deviation from the cold result, and the store counters.

``--quick`` shrinks the load and turns the claims into hard assertions —
the CI gate: coalesced results bit-identical to serial per-request solves,
factorizations reduced, wall time not slower, warm store faster than cold
within solver accuracy.  Writes ``BENCH_service.json``
(``BENCH_service_quick.json`` with ``--quick``).
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import threading
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))

from common import print_table, write_bench_record  # noqa: E402

import scipy.sparse as sp  # noqa: E402
import scipy.sparse.linalg as spla  # noqa: E402

from repro.constants import wavelength_to_omega  # noqa: E402
from repro.devices.factory import make_device  # noqa: E402
from repro.fdfd.engine import (  # noqa: E402
    DirectEngine,
    FactorizationCache,
    eps_fingerprint,
)
from repro.service import FileFactorizationStore, SolveService  # noqa: E402


def _problem(quick: bool):
    """One bend-device operator plus a pool of distinct dipole right-hand sides."""
    # Sized so one factorization costs tens (quick) to hundreds (full) of
    # milliseconds — well above the coalescing window, as in real serving.
    kwargs = (
        dict(domain=3.0, design_size=1.4, dl=0.05)
        if quick
        else dict(domain=3.5, design_size=1.8, dl=0.03)
    )
    device = make_device("bending", fidelity="low", **kwargs)
    density = np.clip(
        0.5 + 0.2 * np.random.default_rng(0).normal(size=device.design_shape), 0, 1
    )
    eps = device.eps_with_design(density)
    grid = device.grid
    omega = wavelength_to_omega(device.specs[0].wavelength)
    return grid, omega, eps


def _rhs_pool(grid, omega, count: int) -> np.ndarray:
    rng = np.random.default_rng(1)
    rhs = np.zeros((count, *grid.shape), dtype=complex)
    for index in range(count):
        ix = rng.integers(grid.npml + 2, grid.nx - grid.npml - 2)
        iy = rng.integers(grid.npml + 2, grid.ny - grid.npml - 2)
        rhs[index, ix, iy] = 1j * omega
    return rhs


def _percentiles(latencies: list[float]) -> dict:
    values = np.asarray(latencies)
    return {
        "p50_ms": round(float(np.percentile(values, 50)) * 1e3, 3),
        "p95_ms": round(float(np.percentile(values, 95)) * 1e3, 3),
        "p99_ms": round(float(np.percentile(values, 99)) * 1e3, 3),
        "mean_ms": round(float(values.mean()) * 1e3, 3),
    }


def _client_load(solve_one, num_clients: int, per_client: int, total_rhs: int):
    """Fire ``num_clients`` threads issuing ``per_client`` requests each.

    ``solve_one(index)`` handles request ``index``; a barrier releases every
    client at once so a cold cache sees the full thundering herd.  Returns
    ``(results, latencies, wall_seconds)`` with results ordered by request
    index.
    """
    results: list = [None] * total_rhs
    latencies: list[float] = [0.0] * total_rhs
    barrier = threading.Barrier(num_clients + 1)

    def client(client_index: int) -> None:
        barrier.wait()
        for request in range(per_client):
            index = client_index * per_client + request
            start = time.perf_counter()
            results[index] = solve_one(index)
            latencies[index] = time.perf_counter() - start

    threads = [
        threading.Thread(target=client, args=(i,), name=f"client-{i}")
        for i in range(num_clients)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    wall_start = time.perf_counter()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - wall_start
    return results, latencies, wall


def run_coalescing(grid, omega, eps, quick: bool) -> dict:
    """Concurrent same-operator load: direct engine vs. the solve service."""
    num_clients = 4 if quick else 8
    per_client = 6 if quick else 12
    total = num_clients * per_client
    fingerprint = eps_fingerprint(eps)
    rhs = _rhs_pool(grid, omega, total)

    # Serial per-request reference (also warms the shared operator-template
    # cache, so neither timed arm pays one-time assembly).
    reference_engine = DirectEngine(cache=FactorizationCache())
    reference = [
        reference_engine.solve_batch(grid, omega, eps, rhs[i][None], fingerprint=fingerprint)[0]
        for i in range(total)
    ]

    # Uncoalesced: every client calls the engine directly; the cold cache
    # sees the full herd at once.
    uncoalesced_cache = FactorizationCache()
    uncoalesced_engine = DirectEngine(cache=uncoalesced_cache)

    def solve_direct(index: int):
        return uncoalesced_engine.solve_batch(
            grid, omega, eps, rhs[index][None], fingerprint=fingerprint
        )[0]

    un_results, un_latencies, un_wall = _client_load(
        solve_direct, num_clients, per_client, total
    )

    # Coalesced: the same load through a SolveService (its own engine and
    # cache, equally cold).
    service = SolveService(
        engine=DirectEngine(cache=FactorizationCache()),
        window=0.002 if quick else 0.005,
        max_batch=64,
    )

    def solve_served(index: int):
        return service.solve(grid, omega, eps, rhs[index], fingerprint=fingerprint)

    co_results, co_latencies, co_wall = _client_load(
        solve_served, num_clients, per_client, total
    )
    service_stats = service.stats.as_dict()
    coalesced_cache = service.engine.cache
    service.close()

    identical = all(
        np.array_equal(co_results[i], reference[i]) for i in range(total)
    )
    uncoalesced_identical = all(
        np.array_equal(un_results[i], reference[i]) for i in range(total)
    )
    return {
        "num_clients": num_clients,
        "requests_per_client": per_client,
        "total_requests": total,
        "uncoalesced": {
            "factorizations": uncoalesced_cache.stats.factorizations,
            "wall_seconds": round(un_wall, 4),
            "throughput_rps": round(total / un_wall, 2),
            "latency": _percentiles(un_latencies),
            "cache": uncoalesced_cache.stats.as_dict(),
            "bit_identical_to_serial": bool(uncoalesced_identical),
        },
        "coalesced": {
            "factorizations": coalesced_cache.stats.factorizations,
            "wall_seconds": round(co_wall, 4),
            "throughput_rps": round(total / co_wall, 2),
            "latency": _percentiles(co_latencies),
            "cache": coalesced_cache.stats.as_dict(),
            "service": service_stats,
            "bit_identical_to_serial": bool(identical),
        },
    }


def run_cache_fabric(grid, omega, eps, quick: bool) -> dict:
    """Cold-start first solve: no store vs. a warm shared store."""
    fingerprint = eps_fingerprint(eps)
    rhs = _rhs_pool(grid, omega, 4)
    repeats = 3

    # One-time SciPy lazy-init (first spsolve_triangular call pays module
    # setup) must not be billed to the warm arm.
    tiny = sp.identity(4, format="csr")
    spla.spsolve_triangular(tiny, np.ones(4), lower=True, unit_diagonal=True)

    with tempfile.TemporaryDirectory(prefix="bench_service_store_") as tmp:
        store = FileFactorizationStore(tmp)

        # A prior process factorizes and publishes.
        publish_start = time.perf_counter()
        publisher = DirectEngine(cache=FactorizationCache(store=store))
        publisher.solve_batch(grid, omega, eps, rhs, fingerprint=fingerprint)
        publish_seconds = time.perf_counter() - publish_start

        cold_seconds, warm_seconds = [], []
        cold_result = warm_result = None
        for _ in range(repeats):
            cold_engine = DirectEngine(cache=FactorizationCache())
            start = time.perf_counter()
            cold_result = cold_engine.solve_batch(
                grid, omega, eps, rhs, fingerprint=fingerprint
            )
            cold_seconds.append(time.perf_counter() - start)

            warm_cache = FactorizationCache(store=store)
            warm_engine = DirectEngine(cache=warm_cache)
            start = time.perf_counter()
            warm_result = warm_engine.solve_batch(
                grid, omega, eps, rhs, fingerprint=fingerprint
            )
            warm_seconds.append(time.perf_counter() - start)

        deviation = float(
            np.linalg.norm(warm_result - cold_result) / np.linalg.norm(cold_result)
        )
        cold_median = float(np.median(cold_seconds))
        warm_median = float(np.median(warm_seconds))
        return {
            "rhs_per_solve": int(rhs.shape[0]),
            "repeats": repeats,
            "publish_seconds": round(publish_seconds, 4),
            "cold_first_solve_seconds": round(cold_median, 4),
            "warm_first_solve_seconds": round(warm_median, 4),
            "cold_start_speedup": round(cold_median / warm_median, 2),
            "warm_vs_cold_rel_deviation": deviation,
            "store": store.stats.as_dict(),
            "artifacts": len(store),
        }


def assert_quick_contracts(coalescing: dict, fabric: dict) -> None:
    """The CI gate: the serving layer must actually deliver its claims."""
    co, un = coalescing["coalesced"], coalescing["uncoalesced"]
    assert co["bit_identical_to_serial"], (
        "coalesced batch results must be bit-identical to serial per-request solves"
    )
    assert co["factorizations"] == 1, (
        f"coalescing must collapse the herd to one factorization, "
        f"got {co['factorizations']}"
    )
    assert co["factorizations"] <= un["factorizations"], (
        f"coalescing must not factorize more than the uncoalesced arm "
        f"({co['factorizations']} vs {un['factorizations']})"
    )
    assert co["wall_seconds"] <= un["wall_seconds"] * 1.10, (
        f"coalesced wall time {co['wall_seconds']}s must not be slower than "
        f"uncoalesced {un['wall_seconds']}s"
    )
    assert fabric["store"]["hits"] >= 1, "warm arm never hit the store"
    assert fabric["warm_first_solve_seconds"] < fabric["cold_first_solve_seconds"], (
        "a warm store must cut the cold-start first solve "
        f"({fabric['warm_first_solve_seconds']}s vs "
        f"{fabric['cold_first_solve_seconds']}s)"
    )
    assert fabric["warm_vs_cold_rel_deviation"] < 1e-4, (
        f"store-mapped solves deviate {fabric['warm_vs_cold_rel_deviation']} "
        "from fresh factorizations (norm-wise); expected solver accuracy"
    )


def run(quick: bool) -> dict:
    grid, omega, eps = _problem(quick)
    coalescing = run_coalescing(grid, omega, eps, quick)
    fabric = run_cache_fabric(grid, omega, eps, quick)
    if quick:
        assert_quick_contracts(coalescing, fabric)

    co, un = coalescing["coalesced"], coalescing["uncoalesced"]
    print_table(
        "Solve service: concurrent same-operator load "
        f"({coalescing['num_clients']} clients x {coalescing['requests_per_client']} requests)",
        ["arm", "factorizations", "wall s", "req/s", "p50 ms", "p95 ms", "p99 ms"],
        [
            [
                name,
                str(arm["factorizations"]),
                f"{arm['wall_seconds']:.3f}",
                f"{arm['throughput_rps']:.1f}",
                f"{arm['latency']['p50_ms']:.1f}",
                f"{arm['latency']['p95_ms']:.1f}",
                f"{arm['latency']['p99_ms']:.1f}",
            ]
            for name, arm in (("uncoalesced", un), ("coalesced", co))
        ],
    )
    print(
        f"cache fabric: cold {fabric['cold_first_solve_seconds']}s vs warm "
        f"{fabric['warm_first_solve_seconds']}s "
        f"({fabric['cold_start_speedup']}x cold-start speedup, "
        f"rel deviation {fabric['warm_vs_cold_rel_deviation']:.2e})"
    )
    return {
        "quick": quick,
        "device": "bending",
        "grid": [grid.nx, grid.ny],
        "coalescing": coalescing,
        "cache_fabric": fabric,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help=(
            "CI smoke gate: small load plus hard assertions on coalescing "
            "correctness, factorization reduction and warm-store speedup"
        ),
    )
    args = parser.parse_args(argv)
    record = run(quick=args.quick)
    path = write_bench_record("service_quick" if args.quick else "service", record)
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
