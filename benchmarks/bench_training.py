"""Model-zoo training benchmark over the streaming multi-fidelity pipeline.

Exercises the full generate→train→serve loop at benchmark scale:

1. **Generate** a paired multi-fidelity dataset through the sharded generator
   (low tier solved iteratively, high tier exactly — same grid, so samples
   pair by design), persisting shard artifacts.
2. **Train** the field-model zoo (FNO / F-FNO / UNet / NeurOLight) through the
   streaming :class:`~repro.data.loader.ShardDataLoader` under each fidelity
   curriculum (none / warmup / mixed / finetune).
3. **Evaluate** every (model, curriculum) cell with the standardized protocol
   (:func:`repro.train.evaluation.evaluation_protocol`): train/test N-L2,
   served transmission error, gradient similarity vs the exact solver.
4. **Promote** the best model to a checkpoint and serve it as
   ``engine="neural:<checkpoint>"`` through ``Simulation.solve_multi`` and
   ``DatasetGenerator`` — the surrogate-as-fidelity-tier claim, end to end.

Writes ``BENCH_training.json``.  ``--quick`` shrinks the matrix to a CI smoke
gate that *asserts* the pipeline's contracts: loader training bit-identical
to in-memory training, loss decreasing, finite metrics, and a servable
promoted engine.
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))

from common import BENCH, DEVICE_KWARGS, print_table, write_bench_record

from repro.data.dataset import split_dataset
from repro.data.generator import DatasetGenerator, GeneratorConfig
from repro.data.loader import ShardDataLoader
from repro.devices.factory import make_device
from repro.surrogate import CheckpointMeta, dataset_fingerprint, save_checkpoint
from repro.train import Trainer, make_curriculum, make_model
from repro.train.evaluation import evaluation_protocol

CURRICULA = ("none", "warmup", "mixed", "finetune")
MODELS = ("fno", "ffno", "unet", "neurolight")


def generation_config(shard_dir: str, quick: bool) -> GeneratorConfig:
    # Explicit dl keeps both fidelity tiers on one grid: the tiers differ by
    # solver engine (iterative vs exact), which is what lets low/high samples
    # of one design pair up for curriculum training.
    device_kwargs = dict(DEVICE_KWARGS, dl=0.1)
    if quick:
        device_kwargs = dict(domain=3.0, design_size=1.4, dl=0.1)
    return GeneratorConfig(
        device_name="bending",
        strategy="random",
        num_designs=6 if quick else BENCH.num_designs,
        fidelities=("low", "high"),
        with_gradient=False,
        seed=0,
        device_kwargs=device_kwargs,
        engine={"low": "iterative", "high": "direct"},
        shard_size=2,
        shard_dir=shard_dir,
    )


def build_zoo_model(name: str, quick: bool, rng: int = 0):
    """``(model, constructor_kwargs)`` — the kwargs travel into checkpoints.

    Returning the exact kwargs the model was built with (instead of
    re-deriving them at promotion time) keeps the saved checkpoint's
    architecture description from drifting out of sync with the trained
    weights.
    """
    if name == "unet":
        kwargs = dict(base_width=8 if quick else BENCH.unet_width, rng=rng)
    elif quick:
        kwargs = dict(width=8, modes=(3, 3), depth=2, rng=rng)
    else:
        kwargs = dict(width=BENCH.width, modes=BENCH.modes, depth=BENCH.depth, rng=rng)
    return make_model(name, **kwargs), kwargs


def make_trainer_curriculum(name: str):
    if name == "none":
        return None
    return make_curriculum(
        name, fidelities=("low", "high"), loss_weights={"high": 2.0}
    )


def assert_loader_bit_identity(config, shard_dir, merged, epochs: int) -> None:
    """The streaming pipeline's core contract, asserted in the CI gate."""
    loader = ShardDataLoader.from_directory(shard_dir, fidelities=config.fidelities)
    kwargs = dict(epochs=epochs, batch_size=4, seed=3)
    in_memory = Trainer(
        make_model("fno", width=8, modes=(3, 3), depth=2, rng=0), merged, **kwargs
    ).train()
    streamed = Trainer(
        make_model("fno", width=8, modes=(3, 3), depth=2, rng=0), data=loader, **kwargs
    ).train()
    assert in_memory.epochs == streamed.epochs, (
        "loader-based training diverged from in-memory training"
    )


def run(quick: bool) -> dict:
    models = MODELS[:1] if quick else MODELS
    curricula = CURRICULA[:2] if quick else CURRICULA
    epochs = 3 if quick else BENCH.epochs
    batch_size = 4 if quick else BENCH.batch_size
    samples = 2 if quick else BENCH.grad_samples

    with tempfile.TemporaryDirectory(prefix="bench_training_") as shard_dir:
        config = generation_config(shard_dir, quick)
        start = time.perf_counter()
        merged = DatasetGenerator(config).generate()
        generation_seconds = time.perf_counter() - start

        assert_loader_bit_identity(config, shard_dir, merged, epochs=min(epochs, 2))

        train_set, test_set = split_dataset(merged, train_fraction=0.75, rng=0)
        train_ids = set(train_set.design_id_array().tolist())
        loader = ShardDataLoader.from_directory(
            shard_dir, fidelities=config.fidelities, cache_shards=4, prefetch=1
        ).restrict(design_ids=train_ids)

        rows = []
        cells = {}
        for model_name in models:
            for curriculum_name in curricula:
                model, model_kwargs = build_zoo_model(model_name, quick)
                trainer = Trainer(
                    model,
                    data=loader,
                    test_set=test_set,
                    epochs=epochs,
                    batch_size=batch_size,
                    learning_rate=3e-3,
                    seed=0,
                    curriculum=make_trainer_curriculum(curriculum_name),
                )
                start = time.perf_counter()
                history = trainer.train()
                train_seconds = time.perf_counter() - start
                metrics = evaluation_protocol(
                    model,
                    train_set,
                    test_set,
                    num_gradient_samples=samples,
                    num_transmission_samples=samples,
                    rng=0,
                )
                losses = history.curve("train_loss")
                n_l2_curve = history.curve("train_n_l2")
                cell = {
                    "model": model_name,
                    "curriculum": curriculum_name,
                    "model_kwargs": dict(model_kwargs),
                    "epochs": epochs,
                    "train_seconds": round(train_seconds, 3),
                    "samples_per_second": round(
                        epochs * len(loader) / max(train_seconds, 1e-9), 2
                    ),
                    "first_train_loss": float(losses[0]),
                    "final_train_loss": float(losses[-1]),
                    "first_train_n_l2": float(n_l2_curve[0]),
                    "final_train_n_l2": float(n_l2_curve[-1]),
                    **{k: float(v) for k, v in metrics.items()},
                }
                cells[(model_name, curriculum_name)] = (model, cell)
                rows.append(cell)
                if quick:
                    # train_loss is not comparable across curriculum stages
                    # (stages weight fidelities differently); the unweighted
                    # per-epoch train N-L2 is.
                    assert cell["final_train_n_l2"] <= cell["first_train_n_l2"], (
                        f"{model_name}/{curriculum_name}: train N-L2 did not improve"
                    )
                    assert all(
                        np.isfinite(v) for k, v in cell.items() if isinstance(v, float)
                    ), f"{model_name}/{curriculum_name}: non-finite metric"

        # Promote the best test-error cell and serve it by name.
        best_key = min(cells, key=lambda key: cells[key][1]["test_n_l2"])
        best_model, best_cell = cells[best_key]
        checkpoint_path = Path(shard_dir) / "best_surrogate.npz"
        save_checkpoint(
            checkpoint_path,
            best_model,
            CheckpointMeta(
                model_name=best_key[0],
                # The exact kwargs the trained model was built with, captured
                # at construction — never re-derived, so the checkpoint's
                # architecture description cannot drift from the weights.
                model_kwargs=best_cell["model_kwargs"],
                field_scale=merged.field_scale,
                dataset_fingerprint=dataset_fingerprint(loader),
                extras={"curriculum": best_key[1]},
            ),
        )
        engine_name = f"neural:{checkpoint_path}"

        device = make_device(config.device_name, **(config.device_kwargs or {}))
        density = np.full(device.design_shape, 0.5)
        served = device.simulation(density, engine=engine_name).solve_multi([("in", 0)])[0]
        exact = device.simulation(density).solve_multi([("in", 0)])[0]
        assert np.isfinite(served.ez).all(), "promoted engine produced non-finite fields"

        start = time.perf_counter()
        neural_config = GeneratorConfig(
            device_name=config.device_name,
            strategy="random",
            num_designs=2,
            fidelities=("low",),
            with_gradient=False,
            seed=1,
            device_kwargs=config.device_kwargs,
            engine=engine_name,
        )
        neural_dataset = DatasetGenerator(neural_config).generate()
        neural_generation_seconds = time.perf_counter() - start
        assert len(neural_dataset) == 2
        assert np.isfinite(neural_dataset.target_array()).all()

        promotion = {
            "model": best_key[0],
            "curriculum": best_key[1],
            "test_n_l2": best_cell["test_n_l2"],
            "served_transmission": float(sum(served.transmissions.values())),
            "exact_transmission": float(sum(exact.transmissions.values())),
            "neural_generation_seconds": round(neural_generation_seconds, 3),
        }

    header = [
        "model", "curriculum", "train s", "final loss", "test N-L2",
        "trans MAE", "grad sim",
    ]
    table = [
        [
            row["model"], row["curriculum"], f"{row['train_seconds']:.1f}",
            f"{row['final_train_loss']:.4f}", f"{row['test_n_l2']:.4f}",
            f"{row['test_transmission_mae']:.4f}", f"{row['grad_similarity']:.3f}",
        ]
        for row in rows
    ]
    print_table("Model zoo x curricula (streaming multi-fidelity training)", header, table)
    print(
        f"promoted {promotion['model']}/{promotion['curriculum']} -> neural engine: "
        f"served T={promotion['served_transmission']:.4f} "
        f"vs exact T={promotion['exact_transmission']:.4f}"
    )

    return {
        "quick": quick,
        "generation_seconds": round(generation_seconds, 3),
        "num_samples": len(merged),
        "fidelities": list(config.fidelities),
        "engines": {"low": "iterative", "high": "direct"},
        "matrix": rows,
        "promotion": promotion,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke gate: tiny matrix plus pipeline-contract assertions",
    )
    args = parser.parse_args(argv)
    record = run(quick=args.quick)
    path = write_bench_record("training_quick" if args.quick else "training", record)
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
