"""Mixed-precision refined tier: fp32 factorization cost vs. fp64 accuracy.

The claim of :class:`~repro.fdfd.engine.RefinedEngine` is that the expensive
step of a direct solve — the sparse LU factorization — can run in complex64
(halving factor memory and cutting factorization time) while iterative
refinement against the fp64 operator recovers direct-solver accuracy.  This
benchmark measures, across grid sizes:

* factorization wall time, fp64 (``direct``) vs. fp32 (``refined``),
* resident factor bytes for both precisions,
* end-to-end refined-solve accuracy against the direct solution,
* adjoint-gradient fidelity: the cosine similarity between fp64 and
  refined-tier gradients through ``evaluate_specs`` (the quantity that
  decides whether the tier is safe for dataset labelling and inverse design).

Run directly (``python benchmarks/bench_precision.py``) for the committed
``BENCH_precision.json`` record; ``--quick`` shrinks the run to one small
grid and asserts the CI gate: refinement converges, gradients agree to
cosine >= 0.999999 and fp32 factorization wins on time or memory.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))

from common import print_table, write_bench_record  # noqa: E402

from repro.constants import wavelength_to_omega  # noqa: E402
from repro.devices.factory import make_device  # noqa: E402
from repro.fdfd.engine import (  # noqa: E402
    DirectEngine,
    FactorizationCache,
    RefinedEngine,
    _entry_nbytes,
    eps_fingerprint,
)
from repro.invdes.adjoint import NumericalFieldBackend, evaluate_specs  # noqa: E402

NUM_RHS = 6
REPEATS = 3
DOMAINS = (3.0, 4.5)
GRADIENT_COSINE_GATE = 0.999999


def _bend_problem(domain: float):
    """A bend device permittivity plus NUM_RHS dipole right-hand sides."""
    device = make_device("bending", fidelity="low", domain=domain, design_size=domain / 2)
    density = np.clip(
        0.5 + 0.2 * np.random.default_rng(0).normal(size=device.design_shape), 0, 1
    )
    eps = device.eps_with_design(density)
    grid = device.grid
    omega = wavelength_to_omega(device.specs[0].wavelength)
    rng = np.random.default_rng(1)
    rhs = np.zeros((NUM_RHS, *grid.shape), dtype=complex)
    for index in range(NUM_RHS):
        ix = rng.integers(grid.npml + 2, grid.nx - grid.npml - 2)
        iy = rng.integers(grid.npml + 2, grid.ny - grid.npml - 2)
        rhs[index, ix, iy] = 1j * omega
    return grid, omega, eps, rhs


def _time(fn, repeats: int = REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _gradient_cosine(domain: float) -> float:
    """Cosine similarity of adjoint gradients, direct vs. refined tier."""
    device = make_device("bending", domain=domain, design_size=domain / 2, dl=0.1)
    density = np.random.default_rng(7).uniform(0.2, 0.8, size=device.design_shape)
    grads = {}
    for name, engine in (
        ("direct", DirectEngine(cache=FactorizationCache())),
        ("refined", RefinedEngine(cache=FactorizationCache())),
    ):
        evaluations = evaluate_specs(
            device,
            density,
            backend=NumericalFieldBackend(engine=engine),
            compute_gradient=True,
        )
        grads[name] = np.concatenate(
            [evaluation.grad_density.ravel() for evaluation in evaluations]
        )
    a, b = grads["direct"], grads["refined"]
    return float(np.dot(a, b) / (np.linalg.norm(a) * np.linalg.norm(b)))


def run_benchmark(domains=DOMAINS, num_rhs=NUM_RHS, quick=False) -> dict:
    results = []
    for domain in domains:
        grid, omega, eps, rhs = _bend_problem(domain)
        rhs = rhs[:num_rhs]
        fingerprint = eps_fingerprint(eps)

        def factorize(engine_factory):
            # Fresh cache per repeat: every call pays the factorization.
            engine_factory().factorize(grid, omega, eps, fingerprint=fingerprint)

        t_fp64 = _time(lambda: factorize(lambda: DirectEngine(cache=FactorizationCache())))
        t_fp32 = _time(lambda: factorize(lambda: RefinedEngine(cache=FactorizationCache())))

        direct = DirectEngine(cache=FactorizationCache())
        refined = RefinedEngine(cache=FactorizationCache())
        bytes_fp64 = _entry_nbytes(direct.factorize(grid, omega, eps, fingerprint=fingerprint))
        bytes_fp32 = _entry_nbytes(refined.factorize(grid, omega, eps, fingerprint=fingerprint))

        reference = direct.solve_batch(grid, omega, eps, rhs, fingerprint=fingerprint)
        solution = refined.solve_batch(grid, omega, eps, rhs, fingerprint=fingerprint)
        scale = np.max(np.abs(reference))
        max_rel_err = float(np.max(np.abs(solution - reference)) / scale)

        results.append(
            {
                "grid": list(grid.shape),
                "n_points": grid.n_points,
                "num_rhs": len(rhs),
                "factor_fp64_s": t_fp64,
                "factor_fp32_s": t_fp32,
                "factor_speedup": t_fp64 / t_fp32,
                "factor_fp64_bytes": int(bytes_fp64),
                "factor_fp32_bytes": int(bytes_fp32),
                "memory_ratio": bytes_fp64 / bytes_fp32,
                "refine_sweeps": refined.stats.sweeps,
                "max_rel_err_vs_direct": max_rel_err,
            }
        )

    gradient_cosine = _gradient_cosine(domain=3.0)

    rows = [
        [
            f"{r['grid'][0]}x{r['grid'][1]}",
            f"{r['factor_fp64_s'] * 1e3:.1f}",
            f"{r['factor_fp32_s'] * 1e3:.1f}",
            f"{r['factor_speedup']:.2f}x",
            f"{r['factor_fp64_bytes'] / 1e6:.1f}",
            f"{r['factor_fp32_bytes'] / 1e6:.1f}",
            f"{r['memory_ratio']:.2f}x",
            f"{r['max_rel_err_vs_direct']:.1e}",
        ]
        for r in results
    ]
    print_table(
        "Mixed-precision factorization (refined tier vs direct)",
        ["grid", "fp64 [ms]", "fp32 [ms]", "speedup", "fp64 [MB]", "fp32 [MB]", "mem", "rel err"],
        rows,
    )
    print(f"adjoint gradient cosine (direct vs refined): {gradient_cosine:.9f}")

    record = {"results": results, "gradient_cosine": gradient_cosine}
    if quick:
        _assert_quick_contracts(record)
    path = write_bench_record("precision_quick" if quick else "precision", record)
    print(f"wrote {path}")
    return record


def _assert_quick_contracts(record: dict) -> None:
    """The CI gate: converged, gradient-faithful, and a real fp32 win."""
    for result in record["results"]:
        assert result["max_rel_err_vs_direct"] <= 1e-8, (
            f"refinement did not converge: rel err {result['max_rel_err_vs_direct']:.3e}"
        )
        assert result["refine_sweeps"] >= 1
        assert (
            result["factor_fp32_s"] < result["factor_fp64_s"]
            or result["factor_fp32_bytes"] < result["factor_fp64_bytes"]
        ), "fp32 factorization won on neither time nor memory"
        # The memory claim is structural (complex64 factors), so gate on it.
        assert result["memory_ratio"] > 1.2, (
            f"fp32 factors only {result['memory_ratio']:.2f}x smaller"
        )
    assert record["gradient_cosine"] >= GRADIENT_COSINE_GATE, (
        f"gradient cosine {record['gradient_cosine']:.9f} below {GRADIENT_COSINE_GATE}"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small single-grid run with hard assertions (the CI gate)",
    )
    args = parser.parse_args(argv)
    if args.quick:
        run_benchmark(domains=(3.0,), num_rhs=4, quick=True)
    else:
        run_benchmark()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
