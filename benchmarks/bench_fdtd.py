"""Broadband FDTD tier: one pulsed run vs. N frequency-domain solves.

The claim of the time-domain tier (:mod:`repro.fdtd`) is that broadband
labels change the per-design economics: a single pulsed run with running
DFTs yields transmissions at every requested wavelength at once, where the
frequency-domain path pays one factorization + solve *per wavelength*.  This
benchmark measures, across band sample counts N, on the WDM demultiplexer:

* per-design wall time of the per-wavelength ``direct`` FDFD path,
* per-design wall time of the FDTD path, cold (first design: the
  normalization reference rides along as a second batch item of the same
  time integration) and warm (every later design: normalization cached),
* the broadband accuracy: worst per-wavelength transmission disagreement
  between the two tiers.

Timings use *fresh random designs* per repeat — that is the dataset-generation
regime both tiers actually run in: a new design invalidates every
device-solve factorization, while the input-waveguide normalization caches
(both tiers have one) stay warm.

The FDTD run cost is nearly flat in N (the DFT extraction is a per-snapshot
matmul), so the crossover against warm per-wavelength FDFD sits around N~5
on this device and the win grows linearly from there (~2.7x at N=9, ~4x at
N=15 measured).

Run directly (``python benchmarks/bench_fdtd.py``) for the committed
``BENCH_fdtd.json`` record; ``--quick`` runs the N=15 configuration and
asserts the CI gate: transmissions agree with per-wavelength ``direct``
FDFD to <= 2% and one warm FDTD run undercuts the N-solve FDFD path by at
least 2x.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))

from common import print_table, write_bench_record  # noqa: E402

import repro.fdtd.broadband as broadband  # noqa: E402
from repro.devices.factory import make_device  # noqa: E402
from repro.fdfd.engine import DirectEngine, FactorizationCache  # noqa: E402
from repro.invdes.adjoint import NumericalFieldBackend, evaluate_specs  # noqa: E402

BAND = (1.53, 1.57)
WAVELENGTH_COUNTS = (5, 9, 15)
REPEATS = 3
DL = 0.04
ERROR_GATE = 0.02


def _fdtd_backend() -> NumericalFieldBackend:
    from repro.fdfd.engine import make_engine

    return NumericalFieldBackend(
        engine=make_engine("fdtd", courant=0.99, decay_tol=1e-3, precision="single")
    )


def _fdfd_backend() -> NumericalFieldBackend:
    # Fresh cache: each design must pay its factorizations, as in generation.
    return NumericalFieldBackend(engine=DirectEngine(cache=FactorizationCache()))


def _forward(device, density, backend, wavelengths):
    return evaluate_specs(
        device,
        density,
        backend=backend,
        compute_gradient=False,
        wavelengths=wavelengths,
    )


def _max_error(reference, evaluations) -> float:
    """Worst transmission disagreement, relative with a small absolute floor."""
    worst = 0.0
    for ref, got in zip(reference, evaluations):
        for port, value in ref.transmissions.items():
            err = abs(got.transmissions[port] - value) / max(value, 0.25)
            worst = max(worst, err)
    return worst


def run_benchmark(wavelength_counts=WAVELENGTH_COUNTS, repeats=REPEATS, quick=False) -> dict:
    device = make_device("wdm", fidelity="high", dl=DL)
    rng = np.random.default_rng(0)
    densities = [rng.random(device.design_shape) for _ in range(repeats + 1)]

    results = []
    for count in wavelength_counts:
        wavelengths = list(np.round(np.linspace(*BAND, count), 6))

        # Warm both tiers' normalization caches (and measure the FDTD cold
        # start while doing so: the first design of any run pays it).
        broadband._NORM_CACHE.clear()
        fdtd_backend = _fdtd_backend()
        start = time.perf_counter()
        _forward(device, densities[0], fdtd_backend, wavelengths)
        fdtd_cold = time.perf_counter() - start
        fdfd_reference = _forward(device, densities[0], _fdfd_backend(), wavelengths)

        fdtd_warm = float("inf")
        fdfd_total = float("inf")
        for density in densities[1:]:
            start = time.perf_counter()
            fdtd_evals = _forward(device, density, fdtd_backend, wavelengths)
            fdtd_warm = min(fdtd_warm, time.perf_counter() - start)
            start = time.perf_counter()
            fdfd_evals = _forward(device, density, _fdfd_backend(), wavelengths)
            fdfd_total = min(fdfd_total, time.perf_counter() - start)
        max_err = _max_error(fdfd_evals, fdtd_evals)
        # Cold-start accuracy too: the cached normalization must not drift.
        max_err = max(
            max_err,
            _max_error(fdfd_reference, _forward(device, densities[0], fdtd_backend, wavelengths)),
        )

        results.append(
            {
                "grid": list(device.grid.shape),
                "n_wavelengths": count,
                "band_um": list(BAND),
                "fdfd_total_s": fdfd_total,
                "fdfd_per_wavelength_s": fdfd_total / count,
                "fdtd_cold_s": fdtd_cold,
                "fdtd_warm_s": fdtd_warm,
                "speedup_cold": fdfd_total / fdtd_cold,
                "speedup_warm": fdfd_total / fdtd_warm,
                "max_transmission_err": max_err,
            }
        )

    rows = [
        [
            f"{r['n_wavelengths']}",
            f"{r['fdfd_total_s']:.2f}",
            f"{r['fdtd_cold_s']:.2f}",
            f"{r['fdtd_warm_s']:.2f}",
            f"{r['speedup_cold']:.2f}x",
            f"{r['speedup_warm']:.2f}x",
            f"{r['max_transmission_err'] * 100:.2f}%",
        ]
        for r in results
    ]
    print_table(
        f"Broadband FDTD vs per-wavelength direct FDFD (wdm, {results[0]['grid'][0]}"
        f"x{results[0]['grid'][1]}, {BAND[0]}-{BAND[1]} um)",
        ["N", "NxFDFD [s]", "FDTD cold [s]", "FDTD warm [s]", "cold", "warm", "max err"],
        rows,
    )

    record = {"device": "wdm", "dl": DL, "results": results}
    if quick:
        _assert_quick_contracts(record)
    path = write_bench_record("fdtd_quick" if quick else "fdtd", record)
    print(f"wrote {path}")
    return record


def _assert_quick_contracts(record: dict) -> None:
    """The CI gate: broadband labels are accurate and actually cheaper.

    Gated at N=15, where the measured warm speedup is ~4x — asserting >= 2x
    leaves ~2x headroom against CI timing noise.  (At the N~5 crossover the
    warm win is ~1.2x, within noise, so it is reported in the committed
    record but not gated on.)
    """
    for result in record["results"]:
        assert result["max_transmission_err"] <= ERROR_GATE, (
            f"broadband transmissions disagree with direct FDFD by "
            f"{result['max_transmission_err'] * 100:.2f}% (gate {ERROR_GATE * 100:.0f}%)"
        )
        # The headline claim: one warm FDTD run (the steady state of dataset
        # generation, where the normalization is cached across designs) labels
        # all N wavelengths at least 2x cheaper than N direct FDFD solves.
        assert result["speedup_warm"] >= 2.0, (
            f"warm speedup {result['speedup_warm']:.2f}x below 2x for "
            f"{result['n_wavelengths']} wavelengths"
        )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="N=15 run with hard assertions (the CI gate)",
    )
    args = parser.parse_args(argv)
    if args.quick:
        run_benchmark(wavelength_counts=(15,), repeats=2, quick=True)
    else:
        run_benchmark()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
