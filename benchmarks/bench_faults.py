"""Fault-tolerance of the task fabric: injected failures vs. wasted work.

The benchmark drives :class:`repro.data.generator.DatasetGenerator` through
the deterministic fault harness (:mod:`repro.utils.faults`) and measures what
each injected failure actually costs:

* ``worker-death`` — SIGKILL the worker running the first shard.  The
  per-slot pool design means the crash takes down only that worker's
  in-flight task, so at most **one** shard of compute is re-done and the
  dataset is bit-identical to the fault-free run.
* ``task-timeout`` — delay the first shard far past its deadline.  The
  executor SIGKILLs the stuck worker at the deadline and retries; wall clock
  stays near the fault-free run instead of waiting out the stall.
* ``corrupt-shard`` — truncate a shard artifact right after its atomic
  rename (a torn write that raced through).  The generator quarantines the
  corpse to ``*.bad`` and recomputes exactly that shard in-process.
* ``permanent-failure`` — a task that fails every attempt surfaces in the
  :class:`~repro.utils.executor.TaskReport` without aborting its siblings
  (demonstrated on :func:`~repro.utils.executor.execute_tasks` directly).

Run with::

    PYTHONPATH=src python benchmarks/bench_faults.py            # full
    PYTHONPATH=src python benchmarks/bench_faults.py --quick    # CI smoke
"""

from __future__ import annotations

import argparse
import tempfile
import time
from pathlib import Path

from common import print_table, write_bench_record
from repro.data.dataset import datasets_bit_identical
from repro.data.generator import DatasetGenerator, GeneratorConfig
from repro.fdfd.engine import default_factorization_cache
from repro.utils import faults
from repro.utils.executor import ExecutorConfig, execute_tasks
from repro.utils.parallel import cpu_count

# Shards must be cheap (the subject here is the recovery machinery, not the
# solves) but numerous enough that one fault leaves siblings in flight.
DEVICE_KWARGS = dict(domain=3.0, design_size=1.4, dl=0.1)


def _generate(root: Path, label: str, num_designs: int, plan=None, task_timeout=None):
    """One generation run under ``plan``; returns (dataset, generator, seconds)."""
    default_factorization_cache.clear()
    config = GeneratorConfig(
        device_name="bending",
        strategy="random",
        num_designs=num_designs,
        with_gradient=False,
        seed=3,
        device_kwargs=DEVICE_KWARGS,
        shard_size=2,
        fidelities=("low",),
        shard_dir=str(root / label),
        task_timeout=task_timeout,
        max_retries=2,
        retry_backoff=0.1,
    )
    generator = DatasetGenerator(config)
    start = time.perf_counter()
    if plan is None:
        dataset = generator.generate(workers=2)
    else:
        with faults.active_plan(plan):
            dataset = generator.generate(workers=2)
    return dataset, generator, time.perf_counter() - start


def _flaky_square(task):
    index, value, poison = task
    if index == poison:
        raise RuntimeError(f"permanent failure injected into task {index}")
    return value * value


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--num-designs", type=int, default=None)
    parser.add_argument(
        "--quick", action="store_true", help="CI smoke mode: smallest faulty run"
    )
    args = parser.parse_args()
    num_designs = args.num_designs or (4 if args.quick else 8)

    results = []
    with tempfile.TemporaryDirectory(prefix="bench-faults-") as tmp:
        root = Path(tmp)

        baseline, _, baseline_seconds = _generate(root, "baseline", num_designs)
        results.append(
            {
                "scenario": "baseline",
                "seconds": baseline_seconds,
                "bit_identical": True,
                "faults_injected": 0,
                "wasted_shards": 0,
                "detail": "fault-free reference run",
            }
        )

        dataset, generator, seconds = _generate(
            root,
            "worker-death",
            num_designs,
            plan=faults.FaultPlan(kill_task=0, scratch=str(root / "scratch-kill")),
        )
        report = generator.last_task_report
        results.append(
            {
                "scenario": "worker-death",
                "seconds": seconds,
                "bit_identical": datasets_bit_identical(baseline, dataset),
                "faults_injected": 1,
                "wasted_shards": report.wasted_executions() + generator.last_shard_recoveries,
                "detail": (
                    f"crashes={report.worker_crashes} respawns={report.respawns} "
                    f"serial_fallback={report.serial_fallback}"
                ),
            }
        )

        dataset, generator, seconds = _generate(
            root,
            "task-timeout",
            num_designs,
            plan=faults.FaultPlan(
                kill_task=None,
                delay_task=0,
                delay_seconds=30.0,
                scratch=str(root / "scratch-delay"),
            ),
            task_timeout=1.5,
        )
        report = generator.last_task_report
        results.append(
            {
                "scenario": "task-timeout",
                "seconds": seconds,
                "bit_identical": datasets_bit_identical(baseline, dataset),
                "faults_injected": 1,
                "wasted_shards": report.wasted_executions() + generator.last_shard_recoveries,
                "detail": f"timeouts={report.timeouts} (30s stall cut at the 1.5s deadline)",
            }
        )

        dataset, generator, seconds = _generate(
            root,
            "corrupt-shard",
            num_designs,
            plan=faults.FaultPlan(
                truncate_shard=1, scratch=str(root / "scratch-truncate")
            ),
        )
        report = generator.last_task_report
        quarantined = len(list((root / "corrupt-shard").glob("*.bad*")))
        results.append(
            {
                "scenario": "corrupt-shard",
                "seconds": seconds,
                "bit_identical": datasets_bit_identical(baseline, dataset),
                "faults_injected": 1,
                "wasted_shards": report.wasted_executions() + generator.last_shard_recoveries,
                "detail": (
                    f"quarantined={quarantined} "
                    f"in_process_recoveries={generator.last_shard_recoveries}"
                ),
            }
        )

    # Permanent failure: exhausts retries, lands in the TaskReport, and the
    # sibling tasks still complete — the run is never aborted wholesale.
    tasks = [(i, i, 1) for i in range(6)]
    start = time.perf_counter()
    report = execute_tasks(
        _flaky_square,
        tasks,
        workers=2,
        config=ExecutorConfig(max_retries=1, backoff=0.05),
    )
    seconds = time.perf_counter() - start
    siblings_ok = all(report.results[i] == i * i for i in range(6) if i != 1)
    failure = report.failures[0] if report.failures else None
    results.append(
        {
            "scenario": "permanent-failure",
            "seconds": seconds,
            "bit_identical": siblings_ok,
            "faults_injected": 1,
            "wasted_shards": 0,
            "detail": (
                f"failures={len(report.failures)} "
                f"kind={failure.kind if failure else '-'} "
                f"attempts={failure.attempts if failure else 0} siblings_ok={siblings_ok}"
            ),
        }
    )

    print_table(
        "Fault tolerance: injected failures vs wasted work",
        ["scenario", "seconds", "bit-identical", "faults", "wasted shards", "detail"],
        [
            [
                entry["scenario"],
                f"{entry['seconds']:.2f}",
                entry["bit_identical"],
                entry["faults_injected"],
                entry["wasted_shards"],
                entry["detail"],
            ]
            for entry in results
        ],
    )

    all_identical = all(e["bit_identical"] for e in results)
    waste_bounded = all(
        e["wasted_shards"] <= e["faults_injected"] for e in results
    )
    record = {
        "device": "bending",
        "device_kwargs": DEVICE_KWARGS,
        "num_designs": num_designs,
        "shard_size": 2,
        "cpu_count": cpu_count(),
        "quick": bool(args.quick),
        "scenarios": results,
        "all_bit_identical": all_identical,
        "waste_bounded_by_fault_count": waste_bounded,
        "permanent_failure_isolated": siblings_ok and failure is not None,
    }
    path = write_bench_record("faults", record)
    print(f"wrote {path}")
    if not all_identical:
        raise SystemExit("FAIL: a faulty run diverged from the fault-free dataset")
    if not waste_bounded:
        raise SystemExit("FAIL: recovery re-did more than one shard per injected fault")
    if not record["permanent_failure_isolated"]:
        raise SystemExit("FAIL: a permanent failure aborted or corrupted its siblings")


if __name__ == "__main__":
    main()
