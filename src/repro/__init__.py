"""Reproduction of MAPS: Multi-Fidelity AI-Augmented Photonic Simulation and
Inverse Design Infrastructure (DATE 2025).

The package mirrors the three MAPS components:

* :mod:`repro.data` — MAPS-Data: dataset acquisition with configurable
  sampling strategies, rich labels and multi-fidelity simulation.
* :mod:`repro.train` — MAPS-Train: surrogate models, losses, metrics and a
  trainer for AI-for-photonics research.
* :mod:`repro.invdes` — MAPS-InvDes: adjoint-method inverse design with
  fabrication-aware constraints and neural-solver integration.

Substrates built from scratch for this reproduction:

* :mod:`repro.autograd` / :mod:`repro.nn` — a NumPy reverse-mode autograd
  engine and neural-network library (replacement for PyTorch).
* :mod:`repro.fdfd` — a 2-D finite-difference frequency-domain Maxwell solver
  with PML, waveguide mode sources and adjoint solves.
* :mod:`repro.devices`, :mod:`repro.parametrization`,
  :mod:`repro.fabrication`, :mod:`repro.surrogate` — device library,
  differentiable design parametrizations, fabrication variation models and
  neural-solver wrappers.

The most frequently used entry points are re-exported lazily at the package
root (``repro.Simulation``, ``repro.make_device``, ``repro.InverseDesignProblem``,
``repro.AdjointOptimizer``, ``repro.PhotonicDataset``, ``repro.Trainer``).
"""

from importlib import import_module

from repro import constants

__version__ = "0.1.0"

# Lazily resolved public entry points: attribute name -> (module, attribute).
_LAZY_EXPORTS = {
    "Simulation": ("repro.fdfd.simulation", "Simulation"),
    "make_device": ("repro.devices.factory", "make_device"),
    "available_devices": ("repro.devices.factory", "available_devices"),
    "InverseDesignProblem": ("repro.invdes.problem", "InverseDesignProblem"),
    "AdjointOptimizer": ("repro.invdes.optimizer", "AdjointOptimizer"),
    "PhotonicDataset": ("repro.data.dataset", "PhotonicDataset"),
    "Trainer": ("repro.train.trainer", "Trainer"),
}

__all__ = ["constants", "__version__", *sorted(_LAZY_EXPORTS)]


def __getattr__(name: str):
    """Resolve the public entry points lazily (PEP 562)."""
    if name in _LAZY_EXPORTS:
        module_name, attr = _LAZY_EXPORTS[name]
        return getattr(import_module(module_name), attr)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | set(_LAZY_EXPORTS))
