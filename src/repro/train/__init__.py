"""MAPS-Train: training infrastructure for AI-based photonic PDE surrogates.

* :mod:`repro.train.models` — the baseline surrogates of the paper: FNO,
  Factorized-FNO, UNet and NeurOLight, plus a black-box S-parameter regressor.
* :mod:`repro.train.losses` — data-driven losses (normalized L2, NMSE) and the
  physics-driven Maxwell-residual loss.
* :mod:`repro.train.metrics` — standardized evaluation metrics: normalized L2
  norm, S-parameter error and adjoint-gradient similarity.
* :mod:`repro.train.trainer` — the training loop with hierarchical data
  loading (in-memory datasets or streaming shard loaders), learning-rate
  schedules and per-epoch evaluation.
* :mod:`repro.train.curriculum` — multi-fidelity training schedules
  (low→high warmup, mixed-ratio sampling, fine-tune-on-high, and the
  validation-driven ``adaptive`` schedule) with per-fidelity loss weighting.
* :mod:`repro.train.active` — the closed active-learning loop: train →
  evaluate → acquire → regenerate, with surrogate-disagreement acquisition
  and shard-directory refresh.
"""

from repro.train.models import make_model, available_models
from repro.train.losses import NormalizedL2Loss, NMSELoss, MaxwellResidualLoss
from repro.train.metrics import (
    normalized_l2_metric,
    s_parameter_error,
    transmission_error,
)
from repro.train.trainer import Trainer, TrainingHistory
from repro.train.curriculum import (
    Curriculum,
    CurriculumStage,
    MixedCurriculum,
    WarmupCurriculum,
    FinetuneCurriculum,
    AdaptiveCurriculum,
    available_curricula,
    make_curriculum,
)
from repro.train.active import ActiveLearningConfig, ActiveLearningLoop

__all__ = [
    "make_model",
    "available_models",
    "NormalizedL2Loss",
    "NMSELoss",
    "MaxwellResidualLoss",
    "normalized_l2_metric",
    "s_parameter_error",
    "transmission_error",
    "Trainer",
    "TrainingHistory",
    "Curriculum",
    "CurriculumStage",
    "MixedCurriculum",
    "WarmupCurriculum",
    "FinetuneCurriculum",
    "AdaptiveCurriculum",
    "available_curricula",
    "make_curriculum",
    "ActiveLearningConfig",
    "ActiveLearningLoop",
]
