"""Training losses: data-driven and physics-driven.

All losses consume/return :class:`repro.autograd.Tensor` so they can be
back-propagated through the surrogate models.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.autograd.tensor import Tensor


class NormalizedL2Loss:
    """Per-sample normalized L2 distance, averaged over the batch.

    ``L = mean_b ||pred_b - target_b|| / ||target_b||`` — the training loss and
    evaluation metric used throughout the paper (``N-L2norm``).

    :meth:`per_sample` exposes the pre-reduction ``(batch,)`` vector; the
    trainer uses it to apply per-sample loss weights (acquisition weights from
    active learning) without changing the unweighted loss definition.
    """

    def __init__(self, eps: float = 1e-8):
        self.eps = eps

    def per_sample(self, pred: Tensor, target: Tensor) -> Tensor:
        """The ``(batch,)`` vector of per-sample normalized L2 distances."""
        target = Tensor.ensure(target)
        if pred.shape != target.shape:
            raise ValueError(f"shape mismatch: {pred.shape} vs {target.shape}")
        batch = pred.shape[0]
        diff = (pred - target).reshape(batch, -1)
        target_flat = target.reshape(batch, -1)
        num = ((diff * diff).sum(axis=1) + self.eps).sqrt()
        den = ((target_flat * target_flat).sum(axis=1) + self.eps).sqrt()
        return num / den

    def __call__(self, pred: Tensor, target: Tensor) -> Tensor:
        return self.per_sample(pred, target).mean()


class NMSELoss:
    """Normalized mean-squared error: ``mean_b ||pred-target||^2 / ||target||^2``."""

    def __init__(self, eps: float = 1e-8):
        self.eps = eps

    def per_sample(self, pred: Tensor, target: Tensor) -> Tensor:
        """The ``(batch,)`` vector of per-sample normalized squared errors."""
        target = Tensor.ensure(target)
        if pred.shape != target.shape:
            raise ValueError(f"shape mismatch: {pred.shape} vs {target.shape}")
        batch = pred.shape[0]
        diff = (pred - target).reshape(batch, -1)
        target_flat = target.reshape(batch, -1)
        num = (diff * diff).sum(axis=1)
        den = (target_flat * target_flat).sum(axis=1) + self.eps
        return num / den

    def __call__(self, pred: Tensor, target: Tensor) -> Tensor:
        return self.per_sample(pred, target).mean()


class MSELoss:
    """Plain mean-squared error (useful for scalar regression heads)."""

    def per_sample(self, pred: Tensor, target: Tensor) -> Tensor:
        """The ``(batch,)`` vector of per-sample mean squared errors."""
        if pred.shape != target.shape:
            raise ValueError(f"shape mismatch: {pred.shape} vs {target.shape}")
        batch = pred.shape[0] if pred.ndim > 0 else 1
        diff = (pred - target).reshape(batch, -1)
        return (diff * diff).mean(axis=1)

    def __call__(self, pred: Tensor, target: Tensor) -> Tensor:
        return self.per_sample(pred, target).mean()


def _sparse_matvec(matrix: sp.spmatrix, x: Tensor) -> Tensor:
    """Differentiable ``matrix @ x`` for a constant real sparse matrix."""
    matrix = matrix.tocsr()
    data = matrix @ x.data

    def backward(grad, accumulate):
        accumulate(x, matrix.T @ np.asarray(grad))

    return x._make_child(data, (x,), backward)


class MaxwellResidualLoss:
    """Physics-driven loss: the residual of the frequency-domain Maxwell equation.

    For a predicted field ``Ez`` (2 real channels) the loss is
    ``|| A Ez - i omega J || / || i omega J ||`` where ``A`` is the system
    matrix of the sample's permittivity and ``J`` the injected source.  A
    perfect prediction has zero residual independently of any field label, so
    this term can supervise the model in a self-supervised fashion or be mixed
    with the data-driven loss.

    Because the system matrix is complex and the engine is real-valued, the
    residual is evaluated on stacked real/imaginary parts of ``A``.
    """

    def __init__(self, weight: float = 1.0, eps: float = 1e-12):
        self.weight = weight
        self.eps = eps

    def __call__(
        self,
        pred: Tensor,
        system_matrix: sp.spmatrix,
        source: np.ndarray,
        omega: float,
        field_scale: float = 1.0,
    ) -> Tensor:
        """Residual loss for a single sample.

        Parameters
        ----------
        pred:
            Predicted field channels of shape ``(2, H, W)`` (scaled by the
            dataset field scale).
        system_matrix:
            Complex sparse Maxwell operator of the sample.
        source:
            Complex current density of the sample.
        omega:
            Angular frequency of the sample.
        field_scale:
            Scale factor mapping the model output back to physical fields.
        """
        if pred.ndim != 3 or pred.shape[0] != 2:
            raise ValueError(f"expected a (2, H, W) prediction, got {pred.shape}")
        n = pred.shape[1] * pred.shape[2]
        flat = pred.reshape(2, n) * field_scale
        real, imag = flat[0], flat[1]

        a_real = sp.csr_matrix(system_matrix.real)
        a_imag = sp.csr_matrix(system_matrix.imag)
        # (A_r + i A_i)(e_r + i e_i) = (A_r e_r - A_i e_i) + i (A_r e_i + A_i e_r)
        res_real = _sparse_matvec(a_real, real) - _sparse_matvec(a_imag, imag)
        res_imag = _sparse_matvec(a_real, imag) + _sparse_matvec(a_imag, real)

        rhs = 1j * omega * np.asarray(source).ravel()
        res_real = res_real - rhs.real
        res_imag = res_imag - rhs.imag
        residual_norm = ((res_real * res_real).sum() + (res_imag * res_imag).sum()).sqrt()
        rhs_norm = float(np.linalg.norm(rhs) + self.eps)
        return residual_norm * (self.weight / rhs_norm)


class CompositeLoss:
    """Weighted sum of a data-driven loss and optional extra terms."""

    def __init__(self, terms: list[tuple[float, object]]):
        if not terms:
            raise ValueError("composite loss needs at least one term")
        self.terms = terms

    def __call__(self, *args, **kwargs) -> Tensor:
        total = None
        for weight, term in self.terms:
            value = term(*args, **kwargs) * weight
            total = value if total is None else total + value
        return total
