"""Training loop for the surrogate models.

The trainer consumes :class:`~repro.data.dataset.PhotonicDataset` splits
(produced with device-level splitting), supports field-prediction and
scalar-regression targets, data-driven and physics-augmented losses, cosine
learning-rate schedules and per-epoch evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.autograd.tensor import Tensor, no_grad
from repro.data.dataset import PhotonicDataset
from repro.nn import Adam, CosineSchedule, Module
from repro.train.losses import MSELoss, NormalizedL2Loss
from repro.train.metrics import normalized_l2_metric, transmission_error
from repro.utils.rng import get_rng


@dataclass
class TrainingHistory:
    """Per-epoch training curves."""

    epochs: list[dict] = field(default_factory=list)

    def append(self, record: dict) -> None:
        self.epochs.append(record)

    def __len__(self) -> int:
        return len(self.epochs)

    def final(self) -> dict:
        if not self.epochs:
            raise ValueError("history is empty")
        return self.epochs[-1]

    def curve(self, key: str) -> np.ndarray:
        return np.array([e[key] for e in self.epochs if key in e])


class Trainer:
    """Train a surrogate model on a photonic dataset.

    Parameters
    ----------
    model:
        Any :class:`repro.nn.Module` following the model-zoo interface.
    train_set, test_set:
        Datasets produced by :func:`repro.data.dataset.split_dataset`.
    target:
        ``"field"`` for field-prediction models (N-L2 loss on ``Ez``) or
        ``"transmission"`` for black-box scalar regression (MSE loss).
    learning_rate, weight_decay, batch_size, epochs:
        The usual optimization hyper-parameters.
    """

    def __init__(
        self,
        model: Module,
        train_set: PhotonicDataset,
        test_set: PhotonicDataset | None = None,
        target: str = "field",
        learning_rate: float = 2e-3,
        weight_decay: float = 0.0,
        batch_size: int = 8,
        epochs: int = 30,
        loss=None,
        seed: int = 0,
    ):
        if target not in ("field", "transmission"):
            raise ValueError(f"target must be 'field' or 'transmission', got {target!r}")
        if len(train_set) == 0:
            raise ValueError("training set is empty")
        self.model = model
        self.train_set = train_set
        self.test_set = test_set
        self.target = target
        self.batch_size = batch_size
        self.epochs = epochs
        self.loss = loss if loss is not None else (NormalizedL2Loss() if target == "field" else MSELoss())
        self.optimizer = Adam(model.parameters(), lr=learning_rate, weight_decay=weight_decay)
        self.schedule = CosineSchedule(self.optimizer, total_epochs=max(epochs, 1))
        self.rng = get_rng(seed)
        self.history = TrainingHistory()
        # Scalar targets are precomputed once: rebuilding the transmission
        # array from per-sample attribute access per batch per epoch is pure
        # overhead (the labels never change during training).
        self._transmission_targets = (
            train_set.transmission_array() if target == "transmission" else None
        )

    # -- batching helpers -----------------------------------------------------------
    def _batch_targets(self, indices: np.ndarray) -> np.ndarray:
        if self.target == "field":
            return np.stack([self.train_set[i].target for i in indices], axis=0)
        return self._transmission_targets[indices]

    # -- training -------------------------------------------------------------------
    def train(self, verbose: bool = False) -> TrainingHistory:
        """Run the full training loop and return the history."""
        for epoch in range(self.epochs):
            self.model.train()
            epoch_losses = []
            for inputs, targets, indices in self.train_set.batches(
                self.batch_size, shuffle=True, rng=self.rng
            ):
                if self.target == "transmission":
                    targets = self._transmission_targets[indices]
                prediction = self.model(Tensor(inputs))
                loss = self.loss(prediction, Tensor(targets))
                self.optimizer.zero_grad()
                loss.backward()
                self.optimizer.step()
                epoch_losses.append(loss.item())
            self.schedule.step()

            record = {"epoch": epoch, "train_loss": float(np.mean(epoch_losses))}
            record.update({f"train_{k}": v for k, v in self.evaluate(self.train_set).items()})
            if self.test_set is not None and len(self.test_set):
                record.update({f"test_{k}": v for k, v in self.evaluate(self.test_set).items()})
            self.history.append(record)
            if verbose:
                test_msg = (
                    f"  test N-L2 {record.get('test_n_l2', float('nan')):.4f}"
                    if "test_n_l2" in record
                    else ""
                )
                print(
                    f"[train] epoch {epoch:3d}  loss {record['train_loss']:.4f}"
                    f"  train N-L2 {record.get('train_n_l2', float('nan')):.4f}{test_msg}"
                )
        return self.history

    # -- inference / evaluation ------------------------------------------------------
    def predict(self, inputs: np.ndarray, batch_size: int | None = None) -> np.ndarray:
        """Model predictions for a stack of inputs (inference mode)."""
        return predict(self.model, inputs, batch_size or self.batch_size)

    def evaluate(self, dataset: PhotonicDataset) -> dict[str, float]:
        """Standard metrics of the model on a dataset."""
        if len(dataset) == 0:
            return {}
        inputs = dataset.input_array()
        predictions = self.predict(inputs)
        if self.target == "field":
            targets = dataset.target_array()
            return {"n_l2": normalized_l2_metric(predictions, targets)}
        targets = dataset.transmission_array()
        return {"mae": transmission_error(predictions, targets)}


def predict(model: Module, inputs: np.ndarray, batch_size: int = 8) -> np.ndarray:
    """Run a model over a stack of inputs without building the autograd graph."""
    model.eval()
    inputs = np.asarray(inputs)
    single = inputs.ndim == 3
    if single:
        inputs = inputs[None]
    outputs = []
    with no_grad():
        for start in range(0, inputs.shape[0], batch_size):
            chunk = inputs[start : start + batch_size]
            outputs.append(model(Tensor(chunk)).data)
    result = np.concatenate(outputs, axis=0)
    return result[0] if single else result
