"""Training loop for the surrogate models.

The trainer consumes either an in-memory
:class:`~repro.data.dataset.PhotonicDataset` (produced with device-level
splitting) or a streaming :class:`~repro.data.loader.ShardDataLoader` over
shard artifacts — the ``data=`` seam.  Both paths are bit-identical for the
same seed: the loader consumes the random stream exactly like the dataset and
yields byte-identical batches, so loss curves do not depend on which one feeds
the loop.

Multi-fidelity runs attach a :class:`~repro.train.curriculum.Curriculum`:
each epoch then draws fidelity-homogeneous batches according to the stage's
sampling fractions, scales each batch's loss by the stage's per-fidelity
weight, and records the per-fidelity mix in the history.

Field-prediction and scalar-regression targets, data-driven and
physics-augmented losses, cosine learning-rate schedules and per-epoch
evaluation work as before.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.autograd.tensor import Tensor, no_grad
from repro.data.dataset import split_shape_runs
from repro.nn import Adam, CosineSchedule, Module
from repro.train.curriculum import Curriculum, make_curriculum
from repro.train.losses import MSELoss, NormalizedL2Loss
from repro.utils.numerics import normalized_l2
from repro.utils.rng import get_rng


@dataclass
class TrainingHistory:
    """Per-epoch training curves."""

    epochs: list[dict] = field(default_factory=list)

    def append(self, record: dict) -> None:
        self.epochs.append(record)

    def __len__(self) -> int:
        return len(self.epochs)

    def final(self) -> dict:
        if not self.epochs:
            raise ValueError("history is empty")
        return self.epochs[-1]

    def curve(self, key: str) -> np.ndarray:
        """The per-epoch values of a scalar record key, NaN where absent.

        Curriculum runs produce *ragged* records (a fidelity absent from an
        epoch's stage records no metrics for that epoch), so missing entries
        become NaN instead of being silently dropped — the returned array
        always has one value per epoch, aligned across keys.
        """
        return np.array(
            [e[key] if key in e else float("nan") for e in self.epochs], dtype=float
        )


class Trainer:
    """Train a surrogate model on a photonic dataset or shard stream.

    Parameters
    ----------
    model:
        Any :class:`repro.nn.Module` following the model-zoo interface.
    train_set, test_set:
        Datasets produced by :func:`repro.data.dataset.split_dataset`, or
        :class:`~repro.data.loader.ShardDataLoader` instances streaming shard
        artifacts.
    data:
        Alias seam for ``train_set`` (keyword-only, mutually exclusive):
        emphasizes that the trainer accepts any batch source — an in-memory
        dataset (unchanged behavior) or a streaming loader.
    target:
        ``"field"`` for field-prediction models (N-L2 loss on ``Ez``) or
        ``"transmission"`` for black-box scalar regression (MSE loss).
    curriculum:
        Optional multi-fidelity schedule — a
        :class:`~repro.train.curriculum.Curriculum` instance or a name
        (``"warmup"``, ``"mixed"``, ``"finetune"``, ``"adaptive"``; the
        fidelity order is inferred from the data).  None trains on everything
        every epoch.
    learning_rate, weight_decay, batch_size, epochs:
        The usual optimization hyper-parameters.

    Notes
    -----
    If the data source carries non-uniform per-sample weights
    (``sample_weight_array()``, stamped by active-learning acquisition), each
    batch's loss becomes the weighted mean of the per-sample losses — heavily
    weighted samples pull harder on every gradient step.

    Examples
    --------
    Stream shard artifacts into a curriculum-scheduled training run::

        loader = ShardDataLoader.from_directory("shards", fidelities=("low", "high"))
        train, test = loader.split(0.8, rng=0)
        trainer = Trainer(
            make_model("fno", width=16, modes=(6, 6), depth=3, rng=0),
            data=train,
            test_set=test,
            curriculum="adaptive",
            epochs=30,
        )
        history = trainer.train()
        history.curve("test_n_l2")   # one value per epoch, NaN-padded
    """

    def __init__(
        self,
        model: Module,
        train_set=None,
        test_set=None,
        target: str = "field",
        learning_rate: float = 2e-3,
        weight_decay: float = 0.0,
        batch_size: int = 8,
        epochs: int = 30,
        loss=None,
        seed: int = 0,
        curriculum: Curriculum | str | None = None,
        data=None,
    ):
        if target not in ("field", "transmission"):
            raise ValueError(f"target must be 'field' or 'transmission', got {target!r}")
        if data is not None and train_set is not None:
            raise ValueError("pass either train_set or data, not both")
        train_set = data if data is not None else train_set
        if train_set is None:
            raise ValueError("a training dataset or loader is required")
        if len(train_set) == 0:
            raise ValueError("training set is empty")
        self.model = model
        self.train_set = train_set
        self.test_set = test_set
        self.target = target
        self.batch_size = batch_size
        self.epochs = epochs
        self.loss = loss if loss is not None else (NormalizedL2Loss() if target == "field" else MSELoss())
        self.optimizer = Adam(model.parameters(), lr=learning_rate, weight_decay=weight_decay)
        self.schedule = CosineSchedule(self.optimizer, total_epochs=max(epochs, 1))
        self.rng = get_rng(seed)
        self.history = TrainingHistory()
        if isinstance(curriculum, str):
            curriculum = make_curriculum(curriculum, fidelities=self._data_fidelities())
        if curriculum is not None:
            # A fidelity the curriculum does not know would be silently
            # dropped from every epoch — the same mistake ShardDataLoader
            # rejects for its fidelity order, rejected here for the same
            # reason.  (The reverse — curriculum tiers absent from the data —
            # is fine: restricted views legitimately hold a subset.)
            unknown = set(self._data_fidelities()) - set(curriculum.fidelities)
            if unknown:
                raise ValueError(
                    f"training data contains fidelities {sorted(unknown)} the "
                    f"curriculum does not schedule {list(curriculum.fidelities)}; "
                    "they would be silently excluded from every epoch"
                )
        self.curriculum = curriculum
        self._bind_data_arrays()
        # Per-tier validation views: the adaptive curriculum watches
        # test_n_l2_<fid>, and multi-fidelity histories are more readable
        # with the per-tier validation curve alongside the per-tier train
        # loss.  Built once — restrict()/filter() are cheap index views.
        self._test_views: dict[str, object] = {}
        if curriculum is not None and test_set is not None and len(test_set):
            test_fidelities = tuple(
                dict.fromkeys(str(f) for f in test_set.fidelity_array())
            )
            if len(test_fidelities) > 1:
                for fidelity in test_fidelities:
                    restrict = getattr(test_set, "restrict", None)
                    if restrict is not None:
                        view = restrict(fidelities=[fidelity])
                    else:
                        view = test_set.filter(lambda s, f=fidelity: s.fidelity == f)
                    self._test_views[fidelity] = view

    def _bind_data_arrays(self) -> None:
        """Snapshot the index-aligned per-sample arrays of the training data.

        Called at construction *and* at every :meth:`train` start: a
        streaming loader can grow in between (``ShardDataLoader.refresh()``
        after an active-learning acquisition), and the snapshots must cover —
        and carry the weights of — the current index range.
        """
        # Scalar targets are precomputed once per training run: rebuilding
        # the transmission array per batch per epoch is pure overhead (the
        # labels never change during a run).
        self._transmission_targets = (
            np.asarray(self.train_set.transmission_array())
            if self.target == "transmission"
            else None
        )
        # Per-sample loss weights (active-learning acquisition scores) ride
        # in the data source; only a non-uniform vector activates the
        # weighted path, so unweighted runs stay bit-identical to before.
        weights = getattr(self.train_set, "sample_weight_array", None)
        weights = np.asarray(weights()) if weights is not None else None
        if weights is not None and np.any(weights != 1.0):
            if np.any(~(weights > 0.0)):
                raise ValueError(
                    "sample weights must be positive (muting a sample is a "
                    "data-selection decision, not a zero weight)"
                )
            if not hasattr(self.loss, "per_sample"):
                raise ValueError(
                    f"training data carries per-sample weights but the loss "
                    f"{type(self.loss).__name__} has no per_sample() method"
                )
            self._sample_weights = weights
        else:
            self._sample_weights = None

    def _data_fidelities(self) -> tuple[str, ...]:
        """Distinct fidelities of the training data, in order of appearance.

        Generated datasets and shard loaders are fidelity-major in the
        config's fidelity order, so first appearance reconstructs it.
        """
        fidelities = self.train_set.fidelity_array()
        return tuple(dict.fromkeys(str(f) for f in fidelities))

    # -- batching helpers -----------------------------------------------------------
    def _epoch_batches(self, epoch: int):
        """Yield ``(inputs, targets, indices, weight, fidelity)`` for one epoch.

        Without a curriculum this is a straight pass through
        ``train_set.batches`` (weight 1, fidelity None) — bit-identical to
        the non-curriculum trainer.  With one, the epoch's stage selects a
        per-fidelity sample pool, batches stay fidelity-homogeneous (so mixed
        cell-size datasets never stack ragged shapes) and arrive in a
        globally shuffled order with the stage's loss weight attached.
        """
        if self.curriculum is None:
            for inputs, targets, indices in self.train_set.batches(
                self.batch_size, shuffle=True, rng=self.rng
            ):
                yield inputs, targets, indices, 1.0, None
            return

        stage = self.curriculum.stage(epoch, self.epochs)
        fidelities = self.train_set.fidelity_array()
        shapes = self.train_set.sample_shapes()
        plan: list[tuple[str, float, np.ndarray]] = []
        for fidelity in self.curriculum.fidelities:
            fraction = float(stage.sample_fractions.get(fidelity, 0.0))
            if fraction <= 0.0:
                continue
            pool = np.flatnonzero(fidelities == fidelity)
            if pool.size == 0:
                continue
            if fraction < 1.0:
                count = max(1, int(round(fraction * pool.size)))
                pool = np.sort(self.rng.choice(pool, size=count, replace=False))
            order = pool.copy()
            self.rng.shuffle(order)
            weight = stage.weight(fidelity)
            for start in range(0, order.size, self.batch_size):
                # One fidelity tag can still span grids (e.g. concatenated
                # runs at different cell sizes), so chunks split at shape
                # boundaries exactly like the non-curriculum path.
                for chunk in split_shape_runs(
                    order[start : start + self.batch_size], shapes
                ):
                    plan.append((fidelity, weight, chunk))
        if not plan:
            raise ValueError(
                f"curriculum stage for epoch {epoch} selects no samples "
                f"(fidelities in data: {list(self._data_fidelities())})"
            )
        ordered = [plan[position] for position in self.rng.permutation(len(plan))]
        # Streaming sources (shard loaders) take the whole chunk plan up
        # front so background prefetch engages for curriculum epochs too.
        stream = getattr(self.train_set, "stream", None)
        if stream is not None:
            batches = stream([indices for _, _, indices in ordered])
        else:
            batches = (
                self.train_set.gather(indices) for _, _, indices in ordered
            )
        for (fidelity, weight, indices), (inputs, targets) in zip(ordered, batches):
            yield inputs, targets, indices, weight, fidelity

    # -- training -------------------------------------------------------------------
    def train(self, verbose: bool = False) -> TrainingHistory:
        """Run the full training loop and return the history."""
        # Re-snapshot targets/weights: the data source may have grown since
        # construction (or the previous train() call).
        self._bind_data_arrays()
        for epoch in range(self.epochs):
            self.model.train()
            epoch_losses = []
            fidelity_losses: dict[str, list[float]] = {}
            fidelity_counts: dict[str, int] = {}
            fidelity_weights: dict[str, float] = {}
            for inputs, targets, indices, weight, fidelity in self._epoch_batches(epoch):
                if self.target == "transmission":
                    targets = self._transmission_targets[indices]
                prediction = self.model(Tensor(inputs))
                if self._sample_weights is not None:
                    # Weighted mean of the per-sample losses: sample weights
                    # shift each sample's pull on the gradient, the weighted
                    # normalization keeps the loss scale comparable across
                    # batches with different weight mass.
                    per_sample = self.loss.per_sample(prediction, Tensor(targets))
                    batch_weights = self._sample_weights[indices]
                    loss = (per_sample * batch_weights).sum() * (
                        1.0 / float(batch_weights.sum())
                    )
                    raw_loss = float(np.mean(per_sample.data))
                else:
                    loss = self.loss(prediction, Tensor(targets))
                    raw_loss = loss.item()
                if weight != 1.0:
                    loss = loss * weight
                self.optimizer.zero_grad()
                loss.backward()
                self.optimizer.step()
                epoch_losses.append(loss.item())
                if fidelity is not None:
                    fidelity_losses.setdefault(fidelity, []).append(raw_loss)
                    fidelity_counts[fidelity] = fidelity_counts.get(fidelity, 0) + len(indices)
                    fidelity_weights[fidelity] = weight
            self.schedule.step()

            record = {"epoch": epoch, "train_loss": float(np.mean(epoch_losses))}
            for fidelity, losses in fidelity_losses.items():
                record[f"train_loss_{fidelity}"] = float(np.mean(losses))
                record[f"samples_{fidelity}"] = int(fidelity_counts[fidelity])
                record[f"loss_weight_{fidelity}"] = float(fidelity_weights[fidelity])
            record.update({f"train_{k}": v for k, v in self.evaluate(self.train_set).items()})
            if self.test_set is not None and len(self.test_set):
                if self._test_views:
                    # The per-tier views partition the test set, so the
                    # aggregate metric is their sample-count-weighted mean —
                    # every test sample is evaluated exactly once per epoch.
                    totals: dict[str, float] = {}
                    count = 0
                    for view_fidelity, view in self._test_views.items():
                        metrics = self.evaluate(view)
                        record.update(
                            {f"test_{k}_{view_fidelity}": v for k, v in metrics.items()}
                        )
                        for key, value in metrics.items():
                            totals[key] = totals.get(key, 0.0) + value * len(view)
                        count += len(view)
                    record.update({f"test_{k}": v / count for k, v in totals.items()})
                else:
                    record.update(
                        {f"test_{k}": v for k, v in self.evaluate(self.test_set).items()}
                    )
            self.history.append(record)
            if self.curriculum is not None:
                # Feed the finished epoch back: the adaptive curriculum uses
                # the validation curve to decide tier promotions.
                self.curriculum.observe(record)
            if verbose:
                test_msg = (
                    f"  test N-L2 {record.get('test_n_l2', float('nan')):.4f}"
                    if "test_n_l2" in record
                    else ""
                )
                print(
                    f"[train] epoch {epoch:3d}  loss {record['train_loss']:.4f}"
                    f"  train N-L2 {record.get('train_n_l2', float('nan')):.4f}{test_msg}"
                )
        return self.history

    # -- inference / evaluation ------------------------------------------------------
    def predict(self, inputs: np.ndarray, batch_size: int | None = None) -> np.ndarray:
        """Model predictions for a stack of inputs (inference mode)."""
        return predict(self.model, inputs, batch_size or self.batch_size)

    def evaluate(self, dataset) -> dict[str, float]:
        """Standard metrics of the model on a dataset or loader.

        Evaluation *streams*: predictions are made batch by batch and reduced
        to per-sample scalars immediately, so evaluating a shard loader never
        materializes an O(dataset) prediction stack.  The reductions are
        per-sample (the metric definitions), so the streamed result equals
        the all-at-once computation exactly.
        """
        if dataset is None or len(dataset) == 0:
            return {}
        per_sample: list[float] = []
        if self.target == "field":
            for inputs, targets, _ in dataset.batches(self.batch_size, shuffle=False):
                predictions = predict(self.model, inputs, self.batch_size)
                per_sample.extend(
                    normalized_l2(p, t) for p, t in zip(predictions, targets)
                )
            return {"n_l2": float(np.mean(per_sample))}
        labels = (
            self._transmission_targets
            if dataset is self.train_set
            else np.asarray(dataset.transmission_array())
        )
        for inputs, _, indices in dataset.batches(self.batch_size, shuffle=False):
            predictions = predict(self.model, inputs, self.batch_size)
            per_sample.extend(
                float(abs(p - labels[i])) for p, i in zip(np.ravel(predictions), indices)
            )
        return {"mae": float(np.mean(per_sample))}


def predict(model: Module, inputs: np.ndarray, batch_size: int = 8) -> np.ndarray:
    """Run a model over a stack of inputs without building the autograd graph."""
    model.eval()
    inputs = np.asarray(inputs)
    single = inputs.ndim == 3
    if single:
        inputs = inputs[None]
    outputs = []
    with no_grad():
        for start in range(0, inputs.shape[0], batch_size):
            chunk = inputs[start : start + batch_size]
            outputs.append(model(Tensor(chunk)).data)
    result = np.concatenate(outputs, axis=0)
    return result[0] if single else result
