"""Closed-loop active learning: train → evaluate → acquire → regenerate.

This module closes the multi-fidelity loop the MAPS infrastructure is built
for: cheap tiers and the neural surrogate *propose*, exact solves *correct*,
and the dataset grows where the model is weakest.  One
:class:`ActiveLearningLoop` round is

1. **train** — the surrogate trains on the current shard directory through a
   streaming :class:`~repro.data.loader.ShardDataLoader` (per-sample
   acquisition weights and fidelity curricula included);
2. **evaluate** — validation error on a fixed exact-labelled hold-out set;
3. **acquire** — a pool of candidate designs is drawn and *scored*:
   ``"disagreement"`` promotes the current model to a checkpoint-backed
   ``neural:<ckpt>`` engine and measures how far its fields deviate from the
   cheap iterative tier (places where the cheap physics and the surrogate
   disagree are places the exact solver has something to teach);
   ``"residual"`` scores the Maxwell-equation residual of the surrogate's own
   prediction (no extra solve at all); ``"random"`` is the baseline;
4. **regenerate** — only the top-k candidates are labelled at the *exact*
   tier by the :class:`~repro.data.generator.DatasetGenerator`, appended to
   the same shard directory under fresh ``design_id``s
   (``design_id_offset``), and folded into the loader with
   :meth:`~repro.data.loader.ShardDataLoader.refresh` — pre-existing samples
   stay byte-identical, so the model never sees its old data move.

The exact-solve budget is the loop's currency: :class:`RoundRecord` tracks
how many exact-tier labels each strategy spent to reach its validation error,
which is what ``benchmarks/bench_active.py`` compares against random
acquisition.

Examples
--------
::

    config = GeneratorConfig(
        device_name="bending", strategy="random", num_designs=8,
        fidelities=("high",), engine="direct", shard_dir="active_shards",
        with_gradient=False,
    )
    loop = ActiveLearningLoop(
        model=make_model("fno", width=8, modes=(3, 3), depth=2, rng=0),
        model_name="fno",
        model_kwargs=dict(width=8, modes=(3, 3), depth=2, rng=0),
        generator_config=config,
        val_set=val_dataset,                       # exact-labelled hold-out
        config=ActiveLearningConfig(rounds=3, acquire_per_round=4),
    )
    records = loop.run()
    records[-1].val_n_l2, records[-1].exact_labels
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from pathlib import Path

import numpy as np

from repro.data.generator import DatasetGenerator, GeneratorConfig
from repro.data.loader import ShardDataLoader
from repro.data.sampling import DesignSample, make_sampler
from repro.data.shards import engine_for_fidelity
from repro.devices.factory import make_device
from repro.fdfd.engine import resolve_engine
from repro.train.trainer import Trainer
from repro.utils.numerics import normalized_l2

__all__ = [
    "ActiveLearningConfig",
    "RoundRecord",
    "ActiveLearningLoop",
    "score_candidates",
]

ACQUISITIONS = ("disagreement", "residual", "random")


@dataclass
class ActiveLearningConfig:
    """Knobs of one active-learning run.

    ``candidates_per_round`` designs are proposed per round and only the
    ``acquire_per_round`` best are labelled exactly — the ratio between the
    two is the acquisition pressure.  ``acquisition`` picks the score
    (``"disagreement"``, ``"residual"`` or the ``"random"`` baseline);
    ``cheap_engine`` is the tier the disagreement score solves against.
    With ``weight_by_score`` the acquired labels carry their normalized
    acquisition score as a per-sample loss weight (clipped to
    ``[1, max_weight]``), so the trainer leans into the samples the loop
    found informative.
    """

    rounds: int = 4
    candidates_per_round: int = 12
    acquire_per_round: int = 4
    epochs_per_round: int = 6
    acquisition: str = "disagreement"
    cheap_engine: str = "iterative"
    weight_by_score: bool = True
    max_weight: float = 4.0
    checkpoint_name: str = "active_surrogate.npz"
    seed: int = 0

    def __post_init__(self):
        if self.rounds < 1:
            raise ValueError(f"rounds must be at least 1, got {self.rounds}")
        if self.acquisition not in ACQUISITIONS:
            raise ValueError(
                f"unknown acquisition {self.acquisition!r}; "
                f"available: {list(ACQUISITIONS)}"
            )
        if self.acquire_per_round < 1:
            raise ValueError(
                f"acquire_per_round must be at least 1, got {self.acquire_per_round}"
            )
        if self.candidates_per_round < self.acquire_per_round:
            raise ValueError(
                f"candidates_per_round ({self.candidates_per_round}) must cover "
                f"acquire_per_round ({self.acquire_per_round})"
            )
        if self.max_weight < 1.0:
            raise ValueError(f"max_weight must be at least 1, got {self.max_weight}")


@dataclass
class RoundRecord:
    """What one train→evaluate→acquire round did (for benchmarks and tests)."""

    round_index: int
    #: Exact-tier labels in the training pool *when this round trained* — the
    #: label budget spent up to (and including) this round's training data.
    exact_labels: int
    num_samples: int
    train_loss: float
    #: Validation error after this round's training: N-L2 for field targets,
    #: MAE for transmission targets (NaN when the loop has no val_set).
    val_n_l2: float
    #: Designs labelled at the exact tier after training (empty on the final
    #: round, which only evaluates).
    acquired_design_ids: list[int] = field(default_factory=list)
    acquisition_scores: list[float] = field(default_factory=list)
    sample_weights: list[float] = field(default_factory=list)
    #: Cheap-tier solves the acquisition scoring itself spent this round.
    cheap_solves: int = 0


def _group_specs(specs):
    """Group target specs by ``(wavelength, state)`` — one Simulation each."""
    groups: dict[tuple, list] = {}
    for spec in specs:
        key = (spec.wavelength, tuple(sorted((spec.state or {}).items())))
        groups.setdefault(key, []).append(spec)
    return groups


def score_candidates(
    device,
    candidates: list[DesignSample],
    neural_engine,
    acquisition: str = "disagreement",
    cheap_engine=None,
) -> tuple[np.ndarray, int]:
    """Score candidate designs by informativeness; higher = label it first.

    ``"disagreement"`` solves every candidate with the surrogate engine *and*
    the cheap tier and returns the mean normalized field distance — one cheap
    solve per (candidate, excitation), no exact solves.  ``"residual"`` needs
    no solver at all: it plugs the surrogate's predicted field back into the
    Maxwell operator and scores the relative residual.  Returns the score
    array and the number of cheap-tier solves spent.
    """
    if acquisition not in ("disagreement", "residual"):
        raise ValueError(
            f"score_candidates handles 'disagreement' and 'residual', "
            f"got {acquisition!r}"
        )
    if acquisition == "disagreement" and cheap_engine is None:
        raise ValueError("disagreement scoring needs the cheap engine")

    groups = _group_specs(device.specs)
    scores = np.zeros(len(candidates))
    cheap_solves = 0
    for index, candidate in enumerate(candidates):
        per_spec: list[float] = []
        for (wavelength, state), specs in groups.items():
            excitations = [(s.source_port, s.source_mode) for s in specs]
            sim_neural = device.simulation(
                candidate.density,
                wavelength=wavelength,
                state=dict(state),
                engine=neural_engine,
            )
            neural_results = sim_neural.solve_multi(excitations)
            if acquisition == "disagreement":
                sim_cheap = device.simulation(
                    candidate.density,
                    wavelength=wavelength,
                    state=dict(state),
                    engine=cheap_engine,
                )
                cheap_results = sim_cheap.solve_multi(excitations)
                cheap_solves += len(excitations)
                per_spec.extend(
                    normalized_l2(n.ez, c.ez)
                    for n, c in zip(neural_results, cheap_results)
                )
            else:
                # Relative Maxwell residual of the surrogate's own field —
                # the simulation owns the operator/RHS convention.
                per_spec.extend(
                    sim_neural.maxwell_residual(result) for result in neural_results
                )
        scores[index] = float(np.mean(per_spec))
    return scores, cheap_solves


class ActiveLearningLoop:
    """Alternate surrogate training with targeted exact-tier labelling.

    Parameters
    ----------
    model:
        The surrogate being trained (modified in place across rounds — each
        round continues from the previous round's weights).
    model_name, model_kwargs:
        Model-zoo identity of ``model``; needed to promote it to a
        checkpoint-backed ``neural:<ckpt>`` engine for disagreement scoring.
    generator_config:
        The *seed* generation run: must set ``shard_dir`` (the growing
        directory) and order ``fidelities`` cheap → exact; the last fidelity
        is the exact tier acquisitions are labelled at.
    val_set:
        Fixed exact-labelled hold-out (dataset or loader) the loop's
        validation error is measured on.  Never grown, never trained on.
    config:
        The :class:`ActiveLearningConfig` (defaults are benchmark-sized).
    trainer_kwargs:
        Extra :class:`~repro.train.trainer.Trainer` keywords applied every
        round (``batch_size``, ``learning_rate``, ``curriculum=...``, ...).
    """

    def __init__(
        self,
        model,
        model_name: str,
        model_kwargs: dict,
        generator_config: GeneratorConfig,
        val_set,
        config: ActiveLearningConfig | None = None,
        trainer_kwargs: dict | None = None,
    ):
        if generator_config.shard_dir is None:
            raise ValueError(
                "active learning needs a persistent shard_dir in the "
                "generator config (the loop grows it between rounds)"
            )
        self.model = model
        self.model_name = model_name
        self.model_kwargs = dict(model_kwargs)
        self.generator_config = generator_config
        self.val_set = val_set
        self.config = config if config is not None else ActiveLearningConfig()
        self.trainer_kwargs = dict(trainer_kwargs or {})
        self.exact_fidelity = generator_config.fidelities[-1]
        self.records: list[RoundRecord] = []
        self.loader: ShardDataLoader | None = None
        #: The servable ``"neural:<ckpt path>"`` engine name of the finished
        #: loop; None until :meth:`run` completes.
        self.checkpoint: str | None = None
        self._next_design_id = 0
        self._sampler = make_sampler(
            generator_config.strategy, **(generator_config.strategy_kwargs or {})
        )
        self._device = make_device(
            generator_config.device_name,
            fidelity=self.exact_fidelity,
            **(generator_config.device_kwargs or {}),
        )
        self._cheap_engine = (
            resolve_engine(self.config.cheap_engine)
            if self.config.acquisition == "disagreement"
            else None
        )

    # -- loop pieces -------------------------------------------------------------
    def _ensure_seed_data(self) -> None:
        """Generate (or resume) the seed shards and open the loader."""
        if self.loader is not None:
            return
        DatasetGenerator(self.generator_config).generate()
        self.loader = ShardDataLoader.from_directory(
            self.generator_config.shard_dir,
            fidelities=self.generator_config.fidelities,
        )
        self._next_design_id = int(self.loader.design_id_array().max()) + 1

    def _train_round(self, round_index: int) -> Trainer:
        trainer = Trainer(
            self.model,
            data=self.loader,
            test_set=self.val_set,
            epochs=self.config.epochs_per_round,
            seed=self.config.seed + round_index,
            **self.trainer_kwargs,
        )
        trainer.train()
        return trainer

    def _promote(self) -> str:
        """Checkpoint the current model and return its ``neural:<ckpt>`` name."""
        # Imported lazily: repro.surrogate itself imports repro.train (the
        # neural engine wraps the trainer's predict), so a module-level
        # import here would close an import cycle.
        from repro.surrogate.checkpoint import (
            CheckpointMeta,
            dataset_fingerprint,
            save_checkpoint,
        )

        path = Path(self.generator_config.shard_dir) / self.config.checkpoint_name
        save_checkpoint(
            path,
            self.model,
            CheckpointMeta(
                model_name=self.model_name,
                model_kwargs=self.model_kwargs,
                field_scale=self.loader.field_scale,
                dataset_fingerprint=dataset_fingerprint(self.loader),
                extras={"active_rounds": len(self.records)},
            ),
        )
        return f"neural:{path}"

    def _propose(self, round_index: int) -> list[DesignSample]:
        """Draw this round's candidate pool from an independent RNG stream."""
        rng = np.random.default_rng(
            np.random.SeedSequence([self.generator_config.seed, 7_919, round_index])
        )
        return self._sampler.sample(
            self._device, self.config.candidates_per_round, rng=rng
        )

    def _select(
        self, candidates: list[DesignSample], scores: np.ndarray
    ) -> list[DesignSample]:
        """Top-k candidates, acquisition weights attached.

        Non-finite scores (a diverged surrogate produces NaN/inf
        disagreement) rank first — the model is maximally wrong there — but
        their *weight* is clamped to ``max_weight``: a NaN must never be
        stamped into a persisted shard, where it would poison every later
        training run on the directory.
        """
        k = self.config.acquire_per_round
        ranked = np.where(np.isfinite(scores), scores, np.inf)
        top = np.argsort(ranked)[::-1][:k]
        if self.config.weight_by_score:
            finite = scores[np.isfinite(scores)]
            reference = float(np.median(finite)) if finite.size else 0.0
            weights = [
                float(np.clip(scores[i] / max(reference, 1e-300), 1.0, self.config.max_weight))
                if np.isfinite(scores[i])
                else self.config.max_weight
                for i in top
            ]
        else:
            weights = [1.0] * len(top)
        return [
            replace(candidates[i], weight=weight) for i, weight in zip(top, weights)
        ]

    def _acquire(self, round_index: int) -> tuple[list[DesignSample], np.ndarray, int]:
        candidates = self._propose(round_index)
        if self.config.acquisition == "random":
            # The baseline draws k uniformly from the same pool — no
            # information used to pick among them.  (Not candidates[:k]: the
            # samplers order their pools, e.g. trajectory sweep first, so a
            # prefix would be a stratified heuristic, not a random baseline.)
            rng = np.random.default_rng(
                np.random.SeedSequence([self.generator_config.seed, 104_729, round_index])
            )
            picks = rng.choice(
                len(candidates), size=self.config.acquire_per_round, replace=False
            )
            scores = np.zeros(len(candidates))
            return [candidates[i] for i in picks], scores, 0
        engine_name = self._promote()
        scores, cheap_solves = score_candidates(
            self._device,
            candidates,
            resolve_engine(engine_name),
            acquisition=self.config.acquisition,
            cheap_engine=self._cheap_engine,
        )
        return self._select(candidates, scores), scores, cheap_solves

    def _label(self, designs: list[DesignSample], round_index: int) -> list[int]:
        """Label ``designs`` at the exact tier, appended to the shard dir."""
        exact_engine = engine_for_fidelity(
            self.generator_config.engine, self.exact_fidelity
        )
        config = replace(
            self.generator_config,
            fidelities=(self.exact_fidelity,),
            engine=exact_engine,
            num_designs=len(designs),
            design_id_offset=self._next_design_id,
            # A fresh stream per round: the seed only namespaces shard RNG,
            # the designs themselves are supplied explicitly below.
            seed=self.generator_config.seed + 100_003 * (round_index + 1),
        )
        DatasetGenerator(config).generate(designs=designs)
        acquired = list(
            range(self._next_design_id, self._next_design_id + len(designs))
        )
        self._next_design_id += len(designs)
        return acquired

    # -- the loop ----------------------------------------------------------------
    def run(self) -> list[RoundRecord]:
        """Run all rounds; returns one :class:`RoundRecord` per round.

        Every round trains and evaluates; every round but the last acquires
        and refreshes, so the final record reports the validation error of
        the model trained on everything the loop chose to label.  The final
        model is always promoted: :attr:`checkpoint` names the servable
        ``neural:<ckpt>`` engine of the finished loop.
        """
        self._ensure_seed_data()
        for round_index in range(self.config.rounds):
            trainer = self._train_round(round_index)
            # The trainer already evaluated val_set (its test_set) after the
            # final epoch; reuse that instead of a second full sweep.  Field
            # targets report N-L2, transmission targets MAE.
            final = trainer.history.final()
            val_n_l2 = float(
                final.get("test_n_l2", final.get("test_mae", float("nan")))
            )
            fidelities = self.loader.fidelity_array()
            record = RoundRecord(
                round_index=round_index,
                exact_labels=int(np.sum(fidelities == self.exact_fidelity)),
                num_samples=len(self.loader),
                train_loss=float(final["train_loss"]),
                val_n_l2=val_n_l2,
            )
            if round_index < self.config.rounds - 1:
                designs, scores, cheap_solves = self._acquire(round_index)
                record.acquired_design_ids = self._label(designs, round_index)
                record.acquisition_scores = [float(s) for s in scores]
                record.sample_weights = [float(d.weight) for d in designs]
                record.cheap_solves = cheap_solves
                self.loader.refresh()
            self.records.append(record)
        self.checkpoint = self._promote()
        return self.records
