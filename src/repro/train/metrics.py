"""Standardized evaluation metrics of MAPS-Train.

The three metric families of the paper:

* field-prediction accuracy — normalized L2 norm between predicted and
  ground-truth fields,
* S-parameter / transmission prediction error,
* adjoint-gradient similarity — the cosine similarity between the adjoint
  gradient computed from predicted fields and the ground-truth gradient (the
  metric that actually matters for inverse design; computed in
  :mod:`repro.surrogate.gradients` and aggregated by
  :func:`repro.train.evaluation.evaluate_model`).
"""

from __future__ import annotations

import numpy as np

from repro.utils.numerics import cosine_similarity, normalized_l2


def normalized_l2_metric(pred: np.ndarray, target: np.ndarray) -> float:
    """Batch-averaged normalized L2 norm (``N-L2norm`` in the paper's tables)."""
    pred = np.asarray(pred)
    target = np.asarray(target)
    if pred.shape != target.shape:
        raise ValueError(f"shape mismatch: {pred.shape} vs {target.shape}")
    if pred.ndim == 3:
        pred = pred[None]
        target = target[None]
    values = [normalized_l2(p, t) for p, t in zip(pred, target)]
    return float(np.mean(values))


def transmission_error(pred: np.ndarray, target: np.ndarray) -> float:
    """Mean absolute error of scalar transmission predictions."""
    pred = np.asarray(pred, dtype=float).ravel()
    target = np.asarray(target, dtype=float).ravel()
    if pred.shape != target.shape:
        raise ValueError(f"shape mismatch: {pred.shape} vs {target.shape}")
    return float(np.mean(np.abs(pred - target)))


def s_parameter_error(pred: dict[str, complex], target: dict[str, complex]) -> float:
    """Mean absolute error between complex S-parameters, averaged over ports."""
    if set(pred) != set(target):
        raise ValueError(f"port mismatch: {sorted(pred)} vs {sorted(target)}")
    if not pred:
        return 0.0
    errors = [abs(pred[name] - target[name]) for name in pred]
    return float(np.mean(errors))


def gradient_similarity(pred_gradient: np.ndarray, true_gradient: np.ndarray) -> float:
    """Cosine similarity between two design gradients (higher is better)."""
    return cosine_similarity(pred_gradient, true_gradient)
