"""Model evaluation against the standardized MAPS-Train metrics.

:func:`evaluate_model` reports the metric triple used in the paper's tables —
train/test normalized L2 norm and test adjoint-gradient similarity — for any
field-prediction model and dataset split.  :func:`evaluation_protocol` is the
fixed four-metric protocol of the training benchmark
(``benchmarks/bench_training.py``): N-L2 on both splits, end-to-end
transmission error of the *served* surrogate, and gradient similarity against
the exact ``direct`` solver.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import PhotonicDataset
from repro.devices.factory import make_device
from repro.nn.module import Module
from repro.train.metrics import normalized_l2_metric
from repro.train.trainer import predict
from repro.utils.numerics import cosine_similarity
from repro.utils.rng import get_rng


def field_prediction_error(model: Module, dataset: PhotonicDataset) -> float:
    """Normalized L2 norm of the model's field predictions over a dataset."""
    if len(dataset) == 0:
        return float("nan")
    predictions = predict(model, dataset.input_array())
    return normalized_l2_metric(predictions, dataset.target_array())


def _sampled_devices(dataset: PhotonicDataset, num_samples: int, rng, device_kwargs):
    """Draw evaluation samples and rebuild their devices (shared preamble).

    The sampled metrics share one policy: samples drawn without replacement,
    the device rebuilt from the sample's own cell size plus the dataset's
    recorded customizations (domain size, waveguide width, ...) with the
    per-sample ``dl``/``fidelity`` keys filtered out.  Keeping it in one
    place keeps every metric evaluating on identically built devices.
    """
    rng = get_rng(rng)
    count = min(num_samples, len(dataset))
    indices = rng.choice(len(dataset), size=count, replace=False)
    if device_kwargs is None:
        device_kwargs = dataset.metadata.get("device_kwargs", {}) or {}
    device_kwargs = {k: v for k, v in device_kwargs.items() if k not in ("dl", "fidelity")}
    for index in indices:
        sample = dataset[int(index)]
        yield sample, make_device(sample.device_name, dl=sample.dl, **device_kwargs)


def gradient_similarity_score(
    model: Module,
    dataset: PhotonicDataset,
    field_scale: float | None = None,
    num_samples: int = 4,
    rng=None,
    device_kwargs: dict | None = None,
) -> float:
    """Mean cosine similarity between surrogate and FDFD adjoint gradients.

    A handful of samples is drawn from the dataset (gradient evaluation costs
    two linear solves per sample for the ground truth), the design gradient is
    computed with the forward+adjoint-field method on the surrogate and with
    the numerical solver, and the average cosine similarity is returned.
    """
    from repro.surrogate.gradients import gradient_fwd_adj_field, gradient_numerical

    if len(dataset) == 0:
        return float("nan")
    field_scale = dataset.field_scale if field_scale is None else field_scale

    similarities = []
    for sample, device in _sampled_devices(dataset, num_samples, rng, device_kwargs):
        spec = device.specs[sample.spec_index]
        truth = gradient_numerical(device, sample.density, spec)
        estimate = gradient_fwd_adj_field(model, field_scale, device, sample.density, spec)
        similarities.append(cosine_similarity(estimate, truth))
    return float(np.mean(similarities))


def transmission_consistency_score(
    model: Module,
    dataset: PhotonicDataset,
    field_scale: float | None = None,
    num_samples: int = 4,
    rng=None,
    device_kwargs: dict | None = None,
) -> float:
    """Mean absolute transmission error of the *served* surrogate.

    This is the end-to-end check the promoted engine is judged by: for a few
    samples the model's predicted field is pushed through the same
    port-monitor pipeline as the numerical solver
    (:class:`~repro.surrogate.neural_solver.NeuralFieldBackend`) and the
    resulting total transmission is compared to the sample's stored label.
    Field-space error does not always translate to label-space error — this
    metric measures the one users of ``engine="neural"`` actually see.
    """
    from repro.fdfd.simulation import Simulation
    from repro.surrogate.neural_solver import NeuralFieldBackend

    if len(dataset) == 0:
        return float("nan")
    field_scale = dataset.field_scale if field_scale is None else field_scale

    backend = NeuralFieldBackend(model, field_scale)
    errors = []
    for sample, device in _sampled_devices(dataset, num_samples, rng, device_kwargs):
        spec = device.specs[sample.spec_index]
        eps_r = sample.eps_r
        if eps_r is None:
            eps_r = device.apply_state(device.eps_with_design(sample.density), spec.state)
        sim = Simulation(
            device.grid, eps_r, sample.wavelength, device.geometry.ports
        )
        result = backend.forward_fields(sim, spec)
        predicted = float(sum(result.transmissions.values()))
        errors.append(abs(predicted - sample.transmission))
    return float(np.mean(errors))


def evaluate_model(
    model: Module,
    train_set: PhotonicDataset,
    test_set: PhotonicDataset,
    num_gradient_samples: int = 4,
    rng=None,
) -> dict[str, float]:
    """The paper's metric triple: train/test N-L2 norm and test gradient similarity."""
    return {
        "train_n_l2": field_prediction_error(model, train_set),
        "test_n_l2": field_prediction_error(model, test_set),
        "grad_similarity": gradient_similarity_score(
            model,
            test_set,
            field_scale=test_set.field_scale,
            num_samples=num_gradient_samples,
            rng=rng,
        ),
    }


def evaluation_protocol(
    model: Module,
    train_set: PhotonicDataset,
    test_set: PhotonicDataset,
    num_gradient_samples: int = 4,
    num_transmission_samples: int = 4,
    rng=None,
) -> dict[str, float]:
    """The standardized model-zoo evaluation of the training benchmark.

    One fixed protocol for every model and curriculum so results stay
    comparable: train/test N-L2, test transmission error through the served
    field pipeline, and adjoint-gradient cosine similarity against the exact
    ``direct`` solver.  The sampled metrics draw from independent generators
    split off ``rng`` so adding one metric never reshuffles another.
    """
    rng = get_rng(rng)
    grad_rng, trans_rng = rng.spawn(2)
    return {
        "train_n_l2": field_prediction_error(model, train_set),
        "test_n_l2": field_prediction_error(model, test_set),
        "test_transmission_mae": transmission_consistency_score(
            model,
            test_set,
            field_scale=test_set.field_scale,
            num_samples=num_transmission_samples,
            rng=trans_rng,
        ),
        "grad_similarity": gradient_similarity_score(
            model,
            test_set,
            field_scale=test_set.field_scale,
            num_samples=num_gradient_samples,
            rng=grad_rng,
        ),
    }
