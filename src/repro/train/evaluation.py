"""Model evaluation against the standardized MAPS-Train metrics.

:func:`evaluate_model` reports the metric triple used in the paper's tables —
train/test normalized L2 norm and test adjoint-gradient similarity — for any
field-prediction model and dataset split.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import PhotonicDataset
from repro.devices.factory import make_device
from repro.nn.module import Module
from repro.train.metrics import normalized_l2_metric
from repro.train.trainer import predict
from repro.utils.numerics import cosine_similarity
from repro.utils.rng import get_rng


def field_prediction_error(model: Module, dataset: PhotonicDataset) -> float:
    """Normalized L2 norm of the model's field predictions over a dataset."""
    if len(dataset) == 0:
        return float("nan")
    predictions = predict(model, dataset.input_array())
    return normalized_l2_metric(predictions, dataset.target_array())


def gradient_similarity_score(
    model: Module,
    dataset: PhotonicDataset,
    field_scale: float | None = None,
    num_samples: int = 4,
    rng=None,
    device_kwargs: dict | None = None,
) -> float:
    """Mean cosine similarity between surrogate and FDFD adjoint gradients.

    A handful of samples is drawn from the dataset (gradient evaluation costs
    two linear solves per sample for the ground truth), the design gradient is
    computed with the forward+adjoint-field method on the surrogate and with
    the numerical solver, and the average cosine similarity is returned.
    """
    from repro.surrogate.gradients import gradient_fwd_adj_field, gradient_numerical

    if len(dataset) == 0:
        return float("nan")
    field_scale = dataset.field_scale if field_scale is None else field_scale
    rng = get_rng(rng)
    count = min(num_samples, len(dataset))
    indices = rng.choice(len(dataset), size=count, replace=False)
    if device_kwargs is None:
        # Device customizations (domain size, waveguide width, ...) are recorded
        # in the dataset metadata by the generator.
        device_kwargs = dataset.metadata.get("device_kwargs", {}) or {}
    # The cell size always comes from the sample itself.
    device_kwargs = {k: v for k, v in device_kwargs.items() if k not in ("dl", "fidelity")}

    similarities = []
    for index in indices:
        sample = dataset[int(index)]
        device = make_device(sample.device_name, dl=sample.dl, **device_kwargs)
        spec = device.specs[sample.spec_index]
        truth = gradient_numerical(device, sample.density, spec)
        estimate = gradient_fwd_adj_field(model, field_scale, device, sample.density, spec)
        similarities.append(cosine_similarity(estimate, truth))
    return float(np.mean(similarities))


def evaluate_model(
    model: Module,
    train_set: PhotonicDataset,
    test_set: PhotonicDataset,
    num_gradient_samples: int = 4,
    rng=None,
) -> dict[str, float]:
    """The paper's metric triple: train/test N-L2 norm and test gradient similarity."""
    return {
        "train_n_l2": field_prediction_error(model, train_set),
        "test_n_l2": field_prediction_error(model, test_set),
        "grad_similarity": gradient_similarity_score(
            model,
            test_set,
            field_scale=test_set.field_scale,
            num_samples=num_gradient_samples,
            rng=rng,
        ),
    }
