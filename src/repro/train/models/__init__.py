"""Surrogate model zoo.

All field-prediction models share the same interface: input ``(B, 4, H, W)``
(standardized permittivity + source channels, see
:func:`repro.data.labels.standardize_input`) and output ``(B, 2, H, W)``
(real/imaginary parts of the predicted ``Ez``).  The black-box model maps the
same input to a scalar transmission prediction.
"""

from repro.train.models.fno import FNO2d
from repro.train.models.ffno import FactorizedFNO2d
from repro.train.models.unet import UNet2d
from repro.train.models.neurolight import NeurOLight2d
from repro.train.models.black_box import BlackBoxRegressor

_MODELS = {
    "fno": FNO2d,
    "ffno": FactorizedFNO2d,
    "f-fno": FactorizedFNO2d,
    "unet": UNet2d,
    "neurolight": NeurOLight2d,
    "blackbox": BlackBoxRegressor,
}


def available_models() -> list[str]:
    """Canonical model names."""
    return ["fno", "ffno", "unet", "neurolight", "blackbox"]


def make_model(name: str, in_channels: int = 4, out_channels: int = 2, **kwargs):
    """Instantiate a surrogate model by name."""
    key = name.lower().strip()
    if key not in _MODELS:
        raise ValueError(f"unknown model {name!r}; available: {available_models()}")
    cls = _MODELS[key]
    if cls is BlackBoxRegressor:
        return cls(in_channels=in_channels, **kwargs)
    return cls(in_channels=in_channels, out_channels=out_channels, **kwargs)


__all__ = [
    "FNO2d",
    "FactorizedFNO2d",
    "UNet2d",
    "NeurOLight2d",
    "BlackBoxRegressor",
    "make_model",
    "available_models",
]
