"""Fourier Neural Operator baseline (Li et al., ICLR 2021)."""

from __future__ import annotations

from repro.autograd.tensor import Tensor
from repro.nn import Conv2d, GELU, GroupNorm, Module, ModuleList, SpectralConv2d
from repro.utils.rng import get_rng


class FNOBlock(Module):
    """One FNO layer: spectral convolution + pointwise linear path + activation."""

    def __init__(self, width: int, modes: tuple[int, int], rng=None):
        super().__init__()
        rng = get_rng(rng)
        self.spectral = SpectralConv2d(width, width, modes, rng=rng)
        self.pointwise = Conv2d(width, width, kernel_size=1, rng=rng)
        self.norm = GroupNorm(num_groups=min(4, width), num_channels=width)
        self.activation = GELU()

    def forward(self, x: Tensor) -> Tensor:
        return self.activation(self.norm(self.spectral(x) + self.pointwise(x)))


class FNO2d(Module):
    """Field-prediction FNO: lift, stacked spectral blocks, projection head.

    Parameters
    ----------
    in_channels, out_channels:
        Input/output channel counts (4 standardized input channels, 2 output
        channels for the complex ``Ez``).
    width:
        Hidden channel width.
    modes:
        Number of retained Fourier modes per spatial dimension.
    depth:
        Number of FNO blocks.
    """

    def __init__(
        self,
        in_channels: int = 4,
        out_channels: int = 2,
        width: int = 24,
        modes: tuple[int, int] = (8, 8),
        depth: int = 4,
        rng=None,
    ):
        super().__init__()
        rng = get_rng(rng)
        self.lift = Conv2d(in_channels, width, kernel_size=1, rng=rng)
        self.blocks = ModuleList([FNOBlock(width, modes, rng=rng) for _ in range(depth)])
        self.head1 = Conv2d(width, width, kernel_size=1, rng=rng)
        self.head_activation = GELU()
        self.head2 = Conv2d(width, out_channels, kernel_size=1, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        if not isinstance(x, Tensor):
            x = Tensor(x)
        hidden = self.lift(x)
        for block in self.blocks:
            hidden = block(hidden)
        return self.head2(self.head_activation(self.head1(hidden)))
