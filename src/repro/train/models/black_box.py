"""Black-box surrogate: predict the transmission scalar directly from the input.

Used by the "AD-Black Box" gradient-computation baseline of Table II: the
model never sees fields, so the only way to obtain design gradients from it is
auto-differentiation through the network with respect to the permittivity
input channel.
"""

from __future__ import annotations

from repro.autograd.tensor import Tensor
from repro.nn import Conv2d, GELU, GroupNorm, Linear, Module, Sigmoid
from repro.utils.rng import get_rng


class BlackBoxRegressor(Module):
    """Small CNN encoder with global pooling and an MLP head.

    Output is squashed to ``[0, 1]`` (a power transmission / figure of merit).
    """

    def __init__(self, in_channels: int = 4, width: int = 16, rng=None):
        super().__init__()
        rng = get_rng(rng)
        self.conv1 = Conv2d(in_channels, width, kernel_size=3, padding="same", rng=rng)
        self.norm1 = GroupNorm(min(4, width), width)
        self.conv2 = Conv2d(width, 2 * width, kernel_size=3, stride=2, padding=1, rng=rng)
        self.norm2 = GroupNorm(min(4, 2 * width), 2 * width)
        self.conv3 = Conv2d(2 * width, 2 * width, kernel_size=3, stride=2, padding=1, rng=rng)
        self.norm3 = GroupNorm(min(4, 2 * width), 2 * width)
        self.fc1 = Linear(2 * width, 2 * width, rng=rng)
        self.fc2 = Linear(2 * width, 1, rng=rng)
        self.activation = GELU()
        self.squash = Sigmoid()

    def forward(self, x: Tensor) -> Tensor:
        if not isinstance(x, Tensor):
            x = Tensor(x)
        hidden = self.activation(self.norm1(self.conv1(x)))
        hidden = self.activation(self.norm2(self.conv2(hidden)))
        hidden = self.activation(self.norm3(self.conv3(hidden)))
        pooled = hidden.mean(axis=(2, 3))
        hidden = self.activation(self.fc1(pooled))
        return self.squash(self.fc2(hidden)).reshape(-1)
