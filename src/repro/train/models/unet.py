"""UNet baseline (Ronneberger et al., MICCAI 2015) adapted to field regression."""

from __future__ import annotations

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.nn import AvgPool2d, Conv2d, GELU, GroupNorm, Module, UpsampleNearest2d
from repro.utils.rng import get_rng


class ConvBlock(Module):
    """Two 3x3 convolutions with group normalization and GELU."""

    def __init__(self, in_channels: int, out_channels: int, rng=None):
        super().__init__()
        rng = get_rng(rng)
        self.conv1 = Conv2d(in_channels, out_channels, kernel_size=3, padding="same", rng=rng)
        self.norm1 = GroupNorm(min(4, out_channels), out_channels)
        self.conv2 = Conv2d(out_channels, out_channels, kernel_size=3, padding="same", rng=rng)
        self.norm2 = GroupNorm(min(4, out_channels), out_channels)
        self.activation = GELU()

    def forward(self, x: Tensor) -> Tensor:
        x = self.activation(self.norm1(self.conv1(x)))
        return self.activation(self.norm2(self.conv2(x)))


class UNet2d(Module):
    """A compact encoder/decoder UNet with two downsampling stages.

    Inputs whose spatial size is not a multiple of 4 are zero-padded and the
    output is cropped back, so the model accepts any grid shape.
    """

    def __init__(
        self,
        in_channels: int = 4,
        out_channels: int = 2,
        base_width: int = 16,
        rng=None,
    ):
        super().__init__()
        rng = get_rng(rng)
        w = base_width
        self.enc1 = ConvBlock(in_channels, w, rng=rng)
        self.enc2 = ConvBlock(w, 2 * w, rng=rng)
        self.bottleneck = ConvBlock(2 * w, 4 * w, rng=rng)
        self.dec2 = ConvBlock(4 * w + 2 * w, 2 * w, rng=rng)
        self.dec1 = ConvBlock(2 * w + w, w, rng=rng)
        self.head = Conv2d(w, out_channels, kernel_size=1, rng=rng)
        self.pool = AvgPool2d(2)
        self.up = UpsampleNearest2d(2)

    def forward(self, x: Tensor) -> Tensor:
        if not isinstance(x, Tensor):
            x = Tensor(x)
        height, width = x.shape[-2:]
        pad_h = (-height) % 4
        pad_w = (-width) % 4
        if pad_h or pad_w:
            x = F.pad2d(x, (0, pad_h, 0, pad_w))

        skip1 = self.enc1(x)
        skip2 = self.enc2(self.pool(skip1))
        deep = self.bottleneck(self.pool(skip2))
        up2 = self.dec2(Tensor.cat([self.up(deep), skip2], axis=1))
        up1 = self.dec1(Tensor.cat([self.up(up2), skip1], axis=1))
        out = self.head(up1)
        if pad_h or pad_w:
            out = out[..., :height, :width]
        return out
