"""NeurOLight-style physics-aware neural operator (Gu et al., NeurIPS 2022).

The distinguishing ingredients reproduced here:

* a *wave prior* encoding — extra input channels built from the local optical
  path length ``k0 * dl * sqrt(eps)`` accumulated along each axis, which gives
  the model explicit knowledge of the phase a wave accumulates per cell (the
  paper's physics-agnostic conditioning on wavelength and grid step);
* a convolutional stem that jointly encodes permittivity and source before the
  operator layers;
* factorized (cross-shaped) spectral convolution blocks with residual
  feed-forward paths, which is the NeurOLight backbone structure.
"""

from __future__ import annotations

import numpy as np

from repro.autograd.tensor import Tensor
from repro.nn import (
    Conv2d,
    FactorizedSpectralConv2d,
    GELU,
    GroupNorm,
    Module,
    ModuleList,
)
from repro.utils.rng import get_rng

# Channel layout of the standardized input (see repro.data.labels.standardize_input).
_EPS_CHANNEL = 0
_RESOLUTION_CHANNEL = 3
_EPS_MAX = 12.25


def wave_prior_channels(inputs: np.ndarray) -> np.ndarray:
    """Build the wave-prior channels from a standardized input batch.

    For each sample the local phase-per-cell is ``phi = 2 pi (dl / lambda) *
    sqrt(eps_r)``; the prior channels are the sine and cosine of the cumulative
    phase along x and along y (4 channels total).
    """
    inputs = np.asarray(inputs)
    eps = inputs[:, _EPS_CHANNEL] * _EPS_MAX
    resolution = inputs[:, _RESOLUTION_CHANNEL]
    phase_per_cell = 2.0 * np.pi * resolution * np.sqrt(np.clip(eps, 1.0, None))
    phase_x = np.cumsum(phase_per_cell, axis=-2)
    phase_y = np.cumsum(phase_per_cell, axis=-1)
    return np.stack(
        [np.sin(phase_x), np.cos(phase_x), np.sin(phase_y), np.cos(phase_y)], axis=1
    )


class NeurOLightBlock(Module):
    """Factorized spectral mixing + feed-forward with a residual connection."""

    def __init__(self, width: int, modes: tuple[int, int], rng=None):
        super().__init__()
        rng = get_rng(rng)
        self.norm = GroupNorm(min(4, width), width)
        self.spectral = FactorizedSpectralConv2d(width, width, modes, rng=rng)
        self.pointwise = Conv2d(width, width, kernel_size=1, rng=rng)
        self.ff = Conv2d(width, width, kernel_size=1, rng=rng)
        self.activation = GELU()

    def forward(self, x: Tensor) -> Tensor:
        mixed = self.spectral(self.norm(x)) + self.pointwise(x)
        return x + self.ff(self.activation(mixed))


class NeurOLight2d(Module):
    """Physics-aware neural operator for parametric photonic simulation."""

    def __init__(
        self,
        in_channels: int = 4,
        out_channels: int = 2,
        width: int = 24,
        modes: tuple[int, int] = (8, 8),
        depth: int = 4,
        rng=None,
    ):
        super().__init__()
        rng = get_rng(rng)
        # 4 wave-prior channels are appended to the standardized input.
        self.stem = Conv2d(in_channels + 4, width, kernel_size=3, padding="same", rng=rng)
        self.stem_norm = GroupNorm(min(4, width), width)
        self.stem_activation = GELU()
        self.blocks = ModuleList([NeurOLightBlock(width, modes, rng=rng) for _ in range(depth)])
        self.head1 = Conv2d(width, width, kernel_size=1, rng=rng)
        self.head_activation = GELU()
        self.head2 = Conv2d(width, out_channels, kernel_size=1, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        if not isinstance(x, Tensor):
            x = Tensor(x)
        prior = Tensor(wave_prior_channels(x.data))
        augmented = Tensor.cat([x, prior], axis=1)
        hidden = self.stem_activation(self.stem_norm(self.stem(augmented)))
        for block in self.blocks:
            hidden = block(hidden)
        return self.head2(self.head_activation(self.head1(hidden)))
