"""Factorized Fourier Neural Operator baseline (Tran et al., ICLR 2023)."""

from __future__ import annotations

from repro.autograd.tensor import Tensor
from repro.nn import (
    Conv2d,
    FactorizedSpectralConv2d,
    GELU,
    GroupNorm,
    Module,
    ModuleList,
)
from repro.utils.rng import get_rng


class FFNOBlock(Module):
    """F-FNO block: factorized spectral mixing inside a residual feed-forward."""

    def __init__(self, width: int, modes: tuple[int, int], rng=None):
        super().__init__()
        rng = get_rng(rng)
        self.spectral = FactorizedSpectralConv2d(width, width, modes, rng=rng)
        self.ff1 = Conv2d(width, width, kernel_size=1, rng=rng)
        self.ff2 = Conv2d(width, width, kernel_size=1, rng=rng)
        self.norm = GroupNorm(num_groups=min(4, width), num_channels=width)
        self.activation = GELU()

    def forward(self, x: Tensor) -> Tensor:
        mixed = self.spectral(self.norm(x))
        mixed = self.ff2(self.activation(self.ff1(mixed)))
        return x + mixed


class FactorizedFNO2d(Module):
    """F-FNO with residual factorized spectral blocks (parameter-lean FNO)."""

    def __init__(
        self,
        in_channels: int = 4,
        out_channels: int = 2,
        width: int = 24,
        modes: tuple[int, int] = (8, 8),
        depth: int = 4,
        rng=None,
    ):
        super().__init__()
        rng = get_rng(rng)
        self.lift = Conv2d(in_channels, width, kernel_size=1, rng=rng)
        self.blocks = ModuleList([FFNOBlock(width, modes, rng=rng) for _ in range(depth)])
        self.head1 = Conv2d(width, width, kernel_size=1, rng=rng)
        self.head_activation = GELU()
        self.head2 = Conv2d(width, out_channels, kernel_size=1, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        if not isinstance(x, Tensor):
            x = Tensor(x)
        hidden = self.lift(x)
        for block in self.blocks:
            hidden = block(hidden)
        return self.head2(self.head_activation(self.head1(hidden)))
