"""Multi-fidelity training curricula.

A curriculum decides, per epoch, which fidelity tiers of a multi-fidelity
dataset the trainer draws from, at what sampling fraction, and with what loss
weight.  The three schedules of the MAPS training recipe:

* ``"warmup"`` — train on the cheap low-fidelity tier first, then open up
  every tier (optionally weighting the high-fidelity labels more).
* ``"mixed"`` — every epoch mixes all tiers at fixed sampling ratios.
* ``"finetune"`` — train on everything, then spend the final epochs on the
  highest tier only (the classic pretrain-cheap / finetune-exact recipe).
* ``"adaptive"`` — validation-error-driven: start on the cheapest tier and
  *promote* the next tier into the mix whenever the newest tier's validation
  loss plateaus, instead of switching at fixed epoch fractions.

The trainer applies a stage by building *fidelity-homogeneous* mini-batches
(a batch never mixes tiers, which also keeps mixed cell-size datasets
stackable), scaling each batch's loss by the tier's weight, and recording the
per-tier sample counts, weights and losses in the
:class:`~repro.train.trainer.TrainingHistory` epoch records.  After each
epoch the trainer feeds the finished epoch record back through
:meth:`Curriculum.observe`, which is how the adaptive schedule sees the
validation curve it reacts to.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "CurriculumStage",
    "Curriculum",
    "MixedCurriculum",
    "WarmupCurriculum",
    "FinetuneCurriculum",
    "AdaptiveCurriculum",
    "available_curricula",
    "make_curriculum",
]


@dataclass(frozen=True)
class CurriculumStage:
    """What one epoch trains on.

    ``sample_fractions`` maps each active fidelity to the fraction of its
    sample pool drawn this epoch (tiers absent from the mapping, or mapped to
    0, sit the epoch out); ``loss_weights`` maps fidelities to the multiplier
    applied to their batches' loss.
    """

    sample_fractions: dict[str, float]
    loss_weights: dict[str, float] = field(default_factory=dict)

    def weight(self, fidelity: str) -> float:
        return float(self.loss_weights.get(fidelity, 1.0))


class Curriculum:
    """Base class: an epoch-indexed schedule over fidelity tiers.

    Parameters
    ----------
    fidelities:
        Tier names ordered cheap to expensive (the generation config's
        ``fidelities`` order, e.g. ``("low", "high")``).
    loss_weights:
        Optional per-tier loss multipliers applied whenever a tier is active.
    """

    name = "abstract"

    def __init__(
        self,
        fidelities: tuple[str, ...] | list[str] = ("low", "high"),
        loss_weights: dict[str, float] | None = None,
    ):
        fidelities = tuple(fidelities)
        if not fidelities:
            raise ValueError("at least one fidelity is required")
        if len(set(fidelities)) != len(fidelities):
            raise ValueError(f"duplicate fidelities: {list(fidelities)}")
        self.fidelities = fidelities
        self.loss_weights = dict(loss_weights or {})
        unknown = set(self.loss_weights) - set(fidelities)
        if unknown:
            raise ValueError(
                f"loss weights for unknown fidelities {sorted(unknown)}; "
                f"configured: {list(fidelities)}"
            )
        bad = {f: w for f, w in self.loss_weights.items() if not w > 0}
        if bad:
            # Muting a tier is a *sampling* decision (fraction 0 / absent from
            # the stage), not a zero loss weight.
            raise ValueError(f"loss weights must be positive, got {bad}")

    def stage(self, epoch: int, total_epochs: int) -> CurriculumStage:
        """The stage for ``epoch`` of a ``total_epochs``-epoch run."""
        raise NotImplementedError

    def observe(self, record: dict) -> None:
        """Receive the finished epoch record (losses, validation metrics).

        Called by the trainer after every epoch, *after* evaluation.  The
        epoch-fraction schedules ignore it; the ``adaptive`` schedule uses it
        to watch the validation curve and decide tier promotions.
        """

    def _stage(self, active: dict[str, float]) -> CurriculumStage:
        return CurriculumStage(
            sample_fractions=active,
            loss_weights={f: self.loss_weights.get(f, 1.0) for f in active},
        )

    def describe(self) -> dict:
        """JSON-serializable summary (recorded in benchmark records)."""
        return {
            "name": self.name,
            "fidelities": list(self.fidelities),
            "loss_weights": dict(self.loss_weights),
        }


class MixedCurriculum(Curriculum):
    """Every epoch mixes all tiers at fixed sampling ratios."""

    name = "mixed"

    def __init__(self, fidelities=("low", "high"), ratios=None, loss_weights=None):
        super().__init__(fidelities, loss_weights)
        ratios = dict(ratios or {})
        unknown = set(ratios) - set(self.fidelities)
        if unknown:
            raise ValueError(f"ratios for unknown fidelities {sorted(unknown)}")
        self.ratios = {f: float(ratios.get(f, 1.0)) for f in self.fidelities}
        if any(not 0.0 <= r <= 1.0 for r in self.ratios.values()):
            raise ValueError(f"ratios must be in [0, 1], got {self.ratios}")

    def stage(self, epoch: int, total_epochs: int) -> CurriculumStage:
        return self._stage({f: r for f, r in self.ratios.items() if r > 0})

    def describe(self) -> dict:
        return {**super().describe(), "ratios": dict(self.ratios)}


class WarmupCurriculum(Curriculum):
    """Low→high warmup: the first tier only, then every tier.

    The first ``warmup_fraction`` of the epochs trains exclusively on the
    first (cheapest) fidelity; the remaining epochs use all tiers.
    """

    name = "warmup"

    def __init__(
        self, fidelities=("low", "high"), warmup_fraction=0.5, loss_weights=None
    ):
        super().__init__(fidelities, loss_weights)
        if not 0.0 <= warmup_fraction <= 1.0:
            raise ValueError(f"warmup_fraction must be in [0, 1], got {warmup_fraction}")
        self.warmup_fraction = float(warmup_fraction)

    def stage(self, epoch: int, total_epochs: int) -> CurriculumStage:
        warmup_epochs = int(round(self.warmup_fraction * total_epochs))
        if epoch < warmup_epochs:
            return self._stage({self.fidelities[0]: 1.0})
        return self._stage({f: 1.0 for f in self.fidelities})

    def describe(self) -> dict:
        return {**super().describe(), "warmup_fraction": self.warmup_fraction}


class FinetuneCurriculum(Curriculum):
    """Train on every tier, then fine-tune on the last (highest) tier only."""

    name = "finetune"

    def __init__(
        self, fidelities=("low", "high"), finetune_fraction=0.3, loss_weights=None
    ):
        super().__init__(fidelities, loss_weights)
        if not 0.0 <= finetune_fraction <= 1.0:
            raise ValueError(
                f"finetune_fraction must be in [0, 1], got {finetune_fraction}"
            )
        self.finetune_fraction = float(finetune_fraction)

    def stage(self, epoch: int, total_epochs: int) -> CurriculumStage:
        finetune_epochs = int(round(self.finetune_fraction * total_epochs))
        if epoch >= total_epochs - finetune_epochs:
            return self._stage({self.fidelities[-1]: 1.0})
        return self._stage({f: 1.0 for f in self.fidelities})

    def describe(self) -> dict:
        return {**super().describe(), "finetune_fraction": self.finetune_fraction}


class AdaptiveCurriculum(Curriculum):
    """Validation-error-driven tier promotion: open the next tier on plateau.

    Training starts on the first (cheapest) fidelity alone.  After every
    epoch the trainer hands the finished epoch record to :meth:`observe`; the
    curriculum watches the *newest active tier's* validation error
    (``test_n_l2_<fid>``, falling back to the overall ``test_n_l2``, the
    tier's train loss, then the overall train loss — so it degrades
    gracefully when no validation set is attached) and, once the monitored
    value has not improved by at least ``min_improvement`` (relative) for
    ``patience`` consecutive epochs, *promotes* the next tier into the mix.
    Promotion epochs are recorded in :attr:`promotions`.

    Unlike ``warmup``/``finetune``, the schedule never needs the total epoch
    count to be right: a model that masters the cheap tier quickly gets exact
    data early, a slow one is not starved of cheap data by a fixed fraction.

    Examples
    --------
    >>> curriculum = AdaptiveCurriculum(("low", "high"), patience=2)
    >>> curriculum.stage(0, 10).sample_fractions
    {'low': 1.0}
    >>> for epoch in range(4):                 # flat validation curve ...
    ...     curriculum.observe({"test_n_l2": 0.5})
    >>> curriculum.stage(4, 10).sample_fractions  # ... promotes "high"
    {'low': 1.0, 'high': 1.0}
    """

    name = "adaptive"

    def __init__(
        self,
        fidelities=("low", "high"),
        patience: int = 3,
        min_improvement: float = 0.01,
        loss_weights=None,
    ):
        super().__init__(fidelities, loss_weights)
        if patience < 1:
            raise ValueError(f"patience must be at least 1, got {patience}")
        if min_improvement < 0.0:
            raise ValueError(
                f"min_improvement must be non-negative, got {min_improvement}"
            )
        self.patience = int(patience)
        self.min_improvement = float(min_improvement)
        self._level = 0
        self._best = float("inf")
        self._stall = 0
        self._epochs_seen = 0
        #: Epoch indices (0-based, as seen by ``observe``) where a tier was
        #: promoted into the mix, parallel to the promoted tier names.
        self.promotions: list[tuple[int, str]] = []

    @property
    def active_fidelities(self) -> tuple[str, ...]:
        """The tiers currently in the training mix (cheapest first)."""
        return self.fidelities[: self._level + 1]

    def stage(self, epoch: int, total_epochs: int) -> CurriculumStage:
        return self._stage({f: 1.0 for f in self.active_fidelities})

    def _monitored_value(self, record: dict) -> float | None:
        newest = self.active_fidelities[-1]
        for key in (
            f"test_n_l2_{newest}",
            "test_n_l2",
            f"test_mae_{newest}",
            "test_mae",
            f"train_loss_{newest}",
            "train_loss",
        ):
            value = record.get(key)
            if value is not None and np.isfinite(value):
                return float(value)
        return None

    def observe(self, record: dict) -> None:
        self._epochs_seen += 1
        value = self._monitored_value(record)
        if value is None:
            return
        if value < self._best * (1.0 - self.min_improvement):
            self._best = value
            self._stall = 0
            return
        self._stall += 1
        if self._stall >= self.patience and self._level < len(self.fidelities) - 1:
            self._level += 1
            self.promotions.append((self._epochs_seen - 1, self.fidelities[self._level]))
            # The promoted tier starts a fresh plateau watch.
            self._best = float("inf")
            self._stall = 0

    def reset(self) -> None:
        """Back to the cheapest tier (for reusing one instance across runs)."""
        self._level = 0
        self._best = float("inf")
        self._stall = 0
        self._epochs_seen = 0
        self.promotions = []

    def describe(self) -> dict:
        return {
            **super().describe(),
            "patience": self.patience,
            "min_improvement": self.min_improvement,
            "promotions": [list(p) for p in self.promotions],
        }


_CURRICULA = {
    "mixed": MixedCurriculum,
    "warmup": WarmupCurriculum,
    "finetune": FinetuneCurriculum,
    "adaptive": AdaptiveCurriculum,
}


def available_curricula() -> list[str]:
    """Names accepted by :func:`make_curriculum`."""
    return sorted(_CURRICULA)


def make_curriculum(name: str, fidelities=("low", "high"), **kwargs) -> Curriculum:
    """Instantiate a curriculum by name.

    ``"warmup"``, ``"mixed"`` and ``"finetune"`` schedule by epoch fraction;
    ``"adaptive"`` promotes tiers when the validation error plateaus.
    """
    key = name.lower().strip()
    if key not in _CURRICULA:
        raise ValueError(f"unknown curriculum {name!r}; available: {available_curricula()}")
    return _CURRICULA[key](fidelities=fidelities, **kwargs)
