"""Process/operation corner definitions for variation-aware optimization."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.fabrication.drift import TemperatureDrift, WavelengthDrift
from repro.fabrication.etching import EtchModel
from repro.fabrication.lithography import LithographyModel
from repro.parametrization.transforms import Transform, TransformPipeline


@dataclass
class FabricationCorner:
    """One corner: a pattern transform plus operating-condition drifts.

    Attributes
    ----------
    name:
        Corner identifier ("nominal", "over_etch", ...).
    pattern_transforms:
        Differentiable transforms applied to the design density before
        simulation (lithography at a defocus/dose corner, etch bias, ...).
    wavelength_drift, temperature_drift:
        Operating-condition shifts applied when simulating this corner.
    weight:
        Relative weight in the robust (expected-value) objective.
    """

    name: str
    pattern_transforms: list[Transform] = field(default_factory=list)
    wavelength_drift: WavelengthDrift = WavelengthDrift(0.0)
    temperature_drift: TemperatureDrift = TemperatureDrift(0.0)
    weight: float = 1.0

    def pipeline(self) -> TransformPipeline:
        """The corner's pattern transforms as a pipeline (possibly empty)."""
        return TransformPipeline(list(self.pattern_transforms))


def standard_corners(
    litho_sigma_cells: float = 1.5,
    etch_bias_cells: float = 1.0,
    defocus_cells: float = 1.0,
    dose_spread: float = 0.1,
    wavelength_shift_um: float = 0.005,
    temperature_shift_k: float = 20.0,
) -> list[FabricationCorner]:
    """The default corner set used by variation-aware inverse design.

    Returns the nominal corner plus over/under-etch, defocus+dose corners and
    operating-condition (wavelength, temperature) corners.  The nominal corner
    carries double weight so the expected-value objective stays anchored to
    nominal performance.
    """
    nominal_litho = LithographyModel(blur_sigma_cells=litho_sigma_cells)
    return [
        FabricationCorner(name="nominal", pattern_transforms=[nominal_litho], weight=2.0),
        FabricationCorner(
            name="over_etch",
            pattern_transforms=[nominal_litho, EtchModel(bias_cells=+etch_bias_cells)],
        ),
        FabricationCorner(
            name="under_etch",
            pattern_transforms=[nominal_litho, EtchModel(bias_cells=-etch_bias_cells)],
        ),
        FabricationCorner(
            name="defocus_overdose",
            pattern_transforms=[
                nominal_litho.with_corner(defocus=defocus_cells, dose=1.0 + dose_spread)
            ],
        ),
        FabricationCorner(
            name="defocus_underdose",
            pattern_transforms=[
                nominal_litho.with_corner(defocus=defocus_cells, dose=1.0 - dose_spread)
            ],
        ),
        FabricationCorner(
            name="wavelength_drift",
            pattern_transforms=[nominal_litho],
            wavelength_drift=WavelengthDrift(wavelength_shift_um),
        ),
        FabricationCorner(
            name="temperature_drift",
            pattern_transforms=[nominal_litho],
            temperature_drift=TemperatureDrift(temperature_shift_k),
        ),
    ]
