"""Fabrication and operation variation models for variation-aware inverse design.

The paper integrates a differentiable lithography model and etching/operating
variations into the optimization loop so that optimized devices remain
performant across process corners.  This subpackage provides:

* :class:`~repro.fabrication.lithography.LithographyModel` — differentiable
  dose/defocus projection model (blur + threshold),
* :class:`~repro.fabrication.etching.EtchModel` — over/under-etch bias as a
  shifted-threshold projection,
* :class:`~repro.fabrication.drift.WavelengthDrift` and
  :class:`~repro.fabrication.drift.TemperatureDrift` — operating-condition
  variations applied at simulation time,
* :func:`~repro.fabrication.corners.standard_corners` — the corner set used by
  robust (variation-aware) optimization.
"""

from repro.fabrication.lithography import LithographyModel
from repro.fabrication.etching import EtchModel
from repro.fabrication.drift import WavelengthDrift, TemperatureDrift
from repro.fabrication.corners import FabricationCorner, standard_corners

__all__ = [
    "LithographyModel",
    "EtchModel",
    "WavelengthDrift",
    "TemperatureDrift",
    "FabricationCorner",
    "standard_corners",
]
