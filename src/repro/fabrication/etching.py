"""Etch-bias model: over/under-etch as a shifted smoothed threshold."""

from __future__ import annotations

import numpy as np

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.parametrization.transforms import Transform, _conic_kernel


class EtchModel(Transform):
    """Isotropic etch bias.

    A positive ``bias_cells`` erodes the pattern (over-etch: solid features
    shrink by roughly that many cells); a negative value dilates it
    (under-etch).  The model blurs the pattern with a conic kernel of radius
    ``|bias| + 1`` and shifts the re-projection threshold, the standard
    differentiable erosion/dilation approximation.
    """

    def __init__(self, bias_cells: float = 0.0, sharpness: float = 10.0):
        self.bias_cells = float(bias_cells)
        if sharpness <= 0:
            raise ValueError(f"sharpness must be positive, got {sharpness}")
        self.sharpness = float(sharpness)
        radius = abs(self.bias_cells) + 1.0
        self._kernel = _conic_kernel(radius)
        self._radius = radius

    @property
    def threshold(self) -> float:
        """Threshold shift implementing the erosion/dilation."""
        if self._radius <= 0:
            return 0.5
        shift = 0.4 * self.bias_cells / self._radius
        return float(np.clip(0.5 + shift, 0.05, 0.95))

    def apply(self, density: Tensor) -> Tensor:
        if self.bias_cells == 0.0:
            return density
        kernel = Tensor(self._kernel[None, None])
        pad = self._kernel.shape[0] // 2
        image = density.reshape(1, 1, *density.shape)
        padded = F.pad2d(image, (pad, pad, pad, pad), value=0.0)
        blurred = F.conv2d(padded, kernel, bias=None, stride=1, padding=0)
        blurred = blurred.reshape(*density.shape)
        return ((blurred - self.threshold) * self.sharpness).sigmoid()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EtchModel(bias_cells={self.bias_cells})"
