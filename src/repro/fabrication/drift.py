"""Operating-condition variations: laser wavelength shift and temperature drift.

Unlike the lithography/etch models, these do not modify the design pattern:
they change the simulation conditions (wavelength, background permittivity)
and are applied by the variation-aware optimizer when evaluating a corner.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import DN_DT_SI, EPS_SIO2


@dataclass(frozen=True)
class WavelengthDrift:
    """Shift of the operating wavelength (e.g. laser drift), in micrometres."""

    delta_um: float = 0.0

    def apply_wavelength(self, wavelength_um: float) -> float:
        """Return the drifted operating wavelength."""
        shifted = wavelength_um + self.delta_um
        if shifted <= 0:
            raise ValueError(f"drift {self.delta_um} gives non-positive wavelength")
        return shifted


@dataclass(frozen=True)
class TemperatureDrift:
    """Uniform temperature change of the device, in kelvin.

    Silicon's thermo-optic coefficient shifts the refractive index of the core
    material; the cladding coefficient is an order of magnitude smaller and is
    neglected.  The permittivity perturbation is applied only where the
    permittivity exceeds the cladding value (i.e. wherever there is core
    material, including interpolated densities).
    """

    delta_kelvin: float = 0.0
    dn_dt: float = DN_DT_SI

    def apply_eps(self, eps_r: np.ndarray) -> np.ndarray:
        """Return the permittivity map at the drifted temperature."""
        if self.delta_kelvin == 0.0:
            return np.asarray(eps_r)
        eps_r = np.array(eps_r, dtype=float, copy=True)
        core_like = eps_r > EPS_SIO2 + 1e-6
        # d(eps)/dT = 2 n dn/dT with n = sqrt(eps) locally.
        eps_r[core_like] += 2.0 * np.sqrt(eps_r[core_like]) * self.dn_dt * self.delta_kelvin
        return eps_r
