"""Differentiable lithography model.

The paper integrates a GPU inverse-lithography model [Yang & Ren, ISPD'25]
into the optimization loop.  This reproduction uses the standard compact
model of the topology-optimization literature: the mask pattern is convolved
with a Gaussian aerial-image kernel whose width grows with defocus, and the
resist response is a smoothed threshold whose level shifts with dose.  The
model is differentiable end to end, so it can sit between the design
parametrization and the simulator exactly like the paper's model does.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.parametrization.transforms import Transform


def _gaussian_kernel(sigma_cells: float) -> np.ndarray:
    """Normalized 2-D Gaussian kernel with standard deviation in cells."""
    radius = max(int(np.ceil(3.0 * sigma_cells)), 1)
    coords = np.arange(-radius, radius + 1)
    xx, yy = np.meshgrid(coords, coords, indexing="ij")
    kernel = np.exp(-(xx**2 + yy**2) / (2.0 * sigma_cells**2))
    return kernel / kernel.sum()


class LithographyModel(Transform):
    """Aerial-image + resist model: Gaussian blur followed by a dose threshold.

    Parameters
    ----------
    blur_sigma_cells:
        Nominal aerial-image blur (optical resolution) in grid cells.
    defocus:
        Additional defocus in cells; added in quadrature to the nominal blur.
    dose:
        Relative exposure dose.  Dose > 1 lowers the printing threshold
        (features widen); dose < 1 raises it (features shrink).
    sharpness:
        Resist contrast: slope of the smoothed threshold.
    """

    def __init__(
        self,
        blur_sigma_cells: float = 1.5,
        defocus: float = 0.0,
        dose: float = 1.0,
        sharpness: float = 10.0,
    ):
        if blur_sigma_cells <= 0:
            raise ValueError(f"blur sigma must be positive, got {blur_sigma_cells}")
        if dose <= 0:
            raise ValueError(f"dose must be positive, got {dose}")
        if sharpness <= 0:
            raise ValueError(f"sharpness must be positive, got {sharpness}")
        self.blur_sigma_cells = float(blur_sigma_cells)
        self.defocus = float(defocus)
        self.dose = float(dose)
        self.sharpness = float(sharpness)
        sigma = float(np.sqrt(blur_sigma_cells**2 + defocus**2))
        self._kernel = _gaussian_kernel(sigma)

    @property
    def threshold(self) -> float:
        """Printing threshold implied by the dose (nominal dose prints at 0.5)."""
        return float(np.clip(0.5 / self.dose, 0.05, 0.95))

    def apply(self, density: Tensor) -> Tensor:
        kernel = Tensor(self._kernel[None, None])
        pad = self._kernel.shape[0] // 2
        image = density.reshape(1, 1, *density.shape)
        padded = F.pad2d(image, (pad, pad, pad, pad), value=0.0)
        aerial = F.conv2d(padded, kernel, bias=None, stride=1, padding=0)
        aerial = aerial.reshape(*density.shape)
        # Smoothed resist threshold.
        return ((aerial - self.threshold) * self.sharpness).sigmoid()

    def with_corner(self, defocus: float, dose: float) -> "LithographyModel":
        """A copy of the model at a different (defocus, dose) process corner."""
        return LithographyModel(
            blur_sigma_cells=self.blur_sigma_cells,
            defocus=defocus,
            dose=dose,
            sharpness=self.sharpness,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LithographyModel(blur={self.blur_sigma_cells}, defocus={self.defocus}, "
            f"dose={self.dose})"
        )
