"""A compact reverse-mode automatic-differentiation engine on NumPy arrays.

This substrate replaces PyTorch for the reproduction: the surrogate models in
:mod:`repro.train`, the auto-differentiation gradient baselines of Table II and
the differentiable design transforms all run on :class:`Tensor`.

The engine is deliberately small: dense float tensors, dynamic graphs built by
operator overloading, and a topological-order backward pass.  Convolutions,
pooling and the Fourier-domain operators used by the neural operators live in
:mod:`repro.autograd.functional` as fused primitives with hand-written
backward rules.
"""

from repro.autograd.tensor import Tensor, no_grad, is_grad_enabled
from repro.autograd import functional
from repro.autograd.grad_check import numerical_gradient, check_gradient

__all__ = [
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "functional",
    "numerical_gradient",
    "check_gradient",
]
