"""Fused differentiable primitives: convolution, pooling, padding and the
Fourier-domain operators used by the neural-operator surrogates.

Each function takes and returns :class:`repro.autograd.Tensor` and registers a
hand-written backward rule.  The Fourier operators use full complex FFTs on
real inputs; the backward rules follow from Wirtinger calculus for linear maps
(see the derivation in the docstring of :func:`spectral_conv2d`).
"""

from __future__ import annotations

import numpy as np

from repro.autograd.tensor import Tensor
from repro.utils import backend as array_backend


# --------------------------------------------------------------------------- #
# padding
# --------------------------------------------------------------------------- #
def pad2d(x: Tensor, pad: tuple[int, int, int, int], value: float = 0.0) -> Tensor:
    """Pad the last two dimensions of ``x``.

    Parameters
    ----------
    x:
        Tensor of shape ``(..., H, W)``.
    pad:
        ``(top, bottom, left, right)`` padding sizes.
    value:
        Constant fill value.
    """
    top, bottom, left, right = pad
    if min(pad) < 0:
        raise ValueError(f"negative padding not supported: {pad}")
    widths = [(0, 0)] * (x.ndim - 2) + [(top, bottom), (left, right)]
    data = np.pad(x.data, widths, mode="constant", constant_values=value)

    def backward(grad, accumulate):
        grad = np.asarray(grad)
        slices = [slice(None)] * (x.ndim - 2)
        slices.append(slice(top, grad.shape[-2] - bottom))
        slices.append(slice(left, grad.shape[-1] - right))
        accumulate(x, grad[tuple(slices)])

    return x._make_child(data, (x,), backward)


def crop2d(x: Tensor, shape: tuple[int, int]) -> Tensor:
    """Crop the last two dimensions of ``x`` to ``shape`` (top-left anchored)."""
    h, w = shape
    if h > x.shape[-2] or w > x.shape[-1]:
        raise ValueError(f"cannot crop {x.shape} to {shape}")
    return x[..., :h, :w]


# --------------------------------------------------------------------------- #
# convolution
# --------------------------------------------------------------------------- #
def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Tensor | None = None,
    stride: int = 1,
    padding: int = 0,
) -> Tensor:
    """2-D cross-correlation (the deep-learning "convolution").

    Parameters
    ----------
    x:
        Input of shape ``(B, C_in, H, W)``.
    weight:
        Kernel of shape ``(C_out, C_in, kH, kW)``.
    bias:
        Optional bias of shape ``(C_out,)``.
    stride, padding:
        Integer stride and symmetric zero padding.
    """
    if x.ndim != 4:
        raise ValueError(f"conv2d expects (B, C, H, W), got {x.shape}")
    if weight.ndim != 4:
        raise ValueError(f"weight must be (C_out, C_in, kH, kW), got {weight.shape}")
    batch, c_in, height, width = x.shape
    c_out, c_in_w, k_h, k_w = weight.shape
    if c_in != c_in_w:
        raise ValueError(f"channel mismatch: input has {c_in}, weight expects {c_in_w}")

    xp = np.pad(
        x.data,
        ((0, 0), (0, 0), (padding, padding), (padding, padding)),
        mode="constant",
    )
    h_out = (height + 2 * padding - k_h) // stride + 1
    w_out = (width + 2 * padding - k_w) // stride + 1
    if h_out <= 0 or w_out <= 0:
        raise ValueError(
            f"output size would be non-positive for input {x.shape} with kernel "
            f"{(k_h, k_w)}, stride {stride}, padding {padding}"
        )

    # im2col: gather all receptive-field patches into a (B*Ho*Wo, C*kh*kw)
    # matrix so both the forward and the backward pass are single BLAS matmuls.
    strides = xp.strides
    patches = np.lib.stride_tricks.as_strided(
        xp,
        shape=(batch, c_in, h_out, w_out, k_h, k_w),
        strides=(
            strides[0],
            strides[1],
            strides[2] * stride,
            strides[3] * stride,
            strides[2],
            strides[3],
        ),
        writeable=False,
    )
    columns = np.ascontiguousarray(patches.transpose(0, 2, 3, 1, 4, 5)).reshape(
        batch * h_out * w_out, c_in * k_h * k_w
    )
    kernel_matrix = weight.data.reshape(c_out, c_in * k_h * k_w)
    out = (columns @ kernel_matrix.T).reshape(batch, h_out, w_out, c_out)
    out = np.ascontiguousarray(out.transpose(0, 3, 1, 2))
    if bias is not None:
        out += bias.data.reshape(1, -1, 1, 1)

    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(grad, accumulate):
        grad = np.asarray(grad)
        grad_matrix = grad.transpose(0, 2, 3, 1).reshape(batch * h_out * w_out, c_out)
        grad_w = (grad_matrix.T @ columns).reshape(c_out, c_in, k_h, k_w)
        grad_columns = grad_matrix @ kernel_matrix
        grad_patches = grad_columns.reshape(batch, h_out, w_out, c_in, k_h, k_w)
        grad_xp = np.zeros_like(xp)
        # Scatter-add the patch gradients back onto the padded input.
        for u in range(k_h):
            for v in range(k_w):
                grad_xp[
                    :, :, u : u + stride * h_out : stride, v : v + stride * w_out : stride
                ] += grad_patches[:, :, :, :, u, v].transpose(0, 3, 1, 2)
        if padding > 0:
            grad_x = grad_xp[:, :, padding:-padding, padding:-padding]
        else:
            grad_x = grad_xp
        accumulate(x, grad_x)
        accumulate(weight, grad_w)
        if bias is not None:
            accumulate(bias, grad.sum(axis=(0, 2, 3)))

    return x._make_child(out, parents, backward)


# --------------------------------------------------------------------------- #
# pooling and resampling
# --------------------------------------------------------------------------- #
def avg_pool2d(x: Tensor, kernel: int = 2) -> Tensor:
    """Average pooling with square kernel and equal stride.

    The spatial dimensions must be divisible by ``kernel`` (the models pad
    their inputs to guarantee this).
    """
    batch, channels, height, width = x.shape
    if height % kernel or width % kernel:
        raise ValueError(f"spatial size {(height, width)} not divisible by {kernel}")
    h_out, w_out = height // kernel, width // kernel
    reshaped = x.data.reshape(batch, channels, h_out, kernel, w_out, kernel)
    out = reshaped.mean(axis=(3, 5))

    def backward(grad, accumulate):
        grad = np.asarray(grad) / (kernel * kernel)
        expanded = np.repeat(np.repeat(grad, kernel, axis=-2), kernel, axis=-1)
        accumulate(x, expanded)

    return x._make_child(out, (x,), backward)


def upsample_nearest(x: Tensor, scale: int = 2) -> Tensor:
    """Nearest-neighbour upsampling of the last two dimensions by ``scale``."""
    out = np.repeat(np.repeat(x.data, scale, axis=-2), scale, axis=-1)
    batch, channels, height, width = x.shape

    def backward(grad, accumulate):
        grad = np.asarray(grad)
        reshaped = grad.reshape(batch, channels, height, scale, width, scale)
        accumulate(x, reshaped.sum(axis=(3, 5)))

    return x._make_child(out, (x,), backward)


# --------------------------------------------------------------------------- #
# Fourier-domain operators
# --------------------------------------------------------------------------- #
def _corner_indices(size: int, modes: int) -> np.ndarray:
    """Indices of the lowest ``modes`` positive and negative frequencies."""
    if 2 * modes > size:
        raise ValueError(f"2*modes={2 * modes} exceeds transform size {size}")
    return np.concatenate([np.arange(modes), np.arange(size - modes, size)])


def spectral_conv2d(x: Tensor, w_real: Tensor, w_imag: Tensor, modes: tuple[int, int]) -> Tensor:
    """FNO-style spectral convolution over the last two dimensions.

    ``y = Re( IFFT2( W ⊙ FFT2(x) ) )`` where the complex weights ``W`` act only
    on the lowest ``modes = (m1, m2)`` positive/negative frequencies and mix
    input channels into output channels.

    Shapes
    ------
    ``x``: ``(B, C_in, H, W)``; ``w_real``/``w_imag``: ``(C_in, C_out, 2*m1, 2*m2)``;
    output: ``(B, C_out, H, W)``.

    Backward
    --------
    With the unnormalized FFT pair (``numpy`` default), for real input ``x``
    and real output ``y`` the cotangents are::

        G_P = FFT2(dL/dy) / (H*W)                 # cotangent of the product
        dL/dW = conj(X) ⊙ G_P   (summed over batch)
        G_X  = conj(W) ⊙ G_P
        dL/dx = H*W * Re(IFFT2(G_X))
    """
    if x.ndim != 4:
        raise ValueError(f"spectral_conv2d expects (B, C, H, W), got {x.shape}")
    m1, m2 = modes
    batch, c_in, height, width = x.shape
    c_in_w, c_out = w_real.shape[0], w_real.shape[1]
    if c_in != c_in_w:
        raise ValueError(f"channel mismatch: input {c_in}, weight {c_in_w}")
    if w_real.shape != (c_in, c_out, 2 * m1, 2 * m2):
        raise ValueError(
            f"weight shape {w_real.shape} does not match (C_in, C_out, 2*m1, 2*m2)="
            f"{(c_in, c_out, 2 * m1, 2 * m2)}"
        )
    rows = _corner_indices(height, m1)
    cols = _corner_indices(width, m2)

    x_ft = array_backend.fft2(x.data)
    x_modes = x_ft[:, :, rows[:, None], cols[None, :]]  # (B, C_in, 2m1, 2m2)
    weight = w_real.data + 1j * w_imag.data
    prod = np.einsum("bimn,iomn->bomn", x_modes, weight)
    full = np.zeros((batch, c_out, height, width), dtype=complex)
    full[:, :, rows[:, None], cols[None, :]] = prod
    out = np.real(array_backend.ifft2(full)).astype(x.data.dtype)

    def backward(grad, accumulate):
        grad = np.asarray(grad)
        g_p = array_backend.fft2(grad) / (height * width)
        g_p_modes = g_p[:, :, rows[:, None], cols[None, :]]
        grad_weight = np.einsum("bimn,bomn->iomn", np.conj(x_modes), g_p_modes)
        g_x_modes = np.einsum("bomn,iomn->bimn", g_p_modes, np.conj(weight))
        g_x_full = np.zeros((batch, c_in, height, width), dtype=complex)
        g_x_full[:, :, rows[:, None], cols[None, :]] = g_x_modes
        grad_x = (height * width) * np.real(array_backend.ifft2(g_x_full))
        accumulate(x, grad_x.astype(x.data.dtype))
        accumulate(w_real, np.real(grad_weight))
        accumulate(w_imag, np.imag(grad_weight))

    return x._make_child(out, (x, w_real, w_imag), backward)


def spectral_conv1d(x: Tensor, w_real: Tensor, w_imag: Tensor, modes: int, axis: int) -> Tensor:
    """Factorized spectral convolution along a single spatial axis.

    Used by the Factorized-FNO and NeurOLight blocks: a 1-D FFT is taken along
    ``axis`` (-1 or -2 of a ``(B, C, H, W)`` tensor), channel mixing is applied
    to the lowest ``modes`` positive/negative frequencies and the inverse FFT
    brings the signal back.  Weights have shape ``(C_in, C_out, 2*modes)``.
    """
    if x.ndim != 4:
        raise ValueError(f"spectral_conv1d expects (B, C, H, W), got {x.shape}")
    if axis not in (-1, -2, 2, 3):
        raise ValueError(f"axis must address a spatial dimension, got {axis}")
    axis = axis if axis < 0 else axis - 4
    batch, c_in, height, width = x.shape
    size = x.shape[axis]
    c_in_w, c_out = w_real.shape[0], w_real.shape[1]
    if c_in != c_in_w:
        raise ValueError(f"channel mismatch: input {c_in}, weight {c_in_w}")
    if w_real.shape != (c_in, c_out, 2 * modes):
        raise ValueError(
            f"weight shape {w_real.shape} does not match (C_in, C_out, 2*modes)="
            f"{(c_in, c_out, 2 * modes)}"
        )
    idx = _corner_indices(size, modes)

    x_ft = array_backend.fft(x.data, axis=axis)
    x_modes = np.take(x_ft, idx, axis=axis)  # modes along `axis`
    weight = w_real.data + 1j * w_imag.data

    if axis == -2:
        prod = np.einsum("bimw,iom->bomw", x_modes, weight)
        out_shape = (batch, c_out, height, width)
    else:
        prod = np.einsum("bihm,iom->bohm", x_modes, weight)
        out_shape = (batch, c_out, height, width)

    full = np.zeros(out_shape, dtype=complex)
    indexer = [slice(None)] * 4
    indexer[axis] = idx
    full[tuple(indexer)] = prod
    out = np.real(array_backend.ifft(full, axis=axis)).astype(x.data.dtype)

    def backward(grad, accumulate):
        grad = np.asarray(grad)
        g_p = array_backend.fft(grad, axis=axis) / size
        g_p_modes = np.take(g_p, idx, axis=axis)
        if axis == -2:
            grad_weight = np.einsum("bimw,bomw->iom", np.conj(x_modes), g_p_modes)
            g_x_modes = np.einsum("bomw,iom->bimw", g_p_modes, np.conj(weight))
        else:
            grad_weight = np.einsum("bihm,bohm->iom", np.conj(x_modes), g_p_modes)
            g_x_modes = np.einsum("bohm,iom->bihm", g_p_modes, np.conj(weight))
        g_x_full = np.zeros((batch, c_in, height, width), dtype=complex)
        g_x_full[tuple(indexer)] = g_x_modes
        grad_x = size * np.real(array_backend.ifft(g_x_full, axis=axis))
        accumulate(x, grad_x.astype(x.data.dtype))
        accumulate(w_real, np.real(grad_weight))
        accumulate(w_imag, np.imag(grad_weight))

    return x._make_child(out, (x, w_real, w_imag), backward)


# --------------------------------------------------------------------------- #
# misc differentiable helpers
# --------------------------------------------------------------------------- #
def dropout(x: Tensor, p: float, training: bool, rng: np.random.Generator) -> Tensor:
    """Inverted dropout.  A no-op when ``training`` is False or ``p == 0``."""
    if not training or p <= 0.0:
        return x
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout probability must be in [0, 1), got {p}")
    mask = (rng.random(x.shape) >= p).astype(x.data.dtype) / (1.0 - p)
    out = x.data * mask

    def backward(grad, accumulate):
        accumulate(x, np.asarray(grad) * mask)

    return x._make_child(out, (x,), backward)


def softplus(x: Tensor) -> Tensor:
    """Numerically stable softplus ``log(1 + exp(x))``."""
    data = np.logaddexp(0.0, x.data)
    sig = 1.0 / (1.0 + np.exp(-x.data))

    def backward(grad, accumulate):
        accumulate(x, np.asarray(grad) * sig)

    return x._make_child(data, (x,), backward)
