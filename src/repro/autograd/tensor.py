"""The :class:`Tensor` class: a NumPy array with a reverse-mode autograd graph.

Design notes
------------
* Data is always a ``float64`` (or ``float32``) :class:`numpy.ndarray`; complex
  quantities are carried as separate real/imaginary channels by callers.
* Each differentiable operation returns a new :class:`Tensor` holding a
  ``_backward`` closure and references to its parents; :meth:`Tensor.backward`
  runs the closures in reverse topological order.
* Broadcasting follows NumPy semantics; gradients are reduced back to the
  parent shapes with :func:`_unbroadcast`.
* A module-level switch (:func:`no_grad`) disables graph construction for
  inference and for the inner loops of the numerical solver integration.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, Sequence

import numpy as np

_GRAD_ENABLED = True


def is_grad_enabled() -> bool:
    """Return whether new operations record gradient information."""
    return _GRAD_ENABLED


@contextlib.contextmanager
def no_grad():
    """Context manager that disables graph construction inside its block."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` over broadcast dimensions so it matches ``shape``."""
    if grad.shape == shape:
        return grad
    # Remove leading dimensions added by broadcasting.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over axes that were 1 in the original shape.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


def _as_array(value, dtype=np.float64) -> np.ndarray:
    arr = np.asarray(value, dtype=dtype)
    return arr


class Tensor:
    """A differentiable dense array.

    Parameters
    ----------
    data:
        Array-like value; converted to ``float64`` by default.
    requires_grad:
        Whether gradients should be accumulated into :attr:`grad` during
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(self, data, requires_grad: bool = False, dtype=np.float64):
        self.data = _as_array(data, dtype=dtype)
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad) and is_grad_enabled()
        self._backward: Callable[[np.ndarray], None] | None = None
        self._parents: tuple[Tensor, ...] = ()
        self.name: str | None = None

    # -- construction helpers -------------------------------------------------
    @staticmethod
    def zeros(shape, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.zeros(shape), requires_grad=requires_grad)

    @staticmethod
    def ones(shape, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.ones(shape), requires_grad=requires_grad)

    @staticmethod
    def ensure(value) -> "Tensor":
        """Wrap plain arrays/scalars into a constant tensor."""
        if isinstance(value, Tensor):
            return value
        return Tensor(value)

    # -- basic properties ------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def numpy(self) -> np.ndarray:
        """Return the underlying array (not a copy)."""
        return self.data

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the graph."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        out = Tensor(self.data.copy(), requires_grad=self.requires_grad)
        return out

    def item(self) -> float:
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def zero_grad(self) -> None:
        self.grad = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    def __len__(self) -> int:
        return len(self.data)

    # -- graph construction ----------------------------------------------------
    def _make_child(
        self,
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        requires = is_grad_enabled() and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=False)
        out.requires_grad = requires
        if requires:
            out._backward = backward
            out._parents = tuple(parents)
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        grad = np.asarray(grad, dtype=self.data.dtype)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad = self.grad + grad

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Run reverse-mode differentiation from this tensor.

        Parameters
        ----------
        grad:
            Seed gradient.  Defaults to 1.0 and requires ``self`` to be a
            scalar in that case.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("backward() without a gradient requires a scalar output")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype)
        if grad.shape != self.data.shape:
            grad = np.broadcast_to(grad, self.data.shape).astype(self.data.dtype)

        # Topological order over the reachable graph.
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        grads: dict[int, np.ndarray] = {id(self): grad}
        for node in reversed(topo):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node._backward is None:
                node._accumulate(node_grad)
                continue
            node._accumulate(node_grad) if node.requires_grad and not node._parents else None
            # Delegate to the op's backward, which accumulates into parents via
            # the `grads` dict captured through closures on `_accumulate_into`.
            node._run_backward(node_grad, grads)

        # Leaf gradients were accumulated inside _run_backward; nothing to do.

    def _run_backward(self, grad: np.ndarray, grads: dict[int, np.ndarray]) -> None:
        """Invoke the backward closure, routing parent gradients through ``grads``."""

        def accumulate(parent: "Tensor", value: np.ndarray) -> None:
            if not parent.requires_grad:
                return
            value = np.asarray(value, dtype=parent.data.dtype)
            if parent._parents or parent._backward is not None:
                key = id(parent)
                if key in grads:
                    grads[key] = grads[key] + value
                else:
                    grads[key] = value
            else:
                parent._accumulate(value)

        self._backward(grad, accumulate)  # type: ignore[misc]

    # -- arithmetic -------------------------------------------------------------
    def __add__(self, other) -> "Tensor":
        other = Tensor.ensure(other)
        data = self.data + other.data

        def backward(grad, accumulate):
            accumulate(self, _unbroadcast(grad, self.shape))
            accumulate(other, _unbroadcast(grad, other.shape))

        return self._make_child(data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        data = -self.data

        def backward(grad, accumulate):
            accumulate(self, -grad)

        return self._make_child(data, (self,), backward)

    def __sub__(self, other) -> "Tensor":
        other = Tensor.ensure(other)
        data = self.data - other.data

        def backward(grad, accumulate):
            accumulate(self, _unbroadcast(grad, self.shape))
            accumulate(other, _unbroadcast(-grad, other.shape))

        return self._make_child(data, (self, other), backward)

    def __rsub__(self, other) -> "Tensor":
        return Tensor.ensure(other) - self

    def __mul__(self, other) -> "Tensor":
        other = Tensor.ensure(other)
        data = self.data * other.data

        def backward(grad, accumulate):
            accumulate(self, _unbroadcast(grad * other.data, self.shape))
            accumulate(other, _unbroadcast(grad * self.data, other.shape))

        return self._make_child(data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = Tensor.ensure(other)
        data = self.data / other.data

        def backward(grad, accumulate):
            accumulate(self, _unbroadcast(grad / other.data, self.shape))
            accumulate(other, _unbroadcast(-grad * self.data / (other.data**2), other.shape))

        return self._make_child(data, (self, other), backward)

    def __rtruediv__(self, other) -> "Tensor":
        return Tensor.ensure(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if isinstance(exponent, Tensor):
            raise TypeError("tensor exponents are not supported; use exp/log")
        data = self.data**exponent

        def backward(grad, accumulate):
            accumulate(self, grad * exponent * self.data ** (exponent - 1))

        return self._make_child(data, (self,), backward)

    def __matmul__(self, other) -> "Tensor":
        other = Tensor.ensure(other)
        data = self.data @ other.data

        def backward(grad, accumulate):
            a, b = self.data, other.data
            if a.ndim == 1 and b.ndim == 1:
                accumulate(self, grad * b)
                accumulate(other, grad * a)
            elif a.ndim >= 2 and b.ndim >= 2:
                grad_a = grad @ np.swapaxes(b, -1, -2)
                grad_b = np.swapaxes(a, -1, -2) @ grad
                accumulate(self, _unbroadcast(grad_a, a.shape))
                accumulate(other, _unbroadcast(grad_b, b.shape))
            elif a.ndim == 1:
                # (k,) @ (..., k, n) -> (..., n)
                grad_a = (grad[..., None, :] * b).sum(axis=-1)
                grad_a = _unbroadcast(grad_a, a.shape)
                grad_b = a[:, None] * grad[..., None, :]
                accumulate(self, grad_a)
                accumulate(other, _unbroadcast(grad_b, b.shape))
            else:
                # (..., m, k) @ (k,) -> (..., m)
                grad_a = grad[..., :, None] * b[None, :]
                accumulate(self, _unbroadcast(grad_a, a.shape))
                grad_b = (grad[..., :, None] * a).sum(axis=tuple(range(grad.ndim - 1)) + (-2,))
                accumulate(other, _unbroadcast(grad_b.reshape(b.shape), b.shape))

        return self._make_child(data, (self, other), backward)

    # -- comparisons (non-differentiable, return numpy arrays) -------------------
    def __gt__(self, other):
        other = other.data if isinstance(other, Tensor) else other
        return self.data > other

    def __lt__(self, other):
        other = other.data if isinstance(other, Tensor) else other
        return self.data < other

    def __ge__(self, other):
        other = other.data if isinstance(other, Tensor) else other
        return self.data >= other

    def __le__(self, other):
        other = other.data if isinstance(other, Tensor) else other
        return self.data <= other

    # -- elementwise functions ----------------------------------------------------
    def exp(self) -> "Tensor":
        data = np.exp(self.data)

        def backward(grad, accumulate):
            accumulate(self, grad * data)

        return self._make_child(data, (self,), backward)

    def log(self) -> "Tensor":
        data = np.log(self.data)

        def backward(grad, accumulate):
            accumulate(self, grad / self.data)

        return self._make_child(data, (self,), backward)

    def sqrt(self) -> "Tensor":
        data = np.sqrt(self.data)

        def backward(grad, accumulate):
            accumulate(self, grad * 0.5 / np.maximum(data, 1e-300))

        return self._make_child(data, (self,), backward)

    def tanh(self) -> "Tensor":
        data = np.tanh(self.data)

        def backward(grad, accumulate):
            accumulate(self, grad * (1.0 - data**2))

        return self._make_child(data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad, accumulate):
            accumulate(self, grad * data * (1.0 - data))

        return self._make_child(data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0
        data = self.data * mask

        def backward(grad, accumulate):
            accumulate(self, grad * mask)

        return self._make_child(data, (self,), backward)

    def gelu(self) -> "Tensor":
        """Gaussian error linear unit (tanh approximation)."""
        x = self.data
        c = np.sqrt(2.0 / np.pi)
        inner = c * (x + 0.044715 * x**3)
        t = np.tanh(inner)
        data = 0.5 * x * (1.0 + t)

        def backward(grad, accumulate):
            dinner = c * (1.0 + 3 * 0.044715 * x**2)
            dt = (1.0 - t**2) * dinner
            accumulate(self, grad * (0.5 * (1.0 + t) + 0.5 * x * dt))

        return self._make_child(data, (self,), backward)

    def abs(self) -> "Tensor":
        data = np.abs(self.data)
        sign = np.sign(self.data)

        def backward(grad, accumulate):
            accumulate(self, grad * sign)

        return self._make_child(data, (self,), backward)

    def sin(self) -> "Tensor":
        data = np.sin(self.data)

        def backward(grad, accumulate):
            accumulate(self, grad * np.cos(self.data))

        return self._make_child(data, (self,), backward)

    def cos(self) -> "Tensor":
        data = np.cos(self.data)

        def backward(grad, accumulate):
            accumulate(self, -grad * np.sin(self.data))

        return self._make_child(data, (self,), backward)

    def clamp(self, lo: float | None = None, hi: float | None = None) -> "Tensor":
        data = np.clip(self.data, lo, hi)
        mask = np.ones_like(self.data)
        if lo is not None:
            mask = mask * (self.data >= lo)
        if hi is not None:
            mask = mask * (self.data <= hi)

        def backward(grad, accumulate):
            accumulate(self, grad * mask)

        return self._make_child(data, (self,), backward)

    # -- reductions -----------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad, accumulate):
            g = np.asarray(grad)
            if axis is not None and not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                axes = tuple(a % self.data.ndim for a in axes)
                for a in sorted(axes):
                    g = np.expand_dims(g, a)
            accumulate(self, np.broadcast_to(g, self.shape).copy())

        return self._make_child(data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad, accumulate):
            expanded = self.data.max(axis=axis, keepdims=True)
            mask = (self.data == expanded).astype(self.data.dtype)
            mask = mask / np.maximum(mask.sum(axis=axis, keepdims=True), 1.0)
            g = np.asarray(grad)
            if axis is not None and not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                axes = tuple(a % self.data.ndim for a in axes)
                for a in sorted(axes):
                    g = np.expand_dims(g, a)
            accumulate(self, mask * g)

        return self._make_child(data, (self,), backward)

    def norm(self, eps: float = 1e-12) -> "Tensor":
        """Frobenius (L2) norm of the whole tensor as a scalar tensor."""
        return ((self * self).sum() + eps).sqrt()

    # -- shape manipulation ------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        data = self.data.reshape(shape)
        original = self.shape

        def backward(grad, accumulate):
            accumulate(self, np.asarray(grad).reshape(original))

        return self._make_child(data, (self,), backward)

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        data = self.data.transpose(axes)
        inverse = np.argsort(axes)

        def backward(grad, accumulate):
            accumulate(self, np.asarray(grad).transpose(inverse))

        return self._make_child(data, (self,), backward)

    def __getitem__(self, index) -> "Tensor":
        data = self.data[index]

        def backward(grad, accumulate):
            full = np.zeros_like(self.data)
            np.add.at(full, index, grad)
            accumulate(self, full)

        return self._make_child(data, (self,), backward)

    def flatten(self, start_dim: int = 0) -> "Tensor":
        shape = self.shape[:start_dim] + (-1,)
        return self.reshape(shape)

    # -- combining tensors ----------------------------------------------------------------
    @staticmethod
    def cat(tensors: Iterable["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [Tensor.ensure(t) for t in tensors]
        data = np.concatenate([t.data for t in tensors], axis=axis)
        sizes = [t.data.shape[axis] for t in tensors]

        def backward(grad, accumulate):
            grad = np.asarray(grad)
            start = 0
            for t, size in zip(tensors, sizes):
                index = [slice(None)] * grad.ndim
                index[axis] = slice(start, start + size)
                accumulate(t, grad[tuple(index)])
                start += size

        proto = tensors[0]
        return proto._make_child(data, tuple(tensors), backward)

    @staticmethod
    def stack(tensors: Iterable["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [Tensor.ensure(t) for t in tensors]
        data = np.stack([t.data for t in tensors], axis=axis)

        def backward(grad, accumulate):
            grad = np.asarray(grad)
            for i, t in enumerate(tensors):
                index = [slice(None)] * grad.ndim
                index[axis] = i
                accumulate(t, grad[tuple(index)])

        proto = tensors[0]
        return proto._make_child(data, tuple(tensors), backward)
