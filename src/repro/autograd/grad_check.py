"""Numerical gradient checking used by the test-suite.

The autograd engine is a substrate for everything else in the package, so the
tests verify every primitive against central finite differences with
:func:`check_gradient`.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.autograd.tensor import Tensor


def numerical_gradient(
    func: Callable[..., Tensor],
    tensors: Sequence[Tensor],
    index: int,
    eps: float = 1e-6,
) -> np.ndarray:
    """Central-difference gradient of ``func(*tensors).sum()`` w.r.t. one input.

    Parameters
    ----------
    func:
        Function mapping the tensors to a Tensor output of any shape.
    tensors:
        All tensor inputs of ``func``.
    index:
        Which input to differentiate with respect to.
    eps:
        Finite-difference step.
    """
    target = tensors[index]
    grad = np.zeros_like(target.data)
    flat = target.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = float(func(*tensors).data.sum())
        flat[i] = original - eps
        minus = float(func(*tensors).data.sum())
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2.0 * eps)
    return grad


def check_gradient(
    func: Callable[..., Tensor],
    tensors: Sequence[Tensor],
    eps: float = 1e-6,
    atol: float = 1e-4,
    rtol: float = 1e-3,
) -> float:
    """Compare autograd gradients of ``func(*tensors).sum()`` to finite differences.

    Returns the maximum absolute error across all inputs that require
    gradients, and raises ``AssertionError`` if any entry exceeds the mixed
    tolerance ``atol + rtol * |numerical|``.
    """
    for t in tensors:
        t.zero_grad()
    out = func(*tensors)
    out.sum().backward()

    max_err = 0.0
    for i, t in enumerate(tensors):
        if not t.requires_grad:
            continue
        numeric = numerical_gradient(func, tensors, i, eps=eps)
        analytic = t.grad if t.grad is not None else np.zeros_like(t.data)
        err = np.abs(analytic - numeric)
        tol = atol + rtol * np.abs(numeric)
        if not np.all(err <= tol):
            worst = float(err.max())
            raise AssertionError(
                f"gradient mismatch for input {i}: max abs error {worst:.3e}"
            )
        max_err = max(max_err, float(err.max()))
    return max_err
