"""A 2-D finite-difference frequency-domain (FDFD) Maxwell solver.

The solver works with the Ez polarization (TM in the photonics convention:
fields ``Ez``, ``Hx``, ``Hy``) on a uniform Yee grid with stretched-coordinate
perfectly matched layers (SC-PML).

Architecture — solver engines and fidelity tiers
------------------------------------------------
Every linear solve in the package flows through the pluggable engine layer in
:mod:`repro.fdfd.engine`:

* :class:`~repro.fdfd.engine.SolverEngine` — the fidelity seam: a batched
  ``solve_batch(grid, omega, eps_r, rhs_stack)`` interface.
* :class:`~repro.fdfd.engine.DirectEngine` — exact SuperLU solves; one
  factorization per ``(grid, omega, permittivity)`` serves arbitrarily many
  stacked right-hand sides (forward, adjoint and normalization solves).
* :class:`~repro.fdfd.engine.IterativeEngine` — ILU-preconditioned
  BiCGStab/GMRES, the cheap approximate tier.
* :class:`~repro.fdfd.engine.RecycledEngine` — the optimization-loop tier:
  exact-LU-preconditioned Krylov solves recycled across the nearby operators
  an optimizer visits, with warm starts threaded through a
  :class:`~repro.fdfd.engine.SolveWorkspace`.
* ``"neural"`` — a trained surrogate (registered by :mod:`repro.surrogate`),
  making fidelity selection (``"high"``/``"low"``/``"neural"``) a one-line
  engine swap.
* :class:`~repro.fdfd.engine.FactorizationCache` — a process-wide LRU keyed by
  ``(grid, omega, eps fingerprint)``, shared by every engine instance so that
  independent call sites (simulations, normalization runs, adjoint solves,
  dataset generation) never duplicate a factorization.

On top of the engines the package provides:

* sparse assembly of the Maxwell operator ``A(eps_r)``,
* :class:`~repro.fdfd.solver.FdfdSolver`, a thin shim binding one
  ``(grid, omega)`` pair to an engine, with batched multi-RHS entry points,
* a 1-D slab eigenmode solver for waveguide port sources and modal overlaps,
* flux and S-parameter monitors,
* adjoint solves and permittivity gradients for inverse design, and
* the high-level :class:`~repro.fdfd.simulation.Simulation` facade — including
  :meth:`~repro.fdfd.simulation.Simulation.solve_multi`, which batches all
  excitations of a device into one factorize-once/solve-many call — used by
  the device library, the dataset generator and the inverse-design toolkit,
* the nonlinear (Kerr) tier in :mod:`repro.fdfd.nonlinear` —
  :class:`~repro.fdfd.nonlinear.KerrSolver` damped-Born/Newton fixed points
  whose inner iterations are diagonal-only operator updates riding the same
  engine seam, fronted by
  :class:`~repro.fdfd.nonlinear.NonlinearSimulation`.
"""

from repro.fdfd.grid import Grid
from repro.fdfd.engine import (
    DirectEngine,
    FactorizationCache,
    IterativeEngine,
    RecycledEngine,
    SolverEngine,
    SolveWorkspace,
    available_engines,
    default_factorization_cache,
    eps_fingerprint,
    make_engine,
    resolve_engine,
    warmup_operators,
)
from repro.fdfd.solver import FdfdSolver
from repro.fdfd.modes import solve_slab_modes, solve_slab_modes_batch, ModeProfile
from repro.fdfd.monitors import Port, poynting_flux_through_port, mode_overlap
from repro.fdfd.simulation import ExcitationSpec, Simulation, SimulationResult
from repro.fdfd.nonlinear import (
    ConvergenceError,
    KerrNonlinearity,
    KerrSolver,
    NonlinearSimulation,
    NonlinearStats,
    kerr_eps_effective,
)

__all__ = [
    "Grid",
    "FdfdSolver",
    "SolverEngine",
    "DirectEngine",
    "IterativeEngine",
    "RecycledEngine",
    "SolveWorkspace",
    "FactorizationCache",
    "default_factorization_cache",
    "eps_fingerprint",
    "make_engine",
    "resolve_engine",
    "available_engines",
    "warmup_operators",
    "solve_slab_modes",
    "solve_slab_modes_batch",
    "ModeProfile",
    "Port",
    "poynting_flux_through_port",
    "mode_overlap",
    "ExcitationSpec",
    "Simulation",
    "SimulationResult",
    "ConvergenceError",
    "KerrNonlinearity",
    "KerrSolver",
    "NonlinearSimulation",
    "NonlinearStats",
    "kerr_eps_effective",
]
