"""A 2-D finite-difference frequency-domain (FDFD) Maxwell solver.

The solver works with the Ez polarization (TM in the photonics convention:
fields ``Ez``, ``Hx``, ``Hy``) on a uniform Yee grid with stretched-coordinate
perfectly matched layers (SC-PML).  It provides:

* sparse assembly of the Maxwell operator ``A(eps_r)``,
* direct forward solves ``A e = b`` for arbitrary current sources,
* a 1-D slab eigenmode solver for waveguide port sources and modal overlaps,
* flux and S-parameter monitors,
* adjoint solves and permittivity gradients for inverse design, and
* a high-level :class:`~repro.fdfd.simulation.Simulation` facade used by the
  device library, the dataset generator and the inverse-design toolkit.
"""

from repro.fdfd.grid import Grid
from repro.fdfd.solver import FdfdSolver
from repro.fdfd.modes import solve_slab_modes, ModeProfile
from repro.fdfd.monitors import Port, poynting_flux_through_port, mode_overlap
from repro.fdfd.simulation import Simulation, SimulationResult

__all__ = [
    "Grid",
    "FdfdSolver",
    "solve_slab_modes",
    "ModeProfile",
    "Port",
    "poynting_flux_through_port",
    "mode_overlap",
    "Simulation",
    "SimulationResult",
]
