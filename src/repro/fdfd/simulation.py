"""High-level simulation facade used by devices, datasets and inverse design.

:class:`Simulation` wires together the solver engine, mode sources, monitors
and normalization runs so that callers can ask directly for fields,
transmissions and S-parameters of a device described by a permittivity map and
a list of ports.

All linear solves go through the pluggable engine layer
(:mod:`repro.fdfd.engine`): ``Simulation(..., engine="iterative")`` or
``engine="neural"`` swaps the fidelity tier without touching any other code.
:meth:`Simulation.solve_multi` batches every excitation of a device into one
factorize-once/solve-many call; normalization runs share the same process-wide
factorization cache, so repeated simulations of the same feeding waveguide are
back-substitutions rather than fresh factorizations.

On top of the factorization sharing, fully *identical* queries — same design
fingerprint, excitation spec, wavelength, port geometry and engine fidelity —
are served from a process-wide result cache without touching the solver at
all (sized by ``REPRO_RESULT_CACHE_SIZE``; see :func:`result_cache_stats`).
That is the serving-side memoization layer: a fleet of clients replaying the
same foundry-PDK device, or the label extractor re-walking a dataset, pays
for each distinct query once per process.
"""

from __future__ import annotations

import hashlib
import os
import threading
from collections import OrderedDict
from dataclasses import dataclass, field, replace

import numpy as np

from repro.constants import wavelength_to_omega
from repro.fdfd.engine import SolverEngine, SolveWorkspace, eps_fingerprint
from repro.fdfd.grid import Grid
from repro.fdfd.modes import ModeProfile, mode_source_amplitude, solve_slab_modes_batch
from repro.fdfd.monitors import Port, mode_overlap, poynting_flux_through_port
from repro.fdfd.solver import FdfdSolver, FieldSolution


# Process-wide cache of normalization results.  The normalization structure is
# fully determined by the source-port cross-section (plus port geometry, grid
# and frequency) — not by the design — so every iteration of an optimization
# loop, and every Simulation instance of the same device family, recomputes a
# byte-identical (flux, overlap) pair.  Keying on the cross-section content
# lets them all share one computation.  Bounded LRU; entries are tiny floats.
_NORMALIZATION_CACHE: OrderedDict[tuple, tuple[float, complex]] = OrderedDict()
_NORMALIZATION_CACHE_MAX = 256
_NORMALIZATION_CACHE_LOCK = threading.Lock()


def _normalization_cache_get(key: tuple) -> tuple[float, complex] | None:
    with _NORMALIZATION_CACHE_LOCK:
        entry = _NORMALIZATION_CACHE.get(key)
        if entry is not None:
            _NORMALIZATION_CACHE.move_to_end(key)
        return entry


def _normalization_cache_put(key: tuple, value: tuple[float, complex]) -> None:
    with _NORMALIZATION_CACHE_LOCK:
        while len(_NORMALIZATION_CACHE) >= _NORMALIZATION_CACHE_MAX:
            _NORMALIZATION_CACHE.popitem(last=False)
        _NORMALIZATION_CACHE[key] = value


# Process-wide cache of complete solve results, keyed end-to-end: design
# fingerprint, excitation spec (port, mode, explicit-source digest, monitor
# set), wavelength/grid, port geometry and the engine's fidelity signature.
# Entries are full SimulationResults (field maps included), so the default
# capacity is deliberately modest; serving deployments with memory to spare
# raise REPRO_RESULT_CACHE_SIZE, and 0 disables the cache entirely.  Entries
# are copied on both store and hit — callers may mutate what they receive
# without corrupting what later callers are served.
_RESULT_CACHE: OrderedDict[tuple, "SimulationResult"] = OrderedDict()
_RESULT_CACHE_LOCK = threading.Lock()
_RESULT_CACHE_HITS = 0
_RESULT_CACHE_MISSES = 0


def _result_cache_maxsize() -> int:
    """Capacity of the result cache (``REPRO_RESULT_CACHE_SIZE``, 0 disables)."""
    return int(os.environ.get("REPRO_RESULT_CACHE_SIZE", "32"))


def _copy_result(result: "SimulationResult") -> "SimulationResult":
    return replace(
        result,
        ez=result.ez.copy(),
        hx=result.hx.copy(),
        hy=result.hy.copy(),
        source=result.source.copy(),
        fluxes=dict(result.fluxes),
        s_params=dict(result.s_params),
        transmissions=dict(result.transmissions),
    )


def _result_cache_get(key: tuple) -> "SimulationResult | None":
    global _RESULT_CACHE_HITS, _RESULT_CACHE_MISSES
    with _RESULT_CACHE_LOCK:
        entry = _RESULT_CACHE.get(key)
        if entry is None:
            _RESULT_CACHE_MISSES += 1
            return None
        _RESULT_CACHE.move_to_end(key)
        _RESULT_CACHE_HITS += 1
        return _copy_result(entry)


def _result_cache_put(key: tuple, result: "SimulationResult") -> None:
    maxsize = _result_cache_maxsize()
    if maxsize <= 0:
        return
    with _RESULT_CACHE_LOCK:
        while len(_RESULT_CACHE) >= maxsize:
            _RESULT_CACHE.popitem(last=False)
        _RESULT_CACHE[key] = _copy_result(result)


def result_cache_stats() -> dict:
    """Hit/miss/size counters of the process-wide result cache."""
    with _RESULT_CACHE_LOCK:
        return {
            "hits": _RESULT_CACHE_HITS,
            "misses": _RESULT_CACHE_MISSES,
            "size": len(_RESULT_CACHE),
        }


def clear_result_cache() -> None:
    """Drop every cached result and reset the counters (tests, benchmarks)."""
    global _RESULT_CACHE_HITS, _RESULT_CACHE_MISSES
    with _RESULT_CACHE_LOCK:
        _RESULT_CACHE.clear()
        _RESULT_CACHE_HITS = 0
        _RESULT_CACHE_MISSES = 0


def normalization_geometry(
    grid: Grid, port: Port, eps_line: np.ndarray
) -> tuple[np.ndarray, Port]:
    """Reference waveguide and monitor used to normalize a source port.

    The structure is obtained by extruding the source-port permittivity
    cross-section along the port normal through the whole domain — i.e. the
    waveguide feeding the port, continued straight — and the monitor is a
    far-side copy of the port (near side when the port sits past the domain
    midpoint).  Shared by the FDFD :class:`Simulation` and the time-domain
    :class:`repro.fdtd.broadband.FdtdSimulation` so both tiers normalize
    against byte-identical reference structures.
    """
    eps_line = np.asarray(eps_line, dtype=float)
    eps_norm = np.full(grid.shape, float(eps_line.min()))
    if port.normal_axis == "x":
        index = port.indices(grid)[1]
        eps_norm[:, index] = eps_line[None, :]
        monitor_position = grid.size_x - (grid.npml + 4) * grid.dl
        if port.position > grid.size_x / 2:
            monitor_position = (grid.npml + 4) * grid.dl
    else:
        index = port.indices(grid)[0]
        eps_norm[index, :] = eps_line[:, None]
        monitor_position = grid.size_y - (grid.npml + 4) * grid.dl
        if port.position > grid.size_y / 2:
            monitor_position = (grid.npml + 4) * grid.dl

    monitor = Port(
        name="__norm__",
        normal_axis=port.normal_axis,
        position=monitor_position,
        center=port.center,
        span=port.span,
        direction=+1 if monitor_position > port.position else -1,
    )
    return eps_norm, monitor


@dataclass
class SimulationResult:
    """Everything measured in one forward solve.

    The attributes correspond to the "rich labels" that MAPS-Data attaches to
    each sample: the full field maps, per-port fluxes and S-parameters, the
    source that was injected and the incident normalization.
    """

    ez: np.ndarray
    hx: np.ndarray
    hy: np.ndarray
    source: np.ndarray
    wavelength: float
    source_port: str
    source_mode: int
    fluxes: dict[str, float] = field(default_factory=dict)
    s_params: dict[str, complex] = field(default_factory=dict)
    transmissions: dict[str, float] = field(default_factory=dict)
    input_flux: float = 0.0
    input_overlap: complex = 0.0

    def total_transmission(self, ports: list[str] | None = None) -> float:
        """Sum of power transmissions over ``ports`` (all output ports by default)."""
        names = ports if ports is not None else list(self.transmissions)
        return float(sum(self.transmissions[name] for name in names))

    @property
    def radiation(self) -> float:
        """Fraction of input power not collected by any monitored port."""
        return max(0.0, 1.0 - self.total_transmission())


@dataclass(frozen=True)
class ExcitationSpec:
    """One excitation of a :meth:`Simulation.solve_multi` batch.

    ``source`` overrides the mode source (used when replaying stored dataset
    samples); ``monitor_ports`` defaults to every port except the source port.
    """

    source_port: str
    mode_index: int = 0
    source: np.ndarray | None = None
    monitor_ports: tuple[str, ...] | None = None


class Simulation:
    """FDFD simulation of a device: permittivity map + ports + wavelength.

    Parameters
    ----------
    grid:
        The simulation grid (including PML cells).
    eps_r:
        Relative permittivity on the grid.
    wavelength:
        Operating free-space wavelength in micrometres.
    ports:
        All device ports.  The first port is the default source port.
    engine:
        Solver engine, engine name (``"direct"``, ``"iterative"``,
        ``"neural"``, ...) or None for exact direct solves.
    """

    def __init__(
        self,
        grid: Grid,
        eps_r: np.ndarray,
        wavelength: float,
        ports: list[Port],
        engine: SolverEngine | str | None = None,
    ):
        eps_r = np.asarray(eps_r, dtype=float)
        if eps_r.shape != grid.shape:
            raise ValueError(f"eps_r shape {eps_r.shape} does not match grid {grid.shape}")
        if not ports:
            raise ValueError("at least one port is required")
        names = [p.name for p in ports]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate port names: {names}")
        self.grid = grid
        self.eps_r = eps_r
        self.wavelength = float(wavelength)
        self.omega = wavelength_to_omega(wavelength)
        self.ports = {p.name: p for p in ports}
        self.solver = FdfdSolver(grid, self.omega, engine=engine)
        self._eps_fingerprint = eps_fingerprint(eps_r)
        self._norm_cache: dict[tuple[str, int], tuple[float, complex]] = {}
        # Port modes of the *current* permittivity: name -> (num_modes the
        # solve was asked for, guided modes found).  Invalidated with the
        # normalization cache whenever the permittivity changes.
        self._mode_cache: dict[str, tuple[int, list[ModeProfile]]] = {}

    @property
    def engine(self) -> SolverEngine:
        """The solver engine all field solves of this simulation go through."""
        return self.solver.engine

    def _current_fingerprint(self) -> str:
        """Fingerprint of the permittivity as it is *now*.

        Recomputed from content on every solve so that in-place mutation of
        ``eps_r`` (instead of :meth:`set_permittivity`) can never hit a stale
        cached factorization — or a stale normalization, which is tied to the
        permittivity through the source-port cross-section.
        """
        fingerprint = eps_fingerprint(self.eps_r)
        if fingerprint != self._eps_fingerprint:
            self._norm_cache.clear()
            self._mode_cache.clear()
            self._eps_fingerprint = fingerprint
        return fingerprint

    # -- permittivity handling ----------------------------------------------------
    def set_permittivity(self, eps_r: np.ndarray) -> None:
        """Replace the permittivity map (invalidates every derived cache).

        Both the solver factorization *and* the normalization cache are tied to
        the permittivity: the normalization waveguide is extruded from the
        source-port cross-section, so its flux/overlap must be recomputed when
        the design changes.
        """
        eps_r = np.asarray(eps_r, dtype=float)
        if eps_r.shape != self.grid.shape:
            raise ValueError(
                f"eps_r shape {eps_r.shape} does not match grid {self.grid.shape}"
            )
        old_fingerprint = self._eps_fingerprint
        self.eps_r = eps_r
        self._eps_fingerprint = eps_fingerprint(eps_r)
        self._norm_cache.clear()
        self._mode_cache.clear()
        # Evict only the superseded design operator — but *every* engine tag
        # of it (tag=None): a direct LU, an iterative ILU and a recycled
        # preconditioner of the old permittivity are all equally superseded,
        # and must not squat in the LRU.  Normalization factorizations solved
        # through the same solver are left to LRU aging: they are keyed by
        # content, other simulations of the same device may share them, and
        # they stay correct regardless of this design change.
        cache = getattr(self.solver.engine, "cache", None)
        if cache is not None:
            cache.evict(self.grid, self.omega, old_fingerprint, tag=None)
        self.solver._solved_fingerprints.discard(old_fingerprint)

    # -- sources ----------------------------------------------------------------------
    @staticmethod
    def _cached_modes_sufficient(
        cached: tuple[int, list[ModeProfile]] | None, num_modes: int
    ) -> bool:
        """Whether a cache entry can serve a request for ``num_modes`` modes.

        Sufficient if the cached solve asked for at least as many modes, or
        found fewer than it asked for (meaning every guided mode of the
        cross-section is already in the entry).
        """
        if cached is None:
            return False
        solved_for, modes = cached
        return solved_for >= num_modes or len(modes) < solved_for

    def _modes(self, port_name: str, num_modes: int) -> list[ModeProfile]:
        """Cached guided modes of a port for the current permittivity.

        A cached solve that asked for at least ``num_modes`` serves any
        smaller request (mode selection is incremental, so the first ``k``
        modes are independent of how many were requested).  Callers must have
        validated the fingerprint via :meth:`_current_fingerprint` first.
        """
        cached = self._mode_cache.get(port_name)
        if self._cached_modes_sufficient(cached, num_modes):
            return cached[1][:num_modes]
        port = self._port(port_name)
        modes = port.solve_modes(self.eps_r, self.grid, self.omega, num_modes=num_modes)
        self._mode_cache[port_name] = (num_modes, modes)
        return modes

    def _prepare_port_modes(self, requests: dict[str, int]) -> None:
        """Solve all missing port modes in one batched eigendecomposition.

        ``requests`` maps port names to the number of modes needed.  Every
        port line that is not already cached (with enough modes) is solved
        through :func:`~repro.fdfd.modes.solve_slab_modes_batch`, so a batch
        of excitations pays one LAPACK dispatch per distinct line length
        instead of one dense eigendecomposition per port per excitation.
        """
        missing: list[tuple[str, int]] = []
        for name, num_modes in requests.items():
            if not self._cached_modes_sufficient(self._mode_cache.get(name), num_modes):
                missing.append((name, num_modes))
        if not missing:
            return
        num_modes = max(n for _, n in missing)
        lines = [
            self._port(name).eps_line(self.eps_r, self.grid) for name, _ in missing
        ]
        solved = solve_slab_modes_batch(lines, self.grid.dl, self.omega, num_modes)
        for (name, _), modes in zip(missing, solved):
            self._mode_cache[name] = (num_modes, modes)

    def port_modes(self, port_name: str, num_modes: int = 2) -> list[ModeProfile]:
        """Guided modes of a port cross-section for the current permittivity."""
        self._port(port_name)
        self._current_fingerprint()
        return self._modes(port_name, num_modes)

    def mode_source(self, port_name: str, mode_index: int = 0) -> np.ndarray:
        """Current source injecting the given port mode."""
        port = self._port(port_name)
        self._current_fingerprint()
        modes = self._modes(port_name, mode_index + 1)
        if len(modes) <= mode_index:
            raise ValueError(
                f"port {port_name!r} guides only {len(modes)} mode(s); "
                f"mode {mode_index} requested"
            )
        amplitude = mode_source_amplitude(modes[mode_index])
        return port.scatter_line(amplitude, self.grid)

    def _port(self, name: str) -> Port:
        if name not in self.ports:
            raise KeyError(f"unknown port {name!r}; available: {sorted(self.ports)}")
        return self.ports[name]

    # -- normalization run ----------------------------------------------------------------
    def _normalization(self, port_name: str, mode_index: int) -> tuple[float, complex]:
        """Incident flux and modal overlap of the source in a straight waveguide.

        The reference structure is obtained by extruding the source-port
        permittivity cross-section along the port normal through the whole
        domain — i.e. the waveguide feeding the port, continued straight.  The
        solve goes through the shared engine, so identical normalization runs
        (same feeding waveguide, any number of simulations) hit the process-wide
        factorization cache instead of re-factorizing.  The *result* is cached
        process-wide too, keyed by the cross-section content: optimization
        loops (whose design never touches the port lines) and sibling
        Simulation instances skip the normalization solve entirely.
        """
        key = (port_name, mode_index)
        if key in self._norm_cache:
            return self._norm_cache[key]

        port = self._port(port_name)
        eps_line = port.eps_line(self.eps_r, self.grid)
        shared_key = (
            self.grid,
            self.omega,
            # Results are engine-fidelity-specific: a surrogate's normalization
            # must never leak into an exact simulation, nor one model's into
            # another's.  The signature encodes everything result-relevant.
            self.solver.engine.fidelity_signature,
            port.normal_axis,
            port.position,
            port.center,
            port.span,
            port.direction,
            mode_index,
            eps_line.tobytes(),
        )
        shared = _normalization_cache_get(shared_key)
        if shared is not None:
            self._norm_cache[key] = shared
            return shared
        eps_norm, monitor = normalization_geometry(self.grid, port, eps_line)
        modes = port.solve_modes(eps_norm, self.grid, self.omega, num_modes=mode_index + 1)
        if len(modes) <= mode_index:
            raise ValueError(
                f"normalization waveguide for port {port_name!r} does not guide mode "
                f"{mode_index}"
            )
        source = port.scatter_line(mode_source_amplitude(modes[mode_index]), self.grid)

        solution = self.solver.solve(eps_norm, source)
        flux = poynting_flux_through_port(
            solution.ez, solution.hx, solution.hy, monitor, self.grid
        )
        monitor_modes = monitor.solve_modes(
            eps_norm, self.grid, self.omega, num_modes=mode_index + 1
        )
        overlap = mode_overlap(solution.ez, monitor, monitor_modes[mode_index], self.grid)
        result = (abs(float(flux)), overlap)
        self._norm_cache[key] = result
        _normalization_cache_put(shared_key, result)
        return result

    # -- forward solves ----------------------------------------------------------------------
    def solve(
        self,
        source_port: str | None = None,
        mode_index: int = 0,
        source: np.ndarray | None = None,
        monitor_ports: list[str] | None = None,
    ) -> SimulationResult:
        """Run a forward simulation and measure all monitors.

        Parameters
        ----------
        source_port:
            Name of the port to excite (default: the first port).
        mode_index:
            Which guided mode of the source port to inject.
        source:
            Explicit current source overriding the mode source (used when
            replaying stored dataset samples).
        monitor_ports:
            Ports to measure (default: every port except the source port).
        """
        if source_port is None:
            source_port = next(iter(self.ports))
        excitation = ExcitationSpec(
            source_port=source_port,
            mode_index=mode_index,
            source=source,
            monitor_ports=tuple(monitor_ports) if monitor_ports is not None else None,
        )
        return self.solve_multi([excitation])[0]

    def solve_multi(
        self,
        excitations: list[ExcitationSpec | tuple],
        workspace: "SolveWorkspace | None" = None,
        guess_keys: list | None = None,
    ) -> list[SimulationResult]:
        """Solve many excitations of the same device in one batched call.

        The permittivity is factorized once (or fetched from the shared
        cache); every excitation costs one back-substitution.  Excitations may
        be :class:`ExcitationSpec` instances or ``(source_port, mode_index)``
        tuples.

        With a ``workspace`` (:class:`~repro.fdfd.engine.SolveWorkspace`),
        previously stored fields become Krylov initial guesses and the new
        fields are stored back — the warm-start loop of iterative/recycled
        engines.  ``guess_keys`` (one hashable per excitation) defaults to
        ``(source_port, mode_index, wavelength)``; callers sharing one
        workspace across device states or corner variants must pass keys that
        disambiguate them.  Workspace-driven solves bypass the result cache
        (they belong to optimization loops, whose design changes every call).

        Returns the :class:`SimulationResult` per excitation, in order.
        """
        specs = []
        for excitation in excitations:
            if isinstance(excitation, ExcitationSpec):
                specs.append(excitation)
            elif isinstance(excitation, (tuple, list)):
                specs.append(ExcitationSpec(*excitation))
            else:
                raise TypeError(
                    "excitations must be ExcitationSpec instances or "
                    f"(source_port, mode_index) tuples; got {type(excitation)!r}"
                )
        if not specs:
            return []

        # Validate the permittivity once (clears stale mode/normalization
        # caches after in-place mutation), then consult the end-to-end result
        # cache: excitations whose complete query — design, spec, wavelength,
        # port geometry, engine fidelity — was answered before skip the solver
        # entirely.  Only the leftover subset is solved below.
        fingerprint = self._current_fingerprint()
        use_cache = workspace is None and _result_cache_maxsize() > 0
        cached: dict[int, SimulationResult] = {}
        cache_keys: dict[int, tuple] = {}
        if use_cache:
            signature = self.solver.engine.fidelity_signature
            for index, spec in enumerate(specs):
                key = self._result_key(fingerprint, signature, spec)
                cache_keys[index] = key
                hit = _result_cache_get(key)
                if hit is not None:
                    cached[index] = hit
        pending = [index for index in range(len(specs)) if index not in cached]
        if not pending:
            return [cached[index] for index in range(len(specs))]
        pending_specs = [specs[index] for index in pending]

        # Solve every port mode the batch needs — sources and monitors alike
        # — in one batched pass.
        requests: dict[str, int] = {}
        for spec in pending_specs:
            self._port(spec.source_port)
            if spec.source is None:
                needed = spec.mode_index + 1
                requests[spec.source_port] = max(requests.get(spec.source_port, 0), needed)
            monitors = spec.monitor_ports
            if monitors is None:
                monitors = [name for name in self.ports if name != spec.source_port]
            for name in monitors:
                requests[name] = max(requests.get(name, 0), 1)
        self._prepare_port_modes(requests)

        sources = []
        for spec in pending_specs:
            if spec.source is None:
                sources.append(self.mode_source(spec.source_port, spec.mode_index))
            else:
                source = np.asarray(spec.source, dtype=complex)
                if source.shape != self.grid.shape:
                    raise ValueError(
                        f"source shape {source.shape} does not match grid {self.grid.shape}"
                    )
                sources.append(source)

        x0 = None
        keys = None
        if workspace is not None:
            # use_cache is False here, so pending_specs is the full batch.
            keys = guess_keys
            if keys is None:
                keys = [(spec.source_port, spec.mode_index, self.wavelength) for spec in specs]
            if len(keys) != len(specs):
                raise ValueError(
                    f"guess_keys length {len(keys)} does not match "
                    f"{len(specs)} excitations"
                )
            x0 = workspace.guess_stack(keys, self.grid.shape)

        solutions = self.solver.solve_batch(
            self.eps_r, sources, fingerprint=fingerprint, x0=x0
        )
        if workspace is not None:
            for key, solution in zip(keys, solutions):
                workspace.store(key, solution.ez)

        results: list[SimulationResult | None] = [None] * len(specs)
        for index, result in cached.items():
            results[index] = result
        for index, spec, source, solution in zip(pending, pending_specs, sources, solutions):
            result = self._measure(spec, source, solution)
            if use_cache:
                _result_cache_put(cache_keys[index], result)
            results[index] = result
        return results

    def _result_key(self, fingerprint: str, signature: tuple, spec: ExcitationSpec) -> tuple:
        """End-to-end cache key of one excitation against the current design.

        Everything that shapes the :class:`SimulationResult` is keyed: the
        design content, grid and wavelength, the engine fidelity signature
        (a surrogate's answer must never be served as an exact one), the
        excitation itself (explicit sources by content digest) and the
        geometry of the source and monitor ports.
        """
        monitors = spec.monitor_ports
        if monitors is None:
            monitors = tuple(name for name in self.ports if name != spec.source_port)

        def port_identity(name: str) -> tuple:
            port = self._port(name)
            return (
                port.name,
                port.normal_axis,
                port.position,
                port.center,
                port.span,
                port.direction,
            )

        if spec.source is None:
            source_token = None
        else:
            source = np.ascontiguousarray(np.asarray(spec.source, dtype=complex))
            source_token = hashlib.sha1(source.tobytes()).hexdigest()
        return (
            self.grid,
            self.wavelength,
            signature,
            fingerprint,
            spec.source_port,
            spec.mode_index,
            source_token,
            port_identity(spec.source_port),
            tuple(port_identity(name) for name in monitors),
        )

    def _measure(
        self, spec: ExcitationSpec, source: np.ndarray, solution: FieldSolution
    ) -> SimulationResult:
        """Normalize and run every monitor on one forward solution."""
        norm_flux, norm_overlap = self._normalization(spec.source_port, spec.mode_index)

        monitor_ports = spec.monitor_ports
        if monitor_ports is None:
            monitor_ports = [name for name in self.ports if name != spec.source_port]

        fluxes: dict[str, float] = {}
        s_params: dict[str, complex] = {}
        transmissions: dict[str, float] = {}
        for name in monitor_ports:
            monitor = self._port(name)
            flux = poynting_flux_through_port(
                solution.ez, solution.hx, solution.hy, monitor, self.grid
            )
            fluxes[name] = float(flux)
            modes = self._modes(name, 1)
            if modes:
                overlap = mode_overlap(solution.ez, monitor, modes[0], self.grid)
            else:
                overlap = 0.0 + 0.0j
            s_params[name] = complex(overlap / norm_overlap) if norm_overlap else 0.0j
            transmissions[name] = float(np.clip(flux / norm_flux, 0.0, None)) if norm_flux else 0.0

        return SimulationResult(
            ez=solution.ez,
            hx=solution.hx,
            hy=solution.hy,
            source=source,
            wavelength=self.wavelength,
            source_port=spec.source_port,
            source_mode=spec.mode_index,
            fluxes=fluxes,
            s_params=s_params,
            transmissions=transmissions,
            input_flux=norm_flux,
            input_overlap=norm_overlap,
        )

    # -- physics checks -------------------------------------------------------------------------
    def maxwell_residual(self, result: SimulationResult) -> float:
        """Relative Maxwell residual of a result (sanity check / physics loss label)."""
        residual = self.solver.residual(self.eps_r, result.ez, result.source)
        rhs = 1j * self.omega * result.source
        denom = np.linalg.norm(rhs.ravel())
        return float(np.linalg.norm(residual.ravel()) / (denom + 1e-30))
