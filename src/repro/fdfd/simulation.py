"""High-level simulation facade used by devices, datasets and inverse design.

:class:`Simulation` wires together the sparse solver, mode sources, monitors
and normalization runs so that callers can ask directly for fields,
transmissions and S-parameters of a device described by a permittivity map and
a list of ports.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.constants import wavelength_to_omega
from repro.fdfd.grid import Grid
from repro.fdfd.modes import ModeProfile, mode_source_amplitude
from repro.fdfd.monitors import Port, mode_overlap, poynting_flux_through_port
from repro.fdfd.solver import FdfdSolver, FieldSolution


@dataclass
class SimulationResult:
    """Everything measured in one forward solve.

    The attributes correspond to the "rich labels" that MAPS-Data attaches to
    each sample: the full field maps, per-port fluxes and S-parameters, the
    source that was injected and the incident normalization.
    """

    ez: np.ndarray
    hx: np.ndarray
    hy: np.ndarray
    source: np.ndarray
    wavelength: float
    source_port: str
    source_mode: int
    fluxes: dict[str, float] = field(default_factory=dict)
    s_params: dict[str, complex] = field(default_factory=dict)
    transmissions: dict[str, float] = field(default_factory=dict)
    input_flux: float = 0.0
    input_overlap: complex = 0.0

    def total_transmission(self, ports: list[str] | None = None) -> float:
        """Sum of power transmissions over ``ports`` (all output ports by default)."""
        names = ports if ports is not None else list(self.transmissions)
        return float(sum(self.transmissions[name] for name in names))

    @property
    def radiation(self) -> float:
        """Fraction of input power not collected by any monitored port."""
        return max(0.0, 1.0 - self.total_transmission())


class Simulation:
    """FDFD simulation of a device: permittivity map + ports + wavelength.

    Parameters
    ----------
    grid:
        The simulation grid (including PML cells).
    eps_r:
        Relative permittivity on the grid.
    wavelength:
        Operating free-space wavelength in micrometres.
    ports:
        All device ports.  The first port is the default source port.
    """

    def __init__(
        self,
        grid: Grid,
        eps_r: np.ndarray,
        wavelength: float,
        ports: list[Port],
    ):
        eps_r = np.asarray(eps_r, dtype=float)
        if eps_r.shape != grid.shape:
            raise ValueError(f"eps_r shape {eps_r.shape} does not match grid {grid.shape}")
        if not ports:
            raise ValueError("at least one port is required")
        names = [p.name for p in ports]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate port names: {names}")
        self.grid = grid
        self.eps_r = eps_r
        self.wavelength = float(wavelength)
        self.omega = wavelength_to_omega(wavelength)
        self.ports = {p.name: p for p in ports}
        self.solver = FdfdSolver(grid, self.omega)
        self._norm_cache: dict[tuple[str, int], tuple[float, complex]] = {}

    # -- permittivity handling ----------------------------------------------------
    def set_permittivity(self, eps_r: np.ndarray) -> None:
        """Replace the permittivity map (invalidates solver caches)."""
        eps_r = np.asarray(eps_r, dtype=float)
        if eps_r.shape != self.grid.shape:
            raise ValueError(
                f"eps_r shape {eps_r.shape} does not match grid {self.grid.shape}"
            )
        self.eps_r = eps_r
        self.solver.clear_cache()

    # -- sources ----------------------------------------------------------------------
    def port_modes(self, port_name: str, num_modes: int = 2) -> list[ModeProfile]:
        """Guided modes of a port cross-section for the current permittivity."""
        port = self._port(port_name)
        return port.solve_modes(self.eps_r, self.grid, self.omega, num_modes=num_modes)

    def mode_source(self, port_name: str, mode_index: int = 0) -> np.ndarray:
        """Current source injecting the given port mode."""
        port = self._port(port_name)
        modes = port.solve_modes(
            self.eps_r, self.grid, self.omega, num_modes=mode_index + 1
        )
        if len(modes) <= mode_index:
            raise ValueError(
                f"port {port_name!r} guides only {len(modes)} mode(s); "
                f"mode {mode_index} requested"
            )
        amplitude = mode_source_amplitude(modes[mode_index])
        return port.scatter_line(amplitude, self.grid)

    def _port(self, name: str) -> Port:
        if name not in self.ports:
            raise KeyError(f"unknown port {name!r}; available: {sorted(self.ports)}")
        return self.ports[name]

    # -- normalization run ----------------------------------------------------------------
    def _normalization(self, port_name: str, mode_index: int) -> tuple[float, complex]:
        """Incident flux and modal overlap of the source in a straight waveguide.

        The reference structure is obtained by extruding the source-port
        permittivity cross-section along the port normal through the whole
        domain — i.e. the waveguide feeding the port, continued straight.
        """
        key = (port_name, mode_index)
        if key in self._norm_cache:
            return self._norm_cache[key]

        port = self._port(port_name)
        eps_line = port.eps_line(self.eps_r, self.grid)
        if port.normal_axis == "x":
            eps_norm = np.full(self.grid.shape, float(eps_line.min()))
            index = port.indices(self.grid)[1]
            eps_norm[:, index] = eps_line[None, :]
            monitor_position = self.grid.size_x - (self.grid.npml + 4) * self.grid.dl
            if port.position > self.grid.size_x / 2:
                monitor_position = (self.grid.npml + 4) * self.grid.dl
        else:
            eps_norm = np.full(self.grid.shape, float(eps_line.min()))
            index = port.indices(self.grid)[0]
            eps_norm[index, :] = eps_line[:, None]
            monitor_position = self.grid.size_y - (self.grid.npml + 4) * self.grid.dl
            if port.position > self.grid.size_y / 2:
                monitor_position = (self.grid.npml + 4) * self.grid.dl

        monitor = Port(
            name="__norm__",
            normal_axis=port.normal_axis,
            position=monitor_position,
            center=port.center,
            span=port.span,
            direction=+1 if monitor_position > port.position else -1,
        )
        modes = port.solve_modes(eps_norm, self.grid, self.omega, num_modes=mode_index + 1)
        if len(modes) <= mode_index:
            raise ValueError(
                f"normalization waveguide for port {port_name!r} does not guide mode "
                f"{mode_index}"
            )
        source = port.scatter_line(mode_source_amplitude(modes[mode_index]), self.grid)

        solver = FdfdSolver(self.grid, self.omega)
        solution = solver.solve(eps_norm, source)
        flux = poynting_flux_through_port(
            solution.ez, solution.hx, solution.hy, monitor, self.grid
        )
        monitor_modes = monitor.solve_modes(
            eps_norm, self.grid, self.omega, num_modes=mode_index + 1
        )
        overlap = mode_overlap(solution.ez, monitor, monitor_modes[mode_index], self.grid)
        result = (abs(float(flux)), overlap)
        self._norm_cache[key] = result
        return result

    # -- forward solve -----------------------------------------------------------------------
    def solve(
        self,
        source_port: str | None = None,
        mode_index: int = 0,
        source: np.ndarray | None = None,
        monitor_ports: list[str] | None = None,
    ) -> SimulationResult:
        """Run a forward simulation and measure all monitors.

        Parameters
        ----------
        source_port:
            Name of the port to excite (default: the first port).
        mode_index:
            Which guided mode of the source port to inject.
        source:
            Explicit current source overriding the mode source (used when
            replaying stored dataset samples).
        monitor_ports:
            Ports to measure (default: every port except the source port).
        """
        if source_port is None:
            source_port = next(iter(self.ports))
        port = self._port(source_port)
        if source is None:
            source = self.mode_source(source_port, mode_index)
        else:
            source = np.asarray(source, dtype=complex)
            if source.shape != self.grid.shape:
                raise ValueError(
                    f"source shape {source.shape} does not match grid {self.grid.shape}"
                )

        solution: FieldSolution = self.solver.solve(self.eps_r, source)
        norm_flux, norm_overlap = self._normalization(source_port, mode_index)

        if monitor_ports is None:
            monitor_ports = [name for name in self.ports if name != source_port]

        fluxes: dict[str, float] = {}
        s_params: dict[str, complex] = {}
        transmissions: dict[str, float] = {}
        for name in monitor_ports:
            monitor = self._port(name)
            flux = poynting_flux_through_port(
                solution.ez, solution.hx, solution.hy, monitor, self.grid
            )
            fluxes[name] = float(flux)
            modes = monitor.solve_modes(self.eps_r, self.grid, self.omega, num_modes=1)
            if modes:
                overlap = mode_overlap(solution.ez, monitor, modes[0], self.grid)
            else:
                overlap = 0.0 + 0.0j
            s_params[name] = complex(overlap / norm_overlap) if norm_overlap else 0.0j
            transmissions[name] = float(np.clip(flux / norm_flux, 0.0, None)) if norm_flux else 0.0

        return SimulationResult(
            ez=solution.ez,
            hx=solution.hx,
            hy=solution.hy,
            source=source,
            wavelength=self.wavelength,
            source_port=source_port,
            source_mode=mode_index,
            fluxes=fluxes,
            s_params=s_params,
            transmissions=transmissions,
            input_flux=norm_flux,
            input_overlap=norm_overlap,
        )

    # -- physics checks -------------------------------------------------------------------------
    def maxwell_residual(self, result: SimulationResult) -> float:
        """Relative Maxwell residual of a result (sanity check / physics loss label)."""
        residual = self.solver.residual(self.eps_r, result.ez, result.source)
        rhs = 1j * self.omega * result.source
        denom = np.linalg.norm(rhs.ravel())
        return float(np.linalg.norm(residual.ravel()) / (denom + 1e-30))
