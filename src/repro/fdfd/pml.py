"""Stretched-coordinate perfectly matched layers (SC-PML).

The PML is implemented by complex coordinate stretching of the derivative
operators: every finite-difference derivative along x (resp. y) is scaled by
``1 / s_x`` (resp. ``1 / s_y``), where ``s = 1 - i sigma / (omega eps_0)`` and
``sigma`` ramps polynomially inside the absorbing layer.  This follows the
standard formulation used by open-source FDFD codes (ceviche, angler).
"""

from __future__ import annotations

import numpy as np

from repro.constants import EPSILON_0, ETA_0


# Polynomial grading order of the conductivity profile.
_POLY_ORDER = 3.0
# Target round-trip reflection of the PML, ln(R).
_LN_REFLECTION = -30.0


def _sigma_profile(depth: np.ndarray, thickness: float) -> np.ndarray:
    """Conductivity at normalized ``depth`` into a PML of physical ``thickness``."""
    sigma_max = -(_POLY_ORDER + 1.0) * _LN_REFLECTION / (2.0 * ETA_0 * thickness)
    return sigma_max * (depth / thickness) ** _POLY_ORDER


def sigma_samples(
    dl_m: float,
    n_cells: int,
    n_pml: int,
    shifted: bool,
) -> np.ndarray:
    """Real conductivity profile sampled along one axis (zero outside the PML).

    Parameters
    ----------
    dl_m:
        Cell size in metres.
    n_cells:
        Number of cells along the axis.
    n_pml:
        Number of PML cells at each end of the axis.
    shifted:
        ``True`` for the forward-difference (half-cell shifted) stencil,
        ``False`` for the backward-difference stencil.  The two stencils sample
        the conductivity profile half a cell apart, which is what keeps the
        discrete operator well matched.

    This is the frequency-independent part of the absorber, shared between
    the FDFD stretching factors (:func:`create_sfactor`) and the time-domain
    CPML recursion in :mod:`repro.fdtd.core` — both tiers absorb with the
    *same* graded conductivity, sampled at the same stagger offsets, so their
    boundary behaviour matches up to the discretization of the recursion.
    """
    sigma = np.zeros(n_cells, dtype=float)
    if n_pml == 0:
        return sigma
    if 2 * n_pml >= n_cells:
        raise ValueError(f"PML of {n_pml} cells does not fit axis of {n_cells} cells")

    thickness = n_pml * dl_m
    offset = 0.5 if shifted else 0.0
    for i in range(n_cells):
        # Depth into the PML measured from the interior interface, in metres.
        if i < n_pml:
            depth = (n_pml - i - offset) * dl_m
        elif i >= n_cells - n_pml:
            depth = (i - (n_cells - n_pml) + 1.0 - offset) * dl_m
        else:
            continue
        depth = max(depth, 0.0)
        sigma[i] = float(_sigma_profile(np.asarray(depth), thickness))
    return sigma


def create_sfactor(
    omega: float,
    dl_m: float,
    n_cells: int,
    n_pml: int,
    shifted: bool,
) -> np.ndarray:
    """Complex stretching factors along one axis.

    ``s = 1 - i sigma / (omega eps_0)`` with the conductivity sampled by
    :func:`sigma_samples`; value 1 outside the PML.  See that function for the
    parameters.

    Returns
    -------
    numpy.ndarray
        Complex array of length ``n_cells``.
    """
    sigma = sigma_samples(dl_m, n_cells, n_pml, shifted)
    return 1.0 - 1j * sigma / (omega * EPSILON_0)


def sfactor_grids(
    omega: float,
    dl_m: float,
    shape: tuple[int, int],
    n_pml: int,
) -> dict[str, np.ndarray]:
    """Stretching factors expanded onto the 2-D grid for all four stencils.

    Returns a dict with keys ``sx_f``, ``sx_b``, ``sy_f``, ``sy_b``; each array
    has the full grid shape and is flattened by the operator assembly.
    """
    nx, ny = shape
    sx_f = create_sfactor(omega, dl_m, nx, n_pml, shifted=True)
    sx_b = create_sfactor(omega, dl_m, nx, n_pml, shifted=False)
    sy_f = create_sfactor(omega, dl_m, ny, n_pml, shifted=True)
    sy_b = create_sfactor(omega, dl_m, ny, n_pml, shifted=False)
    return {
        "sx_f": np.broadcast_to(sx_f[:, None], shape).copy(),
        "sx_b": np.broadcast_to(sx_b[:, None], shape).copy(),
        "sy_f": np.broadcast_to(sy_f[None, :], shape).copy(),
        "sy_b": np.broadcast_to(sy_b[None, :], shape).copy(),
    }
