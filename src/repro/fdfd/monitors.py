"""Ports, flux monitors and modal overlaps.

A :class:`Port` is a straight line segment on the grid, normal to either the x
or the y axis, used both to inject mode sources and to measure transmission.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fdfd.grid import Grid
from repro.fdfd.modes import ModeProfile, overlap_coefficient, solve_slab_modes


@dataclass(frozen=True)
class Port:
    """A port: a line segment normal to one of the axes.

    Attributes
    ----------
    name:
        Identifier used in monitor dictionaries ("in", "out", "drop", ...).
    normal_axis:
        ``"x"`` if the port plane is normal to x (the line spans y), ``"y"``
        otherwise.
    position:
        Coordinate of the plane along the normal axis, in micrometres.
    center:
        Centre of the line segment along the transverse axis, in micrometres.
    span:
        Length of the line segment along the transverse axis, in micrometres.
    direction:
        +1 if power is expected to flow towards increasing coordinate through
        the port, -1 otherwise.  Used to sign flux measurements.
    """

    name: str
    normal_axis: str
    position: float
    center: float
    span: float
    direction: int = +1

    def __post_init__(self) -> None:
        if self.normal_axis not in ("x", "y"):
            raise ValueError(f"normal_axis must be 'x' or 'y', got {self.normal_axis!r}")
        if self.span <= 0:
            raise ValueError(f"span must be positive, got {self.span}")
        if self.direction not in (-1, 1):
            raise ValueError(f"direction must be +1 or -1, got {self.direction}")

    # -- index helpers -----------------------------------------------------------
    def indices(self, grid: Grid) -> tuple:
        """Return the ``(ix, iy)`` index expression selecting the port line.

        The plane position resolves to its owning cell through the grid's
        documented rounding rule (``Grid.index_x`` / ``Grid.index_y``, i.e.
        ``floor``), the same rule used for sources and geometry, so the port
        injects and measures on one and the same row even at exact half-cell
        positions.
        """
        if self.normal_axis == "x":
            ix = grid.index_x(self.position)
            transverse = grid.slice_y(self.center - self.span / 2, self.center + self.span / 2)
            return ix, transverse
        iy = grid.index_y(self.position)
        transverse = grid.slice_x(self.center - self.span / 2, self.center + self.span / 2)
        return transverse, iy

    def extract_line(self, field: np.ndarray, grid: Grid) -> np.ndarray:
        """Extract the field values along the port line."""
        return np.asarray(field)[self.indices(grid)]

    def eps_line(self, eps_r: np.ndarray, grid: Grid) -> np.ndarray:
        """Extract the permittivity cross-section along the port line."""
        return np.real(np.asarray(eps_r)[self.indices(grid)])

    def solve_modes(
        self, eps_r: np.ndarray, grid: Grid, omega: float, num_modes: int = 2
    ) -> list[ModeProfile]:
        """Solve the slab modes of the port cross-section."""
        return solve_slab_modes(self.eps_line(eps_r, grid), grid.dl, omega, num_modes)

    def scatter_line(self, values: np.ndarray, grid: Grid) -> np.ndarray:
        """Place ``values`` along the port line of a zero-initialized grid array."""
        out = np.zeros(grid.shape, dtype=complex)
        index = self.indices(grid)
        line = out[index]
        values = np.asarray(values)
        if values.shape != line.shape:
            raise ValueError(
                f"value line shape {values.shape} does not match port line {line.shape}"
            )
        out[index] = values
        return out


def port_h_indices(port: Port, grid: Grid) -> tuple[tuple, tuple]:
    """Index expressions of the two H samples straddling the port's Ez line.

    The backward-difference curls in :meth:`FdfdSolver.e_to_h` place ``Hy[i]``
    at ``x = i * dl`` and ``Hx[:, j]`` at ``y = j * dl`` — half a cell below
    the Ez samples at ``(i + 0.5) * dl``.  Colocating H on the Ez line
    therefore means averaging the sample *at* the port row with the one just
    above it; this returns both index expressions (the upper one clipped at
    the grid edge, where ports never sit in practice).
    """
    index = port.indices(grid)
    if port.normal_axis == "x":
        ix, transverse = index
        return index, (min(ix + 1, grid.nx - 1), transverse)
    transverse, iy = index
    return index, (transverse, min(iy + 1, grid.ny - 1))


def poynting_flux_through_port(
    ez: np.ndarray,
    hx: np.ndarray,
    hy: np.ndarray,
    port: Port,
    grid: Grid,
) -> float:
    """Time-averaged Poynting flux through a port, signed by the port direction.

    ``S = 0.5 Re(E x H*)``; only the component along the port normal
    contributes.  E and H live half a cell apart on the Yee grid, so the two H
    samples straddling the Ez line are averaged onto it before forming the
    product (see :func:`port_h_indices`) — sampling H at the raw port index
    instead would bias the flux by O(dl).  The result has arbitrary absolute
    units — transmission is a ratio of fluxes between a device run and a
    normalization run.
    """
    index, index_up = port_h_indices(port, grid)
    ez_line = np.asarray(ez)[index]
    if port.normal_axis == "x":
        h = np.asarray(hy)
        h_line = 0.5 * (h[index] + h[index_up])
        flux = -0.5 * np.real(np.sum(ez_line * np.conj(h_line))) * grid.dl_m
    else:
        h = np.asarray(hx)
        h_line = 0.5 * (h[index] + h[index_up])
        flux = 0.5 * np.real(np.sum(ez_line * np.conj(h_line))) * grid.dl_m
    return float(port.direction * flux)


def mode_overlap(ez: np.ndarray, port: Port, mode: ModeProfile, grid: Grid) -> complex:
    """Complex overlap of the field with a port mode (see :func:`overlap_coefficient`)."""
    return overlap_coefficient(port.extract_line(ez, grid), mode)
