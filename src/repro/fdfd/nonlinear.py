"""Kerr-type nonlinear FDFD on the recycling seam.

The nonlinear tier solves ``A(eps_eff) Ez = i omega J`` self-consistently for
a field-dependent permittivity

    ``eps_eff = eps_r + chi3 * |Ez|^2``

(the instantaneous Kerr effect; ``chi3`` is a real map over the grid, zero
outside the nonlinear material).  Two fixed-point strategies are provided:

* **damped Born** — re-solve the *linear* problem at the current
  ``eps_eff`` and relax toward the new field, backtracking the damping factor
  whenever the true nonlinear residual would increase;
* **Newton** — solve the linearized Kerr system.  The Jacobian splits into
  ``dF/dE = A(eps_r + 2 chi3 |E|^2)`` — a *standard* FDFD operator with a
  modified diagonal — plus a diagonal conjugate coupling
  ``dF/dE* = omega^2 eps0 chi3 E^2``, handled by a few cheap inner sweeps
  against the same operator.

Every inner solve goes through the ordinary engine registry
(``engine="direct" | "recycled" | ...``), and consecutive iterations differ
*only on the operator diagonal* — exactly the update
:class:`~repro.fdfd.engine.RecycledEngine` refines against its reference LU
instead of refactorizing, which is what makes the nonlinear loop cheap.
``direct`` remains the oracle: every iteration is an exact solve.

Adjoint gradients go *through* the converged fixed point via the
implicit-function theorem.  At convergence ``F(E, E*, eps) = 0``, so for a
real objective ``G`` with adjoint source ``g = dG/dEz`` (the standard
convention of :mod:`repro.invdes.objectives`) the adjoint field solves the
conjugate-coupled system

    ``A(eps_r + 2 chi3 |E|^2) lam + conj(omega^2 eps0 chi3 E^2) conj(lam) = g``

— one solve with the (symmetric) Newton operator plus a couple of coupling
sweeps, the "two extra solves" of the nonlinear adjoint — after which the
permittivity gradient is the *same* ``-2 omega^2 eps0 Re(lam * Ez)`` formula
as the linear path (:meth:`~repro.fdfd.solver.FdfdSolver.permittivity_gradient`).

:class:`NonlinearSimulation` packages all of this behind the familiar
:class:`~repro.fdfd.simulation.Simulation` facade with a ``source_scale``
power knob; convergence telemetry rides in :class:`NonlinearStats` and
failures raise :class:`ConvergenceError` loudly instead of returning silent
wrong fields.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields as dataclass_fields, replace

import numpy as np

from repro.constants import EPSILON_0
from repro.fdfd.engine import (
    SolverEngine,
    StatsCounters,
    assemble_system_matrix,
    eps_fingerprint,
    resolve_engine,
    scoped_stats,
    update_system_diagonal,
)
from repro.fdfd.grid import Grid
from repro.fdfd.simulation import Simulation, SimulationResult
from repro.fdfd.solver import FieldSolution

__all__ = [
    "ConvergenceError",
    "KerrNonlinearity",
    "KerrSolver",
    "NonlinearSimulation",
    "NonlinearStats",
    "kerr_eps_effective",
]


class ConvergenceError(RuntimeError):
    """The nonlinear fixed point failed to converge.

    Raised when the iteration cap is exhausted or backtracking hits the
    damping floor — typically past the bistability/power threshold of a
    self-focusing Kerr problem, where no stable fixed point is reachable by
    relaxation.  Carries the :class:`NonlinearStats` collected so far so
    callers can inspect the residual history instead of silently consuming
    wrong fields.
    """

    def __init__(self, message: str, stats: "NonlinearStats"):
        super().__init__(message)
        self.stats = stats


@dataclass
class NonlinearStats:
    """Convergence telemetry of one nonlinear solve."""

    method: str = "born"
    #: Accepted damped-Born relaxation steps.
    born_iterations: int = 0
    #: Accepted Newton steps.
    newton_iterations: int = 0
    #: Linear solves performed through the inner engine (including the
    #: initial linear solve and any Newton/adjoint coupling sweeps).
    inner_solves: int = 0
    #: Relative nonlinear residual ||A(eps_eff)E - b|| / ||b|| after the
    #: initial linear solve and after every accepted step.
    residuals: list[float] = field(default_factory=list)
    #: Backtracking halvings of the damping factor.
    damping_events: int = 0
    #: Damping factor in effect when the solve finished.
    final_damping: float = 1.0
    converged: bool = False
    #: Scoped per-solve counters of the inner engine (and its factorization
    #: cache), keyed by holder name — what *this* solve cost, not the
    #: engine's lifetime totals (see :func:`repro.fdfd.engine.scoped_stats`).
    engine_stats: dict[str, dict[str, int]] = field(default_factory=dict)

    @property
    def iterations(self) -> int:
        """Accepted outer iterations (Born or Newton)."""
        return self.born_iterations + self.newton_iterations


@dataclass(frozen=True)
class KerrNonlinearity:
    """Kerr-solve configuration threaded through the invdes/data seams.

    ``chi3`` scales the device's nonlinear-material map
    (:meth:`repro.devices.base.Device.chi3_map`); None uses the device's own
    ``chi3`` attribute.  ``source_scale`` multiplies the injected mode source
    — the power knob of a power sweep (field amplitudes scale linearly with
    it in the linear limit, so the Kerr perturbation scales quadratically).
    The remaining knobs mirror :class:`KerrSolver`.
    """

    chi3: float | None = None
    source_scale: float = 1.0
    method: str = "newton"
    rtol: float = 1e-8
    max_iterations: int = 64
    damping: float = 1.0
    min_damping: float = 1.0 / 64.0
    coupling_sweeps: int = 8

    def with_scale(self, source_scale: float) -> "KerrNonlinearity":
        """The same nonlinearity at a different injected power."""
        return replace(self, source_scale=float(source_scale))

    def solver_kwargs(self) -> dict:
        """Constructor kwargs for the :class:`KerrSolver` this spec describes."""
        return dict(
            method=self.method,
            rtol=self.rtol,
            max_iterations=self.max_iterations,
            damping=self.damping,
            min_damping=self.min_damping,
            coupling_sweeps=self.coupling_sweeps,
        )


def kerr_eps_effective(eps_r: np.ndarray, chi3: np.ndarray, ez: np.ndarray) -> np.ndarray:
    """The field-dependent permittivity ``eps_r + chi3 |ez|^2`` (real)."""
    return np.asarray(eps_r, dtype=float) + np.asarray(chi3, dtype=float) * (
        np.abs(np.asarray(ez)) ** 2
    )


class KerrSolver:
    """Damped-Born / Newton Kerr fixed point over the linear engine seam.

    Parameters
    ----------
    grid, omega:
        The (linear) FDFD problem the nonlinearity perturbs.
    engine:
        Inner linear engine or registry name; None solves exactly
        (``direct``).  ``engine="recycled"`` turns every iteration's
        diagonal-only operator update into a reference-LU refinement.
    method:
        ``"born"`` (damped fixed point) or ``"newton"`` (quadratic near the
        solution; roughly ``1 + coupling sweeps`` inner solves per step).
    rtol:
        Convergence threshold on the relative nonlinear residual
        ``||A(eps_eff)E - b|| / ||b||``.  A solve also terminates (converged)
        when the proposed update falls below ``rtol`` relative to the field —
        the fixed point is then stationary to the inner engine's accuracy,
        which an approximate inner tier may reach before the true residual
        does.
    max_iterations:
        Outer-iteration cap; exceeding it raises :class:`ConvergenceError`.
    damping, min_damping:
        Initial relaxation factor and the backtracking floor.  A step that
        would increase the nonlinear residual is retried at half the damping
        (no extra linear solve — only a matvec); hitting the floor raises
        :class:`ConvergenceError`.  Accepted steps let the damping recover
        toward its initial value.
    coupling_sweeps:
        Cap on the conjugate-coupling sweeps of Newton steps and adjoint
        solves (each sweep is one back-substitution against the operator the
        step already factorized; the sweeps stop early once the update is
        ``rtol``-stationary).
    """

    def __init__(
        self,
        grid: Grid,
        omega: float,
        engine: SolverEngine | str | None = None,
        method: str = "newton",
        rtol: float = 1e-8,
        max_iterations: int = 64,
        damping: float = 1.0,
        min_damping: float = 1.0 / 64.0,
        coupling_sweeps: int = 8,
    ):
        if method not in ("born", "newton"):
            raise ValueError(f"unknown nonlinear method {method!r}; expected born or newton")
        if not 0.0 < damping <= 1.0:
            raise ValueError(f"damping must lie in (0, 1], got {damping}")
        self.grid = grid
        self.omega = float(omega)
        self.engine = resolve_engine(engine)
        self.method = method
        self.rtol = float(rtol)
        self.max_iterations = int(max_iterations)
        self.damping = float(damping)
        self.min_damping = float(min_damping)
        self.coupling_sweeps = int(coupling_sweeps)
        self._matrix = None  # scratch operator for residuals (diagonal re-used in place)

    # -- pieces -----------------------------------------------------------------
    def _operator(self, eps_r: np.ndarray):
        if self._matrix is None:
            self._matrix = assemble_system_matrix(self.grid, self.omega, eps_r)
        else:
            update_system_diagonal(self._matrix, self.grid, self.omega, eps_r)
        return self._matrix

    def _residual_norm(self, eps_eff: np.ndarray, ez_flat: np.ndarray, rhs_flat: np.ndarray) -> float:
        return float(np.linalg.norm(self._operator(eps_eff) @ ez_flat - rhs_flat))

    def _inner_solve(
        self,
        stats: NonlinearStats,
        eps_r: np.ndarray,
        rhs: np.ndarray,
        x0: np.ndarray | None = None,
    ) -> np.ndarray:
        stats.inner_solves += 1
        guess = None if x0 is None else x0.reshape((1,) + self.grid.shape)
        out = self.engine.solve_batch(
            self.grid,
            self.omega,
            eps_r,
            rhs.reshape((1,) + self.grid.shape),
            fingerprint=eps_fingerprint(eps_r),
            x0=guess,
        )
        return np.asarray(out)[0]

    def _stats_holders(self) -> list:
        holders = []
        for holder in (self.engine, getattr(self.engine, "cache", None)):
            if holder is not None and isinstance(getattr(holder, "stats", None), StatsCounters):
                holders.append(holder)
        return holders

    @staticmethod
    def _record_engine_stats(stats: NonlinearStats, holders: list, scopes: list) -> None:
        for holder, scope in zip(holders, scopes):
            name = getattr(holder, "name", None) or type(holder).__name__.lower()
            if "cache" in type(holder).__name__.lower():
                name = "cache"
            stats.engine_stats[name] = {
                spec.name: int(getattr(scope, spec.name)) for spec in dataclass_fields(scope)
            }

    # -- forward fixed point ------------------------------------------------------
    def solve(
        self,
        eps_r: np.ndarray,
        chi3: np.ndarray | float,
        source: np.ndarray,
        x0: np.ndarray | None = None,
    ) -> tuple[np.ndarray, NonlinearStats]:
        """Converged ``Ez`` (and stats) for ``eps_eff = eps_r + chi3 |Ez|^2``.

        ``source`` is the current density ``Jz`` (the right-hand side is
        ``i omega J``, matching the linear solver).  ``x0`` optionally seeds
        the iteration with a previous nonlinear solution (power-sweep
        continuation); the default seed is the linear solve, which keeps the
        ``chi3 = 0`` limit bit-identical to the linear path.
        """
        eps_r = np.asarray(eps_r, dtype=float)
        chi3 = np.broadcast_to(np.asarray(chi3, dtype=float), self.grid.shape)
        if eps_r.shape != self.grid.shape:
            raise ValueError(f"eps_r shape {eps_r.shape} does not match grid {self.grid.shape}")
        rhs = 1j * self.omega * np.asarray(source, dtype=complex)
        if rhs.shape != self.grid.shape:
            raise ValueError(f"source shape {rhs.shape} does not match grid {self.grid.shape}")
        rhs_flat = rhs.ravel()
        b_norm = float(np.linalg.norm(rhs_flat))
        if b_norm == 0.0:
            raise ValueError("nonlinear solve needs a non-zero source")

        stats = NonlinearStats(method=self.method, final_damping=self.damping)
        holders = self._stats_holders()
        with scoped_stats(*holders) as scopes:
            try:
                ez = self._run_fixed_point(stats, eps_r, chi3, rhs, rhs_flat, b_norm, x0)
            finally:
                self._record_engine_stats(stats, holders, scopes)
        return ez, stats

    def _run_fixed_point(self, stats, eps_r, chi3, rhs, rhs_flat, b_norm, x0):
        if x0 is None:
            ez = self._inner_solve(stats, eps_r, rhs)
        else:
            ez = np.asarray(x0, dtype=complex).reshape(self.grid.shape)
        residual = (
            self._residual_norm(kerr_eps_effective(eps_r, chi3, ez), ez.ravel(), rhs_flat)
            / b_norm
        )
        stats.residuals.append(residual)
        damping = self.damping

        while residual > self.rtol:
            if stats.iterations >= self.max_iterations:
                raise ConvergenceError(
                    f"Kerr {self.method} iteration did not reach rtol={self.rtol:g} in "
                    f"{self.max_iterations} iterations (residual {residual:.3e}); the "
                    "power is likely past the stable fixed-point regime — reduce the "
                    "source scale or chi3, or increase damping/max_iterations",
                    stats,
                )
            if self.method == "born":
                step = self._born_step(stats, eps_r, chi3, rhs, ez)
            else:
                step = self._newton_step(stats, eps_r, chi3, rhs_flat, ez)

            step_norm = float(np.linalg.norm(step.ravel()))
            if step_norm <= self.rtol * float(np.linalg.norm(ez.ravel())):
                # Stationary to the inner engine's accuracy: the fixed point
                # is as converged as the linear tier can express.
                break

            # Backtracking line search on the *true* nonlinear residual: a
            # rejected trial costs one sparse matvec, never a linear solve.
            while True:
                trial = ez + damping * step
                trial_residual = (
                    self._residual_norm(
                        kerr_eps_effective(eps_r, chi3, trial), trial.ravel(), rhs_flat
                    )
                    / b_norm
                )
                if trial_residual < residual:
                    break
                damping *= 0.5
                stats.damping_events += 1
                if damping < self.min_damping:
                    stats.final_damping = damping
                    raise ConvergenceError(
                        f"Kerr {self.method} backtracking hit the damping floor "
                        f"{self.min_damping:g} at residual {residual:.3e} — no "
                        "residual-decreasing step exists (bistable/unstable power "
                        "regime); reduce the source scale or chi3",
                        stats,
                    )
            ez = trial
            residual = trial_residual
            stats.residuals.append(residual)
            if self.method == "born":
                stats.born_iterations += 1
            else:
                stats.newton_iterations += 1
            # Let the damping recover so one hard step does not slow the tail.
            damping = min(self.damping, damping * 2.0)

        stats.converged = True
        stats.final_damping = damping
        return ez

    def _born_step(self, stats, eps_r, chi3, rhs, ez) -> np.ndarray:
        """Proposed update: re-solve the linear problem at the current eps_eff."""
        eps_eff = kerr_eps_effective(eps_r, chi3, ez)
        candidate = self._inner_solve(stats, eps_eff, rhs, x0=ez)
        return candidate - ez

    def _newton_step(self, stats, eps_r, chi3, rhs_flat, ez) -> np.ndarray:
        """Newton update through the conjugate-coupled Kerr Jacobian.

        ``F(E) = A(eps_r + chi3 |E|^2) E - b`` has ``dF/dE = A(eps_r +
        2 chi3 |E|^2)`` (diagonal-only away from the linear operator — the
        recycling fast path) and a diagonal conjugate block ``dF/dE* =
        omega^2 eps0 chi3 E^2``.  The coupled 2x2 system is solved by fixed
        point on the conjugate term: every sweep is one more solve against
        the *same* already-factorized Newton operator.
        """
        intensity = np.abs(ez) ** 2
        eps_now = eps_r + chi3 * intensity
        eps_newton = eps_r + 2.0 * chi3 * intensity
        f_flat = self._operator(eps_now) @ ez.ravel() - rhs_flat
        coupling = (self.omega**2 * EPSILON_0) * chi3 * ez**2

        de = self._inner_solve(stats, eps_newton, -f_flat.reshape(self.grid.shape))
        for _ in range(max(self.coupling_sweeps - 1, 0)):
            corrected = -f_flat.reshape(self.grid.shape) - coupling * np.conj(de)
            de_next = self._inner_solve(stats, eps_newton, corrected, x0=de)
            if np.linalg.norm((de_next - de).ravel()) <= self.rtol * np.linalg.norm(
                de_next.ravel()
            ):
                de = de_next
                break
            de = de_next
        return de

    # -- adjoint through the fixed point ------------------------------------------
    def solve_adjoint(
        self,
        eps_r: np.ndarray,
        chi3: np.ndarray | float,
        ez: np.ndarray,
        adjoint_source: np.ndarray,
    ) -> np.ndarray:
        """Adjoint field of a real objective at the *converged* Kerr solution.

        Implicit-function formulation: with ``g = dG/dEz`` (same convention as
        the linear path), ``lam`` solves

            ``A(eps_r + 2 chi3 |E|^2) lam + conj(omega^2 eps0 chi3 E^2) conj(lam) = g``

        via one solve with the symmetric Newton operator plus coupling sweeps
        (the "two extra solves").  The permittivity gradient is then the
        linear formula ``-2 omega^2 eps0 Re(lam * Ez)`` — the conjugate
        coupling is exactly what makes that formula exact through the fixed
        point.  With ``chi3 = 0`` this is the ordinary linear adjoint solve.
        """
        eps_r = np.asarray(eps_r, dtype=float)
        chi3 = np.broadcast_to(np.asarray(chi3, dtype=float), self.grid.shape)
        ez = np.asarray(ez, dtype=complex).reshape(self.grid.shape)
        g = np.asarray(adjoint_source, dtype=complex).reshape(self.grid.shape)

        eps_newton = eps_r + 2.0 * chi3 * np.abs(ez) ** 2
        coupling = np.conj((self.omega**2 * EPSILON_0) * chi3 * ez**2)

        stats = NonlinearStats(method="adjoint")
        lam = self._inner_solve(stats, eps_newton, g)
        if not np.any(chi3):
            return lam
        for _ in range(max(self.coupling_sweeps, 1)):
            lam_next = self._inner_solve(
                stats, eps_newton, g - coupling * np.conj(lam), x0=lam
            )
            if np.linalg.norm((lam_next - lam).ravel()) <= self.rtol * np.linalg.norm(
                lam_next.ravel()
            ):
                return lam_next
            lam = lam_next
        return lam


class NonlinearSimulation(Simulation):
    """Simulation facade whose forward solves converge a Kerr fixed point.

    Drop-in for :class:`~repro.fdfd.simulation.Simulation` wherever forward
    results are consumed: ``solve`` / ``solve_multi`` return ordinary
    :class:`~repro.fdfd.simulation.SimulationResult` objects, with per-
    excitation :class:`NonlinearStats` collected in :attr:`last_stats`.

    ``chi3`` is the Kerr coefficient map (grid-shaped, or a scalar applied
    everywhere); ``source_scale`` multiplies the injected *mode* sources (the
    power-sweep knob — explicit ``ExcitationSpec.source`` arrays are used
    verbatim).  The normalization run stays linear (the feeding waveguide is
    outside the nonlinear material) and is rescaled to the injected power, so
    transmissions remain fractions of the actual input power.

    Nonlinear results are never served from the linear result cache: the
    fixed point depends on ``chi3``, the injected power and the solver
    configuration, none of which the linear cache key encodes.  Each
    excitation is its own fixed point — superposition does not hold — so
    excitations are converged one at a time.
    """

    def __init__(
        self,
        grid: Grid,
        eps_r: np.ndarray,
        wavelength: float,
        ports,
        chi3: np.ndarray | float,
        engine: SolverEngine | str | None = None,
        source_scale: float = 1.0,
        method: str = "newton",
        rtol: float = 1e-8,
        max_iterations: int = 64,
        damping: float = 1.0,
        min_damping: float = 1.0 / 64.0,
        coupling_sweeps: int = 8,
    ):
        super().__init__(grid, eps_r, wavelength, ports, engine=engine)
        self.chi3 = np.ascontiguousarray(
            np.broadcast_to(np.asarray(chi3, dtype=float), grid.shape)
        )
        self.source_scale = float(source_scale)
        self.kerr = KerrSolver(
            grid,
            self.omega,
            engine=self.solver.engine,
            method=method,
            rtol=rtol,
            max_iterations=max_iterations,
            damping=damping,
            min_damping=min_damping,
            coupling_sweeps=coupling_sweeps,
        )
        #: :class:`NonlinearStats` per excitation of the most recent
        #: ``solve_multi`` call, in excitation order.
        self.last_stats: list[NonlinearStats] = []

    @classmethod
    def from_nonlinearity(
        cls,
        grid: Grid,
        eps_r: np.ndarray,
        wavelength: float,
        ports,
        chi3: np.ndarray | float,
        nonlinearity: KerrNonlinearity,
        engine: SolverEngine | str | None = None,
        source_scale: float | None = None,
    ) -> "NonlinearSimulation":
        """Build from a :class:`KerrNonlinearity` spec (the invdes/data seam)."""
        scale = nonlinearity.source_scale if source_scale is None else source_scale
        return cls(
            grid,
            eps_r,
            wavelength,
            ports,
            chi3,
            engine=engine,
            source_scale=scale,
            **nonlinearity.solver_kwargs(),
        )

    def _normalization(self, port_name: str, mode_index: int) -> tuple[float, complex]:
        flux, overlap = super()._normalization(port_name, mode_index)
        # The injected mode source is scaled by source_scale; the linear
        # normalization run is not re-solved — its fields scale linearly with
        # the source, its flux quadratically — so the reference is rescaled
        # to the actually injected power.
        return flux * self.source_scale**2, overlap * self.source_scale

    def solve_multi(self, excitations, workspace=None, guess_keys=None):
        if workspace is not None:
            raise ValueError(
                "nonlinear solves manage their own iteration; warm-start "
                "workspaces are not supported"
            )
        from repro.fdfd.simulation import ExcitationSpec

        specs = []
        for excitation in excitations:
            if isinstance(excitation, ExcitationSpec):
                specs.append(excitation)
            elif isinstance(excitation, (tuple, list)):
                specs.append(ExcitationSpec(*excitation))
            else:
                raise TypeError(
                    "excitations must be ExcitationSpec instances or "
                    f"(source_port, mode_index) tuples; got {type(excitation)!r}"
                )
        if not specs:
            return []

        self._current_fingerprint()
        requests: dict[str, int] = {}
        for spec in specs:
            self._port(spec.source_port)
            if spec.source is None:
                needed = spec.mode_index + 1
                requests[spec.source_port] = max(requests.get(spec.source_port, 0), needed)
            monitors = spec.monitor_ports
            if monitors is None:
                monitors = [name for name in self.ports if name != spec.source_port]
            for name in monitors:
                requests[name] = max(requests.get(name, 0), 1)
        self._prepare_port_modes(requests)

        sources = []
        for spec in specs:
            if spec.source is None:
                sources.append(
                    self.mode_source(spec.source_port, spec.mode_index) * self.source_scale
                )
            else:
                source = np.asarray(spec.source, dtype=complex)
                if source.shape != self.grid.shape:
                    raise ValueError(
                        f"source shape {source.shape} does not match grid {self.grid.shape}"
                    )
                sources.append(source)

        self.last_stats = []
        results: list[SimulationResult] = []
        for spec, source in zip(specs, sources):
            ez, stats = self.kerr.solve(self.eps_r, self.chi3, source)
            self.last_stats.append(stats)
            hx, hy = self.solver.e_to_h(ez)
            solution = FieldSolution(ez=ez, hx=hx, hy=hy, omega=self.omega)
            results.append(self._measure(spec, source, solution))
        return results

    def solve_adjoint(self, ez: np.ndarray, adjoint_source: np.ndarray) -> np.ndarray:
        """Adjoint field through the converged fixed point ``ez`` (see
        :meth:`KerrSolver.solve_adjoint`)."""
        return self.kerr.solve_adjoint(self.eps_r, self.chi3, ez, adjoint_source)

    def maxwell_residual(self, result: SimulationResult) -> float:
        """Relative residual of the *nonlinear* operator at the result's field."""
        eps_eff = kerr_eps_effective(self.eps_r, self.chi3, result.ez)
        residual = self.solver.residual(eps_eff, result.ez, result.source)
        rhs = 1j * self.omega * result.source
        denom = np.linalg.norm(rhs.ravel())
        return float(np.linalg.norm(residual.ravel()) / (denom + 1e-30))
