"""Uniform simulation grid with PML bookkeeping.

The grid covers a rectangular physical domain in the x-y plane.  Arrays are
indexed ``[ix, iy]`` and flattened in C order (``index = ix * ny + iy``), which
fixes the layout used by the sparse derivative operators.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.constants import MICROMETRE

#: Relative guard added before flooring so floating-point noise in
#: ``position / dl`` (e.g. ``0.3 / 0.1 -> 2.999...``) cannot flip an index
#: across a cell boundary.
_INDEX_EPS = 1e-9


def cell_index(position_um: float, dl: float) -> int:
    """Index of the cell *owning* a physical coordinate: ``floor(p / dl)``.

    This is the single rounding rule for point-like lookups (port planes,
    source positions, probe points).  Cell ``i`` spans the half-open interval
    ``[i * dl, (i + 1) * dl)`` with its field sample at the centre
    ``(i + 0.5) * dl``; a coordinate exactly on a cell boundary belongs to the
    cell above it.  Note ``floor(p / dl)`` is also the cell whose *centre* is
    nearest to ``p`` (ties broken upward), so selecting the owning cell and
    selecting the nearest field sample agree.

    Python's ``round()`` and ``np.round`` (both half-to-even) are deliberately
    not used anywhere in index conversions: they select the nearest *grid
    line* rather than the owning cell — half a cell off from the field sample
    — and their banker's tie-breaking made the result depend on index parity,
    so a port at an exact half-cell position could inject its source on one
    row and measure flux on another.
    """
    return int(np.floor(position_um / dl + _INDEX_EPS))


def slice_bound(position_um: float, dl: float) -> int:
    """Index bound for a half-open interval: round-half-up ``floor(p/dl + 0.5)``.

    The companion rule to :func:`cell_index` for *extents*: a slice built from
    ``slice_bound(start), slice_bound(stop)`` covers exactly the cells whose
    centres lie in ``[start, stop)``.  Half-up (not banker's) tie-breaking
    keeps bounds consistent with :func:`cell_index`: a boundary coordinate
    resolves upward in both rules.
    """
    return int(np.floor(position_um / dl + 0.5 + _INDEX_EPS))


@dataclass(frozen=True)
class Grid:
    """Uniform 2-D grid.

    Parameters
    ----------
    nx, ny:
        Number of cells along x and y (including PML cells).
    dl:
        Cell size in micrometres (uniform in both directions).
    npml:
        Number of PML cells on each of the four boundaries.
    """

    nx: int
    ny: int
    dl: float
    npml: int = 10

    def __post_init__(self) -> None:
        if self.nx <= 0 or self.ny <= 0:
            raise ValueError(f"grid size must be positive, got {(self.nx, self.ny)}")
        if self.dl <= 0:
            raise ValueError(f"cell size must be positive, got {self.dl}")
        if self.npml < 0:
            raise ValueError(f"npml must be non-negative, got {self.npml}")
        if 2 * self.npml >= min(self.nx, self.ny):
            raise ValueError(
                f"PML ({self.npml} cells per side) does not fit into grid {(self.nx, self.ny)}"
            )

    # -- basic geometry --------------------------------------------------------
    @property
    def shape(self) -> tuple[int, int]:
        """Grid shape ``(nx, ny)``."""
        return (self.nx, self.ny)

    @property
    def n_points(self) -> int:
        """Total number of grid points."""
        return self.nx * self.ny

    @property
    def dl_m(self) -> float:
        """Cell size in metres."""
        return self.dl * MICROMETRE

    @property
    def size_x(self) -> float:
        """Physical domain size along x in micrometres."""
        return self.nx * self.dl

    @property
    def size_y(self) -> float:
        """Physical domain size along y in micrometres."""
        return self.ny * self.dl

    def x_coords(self) -> np.ndarray:
        """Cell-centre x coordinates in micrometres."""
        return (np.arange(self.nx) + 0.5) * self.dl

    def y_coords(self) -> np.ndarray:
        """Cell-centre y coordinates in micrometres."""
        return (np.arange(self.ny) + 0.5) * self.dl

    # -- index helpers -----------------------------------------------------------
    # All coordinate -> index conversions go through the module-level
    # ``cell_index`` / ``slice_bound`` rule so that geometry builders, ports
    # and monitors can never disagree about which cell a coordinate lands in.
    def index_x(self, x_um: float) -> int:
        """Index of the cell owning ``x_um`` (:func:`cell_index` rule, clipped)."""
        return int(np.clip(cell_index(x_um, self.dl), 0, self.nx - 1))

    def index_y(self, y_um: float) -> int:
        """Index of the cell owning ``y_um`` (:func:`cell_index` rule, clipped)."""
        return int(np.clip(cell_index(y_um, self.dl), 0, self.ny - 1))

    def index_of(self, x_um: float, y_um: float) -> tuple[int, int]:
        """Indices of the cell containing physical point ``(x_um, y_um)``."""
        return self.index_x(x_um), self.index_y(y_um)

    def slice_x(self, x_start: float, x_stop: float) -> slice:
        """Index slice covering ``[x_start, x_stop)`` in micrometres along x."""
        lo = int(np.clip(slice_bound(x_start, self.dl), 0, self.nx))
        hi = int(np.clip(slice_bound(x_stop, self.dl), 0, self.nx))
        return slice(min(lo, hi), max(lo, hi))

    def slice_y(self, y_start: float, y_stop: float) -> slice:
        """Index slice covering ``[y_start, y_stop)`` in micrometres along y."""
        lo = int(np.clip(slice_bound(y_start, self.dl), 0, self.ny))
        hi = int(np.clip(slice_bound(y_stop, self.dl), 0, self.ny))
        return slice(min(lo, hi), max(lo, hi))

    def interior_mask(self) -> np.ndarray:
        """Boolean mask that is True outside the PML region."""
        mask = np.zeros(self.shape, dtype=bool)
        mask[self.npml : self.nx - self.npml, self.npml : self.ny - self.npml] = True
        return mask

    # -- resolution changes ---------------------------------------------------------
    def with_resolution(self, dl: float) -> "Grid":
        """Return a grid covering the same physical domain at cell size ``dl``.

        Used for multi-fidelity data generation: the low-fidelity grid is the
        same device meshed with a larger ``dl``.
        """
        if dl <= 0:
            raise ValueError(f"cell size must be positive, got {dl}")
        scale = self.dl / dl
        nx = max(int(round(self.nx * scale)), 2 * self.npml + 1)
        ny = max(int(round(self.ny * scale)), 2 * self.npml + 1)
        return Grid(nx=nx, ny=ny, dl=dl, npml=self.npml)
