"""Uniform simulation grid with PML bookkeeping.

The grid covers a rectangular physical domain in the x-y plane.  Arrays are
indexed ``[ix, iy]`` and flattened in C order (``index = ix * ny + iy``), which
fixes the layout used by the sparse derivative operators.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.constants import MICROMETRE


@dataclass(frozen=True)
class Grid:
    """Uniform 2-D grid.

    Parameters
    ----------
    nx, ny:
        Number of cells along x and y (including PML cells).
    dl:
        Cell size in micrometres (uniform in both directions).
    npml:
        Number of PML cells on each of the four boundaries.
    """

    nx: int
    ny: int
    dl: float
    npml: int = 10

    def __post_init__(self) -> None:
        if self.nx <= 0 or self.ny <= 0:
            raise ValueError(f"grid size must be positive, got {(self.nx, self.ny)}")
        if self.dl <= 0:
            raise ValueError(f"cell size must be positive, got {self.dl}")
        if self.npml < 0:
            raise ValueError(f"npml must be non-negative, got {self.npml}")
        if 2 * self.npml >= min(self.nx, self.ny):
            raise ValueError(
                f"PML ({self.npml} cells per side) does not fit into grid {(self.nx, self.ny)}"
            )

    # -- basic geometry --------------------------------------------------------
    @property
    def shape(self) -> tuple[int, int]:
        """Grid shape ``(nx, ny)``."""
        return (self.nx, self.ny)

    @property
    def n_points(self) -> int:
        """Total number of grid points."""
        return self.nx * self.ny

    @property
    def dl_m(self) -> float:
        """Cell size in metres."""
        return self.dl * MICROMETRE

    @property
    def size_x(self) -> float:
        """Physical domain size along x in micrometres."""
        return self.nx * self.dl

    @property
    def size_y(self) -> float:
        """Physical domain size along y in micrometres."""
        return self.ny * self.dl

    def x_coords(self) -> np.ndarray:
        """Cell-centre x coordinates in micrometres."""
        return (np.arange(self.nx) + 0.5) * self.dl

    def y_coords(self) -> np.ndarray:
        """Cell-centre y coordinates in micrometres."""
        return (np.arange(self.ny) + 0.5) * self.dl

    # -- index helpers -----------------------------------------------------------
    def index_of(self, x_um: float, y_um: float) -> tuple[int, int]:
        """Indices of the cell containing physical point ``(x_um, y_um)``."""
        ix = int(np.clip(np.floor(x_um / self.dl), 0, self.nx - 1))
        iy = int(np.clip(np.floor(y_um / self.dl), 0, self.ny - 1))
        return ix, iy

    def slice_x(self, x_start: float, x_stop: float) -> slice:
        """Index slice covering ``[x_start, x_stop)`` in micrometres along x."""
        lo = int(np.clip(np.round(x_start / self.dl), 0, self.nx))
        hi = int(np.clip(np.round(x_stop / self.dl), 0, self.nx))
        return slice(min(lo, hi), max(lo, hi))

    def slice_y(self, y_start: float, y_stop: float) -> slice:
        """Index slice covering ``[y_start, y_stop)`` in micrometres along y."""
        lo = int(np.clip(np.round(y_start / self.dl), 0, self.ny))
        hi = int(np.clip(np.round(y_stop / self.dl), 0, self.ny))
        return slice(min(lo, hi), max(lo, hi))

    def interior_mask(self) -> np.ndarray:
        """Boolean mask that is True outside the PML region."""
        mask = np.zeros(self.shape, dtype=bool)
        mask[self.npml : self.nx - self.npml, self.npml : self.ny - self.npml] = True
        return mask

    # -- resolution changes ---------------------------------------------------------
    def with_resolution(self, dl: float) -> "Grid":
        """Return a grid covering the same physical domain at cell size ``dl``.

        Used for multi-fidelity data generation: the low-fidelity grid is the
        same device meshed with a larger ``dl``.
        """
        if dl <= 0:
            raise ValueError(f"cell size must be positive, got {dl}")
        scale = self.dl / dl
        nx = max(int(round(self.nx * scale)), 2 * self.npml + 1)
        ny = max(int(round(self.ny * scale)), 2 * self.npml + 1)
        return Grid(nx=nx, ny=ny, dl=dl, npml=self.npml)
