"""1-D slab waveguide eigenmode solver for port sources and modal overlaps.

For the Ez polarization a guided mode propagating along the port normal has a
transverse profile ``phi(t)`` satisfying::

    phi'' + k0^2 eps_r(t) phi = beta^2 phi

The discrete operator is a symmetric tridiagonal matrix, so the dense
eigendecomposition of a port cross-section (tens of points) is instantaneous.
Guided modes are those with effective index between the cladding and core
indices; they are returned sorted by decreasing effective index (fundamental
first), which is how the multi-mode devices (MDM) address higher-order modes.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.constants import C_0


@dataclass
class ModeProfile:
    """A guided eigenmode of a 1-D cross-section.

    Attributes
    ----------
    profile:
        Real mode profile sampled on the cross-section, normalized to unit
        L2 norm (``sum |phi|^2 * dl = 1``).
    neff:
        Effective index ``beta / k0``.
    order:
        Mode order (0 = fundamental).
    dl:
        Sampling step of the cross-section in micrometres.
    """

    profile: np.ndarray
    neff: float
    order: int
    dl: float

    @property
    def beta(self) -> float:
        """Propagation constant in rad/um (for the stored effective index)."""
        return 2.0 * np.pi * self.neff / self.wavelength if self.wavelength else 0.0

    wavelength: float = 0.0


def _check_eps_line(eps_line: np.ndarray) -> np.ndarray:
    eps_line = np.asarray(eps_line, dtype=float)
    if eps_line.ndim != 1:
        raise ValueError(f"expected a 1-D permittivity line, got shape {eps_line.shape}")
    if eps_line.size < 3:
        raise ValueError("cross-section must contain at least 3 points")
    return eps_line


def _slab_operator(eps_line: np.ndarray, dl_m: float, k0: float) -> np.ndarray:
    """Dense symmetric tridiagonal operator: second difference + k0^2 eps."""
    n = eps_line.size
    main = -2.0 * np.ones(n) / dl_m**2 + k0**2 * eps_line
    off = np.ones(n - 1) / dl_m**2
    return np.diag(main) + np.diag(off, 1) + np.diag(off, -1)


def _guided_modes(
    eigvals: np.ndarray,
    eigvecs: np.ndarray,
    eps_line: np.ndarray,
    dl_um: float,
    k0: float,
    num_modes: int,
) -> list[ModeProfile]:
    """Select, normalize and sign-fix the guided modes of one eigendecomposition."""
    eps_clad = float(eps_line.min())
    eps_core = float(eps_line.max())
    k0_um = k0 * 1e-6  # rad/um for effective-index bookkeeping

    modes: list[ModeProfile] = []
    # eigh returns ascending eigenvalues; guided modes have the largest beta^2.
    for beta_sq, vec in sorted(zip(eigvals, eigvecs.T), key=lambda t: -t[0]):
        if beta_sq <= 0:
            continue
        neff = float(np.sqrt(beta_sq) / k0)
        if neff <= np.sqrt(eps_clad) + 1e-9 or neff > np.sqrt(eps_core) + 1e-9:
            continue
        profile = vec / np.sqrt(np.sum(np.abs(vec) ** 2) * dl_um)
        # Fix the sign so the lobe with the largest magnitude is positive.
        peak = profile[np.argmax(np.abs(profile))]
        if peak < 0:
            profile = -profile
        modes.append(
            ModeProfile(
                profile=profile,
                neff=neff,
                order=len(modes),
                dl=dl_um,
                wavelength=2.0 * np.pi / (k0_um) if k0_um else 0.0,
            )
        )
        if len(modes) >= num_modes:
            break
    return modes


# Process-wide cache of solved mode lines.  Port cross-sections are tiny and
# rarely change (an optimization loop re-solves the *same* lines every
# iteration: the design region does not touch the ports), so modes are cached
# by cross-section content.  A solve that asked for at least as many modes —
# or that found every guided mode the line supports — serves smaller requests,
# mirroring the per-Simulation mode cache.
_MODE_CACHE: "OrderedDict[tuple, tuple[int, list[ModeProfile]]]" = OrderedDict()
_MODE_CACHE_MAX = 512


def _cached_modes(key: tuple, num_modes: int) -> list[ModeProfile] | None:
    entry = _MODE_CACHE.get(key)
    if entry is None:
        return None
    solved_for, modes = entry
    if solved_for >= num_modes or len(modes) < solved_for:
        _MODE_CACHE.move_to_end(key)
        return modes[:num_modes]
    return None


def _store_modes(key: tuple, num_modes: int, modes: list[ModeProfile]) -> None:
    while len(_MODE_CACHE) >= _MODE_CACHE_MAX:
        _MODE_CACHE.popitem(last=False)
    _MODE_CACHE[key] = (num_modes, modes)


def solve_slab_modes(
    eps_line: np.ndarray,
    dl_um: float,
    omega: float,
    num_modes: int = 2,
) -> list[ModeProfile]:
    """Solve for the guided modes of a 1-D permittivity cross-section.

    Parameters
    ----------
    eps_line:
        Relative permittivity sampled along the cross-section.
    dl_um:
        Sampling step in micrometres.
    omega:
        Angular frequency in rad/s.
    num_modes:
        Maximum number of guided modes to return.

    Returns
    -------
    list of ModeProfile
        Guided modes sorted by decreasing effective index.  The list may be
        shorter than ``num_modes`` (or empty) if the cross-section guides fewer
        modes.
    """
    return solve_slab_modes_batch([eps_line], dl_um, omega, num_modes=num_modes)[0]


def solve_slab_modes_batch(
    eps_lines: list[np.ndarray],
    dl_um: float,
    omega: float,
    num_modes: int = 2,
) -> list[list[ModeProfile]]:
    """Solve the guided modes of many port cross-sections in one pass.

    Cross-sections of equal length are stacked into a single batched
    ``np.linalg.eigh`` call, so a simulation (or a dataset-generation shard)
    pays one LAPACK dispatch per distinct line length instead of one dense
    eigendecomposition per port per excitation.  Results per line are
    identical to :func:`solve_slab_modes` on that line.

    Parameters
    ----------
    eps_lines:
        Relative-permittivity cross-sections (1-D arrays, possibly of
        different lengths).
    dl_um, omega, num_modes:
        As in :func:`solve_slab_modes`, shared by every line.

    Returns
    -------
    list of list of ModeProfile
        One guided-mode list per input line, in input order.
    """
    lines = [_check_eps_line(line) for line in eps_lines]
    dl_m = dl_um * 1e-6
    k0 = omega / C_0  # rad/m

    results: list[list[ModeProfile] | None] = [None] * len(lines)
    keys: list[tuple] = []
    for index, line in enumerate(lines):
        key = (line.tobytes(), line.size, float(dl_um), float(omega))
        keys.append(key)
        results[index] = _cached_modes(key, num_modes)

    by_length: dict[int, list[int]] = {}
    for index, line in enumerate(lines):
        if results[index] is None:
            by_length.setdefault(line.size, []).append(index)

    for indices in by_length.values():
        stack = np.stack([_slab_operator(lines[i], dl_m, k0) for i in indices], axis=0)
        eigvals, eigvecs = np.linalg.eigh(stack)
        for position, index in enumerate(indices):
            modes = _guided_modes(
                eigvals[position], eigvecs[position], lines[index], dl_um, k0, num_modes
            )
            _store_modes(keys[index], num_modes, modes)
            results[index] = modes
    return results


def mode_source_amplitude(mode: ModeProfile) -> np.ndarray:
    """Current-source amplitude along the port for injecting ``mode``.

    A line current with the mode profile excites the guided mode (in both
    directions); absolute power is fixed by the normalization run performed by
    :class:`repro.fdfd.simulation.Simulation`.
    """
    return mode.profile.astype(complex)


def overlap_coefficient(ez_line: np.ndarray, mode: ModeProfile) -> complex:
    """Complex modal overlap ``c = sum Ez(t) phi(t) dl`` along a port line.

    With the unit-norm convention of :func:`solve_slab_modes`, ``|c|^2`` is
    proportional to the power carried by the mode; ratios of ``|c|^2`` between
    a device run and a normalization run give power transmission.
    """
    ez_line = np.asarray(ez_line)
    if ez_line.shape != mode.profile.shape:
        raise ValueError(
            f"field line shape {ez_line.shape} does not match mode {mode.profile.shape}"
        )
    return complex(np.sum(ez_line * mode.profile) * mode.dl)
