"""Assembly and solution of the frequency-domain Maxwell operator.

For the Ez polarization with the ``exp(+i omega t)`` convention the governing
equation discretized on the Yee grid is::

    [ (1/mu0) (Dxf Dxb + Dyf Dyb) + omega^2 eps0 diag(eps_r) ] Ez = i omega Jz

and the magnetic fields follow from the curl of ``Ez``::

    Hx = -1/(i omega mu0) Dyb Ez
    Hy = +1/(i omega mu0) Dxb Ez

The operator is complex symmetric (the PML stretching preserves symmetry),
which the adjoint solve exploits: ``A^T = A``.

:class:`FdfdSolver` is a thin convenience shim binding one ``(grid, omega)``
pair to a :class:`~repro.fdfd.engine.SolverEngine`.  All factorization state
lives in the engine layer's shared :class:`~repro.fdfd.engine.FactorizationCache`,
so independent solver instances working on the same operator reuse one
factorization, and batched multi-RHS solves (:meth:`FdfdSolver.solve_batch`,
:meth:`FdfdSolver.solve_adjoint_batch`) amortize it further.

Served solves are one engine name away: ``FdfdSolver(..., engine="service")``
routes every solve through the process-wide
:class:`~repro.service.SolveService`, which micro-batches concurrently
arriving requests (from any number of solver instances and threads) into
single batched engine calls — and a :class:`~repro.service.SolveService`
instance itself is accepted wherever an engine is.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.constants import EPSILON_0, MU_0
from repro.fdfd.engine import (
    SolverEngine,
    assemble_system_matrix,
    eps_fingerprint,
    operators,
    resolve_engine,
)
from repro.fdfd.grid import Grid


@dataclass
class FieldSolution:
    """Electric and magnetic fields of a single forward solve (grid shaped)."""

    ez: np.ndarray
    hx: np.ndarray
    hy: np.ndarray
    omega: float

    @property
    def shape(self) -> tuple[int, int]:
        return self.ez.shape


class FdfdSolver:
    """FDFD solver for one grid and one angular frequency.

    Parameters
    ----------
    grid:
        The simulation grid (including PML cells).
    omega:
        Angular frequency in rad/s.
    engine:
        Solver engine, engine name or None (exact direct solves).  The engine
        determines the fidelity tier; see :mod:`repro.fdfd.engine`.
        ``"service"`` (or a :class:`~repro.service.SolveService` instance)
        serves solves through the coalescing async front-end.
    """

    def __init__(self, grid: Grid, omega: float, engine: SolverEngine | str | None = None):
        if omega <= 0:
            raise ValueError(f"omega must be positive, got {omega}")
        self.grid = grid
        self.omega = float(omega)
        self.engine = resolve_engine(engine)
        self._derivs = operators(grid, self.omega)
        self._solved_fingerprints: set[str] = set()

    # -- operator assembly ------------------------------------------------------
    def system_matrix(self, eps_r: np.ndarray) -> sp.csr_matrix:
        """Assemble ``A(eps_r)`` for a grid-shaped relative permittivity."""
        return assemble_system_matrix(self.grid, self.omega, self._check_eps(eps_r))

    def _check_eps(self, eps_r: np.ndarray) -> np.ndarray:
        eps_r = np.asarray(eps_r)
        if eps_r.shape != self.grid.shape:
            raise ValueError(
                f"eps_r shape {eps_r.shape} does not match grid {self.grid.shape}"
            )
        return eps_r

    def clear_cache(self) -> None:
        """Evict the factorizations of every permittivity this solver solved."""
        cache = getattr(self.engine, "cache", None)
        if cache is not None:
            for fingerprint in self._solved_fingerprints:
                cache.evict(self.grid, self.omega, fingerprint)
        self._solved_fingerprints.clear()

    def _solve_stack(
        self,
        eps_r: np.ndarray,
        rhs: np.ndarray,
        fingerprint: str | None,
        x0: np.ndarray | None = None,
    ) -> np.ndarray:
        if fingerprint is None:
            fingerprint = eps_fingerprint(eps_r)
        self._solved_fingerprints.add(fingerprint)
        return self.engine.solve_batch(
            self.grid, self.omega, eps_r, rhs, fingerprint=fingerprint, x0=x0
        )

    # -- solves ---------------------------------------------------------------------
    def solve(
        self, eps_r: np.ndarray, source: np.ndarray, fingerprint: str | None = None
    ) -> FieldSolution:
        """Solve for the fields produced by a current density ``Jz``.

        Parameters
        ----------
        eps_r:
            Relative permittivity, grid shaped (real or complex).
        source:
            Current density ``Jz`` on the grid (complex allowed).
        fingerprint:
            Optional pre-computed :func:`~repro.fdfd.engine.eps_fingerprint`.

        Returns
        -------
        FieldSolution
            Grid-shaped ``Ez``, ``Hx``, ``Hy``.
        """
        return self.solve_batch(eps_r, [source], fingerprint=fingerprint)[0]

    def solve_batch(
        self,
        eps_r: np.ndarray,
        sources: list[np.ndarray] | np.ndarray,
        fingerprint: str | None = None,
        x0: np.ndarray | None = None,
    ) -> list[FieldSolution]:
        """Solve one operator against many current sources at once.

        The permittivity is factorized (or fetched from the shared cache)
        exactly once; every source costs only a back-substitution.  ``x0`` is
        an optional stack of ``Ez`` initial guesses (previous-iteration fields
        from a :class:`~repro.fdfd.engine.SolveWorkspace`) for warm-startable
        engines; exact engines ignore it.
        """
        eps_r = self._check_eps(eps_r)
        stack = np.stack([np.asarray(s, dtype=complex) for s in sources], axis=0)
        if stack.shape[1:] != self.grid.shape:
            raise ValueError(
                f"source shape {stack.shape[1:]} does not match grid {self.grid.shape}"
            )
        rhs = 1j * self.omega * stack
        ez_stack = self._solve_stack(eps_r, rhs, fingerprint, x0=x0)
        solutions = []
        for ez in ez_stack:
            hx, hy = self.e_to_h(ez)
            solutions.append(FieldSolution(ez=ez, hx=hx, hy=hy, omega=self.omega))
        return solutions

    def solve_adjoint(
        self, eps_r: np.ndarray, adjoint_source: np.ndarray, fingerprint: str | None = None
    ) -> np.ndarray:
        """Solve the adjoint system ``A^T lambda = rhs``.

        ``A`` is complex symmetric, so the forward factorization is reused
        (``A^T = A``).  The adjoint source is the derivative of the objective
        with respect to ``Ez`` (grid shaped, complex).
        """
        return self.solve_adjoint_batch(eps_r, [adjoint_source], fingerprint=fingerprint)[0]

    def solve_adjoint_batch(
        self,
        eps_r: np.ndarray,
        adjoint_sources: list[np.ndarray] | np.ndarray,
        fingerprint: str | None = None,
        x0: np.ndarray | None = None,
    ) -> list[np.ndarray]:
        """Batched adjoint solves against one (cached) factorization.

        ``x0`` optionally stacks previous adjoint fields as warm starts for
        Krylov engines (ignored by exact engines).
        """
        eps_r = self._check_eps(eps_r)
        stack = np.stack([np.asarray(s, dtype=complex) for s in adjoint_sources], axis=0)
        if stack.shape[1:] != self.grid.shape:
            raise ValueError(
                f"adjoint source shape {stack.shape[1:]} does not match grid "
                f"{self.grid.shape}"
            )
        lam_stack = self._solve_stack(eps_r, stack, fingerprint, x0=x0)
        return list(lam_stack)

    # -- derived fields ---------------------------------------------------------------
    def e_to_h(self, ez: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Magnetic fields from the electric field via the discrete curl."""
        ez_flat = np.asarray(ez).ravel()
        factor = -1.0 / (1j * self.omega * MU_0)
        hx = factor * (self._derivs["Dyb"] @ ez_flat)
        hy = -factor * (self._derivs["Dxb"] @ ez_flat)
        return hx.reshape(self.grid.shape), hy.reshape(self.grid.shape)

    def residual(self, eps_r: np.ndarray, ez: np.ndarray, source: np.ndarray) -> np.ndarray:
        """Maxwell-equation residual ``A ez - i omega J`` for a candidate field.

        This is the physics-driven loss used by MAPS-Train: a perfect field
        prediction has zero residual regardless of the label.
        """
        matrix = self.system_matrix(self._check_eps(eps_r))
        rhs = 1j * self.omega * np.asarray(source).ravel().astype(complex)
        res = matrix @ np.asarray(ez).ravel().astype(complex) - rhs
        return res.reshape(self.grid.shape)

    def permittivity_gradient(
        self, ez: np.ndarray, adjoint_field: np.ndarray
    ) -> np.ndarray:
        """Adjoint gradient of a real objective with respect to ``eps_r``.

        With ``A = C + omega^2 eps0 diag(eps_r)`` and objective ``F(Ez)``, the
        chain rule gives ``dF/deps_r = -2 omega^2 eps0 Re(lambda * Ez)`` where
        ``lambda`` solves ``A^T lambda = dF/dEz``.
        """
        ez = np.asarray(ez)
        adjoint_field = np.asarray(adjoint_field)
        if ez.shape != self.grid.shape or adjoint_field.shape != self.grid.shape:
            raise ValueError("field shapes must match the grid")
        return -2.0 * self.omega**2 * EPSILON_0 * np.real(adjoint_field * ez)
