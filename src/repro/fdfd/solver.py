"""Assembly and solution of the frequency-domain Maxwell operator.

For the Ez polarization with the ``exp(+i omega t)`` convention the governing
equation discretized on the Yee grid is::

    [ (1/mu0) (Dxf Dxb + Dyf Dyb) + omega^2 eps0 diag(eps_r) ] Ez = i omega Jz

and the magnetic fields follow from the curl of ``Ez``::

    Hx = -1/(i omega mu0) Dyb Ez
    Hy = +1/(i omega mu0) Dxb Ez

The operator is complex symmetric (the PML stretching preserves symmetry),
which the adjoint solve exploits: ``A^T = A``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.constants import EPSILON_0, MU_0
from repro.fdfd.derivatives import derivative_operators
from repro.fdfd.grid import Grid


@dataclass
class FieldSolution:
    """Electric and magnetic fields of a single forward solve (grid shaped)."""

    ez: np.ndarray
    hx: np.ndarray
    hy: np.ndarray
    omega: float

    @property
    def shape(self) -> tuple[int, int]:
        return self.ez.shape


class FdfdSolver:
    """Direct FDFD solver for one grid and one angular frequency.

    The operator factorization is cached so that repeated solves at the same
    permittivity (forward + adjoint, or multiple sources) cost a single LU
    decomposition.
    """

    def __init__(self, grid: Grid, omega: float):
        if omega <= 0:
            raise ValueError(f"omega must be positive, got {omega}")
        self.grid = grid
        self.omega = float(omega)
        self._derivs = derivative_operators(grid, self.omega)
        # Laplacian-like part, independent of the permittivity.
        self._curl_curl = (
            self._derivs["Dxf"] @ self._derivs["Dxb"]
            + self._derivs["Dyf"] @ self._derivs["Dyb"]
        ) / MU_0
        self._cached_eps: np.ndarray | None = None
        self._cached_lu: spla.SuperLU | None = None

    # -- operator assembly ------------------------------------------------------
    def system_matrix(self, eps_r: np.ndarray) -> sp.csr_matrix:
        """Assemble ``A(eps_r)`` for a grid-shaped relative permittivity."""
        eps_r = self._check_eps(eps_r)
        diagonal = self.omega**2 * EPSILON_0 * eps_r.ravel()
        return (self._curl_curl + sp.diags(diagonal)).tocsr()

    def _check_eps(self, eps_r: np.ndarray) -> np.ndarray:
        eps_r = np.asarray(eps_r)
        if eps_r.shape != self.grid.shape:
            raise ValueError(
                f"eps_r shape {eps_r.shape} does not match grid {self.grid.shape}"
            )
        return eps_r

    def _factorize(self, eps_r: np.ndarray) -> spla.SuperLU:
        if self._cached_lu is not None and self._cached_eps is not None:
            if np.array_equal(self._cached_eps, eps_r):
                return self._cached_lu
        matrix = self.system_matrix(eps_r).tocsc()
        lu = spla.splu(matrix)
        self._cached_eps = np.array(eps_r, copy=True)
        self._cached_lu = lu
        return lu

    def clear_cache(self) -> None:
        """Drop the cached factorization (e.g. after changing the permittivity)."""
        self._cached_eps = None
        self._cached_lu = None

    # -- solves ---------------------------------------------------------------------
    def solve(self, eps_r: np.ndarray, source: np.ndarray) -> FieldSolution:
        """Solve for the fields produced by a current density ``Jz``.

        Parameters
        ----------
        eps_r:
            Relative permittivity, grid shaped (real or complex).
        source:
            Current density ``Jz`` on the grid (complex allowed).

        Returns
        -------
        FieldSolution
            Grid-shaped ``Ez``, ``Hx``, ``Hy``.
        """
        eps_r = self._check_eps(eps_r)
        source = np.asarray(source)
        if source.shape != self.grid.shape:
            raise ValueError(
                f"source shape {source.shape} does not match grid {self.grid.shape}"
            )
        lu = self._factorize(eps_r)
        rhs = 1j * self.omega * source.ravel().astype(complex)
        ez_flat = lu.solve(rhs)
        ez = ez_flat.reshape(self.grid.shape)
        hx, hy = self.e_to_h(ez)
        return FieldSolution(ez=ez, hx=hx, hy=hy, omega=self.omega)

    def solve_adjoint(self, eps_r: np.ndarray, adjoint_source: np.ndarray) -> np.ndarray:
        """Solve the adjoint system ``A^T lambda = rhs``.

        ``A`` is complex symmetric, so the forward factorization is reused
        (``A^T = A``).  The adjoint source is the derivative of the objective
        with respect to ``Ez`` (grid shaped, complex).
        """
        eps_r = self._check_eps(eps_r)
        adjoint_source = np.asarray(adjoint_source)
        if adjoint_source.shape != self.grid.shape:
            raise ValueError(
                f"adjoint source shape {adjoint_source.shape} does not match grid "
                f"{self.grid.shape}"
            )
        lu = self._factorize(eps_r)
        lam = lu.solve(adjoint_source.ravel().astype(complex))
        return lam.reshape(self.grid.shape)

    # -- derived fields ---------------------------------------------------------------
    def e_to_h(self, ez: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Magnetic fields from the electric field via the discrete curl."""
        ez_flat = np.asarray(ez).ravel()
        factor = -1.0 / (1j * self.omega * MU_0)
        hx = factor * (self._derivs["Dyb"] @ ez_flat)
        hy = -factor * (self._derivs["Dxb"] @ ez_flat)
        return hx.reshape(self.grid.shape), hy.reshape(self.grid.shape)

    def residual(self, eps_r: np.ndarray, ez: np.ndarray, source: np.ndarray) -> np.ndarray:
        """Maxwell-equation residual ``A ez - i omega J`` for a candidate field.

        This is the physics-driven loss used by MAPS-Train: a perfect field
        prediction has zero residual regardless of the label.
        """
        matrix = self.system_matrix(self._check_eps(eps_r))
        rhs = 1j * self.omega * np.asarray(source).ravel().astype(complex)
        res = matrix @ np.asarray(ez).ravel().astype(complex) - rhs
        return res.reshape(self.grid.shape)

    def permittivity_gradient(
        self, ez: np.ndarray, adjoint_field: np.ndarray
    ) -> np.ndarray:
        """Adjoint gradient of a real objective with respect to ``eps_r``.

        With ``A = C + omega^2 eps0 diag(eps_r)`` and objective ``F(Ez)``, the
        chain rule gives ``dF/deps_r = -2 omega^2 eps0 Re(lambda * Ez)`` where
        ``lambda`` solves ``A^T lambda = dF/dEz``.
        """
        ez = np.asarray(ez)
        adjoint_field = np.asarray(adjoint_field)
        if ez.shape != self.grid.shape or adjoint_field.shape != self.grid.shape:
            raise ValueError("field shapes must match the grid")
        return -2.0 * self.omega**2 * EPSILON_0 * np.real(adjoint_field * ez)
