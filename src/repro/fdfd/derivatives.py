"""Sparse finite-difference derivative operators on the flattened 2-D grid.

Arrays are flattened in C order (``index = ix * ny + iy``).  Forward and
backward first-difference operators are built with Dirichlet boundaries and are
scaled by the complex PML stretching factors of :mod:`repro.fdfd.pml`.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.fdfd.grid import Grid
from repro.fdfd.pml import sfactor_grids


def _forward_diff_1d(n: int, dl_m: float) -> sp.csr_matrix:
    """1-D forward difference ``(u[i+1] - u[i]) / dl`` with Dirichlet boundary."""
    main = -np.ones(n)
    upper = np.ones(n - 1)
    return sp.diags([main, upper], [0, 1], format="csr") / dl_m


def _backward_diff_1d(n: int, dl_m: float) -> sp.csr_matrix:
    """1-D backward difference ``(u[i] - u[i-1]) / dl`` with Dirichlet boundary."""
    main = np.ones(n)
    lower = -np.ones(n - 1)
    return sp.diags([main, lower], [0, -1], format="csr") / dl_m


def derivative_operators(grid: Grid, omega: float) -> dict[str, sp.csr_matrix]:
    """Build PML-stretched derivative operators for a grid at frequency ``omega``.

    Returns
    -------
    dict
        ``{"Dxf", "Dxb", "Dyf", "Dyb"}`` — sparse ``(N, N)`` matrices acting on
        flattened fields, where ``N = grid.n_points``.
    """
    nx, ny = grid.shape
    dl_m = grid.dl_m
    identity_x = sp.identity(nx, format="csr")
    identity_y = sp.identity(ny, format="csr")

    d_xf = sp.kron(_forward_diff_1d(nx, dl_m), identity_y, format="csr")
    d_xb = sp.kron(_backward_diff_1d(nx, dl_m), identity_y, format="csr")
    d_yf = sp.kron(identity_x, _forward_diff_1d(ny, dl_m), format="csr")
    d_yb = sp.kron(identity_x, _backward_diff_1d(ny, dl_m), format="csr")

    sfac = sfactor_grids(omega, dl_m, grid.shape, grid.npml)
    inv_sx_f = sp.diags(1.0 / sfac["sx_f"].ravel())
    inv_sx_b = sp.diags(1.0 / sfac["sx_b"].ravel())
    inv_sy_f = sp.diags(1.0 / sfac["sy_f"].ravel())
    inv_sy_b = sp.diags(1.0 / sfac["sy_b"].ravel())

    return {
        "Dxf": (inv_sx_f @ d_xf).tocsr(),
        "Dxb": (inv_sx_b @ d_xb).tocsr(),
        "Dyf": (inv_sy_f @ d_yf).tocsr(),
        "Dyb": (inv_sy_b @ d_yb).tocsr(),
    }
