"""Pluggable solver engines with a shared factorization cache.

This module is the fidelity seam of the FDFD stack: everything that turns a
right-hand side into a field — :class:`~repro.fdfd.solver.FdfdSolver`, the
:class:`~repro.fdfd.simulation.Simulation` facade, normalization runs, the
adjoint path in :mod:`repro.invdes.adjoint` and the dataset generator — routes
its linear solves through a :class:`SolverEngine`.  Swapping the engine swaps
the fidelity tier:

* :class:`DirectEngine` — exact sparse solves via SuperLU.  One factorization
  is computed per ``(grid, omega, permittivity)`` triple and reused for
  arbitrarily many right-hand sides (forward, adjoint and normalization solves
  are triangular back-substitutions against the same LU).
* :class:`IterativeEngine` — BiCGStab/GMRES with an incomplete-LU
  preconditioner: a cheap, approximate low-fidelity tier.
* ``"neural"`` — a trained surrogate registered by
  :mod:`repro.surrogate.neural_solver` (see :class:`NeuralEngine` there).

Engines are stateless with respect to the problem: all per-operator state
lives in the process-wide :class:`FactorizationCache`, keyed by the grid, the
angular frequency and a cheap content fingerprint of the permittivity
(:func:`eps_fingerprint`).  The cache is what lets independent call sites —
a ``Simulation``, its normalization run, ``evaluate_spec``'s adjoint solve,
the dataset generator — share one LU decomposition without coordinating.

New backends (GPU solvers, sharded solvers, ...) register themselves with
:func:`register_engine` and become available by name everywhere an engine is
accepted (``Simulation(engine="...")``, ``FdfdSolver(engine=...)``,
``NumericalFieldBackend(engine=...)``).
"""

from __future__ import annotations

import hashlib
import os
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.constants import EPSILON_0, MU_0
from repro.fdfd.derivatives import derivative_operators
from repro.fdfd.grid import Grid

__all__ = [
    "eps_fingerprint",
    "operators",
    "warmup_operators",
    "assemble_system_matrix",
    "FactorizationCache",
    "CacheStats",
    "default_factorization_cache",
    "SolverEngine",
    "DirectEngine",
    "IterativeEngine",
    "CountingEngine",
    "register_engine",
    "available_engines",
    "make_engine",
    "resolve_engine",
]


# --------------------------------------------------------------------------- #
# permittivity fingerprints
# --------------------------------------------------------------------------- #
def eps_fingerprint(eps_r: np.ndarray) -> str:
    """Cheap content fingerprint of a permittivity map.

    A hex digest over the raw bytes (plus shape and dtype, so reinterpreted
    buffers cannot collide).  Unlike the full-array equality compare it
    replaces, the digest doubles as a dictionary key, which is what allows a
    process-wide cache shared between independent solver instances.
    """
    eps_r = np.ascontiguousarray(eps_r)
    digest = hashlib.sha1()
    digest.update(str(eps_r.shape).encode())
    digest.update(str(eps_r.dtype).encode())
    digest.update(eps_r.tobytes())
    return digest.hexdigest()


# --------------------------------------------------------------------------- #
# operator assembly (shared, permittivity-independent parts cached)
# --------------------------------------------------------------------------- #
_OPERATOR_CACHE: dict[tuple[Grid, float], dict] = {}
_OPERATOR_CACHE_MAX = 8


def operators(grid: Grid, omega: float) -> dict:
    """Derivative operators and the curl-curl block for ``(grid, omega)``.

    The returned dict contains ``Dxf``/``Dxb``/``Dyf``/``Dyb`` and
    ``curl_curl`` (the permittivity-independent part of the Maxwell operator).
    Cached process-wide: every solver, normalization run and monitor working
    on the same grid shares one set of sparse matrices.
    """
    key = (grid, float(omega))
    entry = _OPERATOR_CACHE.get(key)
    if entry is None:
        derivs = derivative_operators(grid, float(omega))
        derivs["curl_curl"] = (
            derivs["Dxf"] @ derivs["Dxb"] + derivs["Dyf"] @ derivs["Dyb"]
        ) / MU_0
        if len(_OPERATOR_CACHE) >= _OPERATOR_CACHE_MAX:
            _OPERATOR_CACHE.pop(next(iter(_OPERATOR_CACHE)))
        _OPERATOR_CACHE[key] = entry = derivs
    return entry


def warmup_operators(grid: Grid, omegas: float | list[float]) -> int:
    """Pre-build the permittivity-independent operators for a set of frequencies.

    Worker processes of the sharded dataset generator call this once per
    device before their solve loop, so derivative-operator assembly (shared by
    every design of the shard) happens up front instead of inside the first
    timed solve.  Returns the number of operator sets now cached.
    """
    if np.isscalar(omegas):
        omegas = [omegas]
    for omega in omegas:
        operators(grid, float(omega))
    return len(_OPERATOR_CACHE)


def assemble_system_matrix(grid: Grid, omega: float, eps_r: np.ndarray) -> sp.csr_matrix:
    """Assemble the Maxwell operator ``A(eps_r)`` for one grid and frequency."""
    eps_r = np.asarray(eps_r)
    if eps_r.shape != grid.shape:
        raise ValueError(f"eps_r shape {eps_r.shape} does not match grid {grid.shape}")
    diagonal = omega**2 * EPSILON_0 * eps_r.ravel()
    return (operators(grid, omega)["curl_curl"] + sp.diags(diagonal)).tocsr()


# --------------------------------------------------------------------------- #
# factorization cache
# --------------------------------------------------------------------------- #
@dataclass
class CacheStats:
    """Hit/miss counters of a :class:`FactorizationCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def factorizations(self) -> int:
        return self.misses


class FactorizationCache:
    """Process-wide LRU cache of sparse factorizations.

    Keys are ``(grid, omega, eps fingerprint)``; values are whatever a solver
    engine stores for that operator (a SuperLU object for the direct engine,
    an incomplete LU plus the assembled matrix for the iterative one).  The
    cache is deliberately engine-agnostic: entries are namespaced by a ``tag``
    so direct and iterative factorizations of the same operator coexist.
    """

    def __init__(self, maxsize: int | None = None):
        if maxsize is None:
            maxsize = int(os.environ.get("REPRO_FACTORIZATION_CACHE_SIZE", "8"))
        if maxsize <= 0:
            raise ValueError(f"maxsize must be positive, got {maxsize}")
        self.maxsize = maxsize
        self._entries: OrderedDict[tuple, object] = OrderedDict()
        self.stats = CacheStats()

    @staticmethod
    def _key(grid: Grid, omega: float, fingerprint: str, tag: str) -> tuple:
        return (grid, float(omega), fingerprint, tag)

    def get_or_build(
        self,
        grid: Grid,
        omega: float,
        fingerprint: str,
        build,
        tag: str = "direct",
    ):
        """Return the cached entry for the key, building it on a miss."""
        key = self._key(grid, omega, fingerprint, tag)
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return entry
        self.stats.misses += 1
        entry = build()
        while len(self._entries) >= self.maxsize:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
        self._entries[key] = entry
        return entry

    def peek(self, grid: Grid, omega: float, fingerprint: str, tag: str = "direct"):
        """Return a cached entry without building or touching LRU order."""
        return self._entries.get(self._key(grid, omega, fingerprint, tag))

    def evict(self, grid: Grid, omega: float, fingerprint: str, tag: str | None = None) -> int:
        """Drop entries for one operator (all tags unless one is given)."""
        if tag is not None:
            return 1 if self._entries.pop(self._key(grid, omega, fingerprint, tag), None) is not None else 0
        prefix = (grid, float(omega), fingerprint)
        stale = [key for key in self._entries if key[:3] == prefix]
        for key in stale:
            del self._entries[key]
        return len(stale)

    def clear(self) -> None:
        """Drop every cached factorization and reset the statistics."""
        self._entries.clear()
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)


default_factorization_cache = FactorizationCache()
"""The cache shared by every engine that is not given its own.

Process-wide by design: up to ``maxsize`` factorizations stay alive for the
life of the process (sized by ``REPRO_FACTORIZATION_CACHE_SIZE``, read when a
cache is constructed — for this default, at import time).  Long-running
programs that are done solving can release the memory explicitly with
``default_factorization_cache.clear()``.
"""


# --------------------------------------------------------------------------- #
# engines
# --------------------------------------------------------------------------- #
class SolverEngine:
    """Interface of a fidelity tier: batched linear solves of ``A(eps) x = b``.

    ``solve_batch`` receives the *full* right-hand side stack (any ``i omega``
    source scaling is the caller's business), so the same call serves forward
    solves (``b = i omega J``), adjoint solves (``b = dF/dEz``; the operator is
    complex symmetric, ``A^T = A``) and normalization runs.
    """

    name: str = "abstract"

    def solve_batch(
        self,
        grid: Grid,
        omega: float,
        eps_r: np.ndarray,
        rhs: np.ndarray,
        fingerprint: str | None = None,
    ) -> np.ndarray:
        """Solve ``A(eps_r) x = b`` for a stack of right-hand sides.

        Parameters
        ----------
        grid, omega:
            Discretization and angular frequency defining the operator.
        eps_r:
            Grid-shaped relative permittivity (real or complex).
        rhs:
            Right-hand sides, shape ``(n_rhs, nx, ny)`` (complex).
        fingerprint:
            Pre-computed :func:`eps_fingerprint` of ``eps_r``; computed on the
            fly when omitted.  Callers that mutate permittivities in place are
            responsible for passing an up-to-date fingerprint.

        Returns
        -------
        np.ndarray
            Solution stack of the same shape as ``rhs``.
        """
        raise NotImplementedError

    # -- shared plumbing --------------------------------------------------------
    @staticmethod
    def _check_batch(grid: Grid, eps_r: np.ndarray, rhs: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        eps_r = np.asarray(eps_r)
        if eps_r.shape != grid.shape:
            raise ValueError(f"eps_r shape {eps_r.shape} does not match grid {grid.shape}")
        rhs = np.asarray(rhs, dtype=complex)
        if rhs.ndim != 3 or rhs.shape[1:] != grid.shape:
            raise ValueError(
                f"rhs must be a stack shaped (n, {grid.nx}, {grid.ny}); got {rhs.shape}"
            )
        return eps_r, rhs


class DirectEngine(SolverEngine):
    """Exact sparse direct solves (SuperLU), factorize-once / solve-many.

    All right-hand sides of a batch are solved in a single
    ``lu.solve`` call on a 2-D RHS matrix, and the factorization itself is
    shared across batches (and across engine instances using the same cache).
    """

    name = "direct"

    def __init__(self, cache: FactorizationCache | None = None):
        self.cache = cache if cache is not None else default_factorization_cache

    def factorize(
        self, grid: Grid, omega: float, eps_r: np.ndarray, fingerprint: str | None = None
    ) -> spla.SuperLU:
        """LU factorization of ``A(eps_r)``, shared through the cache."""
        if fingerprint is None:
            fingerprint = eps_fingerprint(eps_r)
        return self.cache.get_or_build(
            grid,
            omega,
            fingerprint,
            lambda: spla.splu(assemble_system_matrix(grid, omega, eps_r).tocsc()),
            tag="direct",
        )

    def solve_batch(self, grid, omega, eps_r, rhs, fingerprint=None):
        eps_r, rhs = self._check_batch(grid, eps_r, rhs)
        lu = self.factorize(grid, omega, eps_r, fingerprint)
        # One back-substitution on an (n_points, n_rhs) matrix.
        solutions = lu.solve(rhs.reshape(rhs.shape[0], -1).T)
        return np.ascontiguousarray(solutions.T).reshape(rhs.shape)


class IterativeEngine(SolverEngine):
    """Approximate Krylov solves preconditioned with an incomplete LU.

    The cheap low-fidelity tier: the ILU factorization is much sparser (and
    faster to compute) than the exact LU, and the Krylov iteration stops at a
    configurable residual tolerance.  The preconditioner is cached exactly
    like the direct factorization, so batches still pay assembly and ILU once.
    """

    name = "iterative"

    def __init__(
        self,
        method: str = "bicgstab",
        rtol: float = 1e-8,
        maxiter: int = 2000,
        drop_tol: float = 1e-5,
        fill_factor: float = 20.0,
        cache: FactorizationCache | None = None,
    ):
        if method not in ("bicgstab", "gmres"):
            raise ValueError(f"unknown Krylov method {method!r}; expected bicgstab or gmres")
        self.method = method
        self.rtol = float(rtol)
        self.maxiter = int(maxiter)
        self.drop_tol = float(drop_tol)
        self.fill_factor = float(fill_factor)
        self.cache = cache if cache is not None else default_factorization_cache

    def _prepare(self, grid, omega, eps_r, fingerprint):
        if fingerprint is None:
            fingerprint = eps_fingerprint(eps_r)

        def build():
            matrix = assemble_system_matrix(grid, omega, eps_r).tocsc()
            ilu = spla.spilu(matrix, drop_tol=self.drop_tol, fill_factor=self.fill_factor)
            return matrix, ilu

        return self.cache.get_or_build(grid, omega, fingerprint, build, tag="iterative")

    def solve_batch(self, grid, omega, eps_r, rhs, fingerprint=None):
        eps_r, rhs = self._check_batch(grid, eps_r, rhs)
        matrix, ilu = self._prepare(grid, omega, eps_r, fingerprint)
        preconditioner = spla.LinearOperator(matrix.shape, ilu.solve, dtype=complex)
        krylov = spla.bicgstab if self.method == "bicgstab" else spla.gmres
        solutions = np.empty_like(rhs)
        for index, b in enumerate(rhs.reshape(rhs.shape[0], -1)):
            x, info = krylov(matrix, b, rtol=self.rtol, maxiter=self.maxiter, M=preconditioner)
            if info > 0:
                raise RuntimeError(
                    f"{self.method} did not converge to rtol={self.rtol} within "
                    f"{self.maxiter} iterations (rhs {index})"
                )
            if info < 0:
                raise RuntimeError(f"{self.method} failed with illegal input (info={info})")
            solutions[index] = x.reshape(grid.shape)
        return solutions


class CountingEngine(SolverEngine):
    """Test/diagnostic wrapper that records every solve going through it.

    ``factorizations`` maps permittivity fingerprints to the number of times
    the inner engine actually built a factorization for them;
    ``solve_log`` records ``(fingerprint, n_rhs)`` per ``solve_batch`` call.
    Used by the test-suite to prove factorize-once behaviour end to end.
    """

    name = "counting"

    def __init__(self, inner: SolverEngine | None = None):
        self.inner = inner if inner is not None else DirectEngine(cache=FactorizationCache())
        self.solve_log: list[tuple[str, int]] = []
        self.factorizations: dict[str, int] = {}

    def solve_batch(self, grid, omega, eps_r, rhs, fingerprint=None):
        if fingerprint is None:
            fingerprint = eps_fingerprint(eps_r)
        rhs = np.asarray(rhs, dtype=complex)
        self.solve_log.append((fingerprint, rhs.shape[0]))
        cache = getattr(self.inner, "cache", None)
        misses_before = cache.stats.misses if cache is not None else 0
        result = self.inner.solve_batch(grid, omega, eps_r, rhs, fingerprint=fingerprint)
        if cache is not None and cache.stats.misses > misses_before:
            self.factorizations[fingerprint] = self.factorizations.get(fingerprint, 0) + 1
        return result


# --------------------------------------------------------------------------- #
# registry
# --------------------------------------------------------------------------- #
_ENGINE_FACTORIES: dict[str, object] = {}


def register_engine(name: str, factory) -> None:
    """Register an engine factory under a name (used by ``make_engine``)."""
    _ENGINE_FACTORIES[name.lower().strip()] = factory


def available_engines() -> list[str]:
    """Names accepted by :func:`make_engine` / ``Simulation(engine=...)``."""
    return sorted(_ENGINE_FACTORIES)


def make_engine(name: str, **kwargs) -> SolverEngine:
    """Instantiate a solver engine by name.

    ``"direct"``/``"high"`` build the exact :class:`DirectEngine`,
    ``"iterative"``/``"low"``/``"bicgstab"``/``"gmres"`` the approximate
    :class:`IterativeEngine`, and ``"neural"`` the surrogate engine (requires
    ``model=...``; registered when :mod:`repro.surrogate` is imported).
    """
    key = name.lower().strip()
    if key not in _ENGINE_FACTORIES:
        # The surrogate package registers the "neural" tier on import; do it
        # lazily so plain FDFD users never pay for (or depend on) the NN
        # stack.  Also run it before reporting an unknown name, so the error
        # message lists every tier that actually exists.
        try:
            import repro.surrogate.neural_solver  # noqa: F401
        except ImportError:  # pragma: no cover - NN stack unavailable
            pass
    if key not in _ENGINE_FACTORIES:
        raise ValueError(f"unknown engine {name!r}; available: {available_engines()}")
    return _ENGINE_FACTORIES[key](**kwargs)


def resolve_engine(engine: SolverEngine | str | None, **kwargs) -> SolverEngine:
    """Normalize an engine argument: instance, registry name or None (direct)."""
    if engine is None:
        return DirectEngine(**kwargs)
    if isinstance(engine, str):
        return make_engine(engine, **kwargs)
    if isinstance(engine, SolverEngine):
        return engine
    raise TypeError(f"engine must be a SolverEngine, a name or None; got {type(engine)!r}")


register_engine("direct", DirectEngine)
register_engine("superlu", DirectEngine)
register_engine("high", DirectEngine)
register_engine("iterative", IterativeEngine)
register_engine("low", IterativeEngine)
register_engine("bicgstab", lambda **kw: IterativeEngine(method="bicgstab", **kw))
register_engine("gmres", lambda **kw: IterativeEngine(method="gmres", **kw))
