"""Pluggable solver engines with a shared factorization cache.

This module is the fidelity seam of the FDFD stack: everything that turns a
right-hand side into a field — :class:`~repro.fdfd.solver.FdfdSolver`, the
:class:`~repro.fdfd.simulation.Simulation` facade, normalization runs, the
adjoint path in :mod:`repro.invdes.adjoint` and the dataset generator — routes
its linear solves through a :class:`SolverEngine`.  Swapping the engine swaps
the fidelity tier:

* :class:`DirectEngine` — exact sparse solves via SuperLU.  One factorization
  is computed per ``(grid, omega, permittivity)`` triple and reused for
  arbitrarily many right-hand sides (forward, adjoint and normalization solves
  are triangular back-substitutions against the same LU).
* :class:`IterativeEngine` — BiCGStab/GMRES with an incomplete-LU
  preconditioner: a cheap, approximate low-fidelity tier.
* :class:`RefinedEngine` — mixed precision: the LU is factored in reduced
  (fp32/complex64) precision — roughly half the factorization time and
  memory — and fp64 accuracy is recovered by iterative refinement against
  the full-precision operator.  Dense refinement math routes through the
  array-backend seam (:mod:`repro.utils.backend`).
* :class:`RecycledEngine` — the optimization-loop tier: keeps the exact LU of
  a *reference* permittivity and solves nearby permittivities (consecutive
  Adam iterates differ only on the operator diagonal) with LU-preconditioned
  Krylov iterations, refactorizing only when the design drifts too far or the
  iteration counts creep up.
* ``"neural"`` — a trained surrogate registered by
  :mod:`repro.surrogate.neural_solver` (see :class:`NeuralEngine` there).
* ``"service"`` — the coalescing async front-end registered by
  :mod:`repro.service.solve_service`: requests from concurrent call sites
  are micro-batched into single ``solve_batch`` calls on a backing tier.

Engines are stateless with respect to the problem: all per-operator state
lives in the process-wide :class:`FactorizationCache`, keyed by the grid, the
angular frequency and a cheap content fingerprint of the permittivity
(:func:`eps_fingerprint`).  The cache is what lets independent call sites —
a ``Simulation``, its normalization run, ``evaluate_spec``'s adjoint solve,
the dataset generator — share one LU decomposition without coordinating.

New backends (GPU solvers, sharded solvers, ...) register themselves with
:func:`register_engine` and become available by name everywhere an engine is
accepted (``Simulation(engine="...")``, ``FdfdSolver(engine=...)``,
``NumericalFieldBackend(engine=...)``).
"""

from __future__ import annotations

import hashlib
import inspect
import itertools
import os
import threading
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass, fields as dataclass_fields
from typing import ClassVar

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.constants import EPSILON_0, MU_0
from repro.fdfd.derivatives import derivative_operators
from repro.fdfd.grid import Grid
from repro.utils import backend as array_backend

__all__ = [
    "eps_fingerprint",
    "operators",
    "warmup_operators",
    "assemble_system_matrix",
    "update_system_diagonal",
    "FactorizationCache",
    "CacheStats",
    "default_factorization_cache",
    "SolveWorkspace",
    "SolverEngine",
    "DirectEngine",
    "IterativeEngine",
    "RefinedEngine",
    "RefineStats",
    "RecycledEngine",
    "RecycleStats",
    "scoped_stats",
    "CountingEngine",
    "precision_dtype",
    "dtype_cache_tag",
    "mixed_precision_refine",
    "register_engine",
    "available_engines",
    "split_engine_name",
    "make_engine",
    "resolve_engine",
]


# --------------------------------------------------------------------------- #
# permittivity fingerprints
# --------------------------------------------------------------------------- #
def eps_fingerprint(eps_r: np.ndarray) -> str:
    """Cheap content fingerprint of a permittivity map.

    A hex digest over the raw bytes (plus shape and dtype, so reinterpreted
    buffers cannot collide).  Unlike the full-array equality compare it
    replaces, the digest doubles as a dictionary key, which is what allows a
    process-wide cache shared between independent solver instances.
    """
    eps_r = np.ascontiguousarray(eps_r)
    digest = hashlib.sha1()
    digest.update(str(eps_r.shape).encode())
    digest.update(str(eps_r.dtype).encode())
    digest.update(eps_r.tobytes())
    return digest.hexdigest()


# --------------------------------------------------------------------------- #
# operator assembly (shared, permittivity-independent parts cached)
# --------------------------------------------------------------------------- #
_OPERATOR_CACHE: OrderedDict[tuple[Grid, float], dict] = OrderedDict()


def _operator_cache_maxsize() -> int:
    """Capacity of the operator cache (``REPRO_OPERATOR_CACHE_SIZE``, min 1)."""
    return max(1, int(os.environ.get("REPRO_OPERATOR_CACHE_SIZE", "8")))


def operators(grid: Grid, omega: float) -> dict:
    """Derivative operators and the curl-curl block for ``(grid, omega)``.

    The returned dict contains ``Dxf``/``Dxb``/``Dyf``/``Dyb`` and
    ``curl_curl`` (the permittivity-independent part of the Maxwell operator).
    Cached process-wide with true LRU behaviour — a hit refreshes the entry,
    so a hot grid survives however many cold ones pass through.  Capacity is
    controlled by ``REPRO_OPERATOR_CACHE_SIZE`` (default 8, read on insert).
    """
    key = (grid, float(omega))
    entry = _OPERATOR_CACHE.get(key)
    if entry is None:
        derivs = derivative_operators(grid, float(omega))
        derivs["curl_curl"] = (
            derivs["Dxf"] @ derivs["Dxb"] + derivs["Dyf"] @ derivs["Dyb"]
        ) / MU_0
        while len(_OPERATOR_CACHE) >= _operator_cache_maxsize():
            _OPERATOR_CACHE.popitem(last=False)
        _OPERATOR_CACHE[key] = entry = derivs
    else:
        _OPERATOR_CACHE.move_to_end(key)
    return entry


def warmup_operators(grid: Grid, omegas: float | list[float]) -> int:
    """Pre-build the permittivity-independent operators for a set of frequencies.

    Worker processes of the sharded dataset generator call this once per
    device before their solve loop, so derivative-operator assembly (shared by
    every design of the shard) happens up front instead of inside the first
    timed solve.  Returns the number of operator sets now cached.
    """
    if np.isscalar(omegas):
        omegas = [omegas]
    for omega in omegas:
        operators(grid, float(omega))
    return len(_OPERATOR_CACHE)


def _system_template(grid: Grid, omega: float) -> dict:
    """CSR template of ``A(eps)`` with pre-located diagonal entries.

    ``A(eps) = curl_curl + omega^2 eps0 diag(eps)``: consecutive operators on
    the same grid share everything except the diagonal.  The template — built
    once per ``(grid, omega)`` and stored with the cached operators — holds
    the CSR pattern of the full operator plus, per row, the position of the
    diagonal entry inside the ``data`` array, so assembling a new permittivity
    is a data copy and a vectorized diagonal overwrite instead of a sparse
    matrix re-summation.
    """
    entry = operators(grid, omega)
    template = entry.get("system_template")
    if template is None:
        # Adding an explicit (zero) diagonal fixes the union sparsity pattern
        # of curl_curl + diags(...), so incremental updates are bit-identical
        # to from-scratch assembly for any diagonal values.
        matrix = (entry["curl_curl"] + sp.diags(np.zeros(grid.n_points))).tocsr()
        matrix.sort_indices()
        rows = np.repeat(np.arange(grid.n_points), np.diff(matrix.indptr))
        diag_positions = np.flatnonzero(matrix.indices == rows)
        if diag_positions.size != grid.n_points:  # pragma: no cover - defensive
            raise RuntimeError("system-matrix template is missing diagonal entries")
        entry["system_template"] = template = {
            "matrix": matrix,
            "diag_positions": diag_positions,
            "base_diagonal": matrix.data[diag_positions].copy(),
        }
    return template


def assemble_system_matrix(grid: Grid, omega: float, eps_r: np.ndarray) -> sp.csr_matrix:
    """Assemble the Maxwell operator ``A(eps_r)`` for one grid and frequency.

    Uses the cached :func:`_system_template`: only the operator diagonal
    depends on the permittivity, so assembly copies the template data and
    overwrites the diagonal in place — bit-identical to (but much cheaper
    than) re-summing ``curl_curl + diags(...)``.  The returned matrix owns its
    ``data`` but shares the index structure with the template; treat the
    sparsity pattern as read-only.
    """
    eps_r = np.asarray(eps_r)
    if eps_r.shape != grid.shape:
        raise ValueError(f"eps_r shape {eps_r.shape} does not match grid {grid.shape}")
    template = _system_template(grid, omega)
    data = template["matrix"].data.copy()
    diagonal = omega**2 * EPSILON_0 * eps_r.ravel()
    data[template["diag_positions"]] = template["base_diagonal"] + diagonal
    base = template["matrix"]
    return sp.csr_matrix((data, base.indices, base.indptr), shape=base.shape)


def update_system_diagonal(
    matrix: sp.csr_matrix, grid: Grid, omega: float, eps_r: np.ndarray
) -> sp.csr_matrix:
    """Refresh the permittivity diagonal of an assembled operator in place.

    ``matrix`` must come from :func:`assemble_system_matrix` for the same
    ``(grid, omega)`` (same sparsity template).  This is the zero-allocation
    path used by :class:`RecycledEngine`, whose optimization-loop solves see a
    new diagonal every iteration but an otherwise identical operator.
    """
    eps_r = np.asarray(eps_r)
    if eps_r.shape != grid.shape:
        raise ValueError(f"eps_r shape {eps_r.shape} does not match grid {grid.shape}")
    template = _system_template(grid, omega)
    if matrix.data.shape != template["matrix"].data.shape:
        raise ValueError("matrix does not match the system template for this grid")
    diagonal = omega**2 * EPSILON_0 * eps_r.ravel()
    matrix.data[template["diag_positions"]] = template["base_diagonal"] + diagonal
    return matrix


# --------------------------------------------------------------------------- #
# factorization cache
# --------------------------------------------------------------------------- #
class StatsCounters:
    """Base for the per-engine/per-cache counter dataclasses.

    Counters are monotone tallies of work performed; fields named in
    ``_GAUGES`` are point-in-time gauges (e.g. bytes currently held) that a
    :meth:`reset` must not zero and a merge must overwrite rather than sum.
    The distinction is what lets :func:`scoped_stats` observe one bounded
    piece of work — a nonlinear outer iteration, one benchmark repeat —
    without corrupting the cumulative accounting.
    """

    _GAUGES: ClassVar[tuple[str, ...]] = ()

    def reset(self) -> None:
        """Zero every counter (gauges keep their current value)."""
        for spec in dataclass_fields(self):
            if spec.name not in self._GAUGES:
                setattr(self, spec.name, 0)

    def merge(self, other: "StatsCounters") -> None:
        """Fold another stats object of the same type into this one.

        Counters add; gauges take the other (more recent) value.
        """
        if type(other) is not type(self):
            raise TypeError(f"cannot merge {type(other).__name__} into {type(self).__name__}")
        for spec in dataclass_fields(self):
            value = getattr(other, spec.name)
            if spec.name in self._GAUGES:
                setattr(self, spec.name, value)
            else:
                setattr(self, spec.name, getattr(self, spec.name) + value)


@contextmanager
def scoped_stats(*holders):
    """Observe the stats of engines/caches over one bounded piece of work.

    Each holder (anything with a ``.stats`` counters dataclass — a
    :class:`RecycledEngine`, a :class:`RefinedEngine`, a
    :class:`FactorizationCache`, ...) temporarily gets a zeroed stats object
    (gauges carried over); the list of those scoped objects is yielded in
    holder order.  On exit the scoped counts are merged back into the
    cumulative stats, which are reinstalled — so a caller sees exactly what
    happened inside the ``with`` block while global accounting (benchmark
    totals, cache hit rates) stays intact.

    This is the fix for the seam bug nonlinear solves exposed: a fixed-point
    loop performs many inner solves per outer iteration, and without scoping,
    per-solve ``RecycleStats``/``CacheStats`` reads accumulate across outer
    iterations (and across unrelated callers sharing the default cache).
    """
    saved = []
    scoped = []
    for holder in holders:
        stats = getattr(holder, "stats", None)
        if not isinstance(stats, StatsCounters):
            raise TypeError(
                f"{type(holder).__name__} has no resettable stats; "
                "pass engines/caches whose .stats derive from StatsCounters"
            )
        fresh = type(stats)()
        for name in fresh._GAUGES:
            setattr(fresh, name, getattr(stats, name))
        holder.stats = fresh
        saved.append(stats)
        scoped.append(fresh)
    try:
        yield scoped
    finally:
        for holder, cumulative, fresh in zip(holders, saved, scoped):
            cumulative.merge(fresh)
            holder.stats = cumulative


@dataclass
class CacheStats(StatsCounters):
    """Hit/miss counters of a :class:`FactorizationCache`."""

    _GAUGES: ClassVar[tuple[str, ...]] = ("current_bytes",)

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    #: In-memory misses that a cross-process store satisfied / failed to.
    store_hits: int = 0
    store_misses: int = 0
    #: Estimated bytes held by the entries currently cached.
    current_bytes: int = 0

    @property
    def factorizations(self) -> int:
        # An in-memory miss satisfied by the store maps an existing artifact
        # instead of building a factorization.
        return self.misses - self.store_hits

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "store_hits": self.store_hits,
            "store_misses": self.store_misses,
            "current_bytes": self.current_bytes,
            "factorizations": self.factorizations,
        }


def _entry_nbytes(entry) -> int:
    """Best-effort byte estimate of a cached factorization.

    Entries declaring ``nbytes`` (store artifacts) are exact; SuperLU/ILU
    objects are estimated from their factor ``nnz`` (complex data plus an
    index per stored entry); anything else counts as 0 rather than guessing.
    """
    explicit = getattr(entry, "nbytes", None)
    if isinstance(explicit, (int, np.integer)):
        return int(explicit)
    total = 0
    for part in entry if isinstance(entry, tuple) else (entry,):
        data = getattr(part, "data", None)
        if isinstance(data, np.ndarray):  # assembled sparse matrices
            total += data.nbytes + getattr(part, "indices", data).nbytes
            continue
        nnz = getattr(part, "nnz", None)
        if nnz is not None:  # SuperLU-likes: 16B complex value + 4B index
            total += int(nnz) * 20
    return total


class FactorizationCache:
    """Process-wide LRU cache of sparse factorizations.

    Keys are ``(grid, omega, eps fingerprint)``; values are whatever a solver
    engine stores for that operator (a SuperLU object for the direct engine,
    an incomplete LU plus the assembled matrix for the iterative one).  The
    cache is deliberately engine-agnostic: entries are namespaced by a ``tag``
    so direct and iterative factorizations of the same operator coexist.

    Most code never touches the cache directly — engines share
    :data:`default_factorization_cache` unless given their own.  Direct use
    looks like::

        cache = FactorizationCache(maxsize=4)
        lu = cache.get_or_build(grid, omega, eps_fingerprint(eps_r),
                                build=lambda: splu(A.tocsc()), tag="direct")
        cache.stats.hits, cache.stats.misses   # factorize-once, solve-many
        cache.evict(grid, omega, fingerprint)  # e.g. after in-place eps edits

    The cache is safe to share between threads: a lock guards the LRU
    bookkeeping, while builds (and store round-trips) deliberately run
    *outside* it so a slow factorization never serializes unrelated
    operators.  Two threads racing one cold key may therefore both build —
    last insert wins; both entries solve the same operator.  (Collapsing
    that duplicated work is what :class:`~repro.service.SolveService`
    request coalescing is for.)

    Cross-process fall-through: a cache may carry a
    :class:`~repro.service.FileFactorizationStore` (the ``store``
    constructor argument, :meth:`attach_store`, or process-wide via
    ``REPRO_FACTORIZATION_STORE=<dir>``).  An in-memory miss then tries the
    store before building — mapping a persisted artifact instead of
    refactorizing — and a fresh build is published back, so factorizations
    survive process death and are shared across worker pools.
    """

    def __init__(self, maxsize: int | None = None, store=None):
        if maxsize is None:
            maxsize = int(os.environ.get("REPRO_FACTORIZATION_CACHE_SIZE", "8"))
        if maxsize <= 0:
            raise ValueError(f"maxsize must be positive, got {maxsize}")
        self.maxsize = maxsize
        self._entries: OrderedDict[tuple, object] = OrderedDict()
        self._sizes: dict[tuple, int] = {}
        self.stats = CacheStats()
        self._lock = threading.RLock()
        self._store = store
        self._env_store = None

    @staticmethod
    def _key(grid: Grid, omega: float, fingerprint: str, tag: str) -> tuple:
        return (grid, float(omega), fingerprint, tag)

    # -- cross-process store plumbing -------------------------------------------
    def attach_store(self, store) -> None:
        """Attach (or with ``None``, detach) a cross-process store."""
        with self._lock:
            self._store = store
            self._env_store = None

    @property
    def store(self):
        """The attached store, resolving ``REPRO_FACTORIZATION_STORE`` lazily.

        An explicitly attached store wins; otherwise a non-empty env var
        names a directory and a :class:`FileFactorizationStore` over it is
        created on first use (and re-created if the variable changes — cheap,
        the store object holds no open handles).
        """
        with self._lock:
            if self._store is not None:
                return self._store
            path = os.environ.get("REPRO_FACTORIZATION_STORE", "")
            if not path:
                self._env_store = None
                return None
            if self._env_store is None or str(self._env_store.directory) != path:
                from repro.service.cache_store import FileFactorizationStore

                self._env_store = FileFactorizationStore(path)
            return self._env_store

    def get_or_build(
        self,
        grid: Grid,
        omega: float,
        fingerprint: str,
        build,
        tag: str = "direct",
        store_payload=None,
    ):
        """Return the cached entry for the key, building it on a miss.

        On an in-memory miss the attached store (if any) is consulted first;
        only a store miss runs ``build``, whose result is then published back.
        ``store_payload`` (a dict of named arrays, or a zero-argument callable
        returning one — only invoked when a publish actually happens) rides
        along in the published artifact; the recycled tier uses it to persist
        reference permittivities next to their LUs.
        """
        key = self._key(grid, omega, fingerprint, tag)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                return entry
            self.stats.misses += 1
        store = self.store
        entry = None
        if store is not None:
            entry = store.load(grid, omega, fingerprint, tag)
            with self._lock:
                if entry is not None:
                    self.stats.store_hits += 1
                else:
                    self.stats.store_misses += 1
        if entry is None:
            entry = build()
            if store is not None:
                extras = store_payload() if callable(store_payload) else store_payload
                store.publish(grid, omega, fingerprint, tag, entry, extras=extras)
        self._insert(key, entry)
        return entry

    def _insert(self, key: tuple, entry) -> None:
        with self._lock:
            if key in self._entries:  # lost a build race: last insert wins
                self.stats.current_bytes -= self._sizes.pop(key, 0)
                del self._entries[key]
            while len(self._entries) >= self.maxsize:
                stale, _ = self._entries.popitem(last=False)
                self.stats.current_bytes -= self._sizes.pop(stale, 0)
                self.stats.evictions += 1
            size = _entry_nbytes(entry)
            self._entries[key] = entry
            self._sizes[key] = size
            self.stats.current_bytes += size

    def peek(self, grid: Grid, omega: float, fingerprint: str, tag: str = "direct"):
        """Return a cached entry without building or touching LRU order."""
        with self._lock:
            return self._entries.get(self._key(grid, omega, fingerprint, tag))

    def evict(self, grid: Grid, omega: float, fingerprint: str, tag: str | None = None) -> int:
        """Drop entries for one operator (all tags unless one is given)."""
        with self._lock:
            if tag is not None:
                key = self._key(grid, omega, fingerprint, tag)
                if self._entries.pop(key, None) is None:
                    return 0
                self.stats.current_bytes -= self._sizes.pop(key, 0)
                return 1
            prefix = (grid, float(omega), fingerprint)
            stale = [key for key in self._entries if key[:3] == prefix]
            for key in stale:
                del self._entries[key]
                self.stats.current_bytes -= self._sizes.pop(key, 0)
            return len(stale)

    def clear(self) -> None:
        """Drop every cached factorization and reset the statistics."""
        with self._lock:
            self._entries.clear()
            self._sizes.clear()
            self.stats = CacheStats()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


default_factorization_cache = FactorizationCache()
"""The cache shared by every engine that is not given its own.

Process-wide by design: up to ``maxsize`` factorizations stay alive for the
life of the process (sized by ``REPRO_FACTORIZATION_CACHE_SIZE``, read when a
cache is constructed — for this default, at import time).  Long-running
programs that are done solving can release the memory explicitly with
``default_factorization_cache.clear()``.
"""


# --------------------------------------------------------------------------- #
# warm-start workspace
# --------------------------------------------------------------------------- #
class SolveWorkspace:
    """Cross-iteration store of fields reused as Krylov initial guesses.

    Optimization loops solve an almost-identical system every iteration; the
    previous iteration's forward and adjoint fields are excellent initial
    guesses for the next one.  A workspace maps caller-chosen keys (the
    inverse-design backend keys on ``(spec, wavelength, device state)``) to
    the last solution stored under them.  Guesses only affect how fast a
    warm-startable engine converges — never what it converges to — so a stale
    or missing guess is always safe.

    Invalidate (:meth:`invalidate`) whenever the design jumps discontinuously,
    e.g. on a binarization beta-schedule step: the stored fields are then far
    from the new solution and would only slow convergence down.
    """

    def __init__(self):
        # key -> (last field, field before that); the pair enables secant
        # extrapolation of the smooth field trajectory an optimizer traces.
        self._fields: dict = {}
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def guess(self, key, shape: tuple[int, ...] | None = None) -> np.ndarray | None:
        """Best initial guess for ``key`` (None when absent or mis-shaped).

        With one stored field the guess is that field; with two it is the
        linear (secant) extrapolation ``2 f_k - f_{k-1}`` — optimizer steps
        are smooth, so extrapolating the trajectory lands closer to the next
        solution than replaying the last one.
        """
        entry = self._fields.get(key)
        if entry is None or (shape is not None and entry[0].shape != tuple(shape)):
            self.misses += 1
            return None
        self.hits += 1
        current, previous = entry
        if previous is None or previous.shape != current.shape:
            return current
        return 2.0 * current - previous

    def store(self, key, field: np.ndarray) -> None:
        """Remember ``field`` as the next initial guess for ``key``."""
        entry = self._fields.get(key)
        previous = entry[0] if entry is not None else None
        self._fields[key] = (np.asarray(field, dtype=complex), previous)

    def guess_stack(self, keys: list, shape: tuple[int, ...]) -> np.ndarray | None:
        """Stacked guesses for a batch of solves, zero where nothing is stored.

        Returns None when no key has a guess (a cold start), so engines can
        skip the warm-start path entirely.
        """
        guesses = [self.guess(key, shape) for key in keys]
        if all(guess is None for guess in guesses):
            return None
        x0 = np.zeros((len(keys), *shape), dtype=complex)
        for index, guess in enumerate(guesses):
            if guess is not None:
                x0[index] = guess
        return x0

    def invalidate(self) -> None:
        """Drop every stored field (design changed discontinuously)."""
        self._fields.clear()
        self.invalidations += 1

    def __len__(self) -> int:
        return len(self._fields)


# --------------------------------------------------------------------------- #
# mixed precision: reduced-precision factorizations + fp64 refinement
# --------------------------------------------------------------------------- #
#: Accepted ``precision=`` spellings and the complex factor dtype they mean.
_PRECISION_ALIASES = {
    "fp64": np.complex128,
    "double": np.complex128,
    "float64": np.complex128,
    "complex128": np.complex128,
    "fp32": np.complex64,
    "single": np.complex64,
    "float32": np.complex64,
    "complex64": np.complex64,
}


def precision_dtype(precision) -> np.dtype:
    """Normalize a precision spec to the complex dtype factorizations use.

    Accepts the ``fp64``/``fp32`` (and ``double``/``single``, real or complex
    NumPy dtype name) spellings used by engine constructors, configs and the
    CLI.  Only the two complex LAPACK precisions exist, so anything else is a
    hard error rather than a silent fp64 fallback.
    """
    if isinstance(precision, str):
        key = precision.lower().strip()
        if key not in _PRECISION_ALIASES:
            raise ValueError(
                f"unknown precision {precision!r}; expected one of "
                f"{sorted(_PRECISION_ALIASES)}"
            )
        return np.dtype(_PRECISION_ALIASES[key])
    dtype = np.dtype(precision)
    if dtype.name in _PRECISION_ALIASES:
        return np.dtype(_PRECISION_ALIASES[dtype.name])
    raise ValueError(f"unsupported factorization dtype {dtype.name!r}")


def dtype_cache_tag(base: str, dtype) -> str:
    """Cache/store tag for factorizations of ``dtype`` under a base tag.

    Full precision keeps the bare base tag (existing fp64 artifacts stay
    valid); reduced precisions get a dtype-suffixed namespace, so fp32 and
    fp64 factorizations of the same operator can never collide in the
    :class:`FactorizationCache` or in a store directory.  The dtype goes in
    the *tag*, not the fingerprint: store consumers parse raw permittivity
    fingerprints back out of artifact filenames (``list_extras``), which a
    fingerprint suffix would corrupt.
    """
    dtype = precision_dtype(dtype)
    if dtype == np.dtype(np.complex128):
        return base
    return f"{base}-{dtype.name}"


class _PrecisionLU:
    """A SuperLU factorization of the row-equilibrated reduced-precision operator.

    Wraps the fp32 SuperLU together with the fp64 row-equilibration scale:
    the factored matrix is ``D A`` with ``D = diag(1/max_j |A_ij|)``, computed
    *before* the downcast — FDFD operator entries span ~1e17–1e20, close
    enough to fp32's ~3.4e38 ceiling that pivot growth inside an unscaled
    factorization can overflow, and equilibration also tightens the
    refinement contraction rate.  ``solve`` applies the scale and casts into
    the factor dtype, so it approximates ``A^{-1} b`` directly (solving
    ``(D A) x = D b`` needs no unscaling of ``x``).

    Exposes the SuperLU artifact surface (``L``/``U``/``perm_r``/``perm_c``/
    ``shape``/``nnz``/``solve``) so :class:`FileFactorizationStore` persists
    and probe-validates it like any exact LU; the scale rides along as a
    store extra (see :func:`_factor_apply`).
    """

    __slots__ = ("lu", "row_scale", "dtype")

    from_store = False

    def __init__(self, lu: spla.SuperLU, row_scale: np.ndarray):
        self.lu = lu
        self.row_scale = np.ascontiguousarray(row_scale, dtype=np.float64)
        self.dtype = np.dtype(lu.L.dtype)

    # -- SuperLU artifact surface ------------------------------------------------
    @property
    def L(self):
        return self.lu.L

    @property
    def U(self):
        return self.lu.U

    @property
    def perm_r(self):
        return self.lu.perm_r

    @property
    def perm_c(self):
        return self.lu.perm_c

    @property
    def shape(self):
        return self.lu.shape

    @property
    def nnz(self) -> int:
        return int(self.lu.L.nnz + self.lu.U.nnz)

    @property
    def nbytes(self) -> int:
        itemsize = self.dtype.itemsize
        return int(self.nnz * (itemsize + 4) + self.row_scale.nbytes)

    def solve(self, b: np.ndarray) -> np.ndarray:
        """Reduced-precision approximation of ``A^{-1} b`` (column RHS layout)."""
        b = np.asarray(b)
        scaled = self.row_scale[:, None] * b if b.ndim == 2 else self.row_scale * b
        # SuperLU's "safe" casting refuses complex128 RHS against a complex64
        # factorization; the downcast is the point of this tier.
        return self.lu.solve(scaled.astype(self.dtype, copy=False))

    def factor_solve(self, b: np.ndarray) -> np.ndarray:
        """Back-substitution on the *equilibrated* system, no row scaling.

        This is what a store artifact reconstructs (only the factors are
        persisted; the scale rides as an extra), so the publish-time probe
        self-check compares against this, not :meth:`solve`.
        """
        return self.lu.solve(np.asarray(b).astype(self.dtype, copy=False))


def _build_precision_lu(grid: Grid, omega: float, eps_r: np.ndarray, dtype):
    """Factor ``A(eps_r)`` in ``dtype``: plain SuperLU at fp64, equilibrated below."""
    dtype = precision_dtype(dtype)
    matrix = assemble_system_matrix(grid, omega, eps_r)
    if dtype == np.dtype(np.complex128):
        return spla.splu(matrix.tocsc())
    row_max = np.abs(matrix).max(axis=1).toarray().ravel()
    row_scale = 1.0 / np.maximum(row_max, np.finfo(np.float64).tiny)
    scaled = sp.diags(row_scale) @ matrix
    return _PrecisionLU(spla.splu(scaled.astype(dtype).tocsc()), row_scale)


def _factor_apply(entry):
    """A ``b -> approx A^{-1} b`` callable from a live or store-mapped entry.

    Live :class:`_PrecisionLU` objects (and exact SuperLUs) already apply
    their own equilibration.  Store-mapped reduced-precision artifacts hold
    the *equilibrated* factors with the scale riding as the ``row_scale``
    extra, so the scale is re-applied around the mapped triangular solves
    here.  Accepts both 1-D and column-matrix right-hand sides, like
    ``SuperLU.solve``.
    """
    extras = getattr(entry, "extras", None) or {}
    row_scale = extras.get("row_scale") if getattr(entry, "from_store", False) else None
    if row_scale is None:
        return entry.solve
    row_scale = np.asarray(row_scale, dtype=np.float64).ravel()

    def apply(b: np.ndarray) -> np.ndarray:
        b = np.asarray(b)
        scaled = row_scale[:, None] * b if b.ndim == 2 else row_scale * b
        return entry.solve(scaled)

    return apply


def mixed_precision_refine(
    matrix: sp.csr_matrix,
    apply_inverse,
    rhs: np.ndarray,
    rtol: float = 1e-10,
    max_sweeps: int = 20,
    x0: np.ndarray | None = None,
    backend=None,
) -> tuple[np.ndarray, int, int]:
    """Iterative refinement: fp64 residuals, reduced-precision corrections.

    The classic Wilkinson loop over a flat RHS stack ``(n_rhs, n)``::

        r = b - A x          # true residual, fp64 operator
        x += A~^{-1} r       # correction through the reduced-precision LU

    until every ``||r|| <= rtol * ||b||``.  ``apply_inverse`` takes a column
    matrix (``(n, k)``) like ``SuperLU.solve``; the residuals are *true* fp64
    residuals (one sparse matvec per sweep) — unlike the matvec-free
    recurrence of :meth:`RecycledEngine._refine_solve`, which is only valid
    when corrections come from an exact fp64 LU.  Dense vector arithmetic
    runs on the array backend (``backend``, default process backend): the
    NumPy path is literal NumPy at zero conversion cost, while GPU backends
    keep the iterate/residual stacks on device between the host-side sparse
    calls.

    Returns ``(x, sweeps, back_substitutions)``.  Raises ``RuntimeError``
    when refinement stops contracting or the sweep budget runs out — a
    reduced-precision tier must fail loudly, never return silently degraded
    fields.
    """
    if not isinstance(backend, array_backend.ArrayBackend):
        backend = array_backend.get_backend(backend)
    xp = backend.xp
    flat = np.asarray(rhs, dtype=np.complex128)
    if flat.ndim != 2:
        raise ValueError(f"rhs must be a flat stack (n_rhs, n); got shape {flat.shape}")
    b_norms = np.linalg.norm(flat, axis=1)
    tol = float(rtol) * np.maximum(b_norms, np.finfo(np.float64).tiny)
    if x0 is None:
        x = np.zeros_like(flat)
        residual = flat.copy()
    else:
        x = np.array(x0, dtype=np.complex128).reshape(flat.shape)
        residual = flat - (matrix @ x.T).T
    norms = np.linalg.norm(residual, axis=1)
    sweeps = 0
    back_substitutions = 0
    while True:
        active = norms > tol
        if not active.any():
            return x, sweeps, back_substitutions
        if sweeps >= max_sweeps:
            raise RuntimeError(
                f"mixed-precision refinement did not reach rtol={rtol} in "
                f"{max_sweeps} sweeps (worst relative residual "
                f"{float(np.max(norms / np.maximum(b_norms, 1e-300))):.3e})"
            )
        correction = np.asarray(apply_inverse(residual[active].T)).T
        # Dense axpy on the backend namespace; host<->device bridging is the
        # identity for NumPy.
        updated = xp.add(
            backend.asarray(x[active]), backend.asarray(correction, dtype=np.complex128)
        )
        x[active] = backend.to_numpy(updated)
        residual[active] = flat[active] - (matrix @ x[active].T).T
        new_norms = backend.to_numpy(
            xp.linalg.norm(backend.asarray(residual[active]), None, 1)
        )
        if np.all(new_norms >= norms[active]) and np.any(new_norms > tol[active]):
            raise RuntimeError(
                "mixed-precision refinement stopped contracting "
                f"(residual {float(new_norms.max()):.3e}); the reduced-precision "
                "factorization does not precondition this operator"
            )
        norms[active] = new_norms
        back_substitutions += int(active.sum())
        sweeps += 1


# --------------------------------------------------------------------------- #
# engines
# --------------------------------------------------------------------------- #
_FIDELITY_TOKENS = itertools.count()


class SolverEngine:
    """Interface of a fidelity tier: batched linear solves of ``A(eps) x = b``.

    ``solve_batch`` receives the *full* right-hand side stack (any ``i omega``
    source scaling is the caller's business), so the same call serves forward
    solves (``b = i omega J``), adjoint solves (``b = dF/dEz``; the operator is
    complex symmetric, ``A^T = A``) and normalization runs.

    Examples
    --------
    Engines are usually selected by registry name at a call site::

        sim = Simulation(grid, eps_r, wavelength, ports, engine="iterative")
        problem = InverseDesignProblem(device, engine="recycled")
        config = GeneratorConfig(engine={"low": "iterative", "high": "direct"})

    or driven directly — one factorization, many right-hand sides::

        engine = make_engine("direct")
        fields = engine.solve_batch(grid, omega, eps_r, rhs_stack)  # (n, nx, ny)

    A new backend becomes a registry-wide fidelity tier in one call::

        register_engine("mytier", MyEngine)   # Simulation(engine="mytier") works
    """

    name: str = "abstract"

    #: Whether ``solve_batch``'s ``x0`` initial guesses can speed this engine
    #: up.  Callers use it to decide whether threading a
    #: :class:`SolveWorkspace` through their solves is worth the bookkeeping.
    supports_warm_start: bool = False

    @property
    def fidelity_signature(self) -> tuple:
        """Hashable token identifying everything that shapes this engine's results.

        Result caches (e.g. the process-wide normalization cache) key on this:
        engines with equal signatures may share solve *results*.  The default
        is per-instance (a monotonic token — never recycled, unlike ``id()``),
        which is always safe; engines whose results are fully determined by
        their parameters override it so equivalent instances share.
        """
        token = getattr(self, "_fidelity_token", None)
        if token is None:
            token = self._fidelity_token = next(_FIDELITY_TOKENS)
        return (self.name, token)

    def solve_batch(
        self,
        grid: Grid,
        omega: float,
        eps_r: np.ndarray,
        rhs: np.ndarray,
        fingerprint: str | None = None,
        x0: np.ndarray | None = None,
    ) -> np.ndarray:
        """Solve ``A(eps_r) x = b`` for a stack of right-hand sides.

        Parameters
        ----------
        grid, omega:
            Discretization and angular frequency defining the operator.
        eps_r:
            Grid-shaped relative permittivity (real or complex).
        rhs:
            Right-hand sides, shape ``(n_rhs, nx, ny)`` (complex).
        fingerprint:
            Pre-computed :func:`eps_fingerprint` of ``eps_r``; computed on the
            fly when omitted.  Callers that mutate permittivities in place are
            responsible for passing an up-to-date fingerprint.
        x0:
            Optional stack of initial guesses (same shape as ``rhs``) for
            engines with ``supports_warm_start``; exact engines ignore it.
            Guesses influence convergence speed only, never the solution.

        Returns
        -------
        np.ndarray
            Solution stack of the same shape as ``rhs``.
        """
        raise NotImplementedError

    # -- shared plumbing --------------------------------------------------------
    @staticmethod
    def _check_batch(grid: Grid, eps_r: np.ndarray, rhs: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        eps_r = np.asarray(eps_r)
        if eps_r.shape != grid.shape:
            raise ValueError(f"eps_r shape {eps_r.shape} does not match grid {grid.shape}")
        rhs = np.asarray(rhs, dtype=complex)
        if rhs.ndim != 3 or rhs.shape[1:] != grid.shape:
            raise ValueError(
                f"rhs must be a stack shaped (n, {grid.nx}, {grid.ny}); got {rhs.shape}"
            )
        return eps_r, rhs


class DirectEngine(SolverEngine):
    """Exact sparse direct solves (SuperLU), factorize-once / solve-many.

    All right-hand sides of a batch are solved in a single
    ``lu.solve`` call on a 2-D RHS matrix, and the factorization itself is
    shared across batches (and across engine instances using the same cache).
    """

    name = "direct"

    def __init__(self, cache: FactorizationCache | None = None):
        self.cache = cache if cache is not None else default_factorization_cache

    @property
    def fidelity_signature(self) -> tuple:
        # Exact solves: results depend only on the operator, so every exact
        # engine (direct or recycled) may share cached results.
        return ("exact",)

    def factorize(
        self, grid: Grid, omega: float, eps_r: np.ndarray, fingerprint: str | None = None
    ) -> spla.SuperLU:
        """LU factorization of ``A(eps_r)``, shared through the cache."""
        if fingerprint is None:
            fingerprint = eps_fingerprint(eps_r)
        return self.cache.get_or_build(
            grid,
            omega,
            fingerprint,
            lambda: spla.splu(assemble_system_matrix(grid, omega, eps_r).tocsc()),
            tag="direct",
        )

    def solve_batch(self, grid, omega, eps_r, rhs, fingerprint=None, x0=None):
        eps_r, rhs = self._check_batch(grid, eps_r, rhs)
        lu = self.factorize(grid, omega, eps_r, fingerprint)
        # One back-substitution on an (n_points, n_rhs) matrix.  Exact solves
        # have nothing to gain from an initial guess; x0 is accepted (and
        # ignored) so call sites can thread warm starts engine-agnostically.
        solutions = lu.solve(rhs.reshape(rhs.shape[0], -1).T)
        return np.ascontiguousarray(solutions.T).reshape(rhs.shape)


class IterativeEngine(SolverEngine):
    """Approximate Krylov solves preconditioned with an incomplete LU.

    The cheap low-fidelity tier: the ILU factorization is much sparser (and
    faster to compute) than the exact LU, and the Krylov iteration stops at a
    configurable residual tolerance.  The preconditioner is cached exactly
    like the direct factorization, so batches still pay assembly and ILU once.
    """

    name = "iterative"
    supports_warm_start = True

    def __init__(
        self,
        method: str = "bicgstab",
        rtol: float = 1e-8,
        maxiter: int = 2000,
        drop_tol: float = 1e-5,
        fill_factor: float = 20.0,
        cache: FactorizationCache | None = None,
    ):
        if method not in ("bicgstab", "gmres"):
            raise ValueError(f"unknown Krylov method {method!r}; expected bicgstab or gmres")
        self.method = method
        self.rtol = float(rtol)
        self.maxiter = int(maxiter)
        self.drop_tol = float(drop_tol)
        self.fill_factor = float(fill_factor)
        self.cache = cache if cache is not None else default_factorization_cache

    @property
    def fidelity_signature(self) -> tuple:
        # Approximate solves: results depend on the Krylov configuration, so
        # only identically-configured iterative engines may share them.
        return (self.name, self.method, self.rtol, self.maxiter)

    def _prepare(self, grid, omega, eps_r, fingerprint):
        if fingerprint is None:
            fingerprint = eps_fingerprint(eps_r)

        def build():
            matrix = assemble_system_matrix(grid, omega, eps_r).tocsc()
            ilu = spla.spilu(matrix, drop_tol=self.drop_tol, fill_factor=self.fill_factor)
            return matrix, ilu

        return self.cache.get_or_build(grid, omega, fingerprint, build, tag="iterative")

    def solve_batch(self, grid, omega, eps_r, rhs, fingerprint=None, x0=None):
        eps_r, rhs = self._check_batch(grid, eps_r, rhs)
        matrix, ilu = self._prepare(grid, omega, eps_r, fingerprint)
        preconditioner = spla.LinearOperator(matrix.shape, ilu.solve, dtype=complex)
        krylov = spla.bicgstab if self.method == "bicgstab" else spla.gmres
        solutions = np.empty_like(rhs)
        for index, b in enumerate(rhs.reshape(rhs.shape[0], -1)):
            guess = None if x0 is None else np.asarray(x0[index], dtype=complex).ravel()
            x, info = krylov(
                matrix, b, x0=guess, rtol=self.rtol, maxiter=self.maxiter, M=preconditioner
            )
            if info > 0:
                raise RuntimeError(
                    f"{self.method} did not converge to rtol={self.rtol} within "
                    f"{self.maxiter} iterations (rhs {index})"
                )
            if info < 0:
                raise RuntimeError(f"{self.method} failed with illegal input (info={info})")
            solutions[index] = x.reshape(grid.shape)
        return solutions


@dataclass
class RefineStats(StatsCounters):
    """What a :class:`RefinedEngine` actually did, for tests and benchmarks."""

    factorizations: int = 0
    solves: int = 0
    sweeps: int = 0
    back_substitutions: int = 0


class RefinedEngine(SolverEngine):
    """Mixed-precision tier: reduced-precision LU, fp64 iterative refinement.

    The factorization — the expensive, memory-bound step of a direct solve —
    runs in complex64 (on a row-equilibrated operator, see
    :class:`_PrecisionLU`), which halves factor memory and substantially cuts
    factorization time even on CPU.  Full fp64 accuracy is then recovered by
    :func:`mixed_precision_refine`: each sweep is one multi-RHS fp32
    back-substitution plus one fp64 sparse matvec, and the loop terminates on
    the *true* fp64 relative residual, so results match :class:`DirectEngine`
    to ``rtol`` — a converged-or-raise contract, never silent fp32 fields.

    This is the CPU template the future GPU tier reuses: the dense refinement
    arithmetic already routes through the array-backend seam
    (:mod:`repro.utils.backend`, the ``backend=`` knob), and swapping the
    host SuperLU calls for device triangular solves is the only missing
    piece.  ``precision="fp64"`` degenerates to an exact direct solve (the
    first sweep's residual meets any reasonable ``rtol``), which is what
    makes the precision knob safe to plumb through configs unconditionally.

    Factorizations live in the shared :class:`FactorizationCache` under the
    dtype-suffixed tag (``"refined-complex64"``), so fp32 and fp64 LUs of the
    same operator never collide, in memory or in a
    :class:`~repro.service.FileFactorizationStore` directory.
    """

    name = "refined"
    supports_warm_start = True

    def __init__(
        self,
        precision: str = "fp32",
        rtol: float = 1e-10,
        max_sweeps: int = 20,
        backend=None,
        cache: FactorizationCache | None = None,
    ):
        self.dtype = precision_dtype(precision)
        self.rtol = float(rtol)
        self.max_sweeps = int(max_sweeps)
        self.backend = (
            backend
            if isinstance(backend, array_backend.ArrayBackend)
            else array_backend.get_backend(backend)
        )
        self.cache = cache if cache is not None else default_factorization_cache
        self.stats = RefineStats()
        self._tag = dtype_cache_tag("refined", self.dtype)

    @property
    def fidelity_signature(self) -> tuple:
        # Refined solves are rtol-converged in fp64: results depend on the
        # factor dtype and the refinement tolerance, nothing per-instance.
        return (self.name, self.dtype.name, self.rtol)

    def factorize(
        self, grid: Grid, omega: float, eps_r: np.ndarray, fingerprint: str | None = None
    ):
        """The reduced-precision LU, shared (and persisted) through the cache."""
        if fingerprint is None:
            fingerprint = eps_fingerprint(eps_r)
        built: list = []

        def build():
            self.stats.factorizations += 1
            built.append(_build_precision_lu(grid, omega, eps_r, self.dtype))
            return built[-1]

        def payload():
            # Only invoked when a publish follows a fresh build; the
            # equilibration scale must travel with the equilibrated factors.
            if built and isinstance(built[-1], _PrecisionLU):
                return {"row_scale": built[-1].row_scale}
            return None

        return self.cache.get_or_build(
            grid, omega, fingerprint, build, tag=self._tag, store_payload=payload
        )

    def solve_batch(self, grid, omega, eps_r, rhs, fingerprint=None, x0=None):
        eps_r, rhs = self._check_batch(grid, eps_r, rhs)
        if fingerprint is None:
            fingerprint = eps_fingerprint(eps_r)
        entry = self.factorize(grid, omega, eps_r, fingerprint)
        matrix = assemble_system_matrix(grid, omega, eps_r)
        flat = rhs.reshape(rhs.shape[0], -1)
        guess = None if x0 is None else np.asarray(x0, dtype=complex).reshape(flat.shape)
        x, sweeps, back_substitutions = mixed_precision_refine(
            matrix,
            _factor_apply(entry),
            flat,
            rtol=self.rtol,
            max_sweeps=self.max_sweeps,
            x0=guess,
            backend=self.backend,
        )
        self.stats.solves += rhs.shape[0]
        self.stats.sweeps += sweeps
        self.stats.back_substitutions += back_substitutions
        return x.reshape(rhs.shape)


@dataclass
class RecycleStats(StatsCounters):
    """What a :class:`RecycledEngine` actually did, for tests and benchmarks."""

    factorizations: int = 0
    exact_solves: int = 0
    recycled_solves: int = 0
    krylov_iterations: int = 0
    fallbacks: int = 0


class _RecycledReference:
    """A frozen permittivity snapshot whose exact LU preconditions nearby solves."""

    __slots__ = ("fingerprint", "eps", "eps_norm", "last_iterations")

    def __init__(self, fingerprint: str, eps: np.ndarray):
        self.fingerprint = fingerprint
        self.eps = np.array(eps, copy=True)
        self.eps_norm = float(np.linalg.norm(self.eps.ravel()))
        self.last_iterations = 0.0


class RecycledEngine(SolverEngine):
    """Exact-LU-preconditioned Krylov solves recycled across nearby operators.

    The optimization-loop tier.  Every Adam step of an inverse-design run
    changes ``eps_r``, so content-keyed factorization caching never hits and
    each iteration would pay a fresh SuperLU factorization.  But consecutive
    operators differ only on the diagonal (``A(eps + d) = A(eps) +
    omega^2 eps0 diag(d)``), which makes the *previous* factorization an
    excellent preconditioner.  The default ``method="auto"`` solve chain is

    1. diagonal-update iterative refinement (:meth:`_refine_solve`) — each
       sweep is one back-substitution against the reference LU plus an
       elementwise product (the diagonal structure of the perturbation makes
       the residual recurrence matvec-free), vectorized over the RHS stack;
    2. BiCGStab/GMRES preconditioned with the same reference LU when
       refinement does not contract (each Krylov iteration costs matvecs and
       back-substitutions, but converges for any drift the LU still roughly
       preconditions);
    3. refactorization when both fail — so results are always converged to
       ``rtol`` relative residual, or exact.

    Per ``(grid, omega)`` the engine keeps a small LRU of reference
    permittivities (so e.g. the design operator and the constant normalization
    waveguide recycle independently instead of thrashing one slot).  A solve

    * whose fingerprint matches a reference exactly is a pure (exact)
      back-substitution,
    * whose nearest reference is within ``drift_threshold`` (relative L2
      ``||eps - eps_ref|| / ||eps_ref||``) and whose last recycled solve
      stayed under ``max_krylov`` inner iterations (refinement sweeps or
      Krylov iterations, whichever ran — an inner iteration costs roughly one
      back-substitution, so this is the knob trading per-solve iteration work
      against refactorization frequency) is recycled,
    * otherwise triggers a refactorization: the current permittivity becomes a
      new reference and the batch is solved exactly against its fresh LU.

    A recycled solve that fails to converge falls back to refactorization, so
    results are always converged to ``rtol`` (or exact).  Warm starts
    (``x0``, threaded from a :class:`SolveWorkspace`) cut the iteration count
    further.  Reference LUs live in the shared :class:`FactorizationCache`
    under the ``"recycled"`` tag, so ``Simulation.set_permittivity`` eviction
    and cache-size limits apply to them like to any other factorization.

    ``precision="fp32"`` factors the reference LUs in complex64 (see
    :class:`RefinedEngine`): cheaper and smaller factorizations at the cost
    of extra refinement sweeps, with every path still converging on the true
    fp64 residual to ``rtol`` — exact-fingerprint hits included, which are a
    single back-substitution only at full precision.  fp32 references are
    cached and persisted under a dtype-suffixed tag so they never collide
    with fp64 ones.
    """

    name = "recycled"
    supports_warm_start = True

    def __init__(
        self,
        method: str = "auto",
        rtol: float = 1e-6,
        maxiter: int = 200,
        max_sweeps: int = 16,
        drift_threshold: float = 0.1,
        max_krylov: int = 6,
        max_references: int = 4,
        precision: str = "fp64",
        cache: FactorizationCache | None = None,
    ):
        if method not in ("auto", "bicgstab", "gmres"):
            raise ValueError(
                f"unknown method {method!r}; expected auto, bicgstab or gmres"
            )
        if max_references < 1:
            raise ValueError(f"max_references must be at least 1, got {max_references}")
        self.method = method
        self.rtol = float(rtol)
        self.maxiter = int(maxiter)
        self.max_sweeps = int(max_sweeps)
        self.drift_threshold = float(drift_threshold)
        self.max_krylov = int(max_krylov)
        self.max_references = int(max_references)
        self.dtype = precision_dtype(precision)
        self._tag = dtype_cache_tag("recycled", self.dtype)
        self.cache = cache if cache is not None else default_factorization_cache
        self._references: dict[tuple, OrderedDict[str, _RecycledReference]] = {}
        self._scratch: dict[tuple, sp.csr_matrix] = {}
        self.stats = RecycleStats()

    @property
    def fidelity_signature(self) -> tuple:
        # Recycled solves are exact on reference hits but rtol-converged in
        # between; identically-configured recycled engines may share results.
        # The factor dtype extends the signature only off the fp64 default,
        # so existing fp64 result-cache keys stay stable.
        if self.dtype == np.dtype(np.complex128):
            return (self.name, self.method, self.rtol)
        return (self.name, self.method, self.rtol, self.dtype.name)

    # -- reference bookkeeping --------------------------------------------------
    def _lu(self, grid: Grid, omega: float, reference: _RecycledReference):
        """The reference LU, shared (and evictable) through the cache.

        Counting factorizations here (not in :meth:`_refactorize`) keeps the
        stats truthful when an evicted reference LU has to be rebuilt.
        """
        built: list = []

        def build():
            self.stats.factorizations += 1
            built.append(_build_precision_lu(grid, omega, reference.eps, self.dtype))
            return built[-1]

        def payload():
            # The reference permittivity travels with the published LU so
            # other processes can adopt the reference itself (see
            # warm_from_store); reduced-precision factors also need their
            # equilibration scale.
            extras = {"eps": reference.eps}
            if built and isinstance(built[-1], _PrecisionLU):
                extras["row_scale"] = built[-1].row_scale
            return extras

        return self.cache.get_or_build(
            grid,
            omega,
            reference.fingerprint,
            build,
            tag=self._tag,
            store_payload=payload,
        )

    def warm_from_store(self, grid: Grid, omega: float, limit: int | None = None) -> int:
        """Adopt recycled references other processes published to the store.

        Reads the reference permittivities (newest first) that ride along in
        ``"recycled"``-tagged artifacts of this ``(grid, omega)`` and installs
        them as local references, up to ``limit`` (default ``max_references``)
        and never evicting existing ones.  The heavy LU payloads are *not*
        read here — they memory-map lazily through the cache fall-through when
        a reference is first solved against.  Returns the number adopted;
        0 when no store is attached.  This is the cross-process version of the
        warm-up an optimization loop gets for free in-process: a fresh worker
        starts recycling immediately instead of refactorizing first.
        """
        store = getattr(self.cache, "store", None)
        if store is None:
            return 0
        references = self._references.setdefault((grid, float(omega)), OrderedDict())
        budget = self.max_references if limit is None else int(limit)
        adopted = 0
        for fingerprint, eps in store.list_extras(
            grid, omega, tag=self._tag, name="eps", limit=budget
        ):
            if fingerprint in references or len(references) >= self.max_references:
                continue
            eps = np.asarray(eps).reshape(grid.shape)
            reference = _RecycledReference(fingerprint, eps)
            # Adopted references go to the cold end of the LRU: locally-made
            # references (if any) describe this process's trajectory better.
            references[fingerprint] = reference
            references.move_to_end(fingerprint, last=False)
            adopted += 1
            if adopted >= budget:
                break
        return adopted

    @staticmethod
    def _nearest_reference(
        references: OrderedDict[str, _RecycledReference], eps_r: np.ndarray
    ) -> tuple[_RecycledReference | None, float]:
        best, best_drift = None, float("inf")
        flat = eps_r.ravel()
        for reference in references.values():
            drift = float(np.linalg.norm(flat - reference.eps.ravel()))
            drift /= max(reference.eps_norm, 1e-300)
            if drift < best_drift:
                best, best_drift = reference, drift
        return best, best_drift

    def _system_matrix(self, grid: Grid, omega: float, eps_r: np.ndarray) -> sp.csr_matrix:
        """The current operator, diagonal refreshed in place per solve."""
        key = (grid, float(omega))
        scratch = self._scratch.get(key)
        if scratch is None:
            self._scratch[key] = scratch = assemble_system_matrix(grid, omega, eps_r)
            return scratch
        return update_system_diagonal(scratch, grid, omega, eps_r)

    @staticmethod
    def _back_substitute(lu: spla.SuperLU, rhs: np.ndarray) -> np.ndarray:
        solutions = lu.solve(rhs.reshape(rhs.shape[0], -1).T)
        return np.ascontiguousarray(solutions.T).reshape(rhs.shape)

    def _reference_solve(
        self, grid: Grid, omega: float, reference: _RecycledReference, rhs: np.ndarray
    ) -> np.ndarray:
        """Solve at the reference permittivity itself against its own LU.

        At fp64 this is one exact back-substitution.  With a reduced-precision
        reference LU a bare back-substitution only carries fp32 accuracy, so
        the solution is refined against the true fp64 operator to ``rtol`` —
        the contract (converged or exact) is precision-independent.
        """
        entry = self._lu(grid, omega, reference)
        if self.dtype == np.dtype(np.complex128):
            return self._back_substitute(entry, rhs)
        matrix = self._system_matrix(grid, omega, reference.eps)
        flat = rhs.reshape(rhs.shape[0], -1)
        x, _, back_substitutions = mixed_precision_refine(
            matrix,
            _factor_apply(entry),
            flat,
            rtol=self.rtol,
            max_sweeps=self.max_sweeps,
        )
        self.stats.krylov_iterations += back_substitutions
        return x.reshape(rhs.shape)

    def _refactorize(
        self,
        references: OrderedDict[str, _RecycledReference],
        grid: Grid,
        omega: float,
        eps_r: np.ndarray,
        fingerprint: str,
        rhs: np.ndarray,
    ) -> np.ndarray:
        reference = _RecycledReference(fingerprint, eps_r)
        references[fingerprint] = reference
        while len(references) > self.max_references:
            stale_fp, _ = references.popitem(last=False)
            self.cache.evict(grid, omega, stale_fp, tag=self._tag)
        return self._reference_solve(grid, omega, reference, rhs)

    def _refine_solve(
        self,
        grid: Grid,
        omega: float,
        eps_r: np.ndarray,
        rhs: np.ndarray,
        reference: _RecycledReference,
        x0: np.ndarray | None,
    ) -> tuple[np.ndarray | None, float]:
        """Diagonal-update iterative refinement against the reference LU.

        ``A = A_ref + diag(delta)`` with ``delta = omega^2 eps0 (eps - eps_ref)``,
        so the stationary iteration ``x += A_ref^{-1} r`` has the residual
        recurrence ``r_{k+1} = -delta * (A_ref^{-1} r_k)``: each sweep costs
        one back-substitution plus an elementwise product — no matvec, no
        Krylov bookkeeping — and the whole right-hand-side stack sweeps
        together through one multi-RHS ``lu.solve``.  Converges linearly at
        rate ``rho(A_ref^{-1} diag(delta))``; a non-contracting sweep or the
        sweep cap reports failure (``(None, inf)``) so the caller can fall
        back to Krylov or refactorize.  Solutions are converged to
        ``||b - A x|| <= rtol * ||b||`` — same contract as the Krylov path.

        The matvec-free recurrence is only valid when corrections come from
        an *exact* fp64 reference LU; with a reduced-precision reference the
        correction carries its own factorization error, so each sweep instead
        recomputes the true fp64 residual (one sparse matvec per sweep, as in
        :func:`mixed_precision_refine`).
        """
        lu = self._lu(grid, omega, reference)
        apply_inverse = _factor_apply(lu)
        exact_lu = self.dtype == np.dtype(np.complex128)
        matrix = None
        if not exact_lu or x0 is not None:
            matrix = self._system_matrix(grid, omega, eps_r)
        delta = (
            omega**2 * EPSILON_0 * (eps_r.ravel() - reference.eps.ravel())
        ).astype(complex)
        flat_rhs = rhs.reshape(rhs.shape[0], -1)
        b_norms = np.linalg.norm(flat_rhs, axis=1)
        tol = self.rtol * b_norms
        if x0 is None:
            x = np.zeros_like(flat_rhs)
            residual = flat_rhs.copy()
        else:
            x = np.asarray(x0, dtype=complex).reshape(flat_rhs.shape).copy()
            residual = flat_rhs - (matrix @ x.T).T
        residual_norms = np.linalg.norm(residual, axis=1)
        sweeps = 0
        back_substitutions = 0
        while True:
            active = residual_norms > tol
            if not active.any():
                break
            if sweeps >= self.max_sweeps:
                return None, float("inf")
            correction = np.asarray(apply_inverse(residual[active].T)).T
            back_substitutions += int(active.sum())
            x[active] += correction
            if exact_lu:
                new_residual = -delta[None, :] * correction
            else:
                new_residual = flat_rhs[active] - (matrix @ x[active].T).T
            new_norms = np.linalg.norm(new_residual, axis=1)
            if np.any(new_norms >= residual_norms[active]):
                # Not contracting: the reference no longer preconditions this
                # operator.  Report failure so the caller can escalate.
                return None, float("inf")
            residual[active] = new_residual
            residual_norms[active] = new_norms
            sweeps += 1
        self.stats.krylov_iterations += back_substitutions
        return x.reshape(rhs.shape), float(sweeps)

    def _krylov_solve(
        self,
        grid: Grid,
        omega: float,
        eps_r: np.ndarray,
        rhs: np.ndarray,
        reference: _RecycledReference,
        x0: np.ndarray | None,
    ) -> tuple[np.ndarray | None, float]:
        """LU-preconditioned BiCGStab/GMRES; ``(None, inf)`` on non-convergence."""
        matrix = self._system_matrix(grid, omega, eps_r)
        lu = self._lu(grid, omega, reference)
        preconditioner = spla.LinearOperator(matrix.shape, _factor_apply(lu), dtype=complex)
        method = "gmres" if self.method == "gmres" else "bicgstab"
        solutions = np.empty_like(rhs)
        worst = 0
        for index, b in enumerate(rhs.reshape(rhs.shape[0], -1)):
            iterations = [0]

            def callback(_):
                iterations[0] += 1

            guess = None if x0 is None else np.asarray(x0[index], dtype=complex).ravel()
            if method == "bicgstab":
                x, info = spla.bicgstab(
                    matrix, b, x0=guess, rtol=self.rtol, maxiter=self.maxiter,
                    M=preconditioner, callback=callback,
                )
            else:
                x, info = spla.gmres(
                    matrix, b, x0=guess, rtol=self.rtol, maxiter=self.maxiter,
                    M=preconditioner, callback=callback, callback_type="pr_norm",
                )
            if info != 0:
                return None, float("inf")
            solutions[index] = x.reshape(grid.shape)
            self.stats.krylov_iterations += iterations[0]
            worst = max(worst, iterations[0])
        return solutions, float(worst)

    def _recycled_solve(
        self,
        grid: Grid,
        omega: float,
        eps_r: np.ndarray,
        rhs: np.ndarray,
        reference: _RecycledReference,
        x0: np.ndarray | None,
    ) -> tuple[np.ndarray | None, float]:
        """The recycled path: cheap refinement first, Krylov as the fallback."""
        if self.method == "auto":
            solutions, iterations = self._refine_solve(
                grid, omega, eps_r, rhs, reference, x0
            )
            if solutions is not None:
                return solutions, iterations
        return self._krylov_solve(grid, omega, eps_r, rhs, reference, x0)

    # -- the solve ---------------------------------------------------------------
    def solve_batch(self, grid, omega, eps_r, rhs, fingerprint=None, x0=None):
        eps_r, rhs = self._check_batch(grid, eps_r, rhs)
        if fingerprint is None:
            fingerprint = eps_fingerprint(eps_r)
        references = self._references.setdefault((grid, float(omega)), OrderedDict())

        reference = references.get(fingerprint)
        if reference is not None:
            # Exact fingerprint match (e.g. the unchanged normalization
            # waveguide): a pure back-substitution at fp64 (exact like
            # DirectEngine), refined to rtol at reduced precision.
            references.move_to_end(fingerprint)
            self.stats.exact_solves += 1
            return self._reference_solve(grid, omega, reference, rhs)

        reference, drift = self._nearest_reference(references, eps_r)
        if (
            reference is None
            or drift > self.drift_threshold
            or reference.last_iterations > self.max_krylov
        ):
            return self._refactorize(references, grid, omega, eps_r, fingerprint, rhs)

        solutions, iterations = self._recycled_solve(grid, omega, eps_r, rhs, reference, x0)
        if solutions is None:
            # Neither refinement nor Krylov converged: the reference no longer
            # preconditions well.  Refactorize at the current permittivity —
            # the result stays exact.
            self.stats.fallbacks += 1
            reference.last_iterations = float("inf")
            return self._refactorize(references, grid, omega, eps_r, fingerprint, rhs)
        reference.last_iterations = iterations
        self.stats.recycled_solves += 1
        return solutions


class CountingEngine(SolverEngine):
    """Test/diagnostic wrapper that records every solve going through it.

    ``factorizations`` maps permittivity fingerprints to the number of times
    the inner engine actually built a factorization for them;
    ``solve_log`` records ``(fingerprint, n_rhs)`` per ``solve_batch`` call.
    Used by the test-suite to prove factorize-once behaviour end to end.
    """

    name = "counting"

    def __init__(self, inner: SolverEngine | None = None):
        self.inner = inner if inner is not None else DirectEngine(cache=FactorizationCache())
        self.solve_log: list[tuple[str, int]] = []
        self.factorizations: dict[str, int] = {}

    @property
    def supports_warm_start(self) -> bool:
        return self.inner.supports_warm_start

    @property
    def fidelity_signature(self) -> tuple:
        # Per-instance on purpose: counting wrappers exist to observe their
        # own solves, so process-wide result caches must never serve a hit
        # recorded through a *different* wrapper (or none) as this one's.
        token = getattr(self, "_fidelity_token", None)
        if token is None:
            token = self._fidelity_token = next(_FIDELITY_TOKENS)
        return ("counting", token, *self.inner.fidelity_signature)

    def solve_batch(self, grid, omega, eps_r, rhs, fingerprint=None, x0=None):
        if fingerprint is None:
            fingerprint = eps_fingerprint(eps_r)
        rhs = np.asarray(rhs, dtype=complex)
        self.solve_log.append((fingerprint, rhs.shape[0]))
        cache = getattr(self.inner, "cache", None)
        misses_before = cache.stats.misses if cache is not None else 0
        result = self.inner.solve_batch(grid, omega, eps_r, rhs, fingerprint=fingerprint, x0=x0)
        if cache is not None and cache.stats.misses > misses_before:
            self.factorizations[fingerprint] = self.factorizations.get(fingerprint, 0) + 1
        return result


# --------------------------------------------------------------------------- #
# registry
# --------------------------------------------------------------------------- #
_ENGINE_FACTORIES: dict[str, object] = {}


def register_engine(name: str, factory) -> None:
    """Register an engine factory under a name (used by ``make_engine``)."""
    _ENGINE_FACTORIES[name.lower().strip()] = factory


def available_engines() -> list[str]:
    """Names accepted by :func:`make_engine` / ``Simulation(engine=...)``."""
    return sorted(_ENGINE_FACTORIES)


def split_engine_name(name: str) -> tuple[str, str | None]:
    """Split an engine name into ``(registry key, optional ':<spec>' suffix)``.

    ``"neural:model.npz"`` selects the ``"neural"`` factory with the
    checkpoint path ``"model.npz"``.  The base name is normalized the way the
    registry normalizes names; the suffix keeps its case (it is usually a
    filesystem path).
    """
    base, sep, spec = name.strip().partition(":")
    return base.lower().strip(), (spec.strip() if sep else None)


def load_engine_tiers() -> None:
    """Import every optional package that registers engine tiers.

    The surrogate package registers the "neural" tier on import, the service
    package the "service" tier and the time-domain package the "fdtd" tier;
    importing them lazily keeps plain FDFD users from paying for (or
    depending on) those stacks.  :func:`make_engine` calls this before
    reporting an unknown name, so its error message lists every tier that
    actually exists; config validators (e.g. the dataset generator) call it
    before checking names against :func:`available_engines`.
    """
    for module in (
        "repro.surrogate.neural_solver",
        "repro.service.solve_service",
        "repro.fdtd.engine",
    ):
        try:
            __import__(module)
        except ImportError:  # pragma: no cover - optional stack unavailable
            pass


def make_engine(name: str, **kwargs) -> SolverEngine:
    """Instantiate a solver engine by name.

    ``"direct"``/``"high"`` build the exact :class:`DirectEngine`,
    ``"iterative"``/``"low"``/``"bicgstab"``/``"gmres"`` the approximate
    :class:`IterativeEngine`, ``"recycled"`` the optimization-loop
    :class:`RecycledEngine`, ``"fdtd"`` the time-domain tier (registered when
    :mod:`repro.fdtd` is imported), and ``"neural"`` the surrogate engine
    (requires ``model=...``; registered when :mod:`repro.surrogate` is
    imported).  ``"neural:<checkpoint.npz>"`` loads a promoted surrogate
    checkpoint — the name form that lets the AI tier travel through configs
    and process boundaries.
    """
    key, spec = split_engine_name(name)
    if key not in _ENGINE_FACTORIES:
        load_engine_tiers()
    if key not in _ENGINE_FACTORIES:
        raise ValueError(f"unknown engine {name!r}; available: {available_engines()}")
    factory = _ENGINE_FACTORIES[key]
    if spec is not None:
        if not spec:
            raise ValueError(f"empty ':<spec>' suffix in engine name {name!r}")
        # Only factories with an explicit ``checkpoint`` parameter are
        # suffix-capable; probing the signature (instead of catching
        # TypeError around the call) keeps real errors from checkpoint
        # loading — bad paths, version-skewed kwargs — intact.
        try:
            parameters = inspect.signature(factory).parameters
        except (TypeError, ValueError):  # pragma: no cover - builtin factory
            parameters = {}
        if "checkpoint" not in parameters:
            raise ValueError(
                f"engine {key!r} does not accept a ':<checkpoint>' suffix "
                f"(got {name!r}); only the 'neural' tier is checkpoint-backed"
            )
        return factory(checkpoint=spec, **kwargs)
    return factory(**kwargs)


def resolve_engine(engine: SolverEngine | str | None, **kwargs) -> SolverEngine:
    """Normalize an engine argument: instance, registry name or None (direct).

    Objects exposing ``as_engine()`` (e.g. :class:`~repro.service.SolveService`)
    are accepted too, so a configured service drops in anywhere an engine
    does: ``Simulation(engine=my_service)``.
    """
    if engine is None:
        return DirectEngine(**kwargs)
    if isinstance(engine, str):
        return make_engine(engine, **kwargs)
    if isinstance(engine, SolverEngine):
        return engine
    as_engine = getattr(engine, "as_engine", None)
    if callable(as_engine):
        candidate = as_engine()
        if isinstance(candidate, SolverEngine):
            return candidate
    raise TypeError(f"engine must be a SolverEngine, a name or None; got {type(engine)!r}")


register_engine("direct", DirectEngine)
register_engine("superlu", DirectEngine)
register_engine("high", DirectEngine)
register_engine("iterative", IterativeEngine)
register_engine("low", IterativeEngine)
register_engine("bicgstab", lambda **kw: IterativeEngine(method="bicgstab", **kw))
register_engine("gmres", lambda **kw: IterativeEngine(method="gmres", **kw))
register_engine("recycled", RecycledEngine)
register_engine("refined", RefinedEngine)
