"""A small neural-network library built on :mod:`repro.autograd`.

It provides the layers, parameter management and optimizers needed by the
MAPS-Train surrogate models (FNO, Factorized-FNO, UNet, NeurOLight) and by the
differentiable components of the inverse-design toolkit.
"""

from repro.nn.module import Module, Parameter, Sequential, ModuleList
from repro.nn.layers import (
    Linear,
    Conv2d,
    GroupNorm,
    LayerNorm,
    ReLU,
    GELU,
    Tanh,
    Sigmoid,
    Identity,
    AvgPool2d,
    UpsampleNearest2d,
    Dropout,
)
from repro.nn.spectral import SpectralConv2d, FactorizedSpectralConv2d
from repro.nn.optim import SGD, Adam, CosineSchedule, StepSchedule
from repro.nn import init

__all__ = [
    "Module",
    "Parameter",
    "Sequential",
    "ModuleList",
    "Linear",
    "Conv2d",
    "GroupNorm",
    "LayerNorm",
    "ReLU",
    "GELU",
    "Tanh",
    "Sigmoid",
    "Identity",
    "AvgPool2d",
    "UpsampleNearest2d",
    "Dropout",
    "SpectralConv2d",
    "FactorizedSpectralConv2d",
    "SGD",
    "Adam",
    "CosineSchedule",
    "StepSchedule",
    "init",
]
