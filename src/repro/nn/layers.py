"""Standard layers: linear, convolution, normalization, activations, resampling."""

from __future__ import annotations

import numpy as np

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.utils.rng import get_rng


class Linear(Module):
    """Affine map ``y = x @ W^T + b`` applied to the last dimension."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True, rng=None):
        super().__init__()
        rng = get_rng(rng)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            init.kaiming_uniform((out_features, in_features), fan_in=in_features, rng=rng)
        )
        self.bias = Parameter(init.zeros((out_features,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight.transpose()
        if self.bias is not None:
            out = out + self.bias
        return out


class Conv2d(Module):
    """2-D convolution over ``(B, C, H, W)`` tensors."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int | str = 0,
        bias: bool = True,
        rng=None,
    ):
        super().__init__()
        rng = get_rng(rng)
        if padding == "same":
            if stride != 1:
                raise ValueError("padding='same' requires stride=1")
            padding = kernel_size // 2
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = int(padding)
        fan_in = in_channels * kernel_size * kernel_size
        self.weight = Parameter(
            init.kaiming_uniform(
                (out_channels, in_channels, kernel_size, kernel_size), fan_in=fan_in, rng=rng
            )
        )
        self.bias = Parameter(init.zeros((out_channels,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.conv2d(x, self.weight, self.bias, stride=self.stride, padding=self.padding)


class GroupNorm(Module):
    """Group normalization (batch-size independent, well suited to tiny batches)."""

    def __init__(self, num_groups: int, num_channels: int, eps: float = 1e-5):
        super().__init__()
        if num_channels % num_groups:
            raise ValueError(f"{num_channels} channels not divisible by {num_groups} groups")
        self.num_groups = num_groups
        self.num_channels = num_channels
        self.eps = eps
        self.weight = Parameter(np.ones(num_channels))
        self.bias = Parameter(np.zeros(num_channels))

    def forward(self, x: Tensor) -> Tensor:
        batch, channels, height, width = x.shape
        groups = self.num_groups
        grouped = x.reshape(batch, groups, channels // groups, height, width)
        mean = grouped.mean(axis=(2, 3, 4), keepdims=True)
        centred = grouped - mean
        var = (centred * centred).mean(axis=(2, 3, 4), keepdims=True)
        normed = centred / (var + self.eps).sqrt()
        normed = normed.reshape(batch, channels, height, width)
        scale = self.weight.reshape(1, channels, 1, 1)
        shift = self.bias.reshape(1, channels, 1, 1)
        return normed * scale + shift


class LayerNorm(Module):
    """Layer normalization over the last dimension."""

    def __init__(self, normalized_shape: int, eps: float = 1e-5):
        super().__init__()
        self.normalized_shape = normalized_shape
        self.eps = eps
        self.weight = Parameter(np.ones(normalized_shape))
        self.bias = Parameter(np.zeros(normalized_shape))

    def forward(self, x: Tensor) -> Tensor:
        mean = x.mean(axis=-1, keepdims=True)
        centred = x - mean
        var = (centred * centred).mean(axis=-1, keepdims=True)
        normed = centred / (var + self.eps).sqrt()
        return normed * self.weight + self.bias


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class GELU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.gelu()


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()


class Identity(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x


class AvgPool2d(Module):
    """Average pooling by an integer factor (kernel == stride)."""

    def __init__(self, kernel: int = 2):
        super().__init__()
        self.kernel = kernel

    def forward(self, x: Tensor) -> Tensor:
        return F.avg_pool2d(x, self.kernel)


class UpsampleNearest2d(Module):
    """Nearest-neighbour upsampling by an integer factor."""

    def __init__(self, scale: int = 2):
        super().__init__()
        self.scale = scale

    def forward(self, x: Tensor) -> Tensor:
        return F.upsample_nearest(x, self.scale)


class Dropout(Module):
    """Inverted dropout; active only in training mode."""

    def __init__(self, p: float = 0.0, rng=None):
        super().__init__()
        self.p = p
        self._rng = get_rng(rng)

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, self.training, self._rng)
