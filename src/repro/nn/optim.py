"""First-order optimizers and learning-rate schedules."""

from __future__ import annotations

import math
from typing import Iterable

import numpy as np

from repro.nn.module import Parameter


class Optimizer:
    """Base class holding a parameter list and the current learning rate."""

    def __init__(self, parameters: Iterable[Parameter], lr: float):
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = float(lr)

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-2,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                update = velocity
            else:
                update = grad
            param.data -= self.lr * update


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba) with decoupled weight decay (AdamW style)."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters, lr)
        self.betas = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step += 1
        beta1, beta2 = self.betas
        bias1 = 1.0 - beta1**self._step
        bias2 = 1.0 - beta2**self._step
        for param, m, v in zip(self.parameters, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            m *= beta1
            m += (1.0 - beta1) * grad
            v *= beta2
            v += (1.0 - beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            if self.weight_decay:
                param.data -= self.lr * self.weight_decay * param.data
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class Schedule:
    """Base class for learning-rate schedules attached to an optimizer."""

    def __init__(self, optimizer: Optimizer):
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> float:
        """Advance one epoch and return the new learning rate."""
        self.epoch += 1
        lr = self.lr_at(self.epoch)
        self.optimizer.lr = lr
        return lr

    def lr_at(self, epoch: int) -> float:
        raise NotImplementedError


class CosineSchedule(Schedule):
    """Cosine annealing from the base learning rate down to ``min_lr``."""

    def __init__(self, optimizer: Optimizer, total_epochs: int, min_lr: float = 0.0):
        super().__init__(optimizer)
        if total_epochs <= 0:
            raise ValueError("total_epochs must be positive")
        self.total_epochs = total_epochs
        self.min_lr = min_lr

    def lr_at(self, epoch: int) -> float:
        progress = min(epoch, self.total_epochs) / self.total_epochs
        return self.min_lr + 0.5 * (self.base_lr - self.min_lr) * (1.0 + math.cos(math.pi * progress))


class StepSchedule(Schedule):
    """Multiply the learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.5):
        super().__init__(optimizer)
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        self.step_size = step_size
        self.gamma = gamma

    def lr_at(self, epoch: int) -> float:
        return self.base_lr * (self.gamma ** (epoch // self.step_size))
