"""Module/parameter plumbing for the neural-network library.

:class:`Module` mirrors the familiar PyTorch interface at a much smaller
scale: automatic parameter registration through attribute assignment, recursive
traversal, train/eval flags and state-dict (de)serialization to plain NumPy
arrays for on-disk model checkpoints.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.autograd.tensor import Tensor


class Parameter(Tensor):
    """A tensor that is registered as a learnable parameter of a module."""

    def __init__(self, data, requires_grad: bool = True):
        super().__init__(data, requires_grad=requires_grad)


class Module:
    """Base class for all neural-network modules."""

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", {})
        object.__setattr__(self, "_modules", {})
        object.__setattr__(self, "training", True)

    # -- attribute-based registration -----------------------------------------
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    # -- traversal --------------------------------------------------------------
    def parameters(self) -> Iterator[Parameter]:
        """Yield all parameters of this module and its submodules."""
        for _, param in self.named_parameters():
            yield param

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        """Yield ``(dotted_name, parameter)`` pairs, depth-first."""
        for name, param in self._parameters.items():
            yield prefix + name, param
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=prefix + name + ".")

    def modules(self) -> Iterator["Module"]:
        """Yield this module and all submodules, depth-first."""
        yield self
        for module in self._modules.values():
            yield from module.modules()

    def num_parameters(self) -> int:
        """Total number of scalar parameters."""
        return sum(p.size for p in self.parameters())

    # -- train / eval -------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        for module in self.modules():
            object.__setattr__(module, "training", mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    # -- forward -------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    # -- serialization ----------------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """Return a copy of all parameter arrays keyed by dotted name."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load parameter arrays produced by :meth:`state_dict`."""
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)}, unexpected={sorted(unexpected)}"
            )
        for name, param in own.items():
            value = np.asarray(state[name], dtype=param.data.dtype)
            if value.shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for {name}: checkpoint {value.shape}, model {param.data.shape}"
                )
            param.data[...] = value

    def save(self, path: str) -> None:
        """Save the state dict to ``path`` as a compressed ``.npz`` archive."""
        np.savez_compressed(path, **self.state_dict())

    def load(self, path: str) -> None:
        """Load a state dict saved by :meth:`save`."""
        with np.load(path) as archive:
            self.load_state_dict({name: archive[name] for name in archive.files})


class Sequential(Module):
    """Run submodules in order, feeding each output into the next module."""

    def __init__(self, *layers: Module):
        super().__init__()
        self.layers = list(layers)
        for i, layer in enumerate(layers):
            setattr(self, f"layer{i}", layer)

    def forward(self, x):
        for layer in self.layers:
            x = layer(x)
        return x

    def __iter__(self):
        return iter(self.layers)

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, index: int) -> Module:
        return self.layers[index]


class ModuleList(Module):
    """Hold an ordered list of submodules (without an implicit forward)."""

    def __init__(self, modules: list[Module] | None = None):
        super().__init__()
        self._items: list[Module] = []
        for module in modules or []:
            self.append(module)

    def append(self, module: Module) -> None:
        index = len(self._items)
        self._items.append(module)
        setattr(self, f"item{index}", module)

    def __iter__(self):
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __getitem__(self, index: int) -> Module:
        return self._items[index]
