"""Weight initialization schemes."""

from __future__ import annotations

import numpy as np

from repro.utils.rng import get_rng


def xavier_uniform(shape: tuple[int, ...], fan_in: int, fan_out: int, rng=None) -> np.ndarray:
    """Glorot/Xavier uniform initialization."""
    rng = get_rng(rng)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def kaiming_uniform(shape: tuple[int, ...], fan_in: int, rng=None) -> np.ndarray:
    """He/Kaiming uniform initialization for ReLU-family activations."""
    rng = get_rng(rng)
    limit = np.sqrt(6.0 / fan_in)
    return rng.uniform(-limit, limit, size=shape)


def normal(shape: tuple[int, ...], std: float = 0.02, rng=None) -> np.ndarray:
    """Zero-mean Gaussian initialization."""
    rng = get_rng(rng)
    return rng.normal(0.0, std, size=shape)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    """All-zero initialization (biases)."""
    return np.zeros(shape)


def spectral_scale(shape: tuple[int, ...], c_in: int, rng=None) -> np.ndarray:
    """FNO spectral-weight initialization: uniform scaled by ``1/c_in``."""
    rng = get_rng(rng)
    scale = 1.0 / max(c_in, 1)
    return scale * rng.uniform(-1.0, 1.0, size=shape)
