"""Fourier-domain layers used by the neural-operator surrogates."""

from __future__ import annotations

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.utils.rng import get_rng


class SpectralConv2d(Module):
    """2-D spectral convolution (the core block of the Fourier Neural Operator).

    Complex channel-mixing weights act on the lowest ``modes`` frequencies of
    the 2-D Fourier transform of the input.  Weights are stored as separate
    real and imaginary parameters so the real-valued autograd engine can train
    them.
    """

    def __init__(self, in_channels: int, out_channels: int, modes: tuple[int, int], rng=None):
        super().__init__()
        rng = get_rng(rng)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.modes = tuple(modes)
        shape = (in_channels, out_channels, 2 * modes[0], 2 * modes[1])
        self.weight_real = Parameter(init.spectral_scale(shape, in_channels, rng=rng))
        self.weight_imag = Parameter(init.spectral_scale(shape, in_channels, rng=rng))

    def forward(self, x: Tensor) -> Tensor:
        return F.spectral_conv2d(x, self.weight_real, self.weight_imag, self.modes)


class FactorizedSpectralConv2d(Module):
    """Factorized spectral convolution (the F-FNO block).

    Instead of a dense 2-D spectral kernel, two 1-D spectral convolutions are
    applied independently along the two spatial axes and summed, which reduces
    the parameter count from ``O(m1*m2)`` to ``O(m1 + m2)`` per channel pair.
    """

    def __init__(self, in_channels: int, out_channels: int, modes: tuple[int, int], rng=None):
        super().__init__()
        rng = get_rng(rng)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.modes = tuple(modes)
        shape_h = (in_channels, out_channels, 2 * modes[0])
        shape_w = (in_channels, out_channels, 2 * modes[1])
        self.weight_h_real = Parameter(init.spectral_scale(shape_h, in_channels, rng=rng))
        self.weight_h_imag = Parameter(init.spectral_scale(shape_h, in_channels, rng=rng))
        self.weight_w_real = Parameter(init.spectral_scale(shape_w, in_channels, rng=rng))
        self.weight_w_imag = Parameter(init.spectral_scale(shape_w, in_channels, rng=rng))

    def forward(self, x: Tensor) -> Tensor:
        along_h = F.spectral_conv1d(
            x, self.weight_h_real, self.weight_h_imag, self.modes[0], axis=-2
        )
        along_w = F.spectral_conv1d(
            x, self.weight_w_real, self.weight_w_imag, self.modes[1], axis=-1
        )
        return along_h + along_w
