"""Device registry: build benchmark devices by name."""

from __future__ import annotations

from repro.devices.base import Device
from repro.devices.bend import WaveguideBend
from repro.devices.crossing import WaveguideCrossing
from repro.devices.diode import OpticalDiode
from repro.devices.kerr import KerrAllOpticalSwitch, KerrPowerLimiter
from repro.devices.mdm import ModeDemultiplexer
from repro.devices.tos import ThermoOpticSwitch
from repro.devices.wdm import WavelengthDemultiplexer

_REGISTRY: dict[str, type[Device]] = {
    "bending": WaveguideBend,
    "bend": WaveguideBend,
    "crossing": WaveguideCrossing,
    "optical_diode": OpticalDiode,
    "diode": OpticalDiode,
    "wdm": WavelengthDemultiplexer,
    "mdm": ModeDemultiplexer,
    "tos": ThermoOpticSwitch,
    "kerr_switch": KerrAllOpticalSwitch,
    "kerr_limiter": KerrPowerLimiter,
}

# Canonical names as used in the paper's tables (aliases excluded); the
# kerr_* pair extends the zoo with the nonlinear-scenario axis.
CANONICAL_DEVICES = (
    "bending",
    "crossing",
    "optical_diode",
    "mdm",
    "wdm",
    "tos",
    "kerr_switch",
    "kerr_limiter",
)


def available_devices() -> list[str]:
    """Names of the benchmark devices (canonical names, no aliases)."""
    return list(CANONICAL_DEVICES)


def make_device(name: str, fidelity: str = "low", **kwargs) -> Device:
    """Instantiate a benchmark device by name.

    Parameters
    ----------
    name:
        One of :func:`available_devices` (a few aliases such as ``"bend"`` and
        ``"diode"`` are accepted).
    fidelity:
        ``"high"`` or ``"low"`` simulation fidelity (cell size).
    kwargs:
        Forwarded to the device constructor (domain size, waveguide width, ...).
    """
    key = name.lower().strip()
    if key not in _REGISTRY:
        raise ValueError(f"unknown device {name!r}; available: {available_devices()}")
    return _REGISTRY[key](fidelity=fidelity, **kwargs)
