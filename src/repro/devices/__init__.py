"""Benchmark photonic devices of MAPS-Data.

The library covers the device families listed in the paper, from basic to
multiplexed to active:

* :class:`~repro.devices.bend.WaveguideBend` — 90-degree waveguide bend,
* :class:`~repro.devices.crossing.WaveguideCrossing` — waveguide crossing,
* :class:`~repro.devices.diode.OpticalDiode` — asymmetric-transmission device,
* :class:`~repro.devices.wdm.WavelengthDemultiplexer` — 2-channel WDM,
* :class:`~repro.devices.mdm.ModeDemultiplexer` — 2-mode MDM,
* :class:`~repro.devices.tos.ThermoOpticSwitch` — active thermo-optic switch,
* :class:`~repro.devices.kerr.KerrAllOpticalSwitch` /
  :class:`~repro.devices.kerr.KerrPowerLimiter` — Kerr nonlinear devices with
  power-sweep specs (the nonlinear-scenario axis).

Each device owns its simulation grid, background permittivity (waveguides +
cladding), a rectangular design region, ports and a list of excitation/target
specifications that define both the inverse-design objective and the
figure-of-merit labels of the dataset.
"""

from repro.devices.base import Device, DeviceGeometry, TargetSpec
from repro.devices.bend import WaveguideBend
from repro.devices.crossing import WaveguideCrossing
from repro.devices.diode import OpticalDiode
from repro.devices.wdm import WavelengthDemultiplexer
from repro.devices.mdm import ModeDemultiplexer
from repro.devices.tos import ThermoOpticSwitch
from repro.devices.kerr import KerrAllOpticalSwitch, KerrPowerLimiter
from repro.devices.factory import make_device, available_devices

__all__ = [
    "Device",
    "DeviceGeometry",
    "TargetSpec",
    "WaveguideBend",
    "WaveguideCrossing",
    "OpticalDiode",
    "WavelengthDemultiplexer",
    "ModeDemultiplexer",
    "ThermoOpticSwitch",
    "KerrAllOpticalSwitch",
    "KerrPowerLimiter",
    "make_device",
    "available_devices",
]
