"""Base classes shared by all benchmark devices.

A device is defined by:

* a simulation grid at a chosen fidelity (cell size),
* a background permittivity containing the access waveguides and cladding,
* a rectangular design region where the topology is optimized,
* ports for sources and monitors, and
* a list of :class:`TargetSpec` describing which excitation should couple into
  which output port — the specs drive both the inverse-design objective and
  the figure-of-merit labels attached to dataset samples.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.constants import DEFAULT_WAVELENGTH, EPS_SI, EPS_SIO2
from repro.fdfd.grid import Grid
from repro.fdfd.monitors import Port
from repro.fdfd.simulation import Simulation, SimulationResult

# Cell sizes (micrometres) of the two fidelity levels of MAPS-Data.
FIDELITY_DL = {"high": 0.05, "low": 0.1}


@dataclass(frozen=True)
class TargetSpec:
    """One excitation condition and its routing target.

    Attributes
    ----------
    source_port:
        Port to excite.
    source_mode:
        Guided-mode index injected at the source port.
    wavelength:
        Free-space wavelength in micrometres for this excitation.
    port_weights:
        Mapping from monitored port name to objective weight: ``+1`` for the
        wanted output, negative values penalize crosstalk ports.
    state:
        Device-state parameters for active devices (e.g. ``{"heater": 1.0}``);
        empty for passive devices.
    weight:
        Relative weight of this spec in the total figure of merit.
    """

    source_port: str
    source_mode: int = 0
    wavelength: float = DEFAULT_WAVELENGTH
    port_weights: dict[str, float] = field(default_factory=dict)
    state: dict[str, float] = field(default_factory=dict)
    weight: float = 1.0

    def monitored_ports(self) -> list[str]:
        return list(self.port_weights)


@dataclass
class DeviceGeometry:
    """Concrete geometry of a device at one fidelity level."""

    grid: Grid
    eps_background: np.ndarray
    design_slice: tuple[slice, slice]
    ports: list[Port]
    eps_core: float = EPS_SI
    eps_clad: float = EPS_SIO2

    @property
    def design_shape(self) -> tuple[int, int]:
        """Shape of the design region in grid cells."""
        sx, sy = self.design_slice
        return (sx.stop - sx.start, sy.stop - sy.start)

    def design_mask(self) -> np.ndarray:
        """Boolean mask of the design region on the full grid."""
        mask = np.zeros(self.grid.shape, dtype=bool)
        mask[self.design_slice] = True
        return mask

    def eps_with_design(self, density: np.ndarray) -> np.ndarray:
        """Insert a density pattern ``rho in [0, 1]`` into the design region.

        The permittivity interpolates linearly between cladding (``rho = 0``)
        and core (``rho = 1``), which is the standard density parametrization
        of topology optimization.
        """
        density = np.asarray(density, dtype=float)
        if density.shape != self.design_shape:
            raise ValueError(
                f"density shape {density.shape} does not match design region "
                f"{self.design_shape}"
            )
        if density.min() < -1e-9 or density.max() > 1.0 + 1e-9:
            raise ValueError("density values must lie in [0, 1]")
        eps = self.eps_background.copy()
        eps[self.design_slice] = self.eps_clad + (self.eps_core - self.eps_clad) * np.clip(
            density, 0.0, 1.0
        )
        return eps


class Device:
    """Base class for benchmark devices.

    Subclasses implement :meth:`_build_geometry` and define :attr:`specs`.

    Parameters
    ----------
    fidelity:
        ``"high"`` (fine mesh) or ``"low"`` (coarse mesh), or a custom cell
        size passed through ``dl``.
    dl:
        Explicit cell size in micrometres (overrides ``fidelity``).
    """

    name: str = "device"

    def __init__(self, fidelity: str = "low", dl: float | None = None):
        if dl is None:
            if fidelity not in FIDELITY_DL:
                raise ValueError(
                    f"unknown fidelity {fidelity!r}; expected one of {sorted(FIDELITY_DL)}"
                )
            dl = FIDELITY_DL[fidelity]
        self.fidelity = fidelity
        self.dl = float(dl)
        self.geometry = self._build_geometry(self.dl)
        self.specs = self._build_specs()

    # -- interface for subclasses ------------------------------------------------
    def _build_geometry(self, dl: float) -> DeviceGeometry:
        raise NotImplementedError

    def _build_specs(self) -> list[TargetSpec]:
        raise NotImplementedError

    # -- state handling (active devices override) -----------------------------------
    def apply_state(self, eps_r: np.ndarray, state: dict[str, float]) -> np.ndarray:
        """Modify the permittivity according to a device state (no-op by default)."""
        if state:
            raise ValueError(f"{self.name} is a passive device; state {state} not supported")
        return eps_r

    # -- nonlinearity (Kerr devices override/parametrize) ---------------------------
    #: Default Kerr coefficient of the device's nonlinear material; 0.0 for
    #: the (linear) bulk of the zoo.  Kerr devices set a calibrated value.
    chi3: float = 0.0

    def chi3_map(self, chi3: float | None = None) -> np.ndarray:
        """Grid-shaped Kerr coefficient map ``chi3(r)`` for nonlinear solves.

        The default places the nonlinear material uniformly over the design
        region (where the optimizable — and for Kerr devices, nonlinear —
        material lives) and zero elsewhere, so access waveguides and PML stay
        strictly linear.  ``chi3`` overrides the device default
        (:attr:`chi3`); subclasses may override for non-uniform materials.
        """
        value = self.chi3 if chi3 is None else float(chi3)
        out = np.zeros(self.grid.shape)
        out[self.geometry.design_slice] = value
        return out

    # -- convenience -------------------------------------------------------------------
    @property
    def grid(self) -> Grid:
        return self.geometry.grid

    @property
    def design_shape(self) -> tuple[int, int]:
        return self.geometry.design_shape

    @property
    def wavelengths(self) -> list[float]:
        """All wavelengths referenced by the target specs (sorted, unique)."""
        return sorted({spec.wavelength for spec in self.specs})

    def eps_with_design(self, density: np.ndarray) -> np.ndarray:
        return self.geometry.eps_with_design(density)

    def simulation(
        self,
        density: np.ndarray,
        wavelength: float | None = None,
        state: dict | None = None,
        engine=None,
    ) -> Simulation:
        """Build a :class:`Simulation` for a design density and device state.

        ``engine`` selects the solver fidelity tier (an engine instance or a
        registry name such as ``"iterative"`` or ``"neural:<checkpoint>"``);
        None solves exactly.
        """
        eps = self.eps_with_design(density)
        eps = self.apply_state(eps, state or {})
        wavelength = wavelength if wavelength is not None else self.specs[0].wavelength
        return Simulation(self.grid, eps, wavelength, self.geometry.ports, engine=engine)

    def simulate_spec(self, density: np.ndarray, spec: TargetSpec) -> SimulationResult:
        """Run the forward simulation for one target spec."""
        sim = self.simulation(density, wavelength=spec.wavelength, state=spec.state)
        return sim.solve(
            source_port=spec.source_port,
            mode_index=spec.source_mode,
            monitor_ports=spec.monitored_ports(),
        )

    def figure_of_merit(self, density: np.ndarray) -> float:
        """Weighted figure of merit across all target specs.

        For each spec the contribution is ``sum_p w_p T_p`` (positive weights
        reward transmission into the wanted port, negative weights penalize
        crosstalk).  Specs are combined by their weights and normalized so a
        perfect router scores 1.
        """
        total = 0.0
        weight_sum = 0.0
        for spec in self.specs:
            result = self.simulate_spec(density, spec)
            contribution = sum(
                w * result.transmissions.get(port, 0.0)
                for port, w in spec.port_weights.items()
            )
            total += spec.weight * contribution
            weight_sum += spec.weight * max(
                sum(w for w in spec.port_weights.values() if w > 0), 1e-12
            )
        return float(total / weight_sum) if weight_sum else 0.0

    def initial_density(self, kind: str = "uniform", rng=None) -> np.ndarray:
        """Convenience initial designs (see also :mod:`repro.invdes.initialization`)."""
        from repro.invdes.initialization import initial_density

        return initial_density(self, kind=kind, rng=rng)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}(fidelity={self.fidelity!r}, dl={self.dl}, "
            f"grid={self.grid.shape}, design={self.design_shape})"
        )


# --------------------------------------------------------------------------- #
# geometry helpers shared by the concrete devices
# --------------------------------------------------------------------------- #
def make_grid(domain_x: float, domain_y: float, dl: float, npml_um: float = 0.6) -> Grid:
    """Grid covering ``domain_x x domain_y`` micrometres plus PML on all sides."""
    npml = max(int(round(npml_um / dl)), 8)
    nx = int(round(domain_x / dl)) + 2 * npml
    ny = int(round(domain_y / dl)) + 2 * npml
    return Grid(nx=nx, ny=ny, dl=dl, npml=npml)


def add_horizontal_waveguide(
    eps: np.ndarray,
    grid: Grid,
    y_center: float,
    width: float,
    x_start: float | None = None,
    x_stop: float | None = None,
    value: float = EPS_SI,
) -> None:
    """Draw a horizontal waveguide (along x) into ``eps`` in place."""
    sx = grid.slice_x(0.0 if x_start is None else x_start, grid.size_x if x_stop is None else x_stop)
    sy = grid.slice_y(y_center - width / 2, y_center + width / 2)
    eps[sx, sy] = value


def add_vertical_waveguide(
    eps: np.ndarray,
    grid: Grid,
    x_center: float,
    width: float,
    y_start: float | None = None,
    y_stop: float | None = None,
    value: float = EPS_SI,
) -> None:
    """Draw a vertical waveguide (along y) into ``eps`` in place."""
    sy = grid.slice_y(0.0 if y_start is None else y_start, grid.size_y if y_stop is None else y_stop)
    sx = grid.slice_x(x_center - width / 2, x_center + width / 2)
    eps[sx, sy] = value


def centered_design_slice(grid: Grid, size_x: float, size_y: float) -> tuple[slice, slice]:
    """Design-region slice of ``size_x x size_y`` micrometres centred in the domain."""
    cx, cy = grid.size_x / 2, grid.size_y / 2
    return (
        grid.slice_x(cx - size_x / 2, cx + size_x / 2),
        grid.slice_y(cy - size_y / 2, cy + size_y / 2),
    )
