"""Two-channel mode-division (de)multiplexer."""

from __future__ import annotations

import numpy as np

from repro.constants import DEFAULT_WAVELENGTH, EPS_SI, EPS_SIO2
from repro.devices.base import (
    Device,
    DeviceGeometry,
    TargetSpec,
    add_horizontal_waveguide,
    centered_design_slice,
    make_grid,
)
from repro.fdfd.monitors import Port


class ModeDemultiplexer(Device):
    """Separate the two guided modes of a wide input waveguide to two outputs.

    The fundamental mode of the wide input bus should exit through the upper
    single-mode output; the first higher-order mode should exit through the
    lower output.
    """

    name = "mdm"

    def __init__(
        self,
        fidelity: str = "low",
        dl: float | None = None,
        domain: float = 4.0,
        design_size: float = 2.2,
        bus_width: float = 1.0,
        wg_width: float = 0.48,
        output_offset: float = 0.9,
        wavelength: float = DEFAULT_WAVELENGTH,
        crosstalk_penalty: float = 0.3,
    ):
        self.domain = domain
        self.design_size = design_size
        self.bus_width = bus_width
        self.wg_width = wg_width
        self.output_offset = output_offset
        self.wavelength = wavelength
        self.crosstalk_penalty = crosstalk_penalty
        super().__init__(fidelity=fidelity, dl=dl)

    def _build_geometry(self, dl: float) -> DeviceGeometry:
        grid = make_grid(self.domain, self.domain, dl)
        eps = np.full(grid.shape, EPS_SIO2)
        cx, cy = grid.size_x / 2, grid.size_y / 2
        y_up = cy + self.output_offset
        y_down = cy - self.output_offset

        # Wide multi-mode bus on the left, two single-mode outputs on the right.
        add_horizontal_waveguide(eps, grid, y_center=cy, width=self.bus_width, x_stop=cx)
        add_horizontal_waveguide(eps, grid, y_center=y_up, width=self.wg_width, x_start=cx)
        add_horizontal_waveguide(eps, grid, y_center=y_down, width=self.wg_width, x_start=cx)

        design = centered_design_slice(grid, self.design_size, self.design_size)
        margin = (grid.npml + 3) * grid.dl
        ports = [
            Port("in", "x", position=margin, center=cy, span=2.5 * self.bus_width, direction=+1),
            Port(
                "out1",
                "x",
                position=grid.size_x - margin,
                center=y_up,
                span=3.0 * self.wg_width,
                direction=+1,
            ),
            Port(
                "out2",
                "x",
                position=grid.size_x - margin,
                center=y_down,
                span=3.0 * self.wg_width,
                direction=+1,
            ),
        ]
        return DeviceGeometry(
            grid=grid,
            eps_background=eps,
            design_slice=design,
            ports=ports,
            eps_core=EPS_SI,
            eps_clad=EPS_SIO2,
        )

    def _build_specs(self) -> list[TargetSpec]:
        return [
            TargetSpec(
                source_port="in",
                source_mode=0,
                wavelength=self.wavelength,
                port_weights={"out1": 1.0, "out2": -self.crosstalk_penalty},
            ),
            TargetSpec(
                source_port="in",
                source_mode=1,
                wavelength=self.wavelength,
                port_weights={"out2": 1.0, "out1": -self.crosstalk_penalty},
            ),
        ]
