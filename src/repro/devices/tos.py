"""Active thermo-optic switch (TOS).

The device is a 1x2 switch: a heater above part of the design region shifts
the local refractive index and re-routes light from the "bar" output to the
"cross" output.  The heater-induced permittivity change is exaggerated
relative to the physical thermo-optic coefficient of silicon so that a
wavelength-scale device can switch — the paper's devices are larger; the
substitution is documented in DESIGN.md and keeps the *active device* code
path (state-dependent permittivity, multi-state objectives) fully exercised.
"""

from __future__ import annotations

import numpy as np

from repro.constants import DEFAULT_WAVELENGTH, DN_DT_SI, EPS_SI, EPS_SIO2, N_SI
from repro.devices.base import (
    Device,
    DeviceGeometry,
    TargetSpec,
    add_horizontal_waveguide,
    centered_design_slice,
    make_grid,
)
from repro.fdfd.monitors import Port


class ThermoOpticSwitch(Device):
    """Active 1x2 thermo-optic switch.

    ``state={"heater": 0.0}`` routes light to the upper output ("bar" state),
    ``state={"heater": 1.0}`` routes it to the lower output ("cross" state).
    """

    name = "tos"

    def __init__(
        self,
        fidelity: str = "low",
        dl: float | None = None,
        domain: float = 4.0,
        design_size: float = 2.2,
        wg_width: float = 0.48,
        output_offset: float = 0.9,
        wavelength: float = DEFAULT_WAVELENGTH,
        heater_delta_eps: float = 0.8,
        crosstalk_penalty: float = 0.3,
    ):
        self.domain = domain
        self.design_size = design_size
        self.wg_width = wg_width
        self.output_offset = output_offset
        self.wavelength = wavelength
        self.heater_delta_eps = heater_delta_eps
        self.crosstalk_penalty = crosstalk_penalty
        super().__init__(fidelity=fidelity, dl=dl)

    # -- geometry -----------------------------------------------------------------
    def _build_geometry(self, dl: float) -> DeviceGeometry:
        grid = make_grid(self.domain, self.domain, dl)
        eps = np.full(grid.shape, EPS_SIO2)
        cx, cy = grid.size_x / 2, grid.size_y / 2
        y_up = cy + self.output_offset
        y_down = cy - self.output_offset

        add_horizontal_waveguide(eps, grid, y_center=cy, width=self.wg_width, x_stop=cx)
        add_horizontal_waveguide(eps, grid, y_center=y_up, width=self.wg_width, x_start=cx)
        add_horizontal_waveguide(eps, grid, y_center=y_down, width=self.wg_width, x_start=cx)

        design = centered_design_slice(grid, self.design_size, self.design_size)
        margin = (grid.npml + 3) * grid.dl
        span = 3.0 * self.wg_width
        ports = [
            Port("in", "x", position=margin, center=cy, span=span, direction=+1),
            Port("out1", "x", position=grid.size_x - margin, center=y_up, span=span, direction=+1),
            Port("out2", "x", position=grid.size_x - margin, center=y_down, span=span, direction=+1),
        ]
        return DeviceGeometry(
            grid=grid,
            eps_background=eps,
            design_slice=design,
            ports=ports,
            eps_core=EPS_SI,
            eps_clad=EPS_SIO2,
        )

    # -- active-state handling ---------------------------------------------------------
    def heater_slice(self) -> tuple[slice, slice]:
        """The heater covers the upper half of the design region."""
        sx, sy = self.geometry.design_slice
        mid = (sy.start + sy.stop) // 2
        return sx, slice(mid, sy.stop)

    def apply_state(self, eps_r: np.ndarray, state: dict[str, float]) -> np.ndarray:
        """Shift the permittivity under the heater proportionally to the drive level."""
        unknown = set(state) - {"heater"}
        if unknown:
            raise ValueError(f"unsupported state keys for {self.name}: {sorted(unknown)}")
        drive = float(state.get("heater", 0.0))
        if drive == 0.0:
            return eps_r
        eps = np.array(eps_r, copy=True)
        eps[self.heater_slice()] += drive * self.heater_delta_eps
        return eps

    @staticmethod
    def equivalent_temperature_shift(delta_eps: float) -> float:
        """Temperature rise (K) that would produce ``delta_eps`` in bulk silicon.

        Provided for documentation: the exaggerated ``heater_delta_eps`` maps to
        an unphysically large temperature in a real device; see DESIGN.md.
        """
        return delta_eps / (2.0 * N_SI * DN_DT_SI)

    # -- objective ------------------------------------------------------------------------
    def _build_specs(self) -> list[TargetSpec]:
        return [
            TargetSpec(
                source_port="in",
                source_mode=0,
                wavelength=self.wavelength,
                port_weights={"out1": 1.0, "out2": -self.crosstalk_penalty},
                state={"heater": 0.0},
            ),
            TargetSpec(
                source_port="in",
                source_mode=0,
                wavelength=self.wavelength,
                port_weights={"out2": 1.0, "out1": -self.crosstalk_penalty},
                state={"heater": 1.0},
            ),
        ]
