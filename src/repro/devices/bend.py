"""90-degree waveguide bend — the basic single-function benchmark device."""

from __future__ import annotations

import numpy as np

from repro.constants import DEFAULT_WAVELENGTH, EPS_SI, EPS_SIO2
from repro.devices.base import (
    Device,
    DeviceGeometry,
    TargetSpec,
    add_horizontal_waveguide,
    add_vertical_waveguide,
    centered_design_slice,
    make_grid,
)
from repro.fdfd.monitors import Port


class WaveguideBend(Device):
    """Ultra-compact 90-degree bend.

    Light enters horizontally from the left port and must leave vertically
    through the bottom port; the routing happens inside a square design region
    at the centre of the domain.
    """

    name = "bending"

    def __init__(
        self,
        fidelity: str = "low",
        dl: float | None = None,
        domain: float = 4.0,
        design_size: float = 2.0,
        wg_width: float = 0.48,
        wavelength: float = DEFAULT_WAVELENGTH,
    ):
        self.domain = domain
        self.design_size = design_size
        self.wg_width = wg_width
        self.wavelength = wavelength
        super().__init__(fidelity=fidelity, dl=dl)

    def _build_geometry(self, dl: float) -> DeviceGeometry:
        grid = make_grid(self.domain, self.domain, dl)
        eps = np.full(grid.shape, EPS_SIO2)
        cx, cy = grid.size_x / 2, grid.size_y / 2

        # Input waveguide: from the left edge to the design region.
        add_horizontal_waveguide(eps, grid, y_center=cy, width=self.wg_width, x_stop=cx)
        # Output waveguide: from the design region down to the bottom edge.
        add_vertical_waveguide(eps, grid, x_center=cx, width=self.wg_width, y_stop=cy)

        design = centered_design_slice(grid, self.design_size, self.design_size)
        margin = (grid.npml + 3) * grid.dl
        span = 3.0 * self.wg_width
        ports = [
            Port("in", "x", position=margin, center=cy, span=span, direction=+1),
            Port("out", "y", position=margin, center=cx, span=span, direction=-1),
        ]
        return DeviceGeometry(
            grid=grid,
            eps_background=eps,
            design_slice=design,
            ports=ports,
            eps_core=EPS_SI,
            eps_clad=EPS_SIO2,
        )

    def _build_specs(self) -> list[TargetSpec]:
        return [
            TargetSpec(
                source_port="in",
                source_mode=0,
                wavelength=self.wavelength,
                port_weights={"out": 1.0},
            )
        ]
