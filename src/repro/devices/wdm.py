"""Two-channel wavelength-division (de)multiplexer."""

from __future__ import annotations

import numpy as np

from repro.constants import EPS_SI, EPS_SIO2, WDM_WAVELENGTHS
from repro.devices.base import (
    Device,
    DeviceGeometry,
    TargetSpec,
    add_horizontal_waveguide,
    centered_design_slice,
    make_grid,
)
from repro.fdfd.monitors import Port


class WavelengthDemultiplexer(Device):
    """Route two wavelength channels from one input to two output waveguides."""

    name = "wdm"

    def __init__(
        self,
        fidelity: str = "low",
        dl: float | None = None,
        domain: float = 4.0,
        design_size: float = 2.2,
        wg_width: float = 0.48,
        output_offset: float = 0.9,
        wavelengths: tuple[float, float] = WDM_WAVELENGTHS,
        crosstalk_penalty: float = 0.3,
    ):
        self.domain = domain
        self.design_size = design_size
        self.wg_width = wg_width
        self.output_offset = output_offset
        self.channel_wavelengths = tuple(wavelengths)
        self.crosstalk_penalty = crosstalk_penalty
        super().__init__(fidelity=fidelity, dl=dl)

    def _build_geometry(self, dl: float) -> DeviceGeometry:
        grid = make_grid(self.domain, self.domain, dl)
        eps = np.full(grid.shape, EPS_SIO2)
        cx, cy = grid.size_x / 2, grid.size_y / 2
        y_up = cy + self.output_offset
        y_down = cy - self.output_offset

        # One input feeding the design region, two outputs leaving it.
        add_horizontal_waveguide(eps, grid, y_center=cy, width=self.wg_width, x_stop=cx)
        add_horizontal_waveguide(eps, grid, y_center=y_up, width=self.wg_width, x_start=cx)
        add_horizontal_waveguide(eps, grid, y_center=y_down, width=self.wg_width, x_start=cx)

        design = centered_design_slice(grid, self.design_size, self.design_size)
        margin = (grid.npml + 3) * grid.dl
        span = 3.0 * self.wg_width
        ports = [
            Port("in", "x", position=margin, center=cy, span=span, direction=+1),
            Port("out1", "x", position=grid.size_x - margin, center=y_up, span=span, direction=+1),
            Port("out2", "x", position=grid.size_x - margin, center=y_down, span=span, direction=+1),
        ]
        return DeviceGeometry(
            grid=grid,
            eps_background=eps,
            design_slice=design,
            ports=ports,
            eps_core=EPS_SI,
            eps_clad=EPS_SIO2,
        )

    def _build_specs(self) -> list[TargetSpec]:
        lam1, lam2 = self.channel_wavelengths
        return [
            TargetSpec(
                source_port="in",
                source_mode=0,
                wavelength=lam1,
                port_weights={"out1": 1.0, "out2": -self.crosstalk_penalty},
            ),
            TargetSpec(
                source_port="in",
                source_mode=0,
                wavelength=lam2,
                port_weights={"out2": 1.0, "out1": -self.crosstalk_penalty},
            ),
        ]
