"""Kerr nonlinear devices: all-optical switch and power limiter.

Both devices carry an intensity-dependent permittivity
``eps_eff = eps + chi3 |Ez|^2`` inside the design region (the access
waveguides stay linear) and define *power-sweep* specs: the same excitation
at several injected powers, encoded as ``state={"power": s}`` where ``s`` is
the mode-source scale passed to
:class:`~repro.fdfd.nonlinear.NonlinearSimulation`.  ``apply_state`` accepts
the ``power`` key as a no-op — power does not change the linear permittivity;
the nonlinear evaluation path (:func:`repro.invdes.adjoint.evaluate_specs`
with ``nonlinearity=``) reads it to scale the source, and the linear path
simply ignores intensity (its fields are power-independent), so every linear
consumer of these devices keeps working.

The ``chi3`` values are calibrated workload constants, not material data:
2-D unit-amplitude mode sources produce fields of order ``1e-5``, so a
physical ``n2`` would never move the permittivity.  Each device hard-codes
the ``chi3`` that makes the *high-power* spec shift the design-region
permittivity by a few tenths — deep in the nonlinear regime yet safely
inside the stable fixed-point window (the bistable blow-up used by the
convergence tests starts several times higher).
"""

from __future__ import annotations

import numpy as np

from repro.constants import DEFAULT_WAVELENGTH, EPS_SI, EPS_SIO2
from repro.devices.base import (
    Device,
    DeviceGeometry,
    TargetSpec,
    add_horizontal_waveguide,
    centered_design_slice,
    make_grid,
)
from repro.fdfd.monitors import Port


class _KerrDevice(Device):
    """Shared power-state plumbing of the Kerr zoo devices."""

    #: Source scales of the transfer-curve sweep (benchmarks/examples).
    power_sweep: tuple[float, ...] = (0.5, 1.0, 2.0, 3.0)

    def apply_state(self, eps_r: np.ndarray, state: dict[str, float]) -> np.ndarray:
        """``power`` states leave the linear permittivity untouched."""
        unknown = set(state) - {"power"}
        if unknown:
            raise ValueError(f"unsupported state keys for {self.name}: {sorted(unknown)}")
        return eps_r


class KerrAllOpticalSwitch(_KerrDevice):
    """Intensity-routed 1x2 switch.

    At low power the device should route light to ``out1``; at high power the
    Kerr-shifted permittivity should re-route it to ``out2``.  Geometrically a
    twin of the thermo-optic switch — the "actuation" is the optical power
    itself instead of a heater.
    """

    name = "kerr_switch"
    # Calibrated so the high-power spec shifts the design-region permittivity
    # by ~0.3 at a uniform 0.5 density (see module docstring).
    chi3 = 1.3e8

    def __init__(
        self,
        fidelity: str = "low",
        dl: float | None = None,
        domain: float = 4.0,
        design_size: float = 2.2,
        wg_width: float = 0.48,
        output_offset: float = 0.9,
        wavelength: float = DEFAULT_WAVELENGTH,
        low_power: float = 1.0,
        high_power: float = 3.0,
        crosstalk_penalty: float = 0.3,
    ):
        self.domain = domain
        self.design_size = design_size
        self.wg_width = wg_width
        self.output_offset = output_offset
        self.wavelength = wavelength
        self.low_power = low_power
        self.high_power = high_power
        self.crosstalk_penalty = crosstalk_penalty
        super().__init__(fidelity=fidelity, dl=dl)

    def _build_geometry(self, dl: float) -> DeviceGeometry:
        grid = make_grid(self.domain, self.domain, dl)
        eps = np.full(grid.shape, EPS_SIO2)
        cx, cy = grid.size_x / 2, grid.size_y / 2
        y_up = cy + self.output_offset
        y_down = cy - self.output_offset

        add_horizontal_waveguide(eps, grid, y_center=cy, width=self.wg_width, x_stop=cx)
        add_horizontal_waveguide(eps, grid, y_center=y_up, width=self.wg_width, x_start=cx)
        add_horizontal_waveguide(eps, grid, y_center=y_down, width=self.wg_width, x_start=cx)

        design = centered_design_slice(grid, self.design_size, self.design_size)
        margin = (grid.npml + 3) * grid.dl
        span = 3.0 * self.wg_width
        ports = [
            Port("in", "x", position=margin, center=cy, span=span, direction=+1),
            Port("out1", "x", position=grid.size_x - margin, center=y_up, span=span, direction=+1),
            Port("out2", "x", position=grid.size_x - margin, center=y_down, span=span, direction=+1),
        ]
        return DeviceGeometry(
            grid=grid,
            eps_background=eps,
            design_slice=design,
            ports=ports,
            eps_core=EPS_SI,
            eps_clad=EPS_SIO2,
        )

    def _build_specs(self) -> list[TargetSpec]:
        return [
            TargetSpec(
                source_port="in",
                source_mode=0,
                wavelength=self.wavelength,
                port_weights={"out1": 1.0, "out2": -self.crosstalk_penalty},
                state={"power": self.low_power},
            ),
            TargetSpec(
                source_port="in",
                source_mode=0,
                wavelength=self.wavelength,
                port_weights={"out2": 1.0, "out1": -self.crosstalk_penalty},
                state={"power": self.high_power},
            ),
        ]


class KerrPowerLimiter(_KerrDevice):
    """Intensity-dependent straight-through limiter.

    A single through waveguide crossing the design region: at low power the
    design should transmit (``out`` rewarded), at high power the Kerr-detuned
    design region should reflect/scatter it (``out`` penalized) — a saturable
    transfer curve.
    """

    name = "kerr_limiter"
    # Calibrated like the switch: ~0.3 design-region permittivity shift at
    # the high-power spec through a uniform 0.5 density.
    chi3 = 1.1e8

    def __init__(
        self,
        fidelity: str = "low",
        dl: float | None = None,
        domain: float = 4.0,
        design_size: float = 2.0,
        wg_width: float = 0.48,
        wavelength: float = DEFAULT_WAVELENGTH,
        low_power: float = 1.0,
        high_power: float = 3.0,
        limit_penalty: float = 0.5,
    ):
        self.domain = domain
        self.design_size = design_size
        self.wg_width = wg_width
        self.wavelength = wavelength
        self.low_power = low_power
        self.high_power = high_power
        self.limit_penalty = limit_penalty
        super().__init__(fidelity=fidelity, dl=dl)

    def _build_geometry(self, dl: float) -> DeviceGeometry:
        grid = make_grid(self.domain, self.domain, dl)
        eps = np.full(grid.shape, EPS_SIO2)
        cy = grid.size_y / 2
        add_horizontal_waveguide(eps, grid, y_center=cy, width=self.wg_width)

        design = centered_design_slice(grid, self.design_size, self.design_size)
        margin = (grid.npml + 3) * grid.dl
        span = 3.0 * self.wg_width
        ports = [
            Port("in", "x", position=margin, center=cy, span=span, direction=+1),
            Port("out", "x", position=grid.size_x - margin, center=cy, span=span, direction=+1),
        ]
        return DeviceGeometry(
            grid=grid,
            eps_background=eps,
            design_slice=design,
            ports=ports,
            eps_core=EPS_SI,
            eps_clad=EPS_SIO2,
        )

    def _build_specs(self) -> list[TargetSpec]:
        return [
            TargetSpec(
                source_port="in",
                source_mode=0,
                wavelength=self.wavelength,
                port_weights={"out": 1.0},
                state={"power": self.low_power},
            ),
            TargetSpec(
                source_port="in",
                source_mode=0,
                wavelength=self.wavelength,
                port_weights={"out": -self.limit_penalty},
                state={"power": self.high_power},
                weight=0.5,
            ),
        ]
