"""Optical diode — asymmetric transmission between forward and backward excitation.

In a linear, reciprocal structure true isolation is impossible; like the
inverse-design literature, the "optical diode" benchmark targets asymmetric
mode conversion: high fundamental-mode transmission in the forward direction
and suppressed fundamental-mode transmission for backward excitation.
"""

from __future__ import annotations

import numpy as np

from repro.constants import DEFAULT_WAVELENGTH, EPS_SI, EPS_SIO2
from repro.devices.base import (
    Device,
    DeviceGeometry,
    TargetSpec,
    add_horizontal_waveguide,
    centered_design_slice,
    make_grid,
)
from repro.fdfd.monitors import Port


class OpticalDiode(Device):
    """Asymmetric-transmission device on a straight through-waveguide."""

    name = "optical_diode"

    def __init__(
        self,
        fidelity: str = "low",
        dl: float | None = None,
        domain: float = 4.0,
        design_size: float = 2.0,
        wg_width_in: float = 0.48,
        wg_width_out: float = 0.8,
        wavelength: float = DEFAULT_WAVELENGTH,
        backward_penalty: float = 0.5,
    ):
        self.domain = domain
        self.design_size = design_size
        self.wg_width_in = wg_width_in
        self.wg_width_out = wg_width_out
        self.wavelength = wavelength
        self.backward_penalty = backward_penalty
        super().__init__(fidelity=fidelity, dl=dl)

    def _build_geometry(self, dl: float) -> DeviceGeometry:
        grid = make_grid(self.domain, self.domain, dl)
        eps = np.full(grid.shape, EPS_SIO2)
        cx, cy = grid.size_x / 2, grid.size_y / 2

        # Narrow single-mode input on the left, wider multi-mode output on the
        # right: the width asymmetry is what makes asymmetric mode conversion
        # physically possible.
        add_horizontal_waveguide(eps, grid, y_center=cy, width=self.wg_width_in, x_stop=cx)
        add_horizontal_waveguide(eps, grid, y_center=cy, width=self.wg_width_out, x_start=cx)

        design = centered_design_slice(grid, self.design_size, self.design_size)
        margin = (grid.npml + 3) * grid.dl
        ports = [
            Port("in", "x", position=margin, center=cy, span=3.0 * self.wg_width_in, direction=+1),
            Port(
                "out",
                "x",
                position=grid.size_x - margin,
                center=cy,
                span=3.0 * self.wg_width_out,
                direction=+1,
            ),
        ]
        return DeviceGeometry(
            grid=grid,
            eps_background=eps,
            design_slice=design,
            ports=ports,
            eps_core=EPS_SI,
            eps_clad=EPS_SIO2,
        )

    def _build_specs(self) -> list[TargetSpec]:
        return [
            # Forward: maximize transmission into the output waveguide.
            TargetSpec(
                source_port="in",
                source_mode=0,
                wavelength=self.wavelength,
                port_weights={"out": 1.0},
                weight=1.0,
            ),
            # Backward: penalize power returning into the input waveguide.
            TargetSpec(
                source_port="out",
                source_mode=0,
                wavelength=self.wavelength,
                port_weights={"in": -1.0},
                weight=self.backward_penalty,
            ),
        ]
