"""Broadband device simulation: one pulsed FDTD run, many wavelengths.

:class:`FdtdSimulation` is the time-domain sibling of
:class:`repro.fdfd.simulation.Simulation`: same grid, permittivity and port
semantics, but constructed with a *list* of wavelengths.  A single pulsed run
with running DFTs (see :mod:`repro.fdtd.core`) yields the frequency-domain
fields at every wavelength at once; each is then normalized and measured
exactly like an FDFD solve — Poynting flux and modal overlap per port,
divided by the flux/overlap of the same source travelling the extruded
reference waveguide (:func:`repro.fdfd.simulation.normalization_geometry`,
also computed broadband from one time-domain run).  The per-wavelength
results are ordinary :class:`~repro.fdfd.simulation.SimulationResult`
objects, so every downstream consumer (labels, objectives, datasets) works
unchanged.

The mode source is solved at the band-centre frequency and injected for all
wavelengths; any per-wavelength mode mismatch this introduces is common to
the device and normalization runs and cancels in the transmission ratio.

Where the FDFD facade amortizes one factorization over many right-hand
sides, this facade amortizes one time-domain run over many wavelengths: for
N wavelengths it replaces 2N FDFD factorizations (device + normalization per
wavelength) with 2 runs plus cheap per-wavelength DFT bookkeeping.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

import numpy as np

from repro.constants import MU_0, omega_to_wavelength, wavelength_to_omega
from repro.fdfd.grid import Grid
from repro.fdfd.modes import mode_source_amplitude, overlap_coefficient, solve_slab_modes
from repro.fdfd.monitors import Port, poynting_flux_through_port
from repro.fdfd.pml import create_sfactor
from repro.fdfd.simulation import SimulationResult, normalization_geometry
from repro.fdtd.core import run_pulsed

# Broadband normalization runs are fully determined by the source-port
# cross-section, grid, wavelength set and stepping parameters — not by the
# design — so optimization loops and sibling simulations share one run.
# Values are small per-wavelength (flux, overlap) arrays.
_NORM_CACHE: OrderedDict[tuple, tuple[np.ndarray, np.ndarray]] = OrderedDict()
_NORM_CACHE_MAX = 64
_NORM_CACHE_LOCK = threading.Lock()


def _e_to_h(ez: np.ndarray, grid: Grid, omega: float) -> tuple[np.ndarray, np.ndarray]:
    """Magnetic fields from Ez, identical to :meth:`FdfdSolver.e_to_h`.

    Matrix-free version of ``factor * (Dyb @ ez)`` / ``-factor * (Dxb @ ez)``:
    the PML-stretched backward difference is a plain neighbour difference
    (Dirichlet closure keeps ``ez[0]`` in row 0) scaled by ``1 / (s dl)``, so
    two slicing ops per component replace a per-wavelength sparse-operator
    build that this facade would otherwise pay for every extraction frequency.
    """
    factor = -1.0 / (1j * omega * MU_0)
    sx_b = create_sfactor(omega, grid.dl_m, grid.nx, grid.npml, shifted=False)
    sy_b = create_sfactor(omega, grid.dl_m, grid.ny, grid.npml, shifted=False)
    dxb = np.empty(grid.shape, dtype=complex)
    dxb[1:, :] = ez[1:, :] - ez[:-1, :]
    dxb[0, :] = ez[0, :]
    dyb = np.empty(grid.shape, dtype=complex)
    dyb[:, 1:] = ez[:, 1:] - ez[:, :-1]
    dyb[:, 0] = ez[:, 0]
    hx = factor * dyb / (grid.dl_m * sy_b[None, :])
    hy = -factor * dxb / (grid.dl_m * sx_b[:, None])
    return hx, hy


class FdtdSimulation:
    """Pulsed time-domain simulation measured at many wavelengths at once.

    Parameters
    ----------
    grid, eps_r, ports:
        As for :class:`repro.fdfd.simulation.Simulation` (permittivity must
        be real — the leapfrog update has no conductivity term).
    wavelengths:
        Free-space wavelengths (micrometres) to extract; one time-domain run
        serves all of them.
    courant, tau_s, decay_tol, max_steps, check_every, precision:
        Stepping parameters, see :func:`repro.fdtd.core.run_pulsed`; this
        facade defaults to single-precision states (the broadband label
        tolerances sit far above leapfrog roundoff and the running DFT
        accumulates in double regardless).
    """

    def __init__(
        self,
        grid: Grid,
        eps_r: np.ndarray,
        wavelengths,
        ports: list[Port],
        courant: float = 0.9,
        tau_s: float | None = None,
        decay_tol: float = 1e-3,
        max_steps: int = 200_000,
        check_every: int = 200,
        precision: str = "single",
    ):
        eps_r = np.asarray(eps_r, dtype=float)
        if eps_r.shape != grid.shape:
            raise ValueError(f"eps_r shape {eps_r.shape} does not match grid {grid.shape}")
        wavelengths = [float(w) for w in np.atleast_1d(wavelengths)]
        if not wavelengths:
            raise ValueError("at least one wavelength is required")
        if not ports:
            raise ValueError("at least one port is required")
        names = [p.name for p in ports]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate port names: {names}")
        self.grid = grid
        self.eps_r = eps_r
        self.wavelengths = wavelengths
        self.omegas = np.array([wavelength_to_omega(w) for w in wavelengths])
        #: Band-centre frequency: where the source mode is solved.
        self.omega_center = float(self.omegas.mean())
        self.ports = {p.name: p for p in ports}
        self._params = dict(
            courant=courant,
            tau_s=tau_s,
            decay_tol=decay_tol,
            max_steps=max_steps,
            check_every=check_every,
            precision=precision,
        )
    def _port(self, name: str) -> Port:
        if name not in self.ports:
            raise KeyError(f"unknown port {name!r}; available: {sorted(self.ports)}")
        return self.ports[name]

    def _run(self, eps_r: np.ndarray, currents: np.ndarray) -> np.ndarray:
        return run_pulsed(
            self.grid,
            eps_r,
            currents[None],
            self.omegas,
            real_fields=True,
            **self._params,
        )[:, 0]

    # -- normalization ---------------------------------------------------------
    def _normalization_key(self, port: Port, mode_index: int, eps_line: np.ndarray) -> tuple:
        return (
            self.grid,
            tuple(self.wavelengths),
            tuple(sorted(self._params.items())),
            port.normal_axis,
            port.position,
            port.center,
            port.span,
            port.direction,
            mode_index,
            eps_line.tobytes(),
        )

    def _measure_normalization(
        self, fields: np.ndarray, eps_norm: np.ndarray, monitor: Port, mode_index: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-wavelength incident flux and modal overlap at the far monitor."""
        fluxes = np.empty(len(self.omegas))
        overlaps = np.empty(len(self.omegas), dtype=complex)
        for k, omega in enumerate(self.omegas):
            hx, hy = _e_to_h(fields[k], self.grid, omega)
            fluxes[k] = abs(
                poynting_flux_through_port(fields[k], hx, hy, monitor, self.grid)
            )
            monitor_modes = solve_slab_modes(
                monitor.eps_line(eps_norm, self.grid), self.grid.dl, omega, mode_index + 1
            )
            overlaps[k] = overlap_coefficient(
                monitor.extract_line(fields[k], self.grid), monitor_modes[mode_index]
            )
        return fluxes, overlaps

    def _normalization(
        self, port: Port, mode_index: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-wavelength incident flux and modal overlap of the source.

        Same reference structure as the FDFD facade
        (:func:`normalization_geometry`), excited by the same band-centre
        pulse as the device run and measured wavelength-by-wavelength.
        Cached — :meth:`solve` computes it alongside the device run (one
        batched time-domain integration) whenever the cache misses.
        """
        eps_line = port.eps_line(self.eps_r, self.grid)
        key = self._normalization_key(port, mode_index, eps_line)
        with _NORM_CACHE_LOCK:
            hit = _NORM_CACHE.get(key)
            if hit is not None:
                _NORM_CACHE.move_to_end(key)
                return hit

        eps_norm, monitor = normalization_geometry(self.grid, port, eps_line)
        modes = port.solve_modes(
            eps_norm, self.grid, self.omega_center, num_modes=mode_index + 1
        )
        if len(modes) <= mode_index:
            raise ValueError(
                f"normalization waveguide for port {port.name!r} does not guide "
                f"mode {mode_index}"
            )
        source = port.scatter_line(mode_source_amplitude(modes[mode_index]), self.grid)
        fields = self._run(eps_norm, source)
        result = self._measure_normalization(fields, eps_norm, monitor, mode_index)
        with _NORM_CACHE_LOCK:
            while len(_NORM_CACHE) >= _NORM_CACHE_MAX:
                _NORM_CACHE.popitem(last=False)
            _NORM_CACHE[key] = result
        return result

    # -- the broadband solve ---------------------------------------------------
    def solve(
        self,
        source_port: str | None = None,
        mode_index: int = 0,
        monitor_ports: list[str] | None = None,
    ) -> list[SimulationResult]:
        """One pulsed run; returns one result per wavelength, in order."""
        if source_port is None:
            source_port = next(iter(self.ports))
        port = self._port(source_port)
        if monitor_ports is None:
            monitor_ports = [name for name in self.ports if name != source_port]

        modes = port.solve_modes(
            self.eps_r, self.grid, self.omega_center, num_modes=mode_index + 1
        )
        if len(modes) <= mode_index:
            raise ValueError(
                f"port {source_port!r} guides only {len(modes)} mode(s); "
                f"mode {mode_index} requested"
            )
        source = port.scatter_line(mode_source_amplitude(modes[mode_index]), self.grid)

        # The normalization waveguide extrudes the source port's own
        # cross-section, so its guided mode — and hence its injected current —
        # is identical to the device's.  On a cache miss the reference run
        # therefore rides along as a second batch item of the same time
        # integration (per-batch permittivity), amortizing every per-step cost
        # over both geometries instead of paying for two runs.
        eps_line = port.eps_line(self.eps_r, self.grid)
        key = self._normalization_key(port, mode_index, eps_line)
        with _NORM_CACHE_LOCK:
            norm = _NORM_CACHE.get(key)
            if norm is not None:
                _NORM_CACHE.move_to_end(key)
        if norm is not None:
            fields = self._run(self.eps_r, source)
        else:
            eps_norm, monitor = normalization_geometry(self.grid, port, eps_line)
            stacked = run_pulsed(
                self.grid,
                np.stack([self.eps_r, eps_norm]),
                np.stack([source, source]),
                self.omegas,
                real_fields=True,
                **self._params,
            )
            fields = stacked[:, 0]
            norm = self._measure_normalization(stacked[:, 1], eps_norm, monitor, mode_index)
            with _NORM_CACHE_LOCK:
                while len(_NORM_CACHE) >= _NORM_CACHE_MAX:
                    _NORM_CACHE.popitem(last=False)
                _NORM_CACHE[key] = norm
        norm_fluxes, norm_overlaps = norm

        results = []
        for k, omega in enumerate(self.omegas):
            ez = fields[k]
            hx, hy = _e_to_h(ez, self.grid, omega)
            fluxes: dict[str, float] = {}
            s_params: dict[str, complex] = {}
            transmissions: dict[str, float] = {}
            norm_flux = float(norm_fluxes[k])
            norm_overlap = complex(norm_overlaps[k])
            for name in monitor_ports:
                monitor = self._port(name)
                flux = poynting_flux_through_port(ez, hx, hy, monitor, self.grid)
                fluxes[name] = float(flux)
                monitor_modes = solve_slab_modes(
                    monitor.eps_line(self.eps_r, self.grid), self.grid.dl, omega, 1
                )
                if monitor_modes:
                    overlap = overlap_coefficient(
                        monitor.extract_line(ez, self.grid), monitor_modes[0]
                    )
                else:
                    overlap = 0.0 + 0.0j
                s_params[name] = complex(overlap / norm_overlap) if norm_overlap else 0.0j
                transmissions[name] = (
                    float(np.clip(flux / norm_flux, 0.0, None)) if norm_flux else 0.0
                )
            results.append(
                SimulationResult(
                    ez=ez,
                    hx=hx,
                    hy=hy,
                    source=source,
                    wavelength=float(omega_to_wavelength(omega)),
                    source_port=source_port,
                    source_mode=mode_index,
                    fluxes=fluxes,
                    s_params=s_params,
                    transmissions=transmissions,
                    input_flux=norm_flux,
                    input_overlap=norm_overlap,
                )
            )
        return results
