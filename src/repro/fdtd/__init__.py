"""Time-domain (FDTD) fidelity tier.

A 2-D TM leapfrog engine whose difference stencils, Dirichlet closure and
absorber conductivity profile are shared with the FDFD tier, so its
frequency-warped DFT extractions satisfy the FDFD equations at the target
frequency exactly in the interior.  Importing this package registers the
``"fdtd"`` engine (:class:`FdtdFrequencyEngine`) on the engine registry;
:class:`FdtdSimulation` is the broadband facade that turns one pulsed run
into fields and transmissions at many wavelengths.
"""

from repro.fdtd.broadband import FdtdSimulation
from repro.fdtd.core import FdtdStepper, GaussianPulse, run_pulsed, warped_frequency
from repro.fdtd.engine import FdtdFrequencyEngine

__all__ = [
    "FdtdFrequencyEngine",
    "FdtdSimulation",
    "FdtdStepper",
    "GaussianPulse",
    "run_pulsed",
    "warped_frequency",
]
