"""2-D TM leapfrog FDTD core: Yee updates, CPML boundaries, running DFTs.

The stepper integrates the first-order system equivalent to the FDFD operator
of :mod:`repro.fdfd.solver` (phasor convention ``exp(+i omega t)``)::

    mu_0      dHy/dt =  Dxb Ez
    mu_0      dHx/dt = -Dyb Ez
    eps_0 e_r dEz/dt =  Dxf Hy - Dyf Hx - Jz p(t)

using exactly the same difference stencils and Dirichlet edge closure as
:mod:`repro.fdfd.derivatives` — the backward difference keeps ``u[0] / dl`` in
its first row, the forward difference ``-u[n-1] / dl`` in its last.  Plugging
discrete time-harmonic phasors into the leapfrog recursion therefore
reproduces the FDFD system *exactly* in the interior, at the warped frequency

    omega_d = (2 / dt) sin(omega' dt / 2).

Running the DFT at ``omega' = (2 / dt) asin(omega dt / 2)``
(:func:`warped_frequency`) thus yields fields that satisfy the FDFD equations
at the *target* frequency; the only model difference left is the absorbing
boundary (discrete CPML recursion here vs. complex coordinate stretching
there), which shares the identical graded conductivity profile
(:func:`repro.fdfd.pml.sigma_samples`).

The CPML uses kappa = 1, alpha = 0, so each stretched derivative becomes
``(diff + psi) / dl`` with the recursion ``psi <- b psi + c diff`` where
``b = exp(-sigma dt / eps_0)`` and ``c = b - 1``; in the continuum limit this
is exactly the ``1 / s`` scaling of the FDFD stretching factors.

:func:`run_pulsed` drives the stepper with a Gaussian-envelope pulse on an
arbitrary current pattern and accumulates running DFTs at many frequencies at
once — one time-domain run yields frequency-domain fields at every requested
wavelength, each normalized by the pulse spectrum so the result is the
response to a unit continuous-wave current (directly comparable to an FDFD
solve with the same ``Jz``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import C_0, EPSILON_0, MU_0
from repro.fdfd.grid import Grid
from repro.fdfd.pml import sigma_samples


def courant_timestep(dl_m: float, courant: float = 0.9) -> float:
    """Stable timestep of the 2-D leapfrog: ``courant * dl / (c sqrt(2))``."""
    if not 0.0 < courant <= 1.0:
        raise ValueError(f"courant factor must be in (0, 1], got {courant}")
    return courant * dl_m / (C_0 * np.sqrt(2.0))


def warped_frequency(omega: float, dt: float) -> float:
    """DFT frequency at which the leapfrog run reproduces FDFD at ``omega``.

    The leapfrog time derivative maps a discrete phasor at ``omega'`` onto the
    effective frequency ``(2 / dt) sin(omega' dt / 2)``; inverting that map
    pre-compensates the time-discretization dispersion exactly.
    """
    x = 0.5 * omega * dt
    if x >= 1.0:
        raise ValueError(
            f"omega {omega:g} is not resolvable at dt {dt:g} "
            "(omega * dt / 2 >= 1); refine the grid or lower the courant factor"
        )
    return float(2.0 / dt * np.arcsin(x))


@dataclass
class GaussianPulse:
    """Gaussian-envelope carrier pulse ``g((t - t0) / tau) e^{i wc (t - t0)}``.

    ``tau`` is the 1/e *field* half-width of the envelope in seconds; the
    pulse effectively vanishes outside ``[0, 2 t0]`` with ``t0 = 5 tau``.
    """

    carrier: float
    tau: float

    @property
    def t0(self) -> float:
        return 5.0 * self.tau

    @property
    def duration(self) -> float:
        """Time after which the source is numerically off (envelope < 4e-6)."""
        return 2.0 * self.t0

    def __call__(self, t: np.ndarray) -> np.ndarray:
        t = np.asarray(t, dtype=float)
        envelope = np.exp(-0.5 * ((t - self.t0) / self.tau) ** 2)
        return envelope * np.exp(1j * self.carrier * (t - self.t0))

    def spectrum(self, omegas: np.ndarray, times: np.ndarray, dt: float) -> np.ndarray:
        """Discrete-time Fourier transform of the sampled pulse at ``omegas``.

        This is the *exact* DTFT of the samples actually injected (not the
        continuous-time Gaussian transform), so dividing a field DFT by it
        removes the source spectrum with no approximation.
        """
        samples = self(times)
        phases = np.exp(-1j * np.outer(np.asarray(omegas, dtype=float), times))
        return dt * (phases @ samples)


def design_pulse(omegas_warped: np.ndarray, tau_s: float | None = None) -> GaussianPulse:
    """Pick a pulse covering all requested (warped) frequencies.

    The carrier sits at the band centre.  The envelope width trades run length
    against band coverage: short pulses ring out quickly but must still keep
    (a) negligible DC / negative-frequency content (``wc * tau >= 6``) and
    (b) usable spectral amplitude at the band edges
    (``tau * max|w - wc| <= 2.5``, i.e. >= 4% of the peak, which the spectrum
    division turns into SNR rather than bias).  Default: the shortest pulse
    satisfying (a), checked against (b).
    """
    omegas_warped = np.asarray(omegas_warped, dtype=float)
    carrier = float(omegas_warped.mean())
    half_band = float(np.max(np.abs(omegas_warped - carrier)))
    if tau_s is None:
        tau_s = 8.0 / carrier
    if carrier * tau_s < 6.0:
        raise ValueError(
            f"pulse width {tau_s:g}s has significant DC content at carrier "
            f"{carrier:g} rad/s (need carrier * tau >= 6)"
        )
    if half_band * tau_s > 2.5:
        raise ValueError(
            f"pulse width {tau_s:g}s cannot cover a band of +-{half_band:g} rad/s "
            "around the carrier; pass a smaller tau_s or narrow the wavelength span"
        )
    return GaussianPulse(carrier=carrier, tau=float(tau_s))


class FdtdStepper:
    """Batched leapfrog stepper with CPML boundaries.

    State arrays carry a leading batch dimension ``(B, nx, ny)`` so a stack of
    right-hand sides (e.g. forward and adjoint sources of one device) advances
    through a single vectorized run.  ``dtype`` may be real (real carrier
    pulses — half the memory traffic, used by the broadband facade) or complex
    (analytic pulses / complex current phasors, used by the engine adapter),
    in single or double precision.

    Two hot-loop conventions (the per-step cost here is numpy call overhead,
    so every fused coefficient is a saved full-grid pass):

    * ``hx``/``hy`` store ``H / (dt / (mu_0 dl))`` — the scaling folds into
      the Ez coefficient, making the H update a bare accumulation of the
      stretched difference.  Use :meth:`h_fields` for physical values.
    * CPML recursions run on full-grid ``psi`` arrays whose coefficients are
      identity (``b = 1, c = 0``) outside the absorber, so each derivative
      term is one three-op update instead of two strip-sliced ones.
    """

    def __init__(
        self,
        grid: Grid,
        eps_r: np.ndarray,
        batch: int = 1,
        dtype=np.complex128,
        courant: float = 0.9,
    ):
        eps_r = np.asarray(eps_r)
        if np.iscomplexobj(eps_r):
            if np.any(eps_r.imag != 0):
                raise ValueError(
                    "the FDTD tier supports real permittivity only "
                    "(lossy media would need an auxiliary conductivity update)"
                )
            eps_r = eps_r.real
        eps_r = np.asarray(eps_r, dtype=float)
        if eps_r.shape not in (grid.shape, (batch,) + grid.shape):
            raise ValueError(
                f"eps_r shape {eps_r.shape} matches neither grid {grid.shape} "
                f"nor per-batch ({batch},) + grid"
            )
        if np.any(eps_r <= 0):
            raise ValueError("permittivity must be positive for a stable update")

        self.grid = grid
        self.dt = courant_timestep(grid.dl_m, courant)
        self.dtype = np.dtype(dtype)
        if self.dtype not in (np.dtype(d) for d in (np.float32, np.float64, np.complex64, np.complex128)):
            raise ValueError(f"unsupported stepper dtype {self.dtype}")
        # Coefficients in the matching real precision, so single-precision
        # states never upcast mid-update.
        single = self.dtype in (np.dtype(np.float32), np.dtype(np.complex64))
        real_dtype = np.float32 if single else np.float64
        shape = (batch, grid.nx, grid.ny)
        self.ez = np.zeros(shape, dtype=self.dtype)
        self.hx = np.zeros(shape, dtype=self.dtype)
        self.hy = np.zeros(shape, dtype=self.dtype)
        # Difference scratch buffers (raw neighbour differences, 1/dl folded
        # into the update coefficients below).
        self._dx = np.empty(shape, dtype=self.dtype)
        self._dy = np.empty(shape, dtype=self.dtype)

        dt, dl_m = self.dt, grid.dl_m
        #: Scale between stored ``hx``/``hy`` and physical H fields.
        self.h_scale = float(dt / (MU_0 * dl_m))
        # Fused Ez coefficient: dt / (eps_0 eps dl) times the H scale.
        # (nx, ny) broadcasts over B; a (B, nx, ny) stack gives each batch item
        # its own medium (one run advancing several geometries in lockstep).
        self._ce = (self.h_scale * dt / (EPSILON_0 * eps_r * dl_m)).astype(real_dtype)
        self._eps_flat = eps_r.reshape(-1) if eps_r.ndim == 2 else eps_r.reshape(batch, -1)

        # -- CPML --------------------------------------------------------------
        # One recursion per stretched derivative, sampled at the same stagger
        # offsets as the FDFD stretching factors: backward differences (H
        # updates) at integer positions, forward differences (Ez update) at
        # half-integer positions.  Each entry is (is_x_axis, b, c, psi) with
        # full-length coefficient vectors (identity outside the absorber).
        npml = grid.npml
        self._npml = npml
        nx, ny = grid.nx, grid.ny

        def coeffs(sigma: np.ndarray, axis_x: bool) -> tuple[np.ndarray, np.ndarray]:
            b = np.exp(-sigma * dt / EPSILON_0)
            b, c = b.astype(real_dtype), (b - 1.0).astype(real_dtype)
            if axis_x:
                return b[None, :, None], c[None, :, None]
            return b[None, None, :], c[None, None, :]

        self._psi_h: list[tuple] = []
        self._psi_e: list[tuple] = []
        if npml > 0:
            for target, shifted in ((self._psi_h, False), (self._psi_e, True)):
                sig_x = sigma_samples(dl_m, nx, npml, shifted=shifted)
                sig_y = sigma_samples(dl_m, ny, npml, shifted=shifted)
                target.append(
                    (True, *coeffs(sig_x, True), np.zeros(shape, dtype=self.dtype))
                )
                target.append(
                    (False, *coeffs(sig_y, False), np.zeros(shape, dtype=self.dtype))
                )

    def h_fields(self) -> tuple[np.ndarray, np.ndarray]:
        """Physical magnetic fields (the state stores ``H / h_scale``)."""
        return self.hx * self.h_scale, self.hy * self.h_scale

    # -- source bookkeeping ----------------------------------------------------
    def set_current(self, currents: np.ndarray) -> None:
        """Register the current pattern ``Jz`` (batch-leading, grid-shaped).

        Each step then injects ``Jz * p`` into the Ez update via
        :meth:`step`'s ``amplitude`` argument; only the nonzero cells of the
        pattern are touched per step.
        """
        currents = np.asarray(currents)
        if currents.shape != self.ez.shape:
            raise ValueError(
                f"current shape {currents.shape} does not match state {self.ez.shape}"
            )
        flat = currents.reshape(currents.shape[0], -1)
        self._src_idx = np.flatnonzero(np.any(flat != 0, axis=0))
        values = flat[:, self._src_idx]
        if self.dtype.kind == "f":
            if np.iscomplexobj(values) and np.any(values.imag != 0):
                raise ValueError("real-dtype stepper cannot inject a complex current")
            values = values.real
        if self._eps_flat.ndim == 1:
            coef = -self.dt / (EPSILON_0 * self._eps_flat[None, self._src_idx])
        else:
            coef = -self.dt / (EPSILON_0 * self._eps_flat[:, self._src_idx])
        self._src_term = (coef * values).astype(self.dtype)

    # -- one leapfrog step -----------------------------------------------------
    def step(self, amplitude) -> None:
        """Advance H to ``t + dt/2`` and Ez to ``t + dt``.

        ``amplitude`` is the source waveform sample ``p(t + dt/2)`` (the Ez
        update is centred on the half step, so that is where the current
        lives); real steppers take its real part implicitly via dtype.
        """
        ez, hx, hy, dx, dy = self.ez, self.hx, self.hy, self._dx, self._dy

        # Backward differences of Ez (Dirichlet closure: row 0 keeps ez[0]).
        np.subtract(ez[:, 1:, :], ez[:, :-1, :], out=dx[:, 1:, :])
        dx[:, 0, :] = ez[:, 0, :]
        np.subtract(ez[:, :, 1:], ez[:, :, :-1], out=dy[:, :, 1:])
        dy[:, :, 0] = ez[:, :, 0]
        for is_x, b, c, psi in self._psi_h:
            d = dx if is_x else dy
            np.multiply(psi, b, out=psi)
            psi += c * d
            d += psi
        hy += dx
        hx -= dy

        # Forward differences of H (Dirichlet closure: last row keeps -h[-1]).
        np.subtract(hy[:, 1:, :], hy[:, :-1, :], out=dx[:, :-1, :])
        np.negative(hy[:, -1, :], out=dx[:, -1, :])
        np.subtract(hx[:, :, 1:], hx[:, :, :-1], out=dy[:, :, :-1])
        np.negative(hx[:, :, -1], out=dy[:, :, -1])
        for is_x, b, c, psi in self._psi_e:
            d = dx if is_x else dy
            np.multiply(psi, b, out=psi)
            psi += c * d
            d += psi
        dx -= dy
        dx *= self._ce
        ez += dx
        if amplitude != 0.0 and self._src_idx.size:
            # Python scalars never upcast the array dtype (single stays single).
            if self.dtype.kind == "f":
                amplitude = float(getattr(amplitude, "real", amplitude))
            else:
                amplitude = complex(amplitude)
            ez.reshape(ez.shape[0], -1)[:, self._src_idx] += self._src_term * amplitude

    def peak(self) -> tuple[float, float]:
        """Current max |Ez| and max |H| (decay monitoring)."""
        h = max(float(np.max(np.abs(self.hx))), float(np.max(np.abs(self.hy))))
        return float(np.max(np.abs(self.ez))), h


def run_pulsed(
    grid: Grid,
    eps_r: np.ndarray,
    currents: np.ndarray,
    omegas: np.ndarray,
    *,
    courant: float = 0.9,
    tau_s: float | None = None,
    decay_tol: float = 1e-3,
    max_steps: int = 200_000,
    check_every: int = 200,
    subsample: int | None = None,
    real_fields: bool = False,
    precision: str = "double",
) -> np.ndarray:
    """One pulsed FDTD run, returning frequency-domain fields at ``omegas``.

    Parameters
    ----------
    currents:
        Current pattern stack ``Jz`` of shape ``(B, nx, ny)`` (complex
        phasors allowed unless ``real_fields``).
    omegas:
        Target angular frequencies; the DFTs run at the warped frequencies so
        the results satisfy the FDFD equations at these *exact* values.
    decay_tol:
        The run stops once, after the source has switched off, the field
        envelope drops below this fraction of its running peak (checked every
        ``check_every`` steps; both E and H must decay).
    subsample:
        Accumulate the running DFT only every this many steps (auto-chosen
        alias-safely by default); the pulse spectrum uses every step.
    real_fields:
        Step real arrays driven by the real part of the pulse — valid for
        real current patterns, and the negative-frequency image it introduces
        is separated from the band by ``2 wc`` (utterly negligible for the
        pulses of :func:`design_pulse`).
    precision:
        ``"double"`` (default) or ``"single"``.  Single-precision states halve
        the stepper's memory traffic; leapfrog roundoff stays orders of
        magnitude below the per-mille decay tolerances used here, and the DFT
        still accumulates in double.

    Returns
    -------
    numpy.ndarray
        Complex fields of shape ``(len(omegas), B, nx, ny)``: the steady-state
        phasor response to a unit-amplitude CW current at each frequency.
    """
    omegas = np.atleast_1d(np.asarray(omegas, dtype=float))
    currents = np.asarray(currents)
    if currents.ndim != 3:
        raise ValueError(f"currents must be (batch, nx, ny), got shape {currents.shape}")
    if precision not in ("double", "single"):
        raise ValueError(f"precision must be 'double' or 'single', got {precision!r}")
    if precision == "single":
        dtype = np.float32 if real_fields else np.complex64
    else:
        dtype = np.float64 if real_fields else np.complex128

    stepper = FdtdStepper(grid, eps_r, batch=currents.shape[0], dtype=dtype, courant=courant)
    dt = stepper.dt
    warped = np.array([warped_frequency(w, dt) for w in omegas])
    pulse = design_pulse(warped, tau_s=tau_s)
    stepper.set_current(currents)

    # Source samples live on half steps (the Ez update is centred there).
    n_source = int(np.ceil(pulse.duration / dt))
    source_times = (np.arange(n_source) + 0.5) * dt
    amplitudes = pulse(source_times)
    spectrum = pulse.spectrum(warped, source_times, dt)
    if real_fields:
        # The injected waveform is Re p(t); its DTFT at +w' is what the field
        # DFT must be divided by for the ratio to stay exact.
        spectrum = dt * (
            np.exp(-1j * np.outer(warped, source_times)) @ amplitudes.real
        )

    if subsample is None:
        # Keep the alias spacing 2 pi / (m dt) at least four times the top
        # band frequency, so even the negative-frequency image of a real run
        # folds far outside the band.
        subsample = max(1, int(np.pi / (2.0 * float(warped.max()) * dt)))
    batch = currents.shape[0]
    n_flat = batch * grid.nx * grid.ny
    acc = np.zeros((len(omegas), n_flat), dtype=np.complex128)

    # The running DFT is a phase matrix times the stack of Ez snapshots; doing
    # it as chunked matmuls moves the whole accumulation cost out of the step
    # loop (one snapshot copy per `subsample` steps) and into a handful of
    # BLAS calls.
    chunk = 64
    snaps = np.empty((chunk, n_flat), dtype=stepper.dtype)
    snap_steps = np.empty(chunk)
    n_snaps = 0

    def flush():
        nonlocal n_snaps, acc
        if not n_snaps:
            return
        phases = np.exp(-1j * np.outer(warped, snap_steps[:n_snaps] * dt))
        if stepper.dtype.kind == "f":
            # Phase matrix in the snapshot precision so BLAS runs the narrow
            # gemm; the += accumulates into double either way.
            real_dtype = snaps.real.dtype
            acc.real += phases.real.astype(real_dtype) @ snaps[:n_snaps]
            acc.imag += phases.imag.astype(real_dtype) @ snaps[:n_snaps]
        else:
            acc += phases.astype(snaps.dtype) @ snaps[:n_snaps]
        n_snaps = 0

    peak_e = peak_h = 0.0
    step = 0
    while step < max_steps:
        amplitude = amplitudes[step] if step < n_source else 0.0
        stepper.step(amplitude)
        step += 1
        if step % subsample == 0:
            snaps[n_snaps] = stepper.ez.reshape(-1)
            snap_steps[n_snaps] = step
            n_snaps += 1
            if n_snaps == chunk:
                flush()
        if step % check_every == 0:
            cur_e, cur_h = stepper.peak()
            peak_e, peak_h = max(peak_e, cur_e), max(peak_h, cur_h)
            if (
                step >= n_source
                and cur_e <= decay_tol * peak_e
                and cur_h <= decay_tol * peak_h
            ):
                break
    flush()

    acc = acc.reshape(len(omegas), batch, grid.nx, grid.ny)
    acc *= subsample * dt
    acc /= spectrum[:, None, None, None]
    return acc
