"""Time-domain solver engine: FDFD-compatible solves via pulsed FDTD runs.

:class:`FdtdFrequencyEngine` plugs the leapfrog stepper of
:mod:`repro.fdtd.core` into the engine registry under the name ``"fdtd"``, so
``Simulation(engine="fdtd")``, dataset generation and every other consumer of
the fidelity seam can select the time-domain tier without code changes.  A
``solve_batch`` call turns its right-hand sides back into current patterns
(``J = rhs / (i omega)``), runs one pulsed time-domain simulation with the
whole batch stacked along the leading dimension, and extracts the
frequency-domain fields with a spectrum-normalized running DFT at the warped
frequency — the result satisfies the FDFD equations at the target frequency
exactly in the interior (see :mod:`repro.fdtd.core`); accuracy is limited only
by the absorbing-boundary mismatch and the residual ring-down below
``decay_tol``.

The per-solve economics are the inverse of the direct tier: no factorization
to amortize, cost proportional to the number of timesteps instead.  Its
broadband superpower — many wavelengths from *one* run — lives in
:class:`repro.fdtd.broadband.FdtdSimulation`, which bypasses the one-frequency
``solve_batch`` shape.
"""

from __future__ import annotations

import numpy as np

from repro.fdfd.engine import SolverEngine, register_engine
from repro.fdfd.grid import Grid
from repro.fdtd.core import run_pulsed


class FdtdFrequencyEngine(SolverEngine):
    """Exact-stencil frequency-domain solves computed by time stepping.

    Parameters
    ----------
    courant:
        Fraction of the 2-D stability limit used for the timestep.
    tau_s:
        Pulse envelope width in seconds (auto-designed from the carrier by
        default, see :func:`repro.fdtd.core.design_pulse`).
    decay_tol:
        Relative field-envelope level at which the ring-down is considered
        finished; directly bounds the DFT truncation error.
    max_steps:
        Hard cap on the number of timesteps per run.
    check_every:
        Steps between decay checks.
    """

    name = "fdtd"

    def __init__(
        self,
        courant: float = 0.9,
        tau_s: float | None = None,
        decay_tol: float = 1e-3,
        max_steps: int = 200_000,
        check_every: int = 200,
        precision: str = "double",
    ):
        self.courant = float(courant)
        self.tau_s = tau_s
        self.decay_tol = float(decay_tol)
        self.max_steps = int(max_steps)
        self.check_every = int(check_every)
        self.precision = str(precision)

    @property
    def supports_warm_start(self) -> bool:
        return False

    @property
    def fidelity_signature(self) -> tuple:
        # Deterministic across instances: two engines with identical stepping
        # parameters produce identical fields, so their normalization and
        # result cache entries are safely interchangeable — but never with
        # another tier's ("exact" direct solves in particular).
        return (
            "fdtd",
            self.courant,
            self.tau_s,
            self.decay_tol,
            self.max_steps,
            self.precision,
        )

    def solve_batch(self, grid: Grid, omega, eps_r, rhs, fingerprint=None, x0=None):
        eps_r, rhs = self._check_batch(grid, eps_r, rhs)
        currents = np.asarray(rhs, dtype=complex) / (1j * float(omega))
        fields = run_pulsed(
            grid,
            eps_r,
            currents,
            np.array([float(omega)]),
            courant=self.courant,
            tau_s=self.tau_s,
            decay_tol=self.decay_tol,
            max_steps=self.max_steps,
            check_every=self.check_every,
            precision=self.precision,
        )
        return fields[0]


register_engine("fdtd", FdtdFrequencyEngine)
